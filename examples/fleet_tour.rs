//! Tour of `prefall-fleet`: one shared model bundle serving many
//! wearers — idempotent batched ingest, checkpointed warm resume,
//! explicit load-shedding, the supervisor reaping idle sessions, and
//! the ingest server's backpressure contract over real TCP.
//!
//! ```text
//! cargo run --release --example fleet_tour
//! ```

use prefall::core::detector::{DetectorConfig, GuardConfig};
use prefall::core::models::ModelKind;
use prefall::core::pipeline::PipelineConfig;
use prefall::core::session::ModelBundle;
use prefall::dsp::segment::Overlap;
use prefall::dsp::stats::Normalizer;
use prefall::fleet::{BatchSample, Fleet, FleetConfig, FleetServer, IngestBatch, IngestStatus};
use prefall::telemetry::Registry;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Deterministic wearer-distinct motion so streams are distinguishable.
fn motion(wearer: u64, tick: u64) -> ([f32; 3], [f32; 3]) {
    let w = wearer as f32;
    let t = tick as f32 * 0.06;
    (
        [
            0.05 * (t + w).sin(),
            -0.03 * (t * 0.9 + w).cos(),
            1.0 + 0.02 * (2.1 * t).sin(),
        ],
        [
            11.0 * (t * 1.3 + w).sin(),
            -6.0 * (t + 0.2 * w).cos(),
            3.0 * (0.7 * t + w).sin(),
        ],
    )
}

fn batch(wearer: u64, seq: u64, len: u64) -> IngestBatch {
    IngestBatch {
        wearer,
        seq,
        samples: (0..len)
            .map(|i| {
                let (accel, gyro) = motion(wearer, seq + i);
                BatchSample::Sample { accel, gyro }
            })
            .collect(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. One immutable bundle — weights, normalizer, config — shared by
    //    every session. Sessions hold only per-wearer state (filter,
    //    window ring, guard, trigger) and classify through the bundle's
    //    lock-free `&self` inference path.
    println!("== 1. shared bundle, pooled sessions ==");
    let cfg = DetectorConfig {
        pipeline: PipelineConfig::paper(400.0, Overlap::Half),
        threshold: 0.5,
        consecutive: 3,
        guard: GuardConfig::default(),
    };
    let window = cfg.pipeline.segmentation.window();
    let net = ModelKind::ProposedCnn.build(window, 9, 1)?;
    let bundle = ModelBundle::new(net, Normalizer::identity(9), cfg)?;
    let fleet = Fleet::new(bundle, FleetConfig::default());

    // 2. Ingest is idempotent over an absolute tick grid: duplicated or
    //    re-sent batches short-circuit, gaps are bridged by the guard.
    //    A client's whole retry policy is "send it again".
    println!("== 2. idempotent batched ingest ==");
    let reply = fleet.ingest_one(&batch(1, 0, 40));
    println!(
        "wearer 1: {:?}, next_seq {}, {} windows classified",
        reply.status, reply.next_seq, reply.windows
    );
    let dup = fleet.ingest_one(&batch(1, 0, 40));
    println!("same batch again: {:?} (state untouched)", dup.status);
    assert_eq!(dup.status, IngestStatus::Duplicate);

    // 3. Many wearers at once: `ingest_many` shards the batch wave
    //    across the worker pool. Results are deterministic for any
    //    thread count.
    println!("== 3. a wave of wearers ==");
    let wave: Vec<IngestBatch> = (2..32).map(|w| batch(w, 0, 40)).collect();
    let replies = fleet.ingest_many(&wave);
    let windows: u64 = replies.iter().map(|r| r.windows).sum();
    println!("{} wearers onboarded, {} windows", replies.len(), windows);

    // 4. Load-shedding: under pressure the fleet keeps every session's
    //    cadence (ticks advance, guard runs) but skips inference and
    //    falls back to the accel-confirmed trigger. Every shed window
    //    is counted — degradation is never silent.
    println!("== 4. explicit load-shedding ==");
    let shed = fleet.ingest_many_with(&[batch(1, 40, 40)], true);
    println!(
        "shed batch: {} windows shed, probs empty: {}",
        shed[0].shed_windows,
        shed[0].probs_bits.is_empty()
    );

    // 5. The supervisor parks idle sessions as compact checkpoints and
    //    recycles their buffers; a returning wearer resumes warm,
    //    bit-identical to an uninterrupted stream.
    println!("== 5. reap, park, warm resume ==");
    let reaped = fleet.reap_idle(Duration::ZERO);
    let resumed = fleet.ingest_one(&batch(1, 80, 40));
    let stats = fleet.stats();
    println!(
        "reaped {reaped}, wearer 1 resumed at tick {}, sessions created {} (recycled, not re-allocated)",
        resumed.next_seq, stats.sessions_created
    );

    // 6. The same fleet over TCP: `POST /ingest` with the binary batch
    //    format; `429 + Retry-After` once the pressure ladder tops out.
    println!("== 6. the ingest server and its backpressure contract ==");
    let registry = Arc::new(Registry::new());
    let mut served = Fleet::new(
        ModelBundle::new(
            ModelKind::ProposedCnn.build(window, 9, 1)?,
            Normalizer::identity(9),
            DetectorConfig {
                pipeline: PipelineConfig::paper(400.0, Overlap::Half),
                threshold: 0.5,
                consecutive: 3,
                guard: GuardConfig::default(),
            },
        )?,
        FleetConfig {
            reject_at: 0, // force the saturated path for the demo
            retry_after_ms: 250,
            ..FleetConfig::default()
        },
    );
    served.set_recorder(registry.clone());
    let server = FleetServer::start("127.0.0.1:0", Arc::new(served))?;
    let mut conn = TcpStream::connect(server.addr())?;
    let body = batch(9, 0, 10).to_bytes();
    write!(
        conn,
        "POST /ingest HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    conn.write_all(&body)?;
    let mut response = String::new();
    conn.read_to_string(&mut response)?;
    let status = response.lines().next().unwrap_or_default();
    let retry = response
        .lines()
        .find(|l| l.to_ascii_lowercase().starts_with("retry-after"))
        .unwrap_or_default();
    println!("saturated fleet answers: {status} ({retry})");
    server.shutdown();

    println!("\nevery number above is also a metric: fleet.* counters and");
    println!("gauges flow through the shared registry into /metrics and the");
    println!("prefall-watch SLOs (shed-rate <= 1%, ingest p99 <= 5 ms).");
    Ok(())
}
