//! Train once, deploy forever: persists a trained detector bundle
//! (weights + normaliser + preprocessing config) to disk and reloads it
//! into a live streaming detector — the workflow a product firmware/app
//! pair would use.
//!
//! ```text
//! cargo run --release --example persist_detector
//! ```

use prefall::core::cv::{subject_folds, train_on_sets, CvConfig};
use prefall::core::detector::{run_on_trial, DetectorConfig, StreamingDetector};
use prefall::core::models::ModelKind;
use prefall::core::persist::DetectorBundle;
use prefall::core::pipeline::{Pipeline, PipelineConfig};
use prefall::imu::dataset::Dataset;
use prefall_core::augment::augment_positives;
use prefall_dsp::segment::Overlap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train a small detector.
    let dataset = Dataset::combined_scaled(2, 2, 51)?;
    let pipeline = Pipeline::new(PipelineConfig::paper(200.0, Overlap::Half))?;
    let full = pipeline.segment_set(dataset.trials());
    let splits = subject_folds(&dataset.subject_ids(), 2, 1, 3)?;
    let split = &splits[0];

    let mut cfg = CvConfig::fast();
    cfg.epochs = 5;
    eprintln!("training...");
    let seed = 21u64;
    let (net, _, _) = train_on_sets(
        &pipeline,
        full.filter_subjects(&split.train),
        full.filter_subjects(&split.val),
        full.filter_subjects(&split.test),
        ModelKind::ProposedCnn,
        &cfg,
        seed,
    )?;
    let mut aug_train = full.filter_subjects(&split.train);
    augment_positives(&mut aug_train, cfg.augment_factor, seed ^ 0xAA99);
    let normalizer = pipeline.fit_normalizer(&aug_train);

    // Persist.
    let mut bundle = DetectorBundle {
        model: ModelKind::ProposedCnn,
        window: pipeline.window(),
        channels: 9,
        init_seed: seed,
        pipeline: *pipeline.config(),
        normalizer,
        network: net,
    };
    let path = std::env::temp_dir().join("prefall_detector.pfdb");
    std::fs::write(&path, bundle.to_bytes())?;
    println!(
        "saved detector bundle: {} ({} KiB)",
        path.display(),
        std::fs::metadata(&path)?.len() / 1024
    );

    // Reload in a "fresh process" and run on an unseen fall.
    let blob = std::fs::read(&path)?;
    let loaded = DetectorBundle::from_bytes(&blob)?;
    println!(
        "reloaded: {} @ {} samples/window, seed {}",
        loaded.model, loaded.window, loaded.init_seed
    );
    let mut detector = StreamingDetector::new(
        loaded.network,
        loaded.normalizer,
        DetectorConfig {
            pipeline: loaded.pipeline,
            // High operating point: the paper tunes for minimal false
            // activations.
            threshold: 0.9,
            consecutive: 1,
            guard: prefall::core::detector::GuardConfig::default(),
        },
    )?;

    let mut shown = 0;
    for trial in dataset
        .trials()
        .iter()
        .filter(|t| split.test.contains(&t.subject) && t.is_fall())
        .take(5)
    {
        let outcome = run_on_trial(&mut detector, trial);
        println!(
            "task {:>2}: trigger {:?}, lead {:?} ms, protected {:?}",
            trial.task.get(),
            outcome.triggered_at,
            outcome.lead_time_ms.map(|m| m.round()),
            outcome.protected
        );
        shown += 1;
    }
    assert!(shown > 0, "no unseen fall trials found");
    Ok(())
}
