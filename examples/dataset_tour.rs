//! A tour of the synthetic dataset substrate: the Table II taxonomy,
//! one subject's recordings, the KFall frame alignment, and a CSV
//! export of an annotated fall you can plot with any tool.
//!
//! ```text
//! cargo run --release --example dataset_tour
//! ```

use prefall::core::phases::phase_durations;
use prefall::imu::activity::{Activity, FallCategory};
use prefall::imu::channel::Channel;
use prefall::imu::csv::write_trial;
use prefall::imu::dataset::Dataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== taxonomy (Table II) ==");
    println!(
        "{} ADLs + {} fall types; fall categories: {} walking, {} sitting, {} standing, {} height",
        Activity::adls().count(),
        Activity::falls().count(),
        Activity::falls()
            .filter(|a| a.fall_category == Some(FallCategory::FromWalking))
            .count(),
        Activity::falls()
            .filter(|a| a.fall_category == Some(FallCategory::FromSitting))
            .count(),
        Activity::falls()
            .filter(|a| a.fall_category == Some(FallCategory::FromStanding))
            .count(),
        Activity::falls()
            .filter(|a| a.fall_category == Some(FallCategory::FromHeight))
            .count(),
    );

    println!("\n== one KFall-like + one self-collected subject ==");
    let ds = Dataset::combined_scaled(1, 1, 2025)?;
    for s in ds.subjects() {
        println!(
            "  {}: {} source, {:.0} cm, {:.0} kg, gait {:.2} Hz — {} trials",
            s.id,
            s.source,
            s.height_cm,
            s.weight_kg,
            s.gait_frequency_hz,
            ds.trials_for_subject(s.id).count()
        );
    }
    let stats = ds.stats();
    println!(
        "  total: {} trials / {} samples; falling fraction {:.2}%",
        stats.trials,
        stats.samples,
        stats.falling_fraction * 100.0
    );

    println!("\n== fall phase structure across categories ==");
    for task in [30u8, 25, 21, 40] {
        let trial = ds
            .trials()
            .iter()
            .find(|t| t.task.get() == task)
            .expect("self-collected subject performs all tasks");
        let d = phase_durations(trial);
        let a = trial.activity();
        println!(
            "  task {:>2} ({:<13}): fall {:>4.0} ms usable + 150 ms budget; peak |a| {:.1} g",
            task,
            format!("{:?}", a.fall_category.unwrap()).to_lowercase(),
            d.falling_ms,
            trial
                .channel(Channel::AccelX)
                .iter()
                .zip(trial.channel(Channel::AccelY))
                .zip(trial.channel(Channel::AccelZ))
                .map(|((x, y), z)| (x * x + y * y + z * z).sqrt())
                .fold(0.0f32, f32::max)
        );
    }

    println!("\n== CSV export ==");
    let fall = ds
        .trials()
        .iter()
        .find(|t| t.is_fall() && t.usable_fall_range().is_some())
        .expect("a usable fall exists");
    let path = std::env::temp_dir().join("prefall_fall_trial.csv");
    let mut file = std::fs::File::create(&path)?;
    write_trial(fall, &mut file)?;
    println!(
        "  wrote {} ({} samples of task {:02}, phase-annotated)",
        path.display(),
        fall.len(),
        fall.task.get()
    );
    println!("  columns: sample, 9 channels, phase ∈ {{pre, falling, inflation, impact, post}}");
    Ok(())
}
