//! Sensor fault injection against the hardened streaming detector:
//! takes one synthetic fall trial, corrupts its sensor bus with the
//! kitchen-sink fault plan at increasing intensity, and shows what the
//! ingest guard caught, which degraded modes it entered, and whether
//! the trial still triggered.
//!
//! Runs in a couple of seconds — the detector uses an untrained (but
//! seeded) network, because the point here is the ingest path, not the
//! classifier.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```

use prefall::core::detector::{DetectorConfig, StreamingDetector};
use prefall::core::models::ModelKind;
use prefall::dsp::stats::Normalizer;
use prefall::faults::{run_on_faulted_trial, FaultPlan};
use prefall::imu::dataset::Dataset;
use prefall::telemetry::NoopRecorder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = Dataset::combined_scaled(1, 1, 7)?;
    let trial = dataset
        .trials()
        .iter()
        .find(|t| t.is_fall())
        .expect("dataset contains falls");
    println!(
        "fall trial: subject {:?}, task {}, {} samples ({} faults composed per plan)",
        trial.subject,
        trial.task,
        trial.len(),
        FaultPlan::kitchen_sink(7).faults().len(),
    );

    let cfg = DetectorConfig::paper_400ms();
    let window = cfg.pipeline.segmentation.window();
    let net = ModelKind::ProposedCnn.build(window, 9, 7)?;
    let mut det = StreamingDetector::new(net, Normalizer::identity(9), cfg)?;

    println!();
    println!("intensity   faults  nonfinite  gaps  stuck  degraded-win  peak-prob");
    for intensity in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let plan = FaultPlan::kitchen_sink(7).scaled(intensity);
        // Fresh counters per intensity so each row stands alone.
        det.set_guard(prefall::core::detector::GuardConfig::default());
        let out = run_on_faulted_trial(&mut det, trial, &plan, &NoopRecorder);
        let s = det.guard_status();
        println!(
            "{intensity:9.2}  {:6}  {:9}  {:4}  {:5}  {:5}/{:<6}  {:.4}",
            s.faults(),
            s.nonfinite,
            s.gaps_filled,
            s.stuck_events,
            s.degraded_windows,
            s.windows,
            out.peak_prob.unwrap_or(f32::NAN),
        );
    }

    println!();
    println!(
        "every probability above is finite: the guard clamps, bridges and \
         masks at the ingest boundary, so the network never sees a NaN."
    );
    Ok(())
}
