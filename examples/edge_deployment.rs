//! Edge deployment walkthrough (§III-D + §IV-C): train the proposed
//! CNN, quantize it to int8, verify accuracy survives, fit it onto two
//! microcontroller targets, and emit the C weight header a firmware
//! build would link.
//!
//! ```text
//! cargo run --release --example edge_deployment
//! ```

use prefall::core::cv::{subject_folds, train_on_sets, CvConfig};
use prefall::core::metrics::{Confusion, TableMetrics};
use prefall::core::models::ModelKind;
use prefall::core::pipeline::{Pipeline, PipelineConfig};
use prefall::imu::dataset::Dataset;
use prefall::mcu::deploy::deploy;
use prefall::mcu::export::to_c_header;
use prefall::mcu::target::McuTarget;
use prefall::nn::quant::QuantizedNetwork;
use prefall::nn::train::predict_proba;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train on a subject-independent split (400 ms, the deployed config).
    let dataset = Dataset::combined_scaled(3, 3, 12)?;
    let pipeline = Pipeline::new(PipelineConfig::paper_400ms())?;
    let full = pipeline.segment_set(dataset.trials());
    let splits = subject_folds(&dataset.subject_ids(), 2, 1, 3)?;
    let split = &splits[0];

    let mut cfg = CvConfig::fast();
    cfg.epochs = 6;
    eprintln!("training the 400 ms proposed CNN...");
    let train_set = full.filter_subjects(&split.train);
    let test_raw = full.filter_subjects(&split.test);
    let test_labels = test_raw.y.clone();
    let (mut net, _, _) = train_on_sets(
        &pipeline,
        train_set.clone(),
        full.filter_subjects(&split.val),
        test_raw.clone(),
        ModelKind::ProposedCnn,
        &cfg,
        17,
    )?;

    // 2. Post-training int8 quantization, calibrated on training data.
    let norm = pipeline.fit_normalizer(&train_set);
    let calib: Vec<Vec<f32>> = train_set
        .x
        .iter()
        .take(200)
        .map(|x| norm.apply(x))
        .collect();
    let test_x: Vec<Vec<f32>> = test_raw.x.iter().map(|x| norm.apply(x)).collect();
    let qnet = QuantizedNetwork::from_network(&mut net, &calib)?;

    let float_probs = predict_proba(&mut net, &test_x);
    let quant_probs: Vec<f32> = test_x.iter().map(|x| qnet.predict_proba(x)).collect();
    let fm = TableMetrics::from_confusion(&Confusion::from_probs(&float_probs, &test_labels, 0.5));
    let qm = TableMetrics::from_confusion(&Confusion::from_probs(&quant_probs, &test_labels, 0.5));
    println!("float model  (Acc/Prec/Rec/F1 %): {fm}");
    println!("int8  model  (Acc/Prec/Rec/F1 %): {qm}");
    println!(
        "model blob: {} weights → {:.2} KiB int8 flash payload",
        net.param_count(),
        qnet.weight_bytes() as f64 / 1024.0
    );
    println!();

    // 3. Fit onto targets.
    for target in [McuTarget::stm32f722(), McuTarget::stm32l432()] {
        match deploy(&qnet, &target, 40, 9) {
            Ok(d) => {
                println!("{d}");
                println!(
                    "  hop deadline (200 ms): {}",
                    if d.meets_deadline(200.0) {
                        "met"
                    } else {
                        "MISSED"
                    }
                );
            }
            Err(e) => println!("deployment on {} failed: {e}", target.name),
        }
        println!();
    }

    // 4. Emit the firmware artifact.
    let header = to_c_header(&qnet, "prefall_model");
    let out = std::env::temp_dir().join("prefall_model.h");
    std::fs::write(&out, &header)?;
    println!(
        "wrote {} ({} KiB) — link it into the STM32 firmware image",
        out.display(),
        header.len() / 1024
    );
    Ok(())
}
