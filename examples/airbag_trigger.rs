//! The motivating scenario: a wearable airbag jacket driven by the
//! streaming detector. Trains the proposed CNN on a group of subjects,
//! then streams *unseen* subjects' trials sample-by-sample through the
//! real-time detector and the 150 ms airbag model, reporting trigger
//! lead times, protection rate, and false activations.
//!
//! ```text
//! cargo run --release --example airbag_trigger
//! ```

use prefall::blackbox::{armed_detector_from_bundle, replay, FlightConfig, IncidentKind};
use prefall::core::cv::{subject_folds, train_on_sets, CvConfig};
use prefall::core::detector::run_on_trial;
use prefall::core::models::ModelKind;
use prefall::core::persist::DetectorBundle;
use prefall::core::pipeline::{Pipeline, PipelineConfig};
use prefall::imu::dataset::{Dataset, DatasetConfig};
use prefall::nn::network::BranchStat;
use prefall_core::augment::augment_positives;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Data and pipeline (200 ms windows keep the example fast while
    //    still leaving the airbag a realistic reaction budget).
    let dataset = Dataset::generate(&DatasetConfig {
        kfall_subjects: 2,
        self_collected_subjects: 3,
        trials_per_task: 1,
        duration_scale: 0.5,
        seed: 99,
    })?;
    let pipeline = Pipeline::new(PipelineConfig::paper(
        200.0,
        prefall_dsp::segment::Overlap::Half,
    ))?;

    // 2. Subject-independent split: last fold's subjects are the wearers.
    let splits = subject_folds(&dataset.subject_ids(), 2, 1, 5)?;
    let split = &splits[0];
    let full = pipeline.segment_set(dataset.trials());

    let mut cfg = CvConfig::fast();
    cfg.epochs = 6;
    eprintln!("training on {} subjects...", split.train.len());
    let (net, _, _) = train_on_sets(
        &pipeline,
        full.filter_subjects(&split.train),
        full.filter_subjects(&split.val),
        full.filter_subjects(&split.test),
        ModelKind::ProposedCnn,
        &cfg,
        31,
    )?;

    // The streaming detector needs the same normaliser used in training.
    let mut train_set = full.filter_subjects(&split.train);
    augment_positives(&mut train_set, cfg.augment_factor, 31 ^ 0xAA99);
    let norm = pipeline.fit_normalizer(&train_set);

    // Bundle the trained detector and deploy it with the flight
    // recorder armed: every trigger (and every missed fall) freezes
    // the last seconds of raw input, guard state and per-branch score
    // attribution into a replayable incident dump.
    let mut bundle = DetectorBundle {
        model: ModelKind::ProposedCnn,
        window: pipeline.window(),
        channels: 9,
        init_seed: 31,
        pipeline: *pipeline.config(),
        normalizer: norm,
        network: net,
    };
    let blob = bundle.to_bytes();
    let (mut detector, flight) = armed_detector_from_bundle(
        &blob,
        // High operating point: the paper tunes for minimal false
        // activations.
        0.9,
        1,
        prefall::core::detector::GuardConfig::default(),
        FlightConfig::default(),
    )?;

    // 3. Stream the unseen wearers' trials.
    println!("== streaming unseen subjects through detector + airbag (inflation 150 ms) ==");
    let mut falls = 0usize;
    let mut protected = 0usize;
    let mut lead_times = Vec::new();
    let mut adls = 0usize;
    let mut false_activations = 0usize;

    for trial in dataset
        .trials()
        .iter()
        .filter(|t| split.test.contains(&t.subject))
    {
        let outcome = run_on_trial(&mut detector, trial);
        if trial.is_fall() {
            falls += 1;
            if outcome.protected == Some(true) {
                protected += 1;
            }
            if let Some(ms) = outcome.lead_time_ms {
                lead_times.push(ms);
                println!(
                    "  task {:>2} ({:<9}): trigger {:>4.0} ms before impact → {}",
                    trial.task.get(),
                    format!("{:?}", trial.activity().fall_category.unwrap()).to_lowercase(),
                    ms,
                    if outcome.protected == Some(true) {
                        "protected"
                    } else {
                        "TOO LATE"
                    }
                );
            } else {
                println!("  task {:>2}: fall MISSED", trial.task.get());
            }
        } else {
            adls += 1;
            if outcome.false_activation {
                false_activations += 1;
                println!(
                    "  task {:>2} (ADL): FALSE ACTIVATION at {} ms",
                    trial.task.get(),
                    outcome.triggered_at.unwrap_or(0) * 10
                );
            }
        }
    }

    println!();
    println!(
        "falls: {falls}; airbag fully inflated before impact: {protected} ({:.0}%)",
        protected as f64 / falls.max(1) as f64 * 100.0
    );
    if !lead_times.is_empty() {
        let mean = lead_times.iter().sum::<f64>() / lead_times.len() as f64;
        println!("mean trigger lead time: {mean:.0} ms (airbag needs 150 ms)");
    }
    println!(
        "ADL trials: {adls}; false activations: {false_activations} ({:.1}%)",
        false_activations as f64 / adls.max(1) as f64 * 100.0
    );

    // 4. Forensics: the flight recorder dumped an incident for every
    //    trigger and every missed fall. Walk the decision trace of the
    //    most interesting one — which modality branch drove the score,
    //    window by window, up to the firing decision.
    println!();
    println!(
        "== flight recorder: {} incident(s) captured ==",
        flight.incident_count()
    );
    let dump = flight
        .incidents()
        .into_iter()
        .find(|d| d.kind == IncidentKind::Trigger)
        .or_else(|| flight.latest());
    if let Some(dump) = dump {
        println!(
            "incident {} ({}): {} samples, {} windows, config {:016x}, model {:016x}",
            dump.id,
            dump.kind.name(),
            dump.samples.len(),
            dump.windows.len(),
            dump.config_hash(),
            dump.model_hash()
        );
        if let Some(ms) = dump.lead_time_ms {
            println!("trigger lead time in dump: {ms:.0} ms");
        }
        println!("decision trace (accel / gyro / euler branch shares):");
        for w in dump
            .windows
            .iter()
            .rev()
            .take(5)
            .collect::<Vec<_>>()
            .iter()
            .rev()
        {
            let shares = BranchStat::shares(w.attribution());
            let pct: Vec<String> = shares
                .iter()
                .map(|s| format!("{:>3.0}%", s * 100.0))
                .collect();
            println!(
                "  sample {:>5}: score {:.3} [{}]{}",
                w.at_sample,
                w.score,
                pct.join(" / "),
                if w.decision() { "  ← TRIGGER" } else { "" }
            );
        }

        // The dump is self-contained: persist it, reload it, and
        // re-run the incident bit-exactly.
        let path = std::env::temp_dir().join("prefall_incident.pfbb");
        std::fs::write(&path, dump.to_bytes())?;
        let reloaded = prefall::blackbox::IncidentDump::from_bytes(&std::fs::read(&path)?)?;
        match replay(&reloaded) {
            Ok(report) => println!(
                "replayed {} from {}: bit_exact={} over {} windows",
                dump.id,
                path.display(),
                report.bit_exact,
                report.windows_compared
            ),
            Err(e) => println!("replay unavailable: {e}"),
        }
    }
    Ok(())
}
