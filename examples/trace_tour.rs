//! Tour of `prefall-trace`: arm the always-on timeline tracer, run a
//! real experiment grid over the worker pool, drain the per-thread
//! rings into a Chrome trace you can open in Perfetto, fold the same
//! timeline into a wall-clock attribution report, and measure what
//! arming costs on the streaming detector's real-time path.
//!
//! ```text
//! cargo run --release --example trace_tour
//! ```

use prefall::core::detector::{DetectorConfig, GuardConfig, StreamingDetector};
use prefall::core::experiment::{Experiment, ExperimentConfig};
use prefall::core::models::ModelKind;
use prefall::dsp::stats::Normalizer;
use prefall::telemetry::NoopRecorder;
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Arming is global and cheap to leave off: disarmed, every
    //    tracing entry point is one relaxed atomic load. Arm allocates
    //    one fixed ring per traced thread (here 64k events each) —
    //    after that, recording a span is allocation-free.
    println!("== 1. arm, trace, drain ==");
    prefall::trace::arm(1 << 16);
    let step = prefall::trace::intern("tour.step");
    for _ in 0..3 {
        let _span = prefall::trace::trace_span!(step);
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    prefall::trace::disarm();
    let timeline = prefall::trace::drain();
    println!(
        "  drained {} events from {} thread(s), {} dropped to wraparound",
        timeline.event_count(),
        timeline.threads.len(),
        timeline.dropped()
    );

    // 2. A real workload: the experiment grid fans cells and CV folds
    //    out over the prefall-par pool, and every layer is already
    //    instrumented — pool tasks, steals, the fork-join barrier,
    //    experiment cells, folds, the preprocessing cache, and (in
    //    detail mode) each kernel of the forward pass.
    println!("\n== 2. trace an experiment grid across the worker pool ==");
    let mut config = ExperimentConfig::fast();
    config.threads = Some(2);
    prefall::trace::arm(1 << 16);
    let report = Experiment::new(config).run_recorded(&NoopRecorder)?;
    prefall::trace::disarm();
    let timeline = prefall::trace::drain();
    println!(
        "  {} grid cell(s) traced into {} events on {} threads",
        report.cells.len(),
        timeline.event_count(),
        timeline.threads.len()
    );

    // 3. The same drained timeline renders two ways. Chrome trace-event
    //    JSON is the visual one: load it at https://ui.perfetto.dev (or
    //    chrome://tracing) and scrub through every worker's lane.
    println!("\n== 3. render to Chrome trace JSON (Perfetto) ==");
    let chrome = timeline.to_chrome_json();
    let path = std::env::temp_dir().join("prefall_trace_tour.json");
    std::fs::write(&path, &chrome)?;
    println!(
        "  wrote {} ({} bytes) — open it at https://ui.perfetto.dev",
        path.display(),
        chrome.len()
    );

    // 4. The attribution report is the analytical one: per span name,
    //    total time, self time (minus instrumented children) and span
    //    count, merged across threads.
    println!("\n== 4. wall-clock attribution ==");
    let attr = timeline.attribution();
    println!(
        "  window spans {:.1} ms of wall clock",
        attr.wall_ns as f64 / 1e6
    );
    for (name, agg) in attr.by_total().into_iter().take(6) {
        println!(
            "  {name:<22} total {:>9.2} ms  self {:>9.2} ms  ×{}",
            agg.total_ns as f64 / 1e6,
            agg.self_ns as f64 / 1e6,
            agg.count
        );
    }

    // 5. The drained trace can be served live next to /metrics: the
    //    obsd server's /trace endpoint returns whatever was last stored
    //    (the prefall-profile bench does exactly this).
    println!("\n== 5. serve the trace over HTTP ==");
    let store = Arc::new(prefall::trace::LastTrace::new());
    store.store(chrome);
    let server = prefall::obsd::MetricsServer::start_full(
        "127.0.0.1:0",
        Arc::new(prefall::telemetry::Registry::new()),
        prefall::obsd::ServerConfig::default(),
        None,
        Some(store),
    )?;
    println!("  curl {}/trace > trace.json", server.url());

    // 6. What does arming cost where it matters — the streaming
    //    detector's real-time path? Coarse mode adds one whole-pass
    //    span per classified window (the ≤ 3 % budget CI gates via
    //    prefall-profile); detail mode adds a span per kernel and is
    //    opt-in for exactly that reason.
    println!("\n== 6. arming cost on the streaming path ==");
    let det_cfg = DetectorConfig {
        pipeline: prefall::core::pipeline::PipelineConfig::paper_400ms(),
        threshold: 1.1, // never trigger: measure pure classification
        consecutive: 1,
        guard: GuardConfig::default(),
    };
    let window = det_cfg.pipeline.segmentation.window();
    let net = ModelKind::ProposedCnn.build(window, 9, 1)?;
    let mut det = StreamingDetector::new(net, Normalizer::identity(9), det_cfg)?;
    for _ in 0..2 * window {
        let _ = det.push_sample([0.01, -0.02, 1.0], [0.0, 0.1, 0.0]);
    }
    let mut time_windows = |n: usize| {
        let mut total = 0.0f64;
        let mut done = 0usize;
        while done < n {
            let t0 = Instant::now();
            let p = det.push_sample([0.01, -0.02, 1.0], [0.0, 0.1, 0.0]);
            let dt = t0.elapsed().as_secs_f64();
            if p.is_some() {
                total += dt;
                done += 1;
            }
        }
        total / n as f64
    };
    prefall::trace::disarm();
    let off = time_windows(32);
    prefall::trace::arm(1 << 12);
    let coarse = time_windows(32);
    prefall::trace::set_detail(true);
    let detail = time_windows(32);
    prefall::trace::disarm();
    let _ = prefall::trace::drain();
    println!("  disarmed {:7.1} µs/window", off * 1e6);
    println!(
        "  coarse   {:7.1} µs/window (nn.infer span only — gated ≤ 3 %)",
        coarse * 1e6
    );
    println!(
        "  detail   {:7.1} µs/window (span per kernel — opt-in)",
        detail * 1e6
    );
    println!("\nfull report: cargo run --release -p prefall-bench --bin prefall-profile");
    Ok(())
}
