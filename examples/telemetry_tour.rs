//! Tour of `prefall-telemetry`: recorders, RAII spans, counters, gauges,
//! latency histograms, the mergeable registry snapshot, the rendered
//! summary table, the JSONL event stream — first hand-rolled, then
//! attached to a real instrumented experiment — then the
//! `prefall-obsd` exporter serving it all over HTTP, the flight
//! recorder's incident forensics, watch SLO burn-rate alerting, and
//! label-free drift fingerprints scoring a live stream against a
//! committed reference.
//!
//! ```text
//! cargo run --release --example telemetry_tour
//! ```

use prefall::core::experiment::{Experiment, ExperimentConfig};
use prefall::telemetry::{
    summary, FanoutRecorder, JsonValue, JsonlRecorder, Recorder, Registry, Snapshot, Span, Value,
};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A Registry is a Recorder that aggregates in memory. Histograms
    //    need their bucket layout registered up front; counters and
    //    gauges spring into existence on first use.
    println!("== 1. manual instrumentation ==");
    let registry = Arc::new(Registry::new());
    registry.register_histogram("tour.step_seconds", vec![1e-6, 1e-5, 1e-4, 1e-3, 1e-2]);

    for step in 0..100u64 {
        // A span times its scope and observes into the histogram of the
        // same name when dropped (or on an explicit `finish()`).
        let span = Span::enter(registry.as_ref(), "tour.step_seconds");
        let spin = (0..step * 50).map(|i| (i as f64).sqrt()).sum::<f64>();
        registry.gauge_set("tour.last_spin", spin);
        registry.counter_add("tour.steps", 1);
        span.finish();
    }
    print!("{}", summary::render(&registry.snapshot()));

    // 2. Snapshots merge associatively, so per-fold or per-thread
    //    registries can be combined after the fact.
    println!("\n== 2. snapshot merging ==");
    let other = Registry::new();
    other.register_histogram("tour.step_seconds", vec![1e-6, 1e-5, 1e-4, 1e-3, 1e-2]);
    other.observe("tour.step_seconds", 2e-4);
    other.counter_add("tour.steps", 1);
    let merged: Snapshot = registry.snapshot().merge(&other.snapshot());
    println!(
        "merged steps = {} (100 + 1), merged histogram count = {}",
        merged.counters["tour.steps"], merged.histograms["tour.step_seconds"].count
    );

    // 3. Recorders fan out: aggregate into a registry AND stream events
    //    as JSONL at the same time. The same fanout powers
    //    PREFALL_TELEMETRY_JSONL=<path> on every binary in this repo.
    println!("\n== 3. instrumented experiment with fanout + JSONL ==");
    let jsonl_path = std::env::temp_dir().join("prefall_telemetry_tour.jsonl");
    let jsonl = Arc::new(JsonlRecorder::new(std::fs::File::create(&jsonl_path)?));
    let run_registry = Arc::new(Registry::new());
    let rec = FanoutRecorder::new(vec![
        run_registry.clone() as Arc<dyn Recorder>,
        jsonl.clone() as Arc<dyn Recorder>,
    ]);
    rec.event(
        "tour.start",
        &[
            ("config", Value::from("fast")),
            ("cells", Value::from(1u64)),
        ],
    );

    let report = Experiment::new(ExperimentConfig::fast()).run_recorded(&rec)?;
    let cell = &report.cells[0];
    println!(
        "experiment done: {} @ {:.0} ms window, F1 {:.2}%",
        cell.model.name(),
        cell.window_ms,
        cell.metrics.f1
    );
    print!("{}", summary::render(&run_registry.snapshot()));

    // 3b. That experiment fanned its grid cells and CV folds out over
    //     the `prefall-par` work-stealing scheduler, and each task
    //     recorded into a *private* registry: counters, gauges and
    //     histograms are merged back into the outer recorder in
    //     task-index order when the task joins (only events stream
    //     live), so the snapshot above is deterministic for any
    //     PREFALL_THREADS — the same associative Snapshot::merge from
    //     section 2, applied automatically. The scheduler and the
    //     preprocessing cache publish their own counters into the same
    //     snapshot. Reading the par.* story:
    //
    //     * `par.tasks_coarsened` / `par.chunk_size` — how many tiny
    //       tasks were batched into ~250 µs chunks, and the last chunk
    //       size the calibrated cost estimate picked. If coarsening is
    //       near zero on a big grid, the cost estimate is broken and
    //       per-task overhead is eating the speedup.
    //     * `par.local_pops` vs `par.tasks_stolen` — deque traffic
    //       split into cache-friendly owner pops and cross-worker
    //       steals. Healthy runs are overwhelmingly local; stolen > 0
    //       shows balancing actually happens.
    //     * `par.maps_inline` — maps the scheduler refused to split
    //       because the whole map costs less than a split would. Only
    //       genuinely small maps should land here.
    //     * `par.parks` / `par.unparks` — workers sleeping between
    //       sessions instead of spinning (each also emits a trace
    //       instant on the prefall-trace timeline).
    println!("\n== 3b. per-worker telemetry, merged after join ==");
    let snap = run_registry.snapshot();
    for key in [
        "par.maps",
        "par.maps_inline",
        "par.tasks",
        "par.tasks_coarsened",
        "par.local_pops",
        "par.tasks_stolen",
        "par.workers_spawned",
        "cache.hits",
        "cache.misses",
        "cv.folds",
    ] {
        if let Some(v) = snap.counters.get(key) {
            println!("  {key:<22} {v}");
        }
    }
    if let Some(v) = snap.gauges.get("par.chunk_size") {
        println!("  {:<22} {v}", "par.chunk_size");
    }
    println!("  (results are bit-identical for any worker count — crates/core/tests/thread_determinism.rs)");

    // 4. The JSONL stream round-trips through the bundled parser.
    println!("\n== 4. JSONL event stream ({}) ==", jsonl_path.display());
    let text = std::fs::read_to_string(&jsonl_path)?;
    for line in text.lines().take(3) {
        let doc = JsonValue::parse(line)?;
        println!(
            "  t={:>8.3}s  {}",
            doc.get("t").and_then(JsonValue::as_f64).unwrap_or(f64::NAN),
            doc.get("event").map_or_else(String::new, |e| e.to_string()),
        );
    }
    println!("  ... {} events total", text.lines().count());

    // 5. The obsd exporter serves any registry live: /metrics in
    //    Prometheus text format, /healthz against the 150 ms lead-time
    //    budget, /snapshot as JSON. Port 0 picks a free port; set
    //    PREFALL_METRICS_ADDR on the bench binaries for the same thing.
    println!("\n== 5. live metrics endpoint ==");
    let server = prefall::obsd::MetricsServer::start(
        "127.0.0.1:0",
        run_registry.clone(),
        prefall::obsd::ServerConfig::default(),
    )?;
    println!(
        "serving {} — e.g. curl {}/metrics",
        server.url(),
        server.url()
    );
    let body = {
        use std::io::{Read, Write};
        let mut s = std::net::TcpStream::connect(server.addr())?;
        write!(
            s,
            "GET /metrics HTTP/1.1\r\nHost: tour\r\nConnection: close\r\n\r\n"
        )?;
        let mut r = String::new();
        s.read_to_string(&mut r)?;
        r.split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default()
    };
    for line in body
        .lines()
        .filter(|l| l.contains("train_epoch_seconds"))
        .take(6)
    {
        println!("  {line}");
    }
    println!("  ... {} exposition lines total", body.lines().count());

    // 6. Forensics walkthrough: arm a detector with the flight
    //    recorder, stream a faulted fall trial, and work one incident
    //    from HTTP listing to bit-exact replay — the workflow after a
    //    real deployment fires (or fails to).
    println!("\n== 6. flight recorder & incident replay ==");
    let det_cfg = prefall::core::detector::DetectorConfig::paper_400ms();
    let window = det_cfg.pipeline.segmentation.window();
    let mut bundle = prefall::core::persist::DetectorBundle {
        model: prefall::core::models::ModelKind::ProposedCnn,
        window,
        channels: 9,
        init_seed: 7,
        pipeline: det_cfg.pipeline,
        normalizer: prefall::dsp::stats::Normalizer::identity(9),
        network: prefall::core::models::ModelKind::ProposedCnn.build(window, 9, 7)?,
    };
    let (mut detector, flight) = prefall::blackbox::armed_detector_from_bundle(
        &bundle.to_bytes(),
        0.5,
        1,
        prefall::core::detector::GuardConfig::default(),
        prefall::blackbox::FlightConfig::default(),
    )?;
    detector.set_recorder(run_registry.clone());
    flight.set_recorder(run_registry.clone());

    // Stream one fall trial through dropout + NaN bursts; the trigger
    // (or the miss) freezes the rings into an incident dump.
    let dataset = prefall::imu::dataset::Dataset::combined_scaled(1, 1, 7)?;
    let trial = dataset
        .trials()
        .iter()
        .find(|t| t.is_fall())
        .expect("dataset has falls");
    let plan = prefall::faults::FaultPlan::dropout_nan(7, 0.05, 0.01, 5);
    prefall::faults::run_on_faulted_trial(&mut detector, trial, &plan, run_registry.as_ref());

    // The same dumps are served over HTTP next to /metrics: attach the
    // handle as the server's incident source.
    let forensics = prefall::obsd::MetricsServer::start_with_incidents(
        "127.0.0.1:0",
        run_registry.clone(),
        prefall::obsd::ServerConfig::default(),
        Some(Arc::new(flight.clone())),
    )?;
    println!(
        "incidents served at {}/incidents (and /incidents/<id>)",
        forensics.url()
    );

    let dump = flight.latest().expect("fall trial produced an incident");
    println!(
        "incident {} ({}): {} samples, {} windows, guard caught {} faults",
        dump.id,
        dump.kind.name(),
        dump.samples.len(),
        dump.windows.len(),
        dump.guard.faults()
    );
    // Decision trace: score + per-branch attribution, window by window.
    for w in dump
        .windows
        .iter()
        .rev()
        .take(3)
        .collect::<Vec<_>>()
        .iter()
        .rev()
    {
        let shares = prefall::nn::network::BranchStat::shares(w.attribution());
        println!(
            "  sample {:>5}: score {:.3}, branch shares {:?}{}",
            w.at_sample,
            w.score,
            shares
                .iter()
                .map(|s| (s * 100.0).round())
                .collect::<Vec<_>>(),
            if w.decision() { "  ← TRIGGER" } else { "" }
        );
    }
    // And the punchline: the dump is self-contained, so the incident
    // re-runs bit-exactly anywhere.
    let report = prefall::blackbox::replay(&dump)?;
    println!(
        "replay: bit_exact={} trigger_match={} over {} windows",
        report.bit_exact, report.trigger_match, report.windows_compared
    );

    // 7. Spans vs. trace events — the two time lenses in this repo.
    //    A telemetry `Span` observes one scope's duration into a
    //    histogram: an *aggregate* answer (p50/p95 over thousands of
    //    runs, cheap enough to leave on, what benchdiff gates). A
    //    `prefall::trace` span writes begin/end events onto a
    //    *timeline*: an individual answer (where did THIS millisecond
    //    go, interleaved across threads, rendered in Perfetto). Same
    //    scope, both lenses at once:
    println!("\n== 7. spans (histograms) vs trace events (timelines) ==");
    prefall::trace::arm(4096);
    {
        let _telemetry = Span::enter(registry.as_ref(), "tour.step_seconds");
        let _trace = prefall::trace::trace_span!(prefall::trace::intern("tour.work"));
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    prefall::trace::disarm();
    let timeline = prefall::trace::drain();
    let agg = timeline.attribution().total("tour.work");
    println!(
        "  histogram lens: tour.step_seconds count is now {}",
        registry.snapshot().histograms["tour.step_seconds"].count
    );
    println!(
        "  timeline lens : tour.work ran {} time(s) for {:.2} ms (drains to Chrome JSON)",
        agg.count,
        agg.total_ns as f64 / 1e6
    );
    println!("  full tour     : cargo run --release --example trace_tour");

    // 8. The watch layer: a ring-buffer time-series store samples the
    //    registry, SLOs evaluate as multi-window burn rates, and alert
    //    transitions flow back into telemetry, /healthz, and (for
    //    quality SLOs) the blackbox. Driven here on a virtual clock so
    //    the whole fire → refractory → resolve lifecycle plays out in
    //    milliseconds of wall time; `watch.spawn()` runs the same loop
    //    against the wall clock in production.
    println!("\n== 8. watch: SLO burn-rate alerting ==");
    let watched = Arc::new(Registry::new());
    let watch = Arc::new(prefall::watch::Watch::new(
        watched.clone(),
        prefall::watch::WatchConfig {
            store: prefall::watch::StoreConfig::default(),
            slos: vec![prefall::watch::SloSpec::new(
                "fa_rate",
                prefall::watch::SloObjective::CounterRateCeiling {
                    counter: "detector.false_activations".into(),
                    per_seconds: 3600.0,
                    max: 30.0, // the paper's ≤30 false activations/hour
                },
            )
            .windows(60.0, 15.0)
            .burn(2.0, 1.0)
            .hold(30.0, 15.0)],
            alert_log_cap: 16,
        },
    ));
    watched.counter_add("detector.false_activations", 0);
    for t in 0..240u64 {
        // Scripted stream: healthy for a minute, a false-activation
        // storm for the next, then healthy again.
        if (60..120).contains(&t) {
            watched.counter_add("detector.false_activations", 1);
        }
        watch.tick_at(t as f64);
    }
    for a in watch.alerts() {
        println!(
            "  t={:>3.0}s  {} {} (short-window burn {:.1}x)",
            a.at,
            a.slo,
            if a.fired { "FIRED" } else { "resolved" },
            a.burn_short.unwrap_or(f64::NAN)
        );
    }

    // The same state is queryable over HTTP: attach the watch as the
    // server's WatchSource and /tsdb, /slo, /alerts go live (and a
    // firing SLO would flip /healthz to 503, naming itself).
    let slo_server = prefall::obsd::MetricsServer::start_with_watch(
        "127.0.0.1:0",
        watched.clone(),
        prefall::obsd::ServerConfig::default(),
        None,
        None,
        Some(watch.clone() as Arc<dyn prefall::obsd::WatchSource>),
    )?;
    let slo_body = {
        use std::io::{Read, Write};
        let mut s = std::net::TcpStream::connect(slo_server.addr())?;
        write!(
            s,
            "GET /slo HTTP/1.1\r\nHost: tour\r\nConnection: close\r\n\r\n"
        )?;
        let mut r = String::new();
        s.read_to_string(&mut r)?;
        r.split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default()
    };
    let slo_doc = JsonValue::parse(slo_body.trim())?;
    let fa = match &slo_doc {
        JsonValue::Arr(slos) => slos.first(),
        _ => None,
    }
    .expect("one SLO configured");
    println!(
        "  {}/slo → fa_rate fired {} time(s), firing now: {}",
        slo_server.url(),
        fa.get("times_fired")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0),
        fa.get("firing")
            .and_then(JsonValue::as_bool)
            .unwrap_or(true),
    );

    // 9. Drift: label-free model & data health. Accuracy needs labels,
    //    and a deployed fall detector has none — so instead a
    //    `DriftMonitor` taps the streaming detector and folds every
    //    accepted sample, window score and branch attribution into
    //    integer-quantized sketches (a *fingerprint*: fixed-size,
    //    mergeable, bit-deterministic). The live view is scored
    //    against a reference fingerprint with PSI (population
    //    stability index — how much the binned distribution moved) and
    //    quantile shift (how far the deciles slid), published as
    //    `drift.*` gauges.
    println!("\n== 9. drift: label-free model & data health ==");
    let drift_detector =
        || -> Result<prefall::core::detector::StreamingDetector, Box<dyn std::error::Error>> {
            let cfg = prefall::core::detector::DetectorConfig::paper_400ms();
            let window = cfg.pipeline.segmentation.window();
            Ok(prefall::core::detector::StreamingDetector::new(
                prefall::core::models::ModelKind::ProposedCnn.build(window, 9, 7)?,
                prefall::dsp::stats::Normalizer::identity(9),
                cfg,
            )?)
        };
    let motion = |t: u64| -> ([f32; 3], [f32; 3]) {
        let x = t as f32 * 0.07;
        (
            [0.02 * x.sin(), -0.03 * (x * 0.9).cos(), 1.0],
            [6.0 * (x * 1.3).sin(), -4.0 * x.cos(), 1.5 * (x * 0.4).sin()],
        )
    };

    // The reference: stream healthy motion through a monitored
    // detector and export its lifetime fingerprint. Everything is
    // seeded and integer-binned, so a rebuild is byte-identical — the
    // repo commits one as ci/drift_reference.pfdf and CI re-derives it
    // (`prefall-fingerprint verify`).
    let build_reference = || -> Result<prefall::drift::Fingerprint, Box<dyn std::error::Error>> {
        let mut det = drift_detector()?;
        let handle = prefall::drift::DriftMonitor::install(&mut det, Default::default());
        for t in 0..2000u64 {
            let (a, g) = motion(t);
            let _ = det.push_sample(a, g);
        }
        Ok(handle.fingerprint())
    };
    let reference = build_reference()?;
    assert_eq!(
        reference.to_bytes(),
        build_reference()?.to_bytes(),
        "fingerprints are bit-deterministic"
    );
    println!(
        "  reference: {} samples, {} windows, {} bytes serialized (rebuild is byte-identical)",
        reference.samples(),
        reference.windows(),
        reference.to_bytes().len()
    );

    // A live monitor scoring against that reference: the same motion
    // distribution stays quiet...
    let mut live_det = drift_detector()?;
    let live = prefall::drift::DriftMonitor::install(&mut live_det, Default::default());
    live.set_recorder(watched.clone());
    live.set_reference(reference.clone());
    for t in 0..2000u64 {
        let (a, g) = motion(t);
        let _ = live_det.push_sample(a, g);
    }
    let quiet = live.publish_now().expect("reference set, so scored");
    println!(
        "  matching stream : input PSI {:.4}, score shift {:.4} → alarmed: {}",
        quiet.input_psi,
        quiet.score_shift,
        live.alarmed()
    );

    // ...and a degraded sensor (gyro railed at +30 rad/s) alarms, with
    // no labels involved.
    let mut railed_det = drift_detector()?;
    let railed = prefall::drift::DriftMonitor::install(&mut railed_det, Default::default());
    railed.set_reference(reference);
    for t in 0..2000u64 {
        let (a, _) = motion(t);
        let _ = railed_det.push_sample(a, [30.0, 30.0, 30.0]);
    }
    let loud = railed.publish_now().expect("scored");
    println!(
        "  railed gyro     : input PSI {:.4}, score shift {:.4} → alarmed: {}",
        loud.input_psi,
        loud.score_shift,
        railed.alarmed()
    );

    // The gauges close the loop with section 8: the production
    // WatchConfig carries input_drift (mean drift.input_psi ≤ 0.25)
    // and score_drift (mean drift.score_shift ≤ 0.15) quality SLOs,
    // so sustained drift burns through the budget, flips /healthz, and
    // captures a blackbox incident — the chain the `prefall-drift`
    // bench replays end to end. The same state is served over HTTP:
    // a DriftHandle is a DriftSource, and the fleet registry serves
    // per-tenant views at /drift?tenant=<id>.
    let drift_server = prefall::obsd::MetricsServer::start_with_drift(
        "127.0.0.1:0",
        watched.clone(),
        prefall::obsd::ServerConfig::default(),
        None,
        None,
        None,
        None,
        Some(Arc::new(live.clone()) as Arc<dyn prefall::obsd::DriftSource>),
    )?;
    let drift_body = {
        use std::io::{Read, Write};
        let mut s = std::net::TcpStream::connect(drift_server.addr())?;
        write!(
            s,
            "GET /drift HTTP/1.1\r\nHost: tour\r\nConnection: close\r\n\r\n"
        )?;
        let mut r = String::new();
        s.read_to_string(&mut r)?;
        r.split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default()
    };
    let drift_doc = JsonValue::parse(drift_body.trim())?;
    println!(
        "  {}/drift → samples {}, input_psi {:.4}, alarm {}",
        drift_server.url(),
        drift_doc
            .get("samples")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0),
        drift_doc
            .get("input_psi")
            .and_then(JsonValue::as_f64)
            .unwrap_or(f64::NAN),
        drift_doc
            .get("alarm")
            .and_then(JsonValue::as_bool)
            .unwrap_or(true),
    );
    Ok(())
}
