//! Quickstart: the full methodology of Fig. 2 in one binary —
//! data acquisition (synthetic substrate) → preprocessing → training
//! with subject-independent CV → segment-level metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use prefall::core::experiment::{Experiment, ExperimentConfig};
use prefall::core::models::ModelKind;
use prefall::core::pipeline::{Pipeline, PipelineConfig};
use prefall::imu::dataset::Dataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== 1. data acquisition (synthetic KFall-like + self-collected-like) ==");
    let dataset = Dataset::combined_scaled(2, 2, 7)?;
    let stats = dataset.stats();
    println!(
        "   {} subjects, {} trials ({} falls), {:.1} s of data, {:.2}% falling samples",
        dataset.subjects().len(),
        stats.trials,
        stats.fall_trials,
        stats.samples as f64 / 100.0,
        stats.falling_fraction * 100.0
    );

    println!("== 2. preprocessing (Butterworth 4th order 5 Hz, segmentation, 150 ms guard) ==");
    let pipeline = Pipeline::new(PipelineConfig::paper_400ms())?;
    let segments = pipeline.segment_set(dataset.trials());
    println!(
        "   {} segments of {}×{} ({} falling, prior {:.3})",
        segments.len(),
        segments.window,
        segments.channels,
        segments.positives(),
        segments.positive_prior()
    );

    println!("== 3. training the proposed CNN (subject-independent CV) ==");
    let config = ExperimentConfig::fast();
    let report = Experiment::new(config).run()?;
    let cell = report
        .cell(ModelKind::ProposedCnn, 200.0)
        .expect("fast config evaluates the CNN at 200 ms");
    println!(
        "   fold-mean Accuracy {:.2}%  Precision {:.2}%  Recall {:.2}%  F1 {:.2}% (macro)",
        cell.metrics.accuracy, cell.metrics.precision, cell.metrics.recall, cell.metrics.f1
    );
    for fold in &cell.cv.folds {
        println!(
            "   fold {}: {} test segments, {} epochs, F1 {:.2}%",
            fold.fold,
            fold.predictions.len(),
            fold.epochs_run,
            fold.metrics.f1
        );
    }

    println!(
        "== done — see `cargo run --release -p prefall-bench --bin table3` for the full grid =="
    );
    Ok(())
}
