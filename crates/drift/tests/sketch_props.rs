//! Property tests for the drift sketches: merge is exactly
//! associative and commutative (bit-level equality, not epsilon), and
//! the fixed-bin quantile sketch stays within one bin width of the
//! exact empirical quantile on random streams.
//!
//! These are the algebraic facts the fleet wiring leans on — a
//! fleet-wide fingerprint merged shard-by-shard on 8 threads must
//! serialize to the same bytes as the serial merge.

use prefall_drift::sketch::{AxisSketch, FeatureRange, BINS};
use prefall_drift::Fingerprint;
use proptest::prelude::*;

/// Deterministic pseudo-random stream in [lo, hi], with occasional
/// out-of-range and non-finite values mixed in to exercise clamping
/// and skipping.
fn gen_stream(len: usize, seed: u64, range: &FeatureRange) -> Vec<f64> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            match s % 97 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => range.hi + 50.0,
                3 => range.lo - 50.0,
                _ => range.lo + (s % 100_000) as f64 / 100_000.0 * range.width(),
            }
        })
        .collect()
}

fn sketch_of(values: &[f64], range: &FeatureRange) -> AxisSketch {
    let mut s = AxisSketch::new();
    for &v in values {
        s.observe(range, v);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c), field for field.
    #[test]
    fn merge_is_associative(
        la in 0usize..200,
        lb in 0usize..200,
        lc in 0usize..200,
        seed in 0u64..10_000,
    ) {
        let range = FeatureRange::new(-16.0, 16.0);
        let a = sketch_of(&gen_stream(la, seed, &range), &range);
        let b = sketch_of(&gen_stream(lb, seed ^ 0xA5A5, &range), &range);
        let c = sketch_of(&gen_stream(lc, seed ^ 0x5A5A, &range), &range);

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        prop_assert_eq!(left, right);
    }

    /// a ⊔ b == b ⊔ a, and merging equals single-stream feeding.
    #[test]
    fn merge_is_commutative_and_lossless(
        la in 0usize..300,
        lb in 0usize..300,
        seed in 0u64..10_000,
    ) {
        let range = FeatureRange::new(0.0, 1.0);
        let sa = gen_stream(la, seed, &range);
        let sb = gen_stream(lb, seed ^ 0xBEEF, &range);

        let a = sketch_of(&sa, &range);
        let b = sketch_of(&sb, &range);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        // Feeding one sketch the concatenated stream gives the same
        // result: merging loses nothing.
        let mut whole: Vec<f64> = sa;
        whole.extend_from_slice(&sb);
        let single = sketch_of(&whole, &range);
        prop_assert_eq!(ab, single);
    }

    /// Fingerprint merge order does not change the serialized bytes —
    /// the property the fleet's 1/2/8-thread bit-identity gate rides
    /// on.
    #[test]
    fn fingerprint_merge_bytes_are_order_independent(
        parts in 2usize..6,
        per_part in 1usize..80,
        seed in 0u64..10_000,
    ) {
        let mut fps: Vec<Fingerprint> = Vec::new();
        let mut s = seed | 1;
        for p in 0..parts {
            let mut fp = Fingerprint::new();
            for i in 0..per_part {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let t = (p * 1000 + i) as f64 * 0.13 + (s % 7) as f64;
                fp.observe_sample(
                    [t.sin() as f32, t.cos() as f32 * 0.2, 1.0],
                    [(t * 1.9).sin() as f32 * 8.0, 0.0, (t * 0.4).cos() as f32],
                );
                if i % 3 == 0 {
                    fp.observe_score((0.5 + 0.4 * t.sin()) as f32);
                    fp.observe_shares(&[0.4, 0.35, 0.25]);
                }
            }
            fps.push(fp);
        }
        let mut forward = Fingerprint::new();
        for fp in &fps {
            forward.merge(fp);
        }
        let mut backward = Fingerprint::new();
        for fp in fps.iter().rev() {
            backward.merge(fp);
        }
        prop_assert_eq!(forward.to_bytes(), backward.to_bytes());
    }

    /// The sketch quantile is within one bin width (plus quantization
    /// slack) of the exact empirical quantile at the same rank.
    #[test]
    fn quantiles_are_within_one_bin_of_exact(
        len in 1usize..500,
        seed in 0u64..10_000,
        lo in -20.0f64..0.0,
        span in 0.5f64..40.0,
    ) {
        let range = FeatureRange::new(lo, lo + span);
        // Finite, in-range values only: the bound is about the
        // histogram's resolution, not about clamping semantics.
        let mut s = seed | 1;
        let values: Vec<f64> = (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                range.lo + (s % 1_000_000) as f64 / 1_000_000.0 * range.width()
            })
            .collect();
        let sketch = sketch_of(&values, &range);
        let mut sorted = values;
        sorted.sort_by(f64::total_cmp);
        for phi in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let rank = (phi * (sorted.len() - 1) as f64).round() as usize;
            let exact = sorted[rank];
            let approx = sketch.quantile(&range, phi).unwrap();
            let bound = range.bin_width() + 2.0 * range.width() / (1 << 20) as f64;
            prop_assert!(
                (approx - exact).abs() <= bound,
                "phi {} approx {} exact {} bound {} (len {}, {} bins)",
                phi, approx, exact, bound, sorted.len(), BINS
            );
        }
    }
}
