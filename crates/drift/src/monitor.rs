//! The live drift monitor: a [`DetectorTap`] that folds every ingest
//! event into streaming sketches and scores them against a reference
//! fingerprint, publishing `drift.*` gauges.
//!
//! Tap discipline (see `prefall_core::tap`): the per-sample path must
//! not allocate after warm-up. Every sketch here is fixed-size and
//! updated in place; branch shares are computed inline from the
//! borrowed [`BranchStat`] slice (never through the allocating
//! [`shares`](prefall_nn::network::shares) helper); epoch rotation is
//! a `mem::swap` plus an in-place clear; and gauge publishes use
//! static metric names. The workspace `noop_overhead` test counts
//! allocations across an armed monitor's steady state and asserts
//! zero.
//!
//! Scoring uses a **two-epoch sliding view** rather than the lifetime
//! sketch: the monitor scores the merge of the previous and current
//! epoch against the reference, so a drift that begins mid-stream is
//! visible within roughly one epoch instead of being diluted by hours
//! of healthy history. The lifetime sketch is still kept — it is the
//! deployment fingerprint [`DriftHandle::fingerprint`] exports.

use crate::fingerprint::{compare, DriftScore, Fingerprint, SHARE_BRANCHES};
use prefall_core::detector::StreamingDetector;
use prefall_core::tap::{DetectorTap, SampleTapCtx};
use prefall_telemetry::Recorder;
use std::sync::{Arc, Mutex};

/// Drift-monitor cadence and alarm threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Samples per scoring epoch. The sliding view scores the last
    /// one-to-two epochs; the default (3000 = 30 s at 100 Hz) reacts
    /// to a mid-stream drift within about a minute.
    pub epoch_samples: u64,
    /// Classified windows between gauge publishes (drift moves slowly;
    /// re-scoring every window would be wasted work).
    pub publish_every: u64,
    /// PSI at or above which [`DriftHandle::alarmed`] reports drift
    /// (0.25 is the conventional "major shift" reading).
    pub alarm_psi: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            epoch_samples: 3000,
            publish_every: 25,
            alarm_psi: 0.25,
        }
    }
}

struct DriftState {
    cfg: DriftConfig,
    reference: Option<Fingerprint>,
    /// Lifetime sketch — the exported fingerprint.
    total: Fingerprint,
    /// Last completed epoch.
    prev: Fingerprint,
    /// Epoch currently filling.
    cur: Fingerprint,
    /// Reused scratch for the prev+cur sliding view (cleared and
    /// re-merged at each scoring, never reallocated).
    recent: Fingerprint,
    windows: u64,
    last: Option<DriftScore>,
    rec: Arc<dyn Recorder>,
}

impl DriftState {
    fn rescore(&mut self) {
        let Some(reference) = &self.reference else {
            return;
        };
        self.recent.clear();
        self.recent.merge(&self.prev);
        self.recent.merge(&self.cur);
        let score = compare(reference, &self.recent);
        self.rec.gauge_set("drift.input_psi", score.input_psi);
        self.rec.gauge_set("drift.score_psi", score.score_psi);
        self.rec
            .gauge_set("drift.attribution_psi", score.attribution_psi);
        self.rec.gauge_set("drift.input_shift", score.input_shift);
        self.rec.gauge_set("drift.score_shift", score.score_shift);
        self.rec.gauge_set("drift.samples", score.samples as f64);
        self.rec.gauge_set(
            "drift.alarm",
            if score.alarmed(self.cfg.alarm_psi) {
                1.0
            } else {
                0.0
            },
        );
        self.last = Some(score);
    }
}

/// Shared, cloneable view of the drift monitor: holds the reference,
/// exports fingerprints and the latest score. Mirrors the blackbox
/// `FlightHandle` pattern — [`DriftMonitor::install`] returns one.
#[derive(Clone)]
pub struct DriftHandle {
    state: Arc<Mutex<DriftState>>,
}

impl std::fmt::Debug for DriftHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock().expect("drift state poisoned");
        f.debug_struct("DriftHandle")
            .field("samples", &s.total.samples())
            .field("windows", &s.windows)
            .field("reference", &s.reference.is_some())
            .finish()
    }
}

impl DriftHandle {
    /// Installs a telemetry recorder for the `drift.*` gauges.
    pub fn set_recorder(&self, rec: Arc<dyn Recorder>) {
        let mut s = self.state.lock().expect("drift state poisoned");
        s.rec = rec;
    }

    /// Sets (or replaces) the reference fingerprint scores are
    /// computed against. Without one the monitor only accumulates.
    pub fn set_reference(&self, reference: Fingerprint) {
        let mut s = self.state.lock().expect("drift state poisoned");
        s.reference = Some(reference);
    }

    /// A copy of the reference fingerprint, if one is set.
    pub fn reference(&self) -> Option<Fingerprint> {
        let s = self.state.lock().expect("drift state poisoned");
        s.reference.clone()
    }

    /// A copy of the lifetime fingerprint (every sample since install
    /// or [`DriftHandle::reset_live`]).
    pub fn fingerprint(&self) -> Fingerprint {
        let s = self.state.lock().expect("drift state poisoned");
        s.total.clone()
    }

    /// A copy of the sliding view being scored (last one-to-two
    /// epochs).
    pub fn recent(&self) -> Fingerprint {
        let s = self.state.lock().expect("drift state poisoned");
        let mut out = Fingerprint::new();
        out.merge(&s.prev);
        out.merge(&s.cur);
        out
    }

    /// The latest computed drift score, if a reference is set and at
    /// least one publish has happened.
    pub fn score(&self) -> Option<DriftScore> {
        let s = self.state.lock().expect("drift state poisoned");
        s.last
    }

    /// Recomputes and publishes the score right now (benches and the
    /// obsd endpoint use this; the hot path publishes on its own
    /// cadence).
    pub fn publish_now(&self) -> Option<DriftScore> {
        let mut s = self.state.lock().expect("drift state poisoned");
        s.rescore();
        s.last
    }

    /// Whether the latest score breaches the configured alarm PSI.
    pub fn alarmed(&self) -> bool {
        let s = self.state.lock().expect("drift state poisoned");
        s.last.is_some_and(|sc| sc.alarmed(s.cfg.alarm_psi))
    }

    /// The configuration the monitor was created with.
    pub fn config(&self) -> DriftConfig {
        let s = self.state.lock().expect("drift state poisoned");
        s.cfg
    }

    /// Clears every live sketch (lifetime, epochs, last score). The
    /// reference is kept.
    pub fn reset_live(&self) {
        let mut s = self.state.lock().expect("drift state poisoned");
        s.total.clear();
        s.prev.clear();
        s.cur.clear();
        s.windows = 0;
        s.last = None;
    }
}

/// The [`DetectorTap`] half of the drift monitor. Created by
/// [`DriftMonitor::install`] (which also sets it as the detector's
/// tap) or [`DriftMonitor::create`] (for callers composing taps or
/// installing on a `Session`).
pub struct DriftMonitor {
    state: Arc<Mutex<DriftState>>,
}

impl std::fmt::Debug for DriftMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("DriftMonitor")
    }
}

impl DriftMonitor {
    /// Builds a monitor, installs it as `detector`'s tap, and returns
    /// the shared [`DriftHandle`].
    pub fn install(detector: &mut StreamingDetector, cfg: DriftConfig) -> DriftHandle {
        let (tap, handle) = Self::create(cfg);
        detector.set_tap(Box::new(tap));
        handle
    }

    /// Builds the tap/handle pair without installing it — for
    /// composing with other taps (e.g. alongside a flight recorder in
    /// a [`TapFanout`](prefall_core::tap::TapFanout)) or for session
    /// paths that own their tap slot.
    pub fn create(cfg: DriftConfig) -> (DriftMonitor, DriftHandle) {
        let state = Arc::new(Mutex::new(DriftState {
            cfg,
            reference: None,
            total: Fingerprint::new(),
            prev: Fingerprint::new(),
            cur: Fingerprint::new(),
            recent: Fingerprint::new(),
            windows: 0,
            last: None,
            rec: prefall_telemetry::noop(),
        }));
        (
            DriftMonitor {
                state: Arc::clone(&state),
            },
            DriftHandle { state },
        )
    }
}

impl DetectorTap for DriftMonitor {
    fn on_sample(&mut self, ctx: &SampleTapCtx<'_>) {
        let mut s = self.state.lock().expect("drift state poisoned");
        let s = &mut *s;
        // Gap-fill ticks repeat the held sample; folding them would
        // weight stuck values double. The outage itself is visible
        // through the guard counters, not the input distribution.
        if !ctx.missing {
            s.total.observe_sample(ctx.accel, ctx.gyro);
            s.cur.observe_sample(ctx.accel, ctx.gyro);
        }
        if let Some(w) = &ctx.window {
            s.total.observe_score(w.score);
            s.cur.observe_score(w.score);
            if !w.attribution.is_empty() {
                // Inline L2-share computation over the borrowed stats;
                // `prefall_nn::network::shares` allocates a Vec, which
                // is off-limits on this path.
                let mut l2 = [0.0f64; SHARE_BRANCHES];
                let mut sum = 0.0f64;
                let n = w.attribution.len().min(SHARE_BRANCHES);
                for (slot, stat) in l2.iter_mut().zip(w.attribution.iter()) {
                    *slot = f64::from(stat.l2);
                    sum += *slot;
                }
                if sum > 0.0 {
                    for slot in l2.iter_mut().take(n) {
                        *slot /= sum;
                    }
                } else {
                    for slot in l2.iter_mut().take(n) {
                        *slot = 1.0 / n as f64;
                    }
                }
                s.total.observe_shares(&l2[..n]);
                s.cur.observe_shares(&l2[..n]);
            }
            s.windows += 1;
            if s.windows.is_multiple_of(s.cfg.publish_every.max(1)) {
                s.rescore();
            }
        }
        if s.cur.samples() >= s.cfg.epoch_samples.max(1) {
            std::mem::swap(&mut s.prev, &mut s.cur);
            s.cur.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefall_core::detector::{DetectorConfig, GuardConfig, StreamingDetector};
    use prefall_core::models::ModelKind;
    use prefall_core::pipeline::PipelineConfig;
    use prefall_dsp::segment::Overlap;
    use prefall_dsp::stats::Normalizer;
    use prefall_telemetry::Registry;

    fn detector() -> StreamingDetector {
        let cfg = DetectorConfig {
            pipeline: PipelineConfig::paper(400.0, Overlap::Half),
            threshold: 0.5,
            consecutive: 3,
            guard: GuardConfig::default(),
        };
        let window = cfg.pipeline.segmentation.window();
        StreamingDetector::new(
            ModelKind::ProposedCnn.build(window, 9, 1).unwrap(),
            Normalizer::identity(9),
            cfg,
        )
        .unwrap()
    }

    fn motion(t: u64) -> ([f32; 3], [f32; 3]) {
        let x = t as f32 * 0.07;
        (
            [0.02 * x.sin(), -0.03 * (x * 0.9).cos(), 1.0],
            [6.0 * (x * 1.3).sin(), -4.0 * x.cos(), 1.5 * (x * 0.4).sin()],
        )
    }

    #[test]
    fn monitor_accumulates_samples_scores_and_attribution() {
        let mut det = detector();
        let handle = DriftMonitor::install(&mut det, DriftConfig::default());
        for t in 0..300u64 {
            let (a, g) = motion(t);
            let _ = det.push_sample(a, g);
        }
        let fp = handle.fingerprint();
        assert_eq!(fp.samples(), 300);
        assert!(fp.windows() > 0, "windows classified");
        assert!(
            fp.shares[0].count() == fp.windows(),
            "attribution folded per window"
        );
    }

    #[test]
    fn matching_stream_stays_quiet_and_biased_stream_alarms() {
        // Reference: the same motion distribution.
        let mut det = detector();
        let handle = DriftMonitor::install(&mut det, DriftConfig::default());
        for t in 0..2000u64 {
            let (a, g) = motion(t);
            let _ = det.push_sample(a, g);
        }
        let reference = handle.fingerprint();

        // A fresh monitor over the same distribution: quiet.
        let mut det2 = detector();
        let h2 = DriftMonitor::install(&mut det2, DriftConfig::default());
        h2.set_reference(reference.clone());
        for t in 0..2000u64 {
            let (a, g) = motion(t);
            let _ = det2.push_sample(a, g);
        }
        let quiet = h2.publish_now().expect("scored");
        assert!(quiet.input_psi < 0.05, "clean psi {}", quiet.input_psi);
        assert!(!h2.alarmed());

        // A biased gyro (stuck at rail): alarms.
        let mut det3 = detector();
        let h3 = DriftMonitor::install(&mut det3, DriftConfig::default());
        h3.set_reference(reference);
        for t in 0..2000u64 {
            let (a, _) = motion(t);
            let _ = det3.push_sample(a, [30.0, 30.0, 30.0]);
        }
        let loud = h3.publish_now().expect("scored");
        assert!(loud.input_psi > 0.25, "biased psi {}", loud.input_psi);
        assert!(h3.alarmed());
    }

    #[test]
    fn epoch_rotation_bounds_the_scored_view() {
        let mut det = detector();
        let handle = DriftMonitor::install(
            &mut det,
            DriftConfig {
                epoch_samples: 100,
                ..DriftConfig::default()
            },
        );
        for t in 0..1000u64 {
            let (a, g) = motion(t);
            let _ = det.push_sample(a, g);
        }
        // Lifetime keeps everything; the sliding view holds at most
        // two epochs.
        assert_eq!(handle.fingerprint().samples(), 1000);
        assert!(handle.recent().samples() <= 200);
        assert!(handle.recent().samples() > 0);
    }

    #[test]
    fn gauges_publish_on_cadence() {
        let reg = Arc::new(Registry::new());
        let mut det = detector();
        let handle = DriftMonitor::install(
            &mut det,
            DriftConfig {
                publish_every: 1,
                ..DriftConfig::default()
            },
        );
        handle.set_recorder(reg.clone());
        handle.set_reference(Fingerprint::new());
        for t in 0..200u64 {
            let (a, g) = motion(t);
            let _ = det.push_sample(a, g);
        }
        let snap = reg.snapshot();
        for want in [
            "drift.input_psi",
            "drift.score_psi",
            "drift.attribution_psi",
            "drift.samples",
            "drift.alarm",
        ] {
            assert!(snap.gauges.contains_key(want), "missing gauge {want}");
        }
    }

    #[test]
    fn reset_live_keeps_the_reference() {
        let (_tap, handle) = DriftMonitor::create(DriftConfig::default());
        handle.set_reference(Fingerprint::new());
        handle.reset_live();
        assert!(handle.reference().is_some());
        assert_eq!(handle.fingerprint().samples(), 0);
    }
}
