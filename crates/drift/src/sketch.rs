//! Allocation-bounded, exactly-mergeable streaming sketches.
//!
//! Everything a sketch accumulates is an **integer**: an observation is
//! clamped to its feature's range, quantized to one of 2²⁰ ticks, and
//! folded in as tick counts (moment sums in `i128`, fixed-bin
//! histogram counts in `u64`). Floating-point addition is not
//! associative, so a sketch that summed `f64`s would give different
//! bits depending on merge order — integer accumulation makes
//! [`AxisSketch::merge`] exactly associative *and* commutative, which
//! is what lets per-tenant sketches fold into a fleet-wide view in any
//! order (and on any thread count) and still produce bit-identical
//! fingerprints. Float math happens only at query time
//! ([`AxisSketch::mean`], [`AxisSketch::quantile`], [`psi`]).
//!
//! The structure is `Copy`-free but heap-free: a sketch is a fixed
//! `[u64; BINS]` histogram plus a handful of scalar accumulators, so
//! creating, clearing and merging sketches never allocates.

/// Fixed histogram resolution of every quantile sketch.
pub const BINS: usize = 32;

/// Quantization ticks across a feature's range (2²⁰). A quantized
/// observation is an integer in `[0, Q_MAX]`.
pub const Q_MAX: i64 = (1 << Q_SHIFT) - 1;

/// `log2(Q_MAX + 1)`; bin index is `quantized * BINS >> Q_SHIFT`.
const Q_SHIFT: u32 = 20;

/// The closed value range a feature is sketched over. Observations
/// outside it clamp to the edge (mirroring the sample guard's physical
/// clamps); non-finite observations are skipped and counted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureRange {
    /// Lower edge of the sketched range.
    pub lo: f64,
    /// Upper edge of the sketched range.
    pub hi: f64,
}

impl FeatureRange {
    /// A range over `[lo, hi]`.
    pub const fn new(lo: f64, hi: f64) -> Self {
        Self { lo, hi }
    }

    /// Width of the range.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Width of one histogram bin in feature units — the quantile
    /// sketch's worst-case error.
    pub fn bin_width(&self) -> f64 {
        self.width() / BINS as f64
    }

    /// Quantizes a finite observation to an integer tick in
    /// `[0, Q_MAX]`; `None` for NaN / infinities.
    pub fn quantize(&self, x: f64) -> Option<i64> {
        if !x.is_finite() {
            return None;
        }
        let t = ((x - self.lo) / self.width()).clamp(0.0, 1.0);
        Some((t * Q_MAX as f64).round() as i64)
    }

    /// Maps a (possibly fractional) tick back into feature units.
    pub fn dequantize(&self, q: f64) -> f64 {
        self.lo + (q / Q_MAX as f64) * self.width()
    }
}

fn bin_of(q: i64) -> usize {
    (((q as u64) * BINS as u64) >> Q_SHIFT).min(BINS as u64 - 1) as usize
}

/// Moment + fixed-bin quantile sketch of one scalar feature.
///
/// All accumulators are integers (see the [module docs](self)), so
/// [`AxisSketch::merge`] is exactly associative and commutative and
/// two sketches fed the same multiset of observations are `==` bit for
/// bit regardless of order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AxisSketch {
    count: u64,
    skipped: u64,
    sum: i128,
    sum_sq: i128,
    min_q: i64,
    max_q: i64,
    bins: [u64; BINS],
}

impl Default for AxisSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl AxisSketch {
    /// An empty sketch.
    pub const fn new() -> Self {
        Self {
            count: 0,
            skipped: 0,
            sum: 0,
            sum_sq: 0,
            min_q: i64::MAX,
            max_q: i64::MIN,
            bins: [0; BINS],
        }
    }

    /// Resets the sketch in place (no allocation).
    pub fn clear(&mut self) {
        *self = Self::new();
    }

    /// Folds one observation in. Non-finite values are not folded —
    /// they bump [`AxisSketch::skipped`] instead, so a NaN-bursting
    /// sensor is visible without poisoning the moments.
    pub fn observe(&mut self, range: &FeatureRange, x: f64) {
        match range.quantize(x) {
            Some(q) => self.observe_q(q),
            None => self.skipped = self.skipped.saturating_add(1),
        }
    }

    /// Folds one pre-quantized tick in.
    pub fn observe_q(&mut self, q: i64) {
        let q = q.clamp(0, Q_MAX);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(q as i128);
        self.sum_sq = self.sum_sq.saturating_add((q as i128) * (q as i128));
        self.min_q = self.min_q.min(q);
        self.max_q = self.max_q.max(q);
        self.bins[bin_of(q)] = self.bins[bin_of(q)].saturating_add(1);
    }

    /// Merges `other` into `self` — elementwise integer addition plus
    /// min/max, so exactly associative and commutative.
    pub fn merge(&mut self, other: &AxisSketch) {
        self.count = self.count.saturating_add(other.count);
        self.skipped = self.skipped.saturating_add(other.skipped);
        self.sum = self.sum.saturating_add(other.sum);
        self.sum_sq = self.sum_sq.saturating_add(other.sum_sq);
        self.min_q = self.min_q.min(other.min_q);
        self.max_q = self.max_q.max(other.max_q);
        for (dst, src) in self.bins.iter_mut().zip(other.bins.iter()) {
            *dst = dst.saturating_add(*src);
        }
    }

    /// Observations folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Non-finite observations refused.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// The per-bin counts (they sum to [`AxisSketch::count`]).
    pub fn bins(&self) -> &[u64; BINS] {
        &self.bins
    }

    /// Mean in feature units, `None` when empty.
    pub fn mean(&self, range: &FeatureRange) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        Some(range.dequantize(self.sum as f64 / self.count as f64))
    }

    /// Population standard deviation in feature units, `None` when
    /// empty.
    pub fn std_dev(&self, range: &FeatureRange) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let n = self.count as f64;
        let mean_q = self.sum as f64 / n;
        let var_q = (self.sum_sq as f64 / n - mean_q * mean_q).max(0.0);
        Some(var_q.sqrt() / Q_MAX as f64 * range.width())
    }

    /// Smallest observation seen, `None` when empty.
    pub fn min(&self, range: &FeatureRange) -> Option<f64> {
        (self.count > 0).then(|| range.dequantize(self.min_q as f64))
    }

    /// Largest observation seen, `None` when empty.
    pub fn max(&self, range: &FeatureRange) -> Option<f64> {
        (self.count > 0).then(|| range.dequantize(self.max_q as f64))
    }

    /// Approximate `phi`-quantile (rank `round(phi * (count - 1))`),
    /// interpolated inside the bin that holds the rank. The answer is
    /// within one [`FeatureRange::bin_width`] of the exact empirical
    /// quantile at that rank — asserted against sorted random streams
    /// by the property tests.
    pub fn quantile(&self, range: &FeatureRange, phi: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (phi.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut cum = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if rank < cum + c {
                // Interpolate linearly inside the bin.
                let frac = (rank - cum) as f64 / c as f64;
                let bin_ticks = (Q_MAX as f64 + 1.0) / BINS as f64;
                let q = (i as f64 + frac) * bin_ticks;
                return Some(range.dequantize(q).clamp(range.lo, range.hi));
            }
            cum += c;
        }
        Some(range.dequantize(self.max_q as f64))
    }

    /// Serialized length in bytes (fixed).
    pub(crate) const WIRE_LEN: usize = 8 + 8 + 16 + 16 + 8 + 8 + BINS * 8;

    pub(crate) fn write_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.skipped.to_le_bytes());
        out.extend_from_slice(&self.sum.to_le_bytes());
        out.extend_from_slice(&self.sum_sq.to_le_bytes());
        out.extend_from_slice(&self.min_q.to_le_bytes());
        out.extend_from_slice(&self.max_q.to_le_bytes());
        for b in &self.bins {
            out.extend_from_slice(&b.to_le_bytes());
        }
    }

    pub(crate) fn read_bytes(r: &mut crate::fingerprint::ByteReader<'_>) -> Option<Self> {
        let mut s = Self::new();
        s.count = r.u64()?;
        s.skipped = r.u64()?;
        s.sum = r.i128()?;
        s.sum_sq = r.i128()?;
        s.min_q = r.i64()?;
        s.max_q = r.i64()?;
        for b in s.bins.iter_mut() {
            *b = r.u64()?;
        }
        // Internal consistency: bins must account for every counted
        // observation, or the sketch was corrupted.
        let total: u64 = s.bins.iter().fold(0u64, |a, &b| a.saturating_add(b));
        if total != s.count {
            return None;
        }
        Some(s)
    }
}

/// Population Stability Index between a reference and a live sketch's
/// bin distributions: `Σ (pᵢ - qᵢ) · ln(pᵢ / qᵢ)` with proportions
/// floored at `1e-4` so empty bins do not blow up. 0 means identical;
/// the conventional reading is < 0.1 stable, 0.1–0.25 moderate
/// shift, above 0.25 major shift. Returns 0 when either side is
/// empty — no evidence is not evidence of drift.
pub fn psi(reference: &AxisSketch, live: &AxisSketch) -> f64 {
    if reference.count == 0 || live.count == 0 {
        return 0.0;
    }
    const EPS: f64 = 1e-4;
    let rn = reference.count as f64;
    let ln = live.count as f64;
    let mut s = 0.0;
    for i in 0..BINS {
        let p = (reference.bins[i] as f64 / rn).max(EPS);
        let q = (live.bins[i] as f64 / ln).max(EPS);
        s += (p - q) * (p / q).ln();
    }
    s
}

/// Largest absolute quantile displacement between reference and live,
/// across the 10/25/50/75/90th percentiles, normalized by the feature
/// range (so 0.1 means "a decile moved by 10 % of the sensor's
/// range"). Returns 0 when either side is empty.
pub fn quantile_shift(reference: &AxisSketch, live: &AxisSketch, range: &FeatureRange) -> f64 {
    if reference.count == 0 || live.count == 0 {
        return 0.0;
    }
    let mut worst = 0.0f64;
    for phi in [0.1, 0.25, 0.5, 0.75, 0.9] {
        if let (Some(a), Some(b)) = (reference.quantile(range, phi), live.quantile(range, phi)) {
            worst = worst.max((a - b).abs() / range.width());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    const UNIT: FeatureRange = FeatureRange::new(0.0, 1.0);

    #[test]
    fn moments_match_hand_computed_values() {
        let mut s = AxisSketch::new();
        for x in [0.0, 0.25, 0.5, 0.75, 1.0] {
            s.observe(&UNIT, x);
        }
        assert_eq!(s.count(), 5);
        let mean = s.mean(&UNIT).unwrap();
        assert!((mean - 0.5).abs() < 1e-5, "mean {mean}");
        let sd = s.std_dev(&UNIT).unwrap();
        assert!((sd - 0.35355).abs() < 1e-3, "std {sd}");
        assert!((s.min(&UNIT).unwrap() - 0.0).abs() < 1e-5);
        assert!((s.max(&UNIT).unwrap() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn non_finite_observations_are_skipped_not_folded() {
        let mut s = AxisSketch::new();
        s.observe(&UNIT, f64::NAN);
        s.observe(&UNIT, f64::INFINITY);
        s.observe(&UNIT, 0.5);
        assert_eq!(s.count(), 1);
        assert_eq!(s.skipped(), 2);
        assert!(s.mean(&UNIT).unwrap().is_finite());
    }

    #[test]
    fn out_of_range_observations_clamp_to_the_edges() {
        let r = FeatureRange::new(-1.0, 1.0);
        let mut s = AxisSketch::new();
        s.observe(&r, -50.0);
        s.observe(&r, 50.0);
        assert_eq!(s.min(&r), Some(-1.0));
        assert_eq!(s.max(&r), Some(1.0));
    }

    #[test]
    fn merge_equals_feeding_one_sketch() {
        let mut all = AxisSketch::new();
        let mut a = AxisSketch::new();
        let mut b = AxisSketch::new();
        for i in 0..100 {
            let x = (i as f64 * 0.37).sin() * 0.5 + 0.5;
            all.observe(&UNIT, x);
            if i % 2 == 0 {
                a.observe(&UNIT, x);
            } else {
                b.observe(&UNIT, x);
            }
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all);
        // Commutes exactly.
        let mut other = b.clone();
        other.merge(&a);
        assert_eq!(other, all);
    }

    #[test]
    fn psi_is_zero_for_identical_and_grows_with_separation() {
        let mut reference = AxisSketch::new();
        for i in 0..1000 {
            reference.observe(&UNIT, 0.3 + 0.1 * ((i as f64) * 0.1).sin());
        }
        assert_eq!(psi(&reference, &reference), 0.0);
        // Live shifted by +0.1 and +0.4: PSI must grow with the shift.
        let mut near = AxisSketch::new();
        let mut far = AxisSketch::new();
        for i in 0..1000 {
            let base = 0.1 * ((i as f64) * 0.1).sin();
            near.observe(&UNIT, 0.4 + base);
            far.observe(&UNIT, 0.7 + base);
        }
        let p_near = psi(&reference, &near);
        let p_far = psi(&reference, &far);
        assert!(p_near > 0.0);
        assert!(p_far > p_near, "psi near {p_near} far {p_far}");
        // And the shift score agrees on direction.
        let s_near = quantile_shift(&reference, &near, &UNIT);
        let s_far = quantile_shift(&reference, &far, &UNIT);
        assert!(s_far > s_near, "shift near {s_near} far {s_far}");
    }

    #[test]
    fn empty_sides_yield_zero_scores() {
        let empty = AxisSketch::new();
        let mut live = AxisSketch::new();
        live.observe(&UNIT, 0.5);
        assert_eq!(psi(&empty, &live), 0.0);
        assert_eq!(psi(&live, &empty), 0.0);
        assert_eq!(quantile_shift(&empty, &live, &UNIT), 0.0);
    }

    #[test]
    fn quantiles_interpolate_within_one_bin_width() {
        let mut s = AxisSketch::new();
        let xs: Vec<f64> = (0..500).map(|i| (i as f64 * 0.777).fract()).collect();
        for &x in &xs {
            s.observe(&UNIT, x);
        }
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        for phi in [0.0, 0.1, 0.5, 0.9, 1.0] {
            let rank = (phi * (sorted.len() - 1) as f64).round() as usize;
            let exact = sorted[rank];
            let approx = s.quantile(&UNIT, phi).unwrap();
            assert!(
                (approx - exact).abs() <= UNIT.bin_width() + 1e-9,
                "phi {phi}: approx {approx} exact {exact}"
            );
        }
    }
}
