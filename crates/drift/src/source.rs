//! The obsd `/drift` document: a JSON view of a fingerprint and its
//! scores against a reference, shared by the single-detector
//! [`DriftHandle`] (this module's [`DriftSource`] impl) and the fleet
//! registry (which builds the same document per tenant).

use crate::fingerprint::{
    compare, DriftScore, Fingerprint, INPUT_AXES, INPUT_NAMES, INPUT_RANGES, UNIT_RANGE,
};
use crate::monitor::DriftHandle;
use crate::sketch::psi;
use prefall_obsd::DriftSource;
use prefall_telemetry::JsonValue;

fn f64_field(name: &str, v: f64) -> (String, JsonValue) {
    (name.to_string(), JsonValue::F64(v))
}

/// Builds the `/drift` JSON document for one live fingerprint:
/// sample/window totals, the section scores against `reference` (when
/// set), the alarm verdict at `alarm_psi`, and a per-axis breakdown
/// (PSI, live mean, reference mean).
pub fn drift_doc(reference: Option<&Fingerprint>, live: &Fingerprint, alarm_psi: f64) -> JsonValue {
    let score = reference.map(|r| compare(r, live)).unwrap_or_default();
    let mut fields = vec![
        ("samples".to_string(), JsonValue::U64(live.samples())),
        ("windows".to_string(), JsonValue::U64(live.windows())),
        (
            "reference".to_string(),
            JsonValue::Bool(reference.is_some()),
        ),
        f64_field("input_psi", score.input_psi),
        f64_field("score_psi", score.score_psi),
        f64_field("attribution_psi", score.attribution_psi),
        f64_field("input_shift", score.input_shift),
        f64_field("score_shift", score.score_shift),
        f64_field("alarm_psi", alarm_psi),
        (
            "alarm".to_string(),
            JsonValue::Bool(reference.is_some() && score.alarmed(alarm_psi)),
        ),
    ];
    let mut axes = Vec::with_capacity(INPUT_AXES);
    for i in 0..INPUT_AXES {
        let range = &INPUT_RANGES[i];
        let mut axis = vec![
            (
                "name".to_string(),
                JsonValue::Str(INPUT_NAMES[i].to_string()),
            ),
            ("count".to_string(), JsonValue::U64(live.input[i].count())),
            (
                "skipped".to_string(),
                JsonValue::U64(live.input[i].skipped()),
            ),
        ];
        if let Some(m) = live.input[i].mean(range) {
            axis.push(f64_field("mean", m));
        }
        if let Some(r) = reference {
            axis.push(f64_field("psi", psi(&r.input[i], &live.input[i])));
            if let Some(m) = r.input[i].mean(range) {
                axis.push(f64_field("ref_mean", m));
            }
        }
        axes.push(JsonValue::Obj(axis));
    }
    fields.push(("axes".to_string(), JsonValue::Arr(axes)));
    if let Some(p50) = live.score.quantile(&UNIT_RANGE, 0.5) {
        fields.push(f64_field("score_p50", p50));
    }
    JsonValue::Obj(fields)
}

/// Re-exported convenience: the document for a [`DriftScore`] alone
/// (the bench snapshot embeds one).
pub fn score_json(score: &DriftScore) -> JsonValue {
    JsonValue::Obj(vec![
        f64_field("input_psi", score.input_psi),
        f64_field("score_psi", score.score_psi),
        f64_field("attribution_psi", score.attribution_psi),
        f64_field("input_shift", score.input_shift),
        f64_field("score_shift", score.score_shift),
        ("samples".to_string(), JsonValue::U64(score.samples)),
    ])
}

impl DriftSource for DriftHandle {
    fn drift_json(&self, tenant: Option<u64>) -> Option<JsonValue> {
        if tenant.is_some() {
            // A single-detector monitor has no per-tenant views.
            return None;
        }
        let reference = self.reference();
        let live = self.recent();
        Some(drift_doc(
            reference.as_ref(),
            &live,
            self.config().alarm_psi,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{DriftConfig, DriftMonitor};

    #[test]
    fn doc_names_the_sections_and_axes() {
        let mut live = Fingerprint::new();
        for i in 0..50 {
            let t = i as f64 * 0.2;
            live.observe_sample([t.sin() as f32 * 0.1, 0.0, 1.0], [0.0, t.cos() as f32, 0.0]);
            live.observe_score(0.3);
        }
        let reference = live.clone();
        let doc = drift_doc(Some(&reference), &live, 0.25);
        for key in [
            "samples",
            "windows",
            "reference",
            "input_psi",
            "score_psi",
            "attribution_psi",
            "alarm",
            "axes",
        ] {
            assert!(doc.get(key).is_some(), "missing {key}");
        }
        assert_eq!(doc.get("samples").and_then(JsonValue::as_u64), Some(50));
        // Identical distributions: no alarm.
        assert!(matches!(doc.get("alarm"), Some(JsonValue::Bool(false))));
    }

    #[test]
    fn handle_serves_global_but_not_tenant_views() {
        let (_tap, handle) = DriftMonitor::create(DriftConfig::default());
        assert!(handle.drift_json(None).is_some());
        assert!(handle.drift_json(Some(7)).is_none());
    }
}
