//! Label-free model and data health monitoring for the pre-impact
//! fall detector.
//!
//! The observability stack can prove the detector is *fast* and
//! *alive*; nothing proves it is still *valid*. QualityMonitor needs
//! ground-truth labels, which a deployed airbag never has — and
//! free-living streams depart sharply from the trial-style training
//! distribution (*Watch Your Step*, Aderinola et al.). This crate is
//! the label-free answer:
//!
//! * [`sketch`] — allocation-bounded streaming sketches whose
//!   accumulators are **integers**, making merges exactly associative
//!   and commutative: per-axis moments plus fixed-bin quantile
//!   histograms, with [`psi`](sketch::psi) (Population Stability
//!   Index) and [`quantile_shift`](sketch::quantile_shift) scoring at
//!   query time;
//! * [`fingerprint`] — a [`Fingerprint`] bundles the sketches of one
//!   stream (six raw IMU axes, the window-score distribution, and the
//!   per-branch attribution shares from traced inference), with a
//!   versioned, checksummed `PFDF` byte format so a **reference
//!   fingerprint** built from the training distribution can be
//!   committed and verified bit for bit;
//! * [`monitor`] — [`DriftMonitor`] installs as a
//!   [`DetectorTap`](prefall_core::tap::DetectorTap) (zero heap
//!   allocations per sample after warm-up, proven by the workspace
//!   `noop_overhead` test), scores a two-epoch sliding view against
//!   the reference, and publishes `drift.*` gauges that
//!   `prefall-watch` turns into SLOs;
//! * [`source`] — the [`DriftSource`](prefall_obsd::DriftSource) impl
//!   serving the obsd `/drift` endpoint.
//!
//! # Example
//!
//! ```
//! use prefall_core::detector::{DetectorConfig, GuardConfig, StreamingDetector};
//! use prefall_core::models::ModelKind;
//! use prefall_core::pipeline::PipelineConfig;
//! use prefall_drift::{DriftConfig, DriftMonitor};
//! use prefall_dsp::segment::Overlap;
//! use prefall_dsp::stats::Normalizer;
//!
//! let cfg = DetectorConfig {
//!     pipeline: PipelineConfig::paper(400.0, Overlap::Half),
//!     threshold: 0.5,
//!     consecutive: 3,
//!     guard: GuardConfig::default(),
//! };
//! let window = cfg.pipeline.segmentation.window();
//! let net = ModelKind::ProposedCnn.build(window, 9, 1).unwrap();
//! let mut det = StreamingDetector::new(net, Normalizer::identity(9), cfg).unwrap();
//! let drift = DriftMonitor::install(&mut det, DriftConfig::default());
//! for t in 0..500u64 {
//!     let x = t as f32 * 0.07;
//!     let _ = det.push_sample([0.02 * x.sin(), 0.0, 1.0], [x.cos(), 0.0, 0.0]);
//! }
//! // The accumulated fingerprint can become tomorrow's reference…
//! let fp = drift.fingerprint();
//! assert_eq!(fp.samples(), 500);
//! // …or be scored against one committed from the training set.
//! drift.set_reference(fp);
//! let score = drift.publish_now().unwrap();
//! assert!(score.input_psi < 0.25);
//! ```

#![deny(missing_docs)]

pub mod fingerprint;
pub mod monitor;
pub mod sketch;
pub mod source;

pub use fingerprint::{compare, DriftScore, Fingerprint};
pub use monitor::{DriftConfig, DriftHandle, DriftMonitor};
pub use sketch::{psi, quantile_shift, AxisSketch, FeatureRange};
pub use source::{drift_doc, score_json};

/// Errors produced while decoding fingerprint bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriftError {
    /// Malformed, truncated or checksum-mismatched fingerprint bytes.
    Format(String),
}

impl std::fmt::Display for DriftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriftError::Format(m) => write!(f, "malformed drift fingerprint: {m}"),
        }
    }
}

impl std::error::Error for DriftError {}
