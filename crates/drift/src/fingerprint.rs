//! The drift fingerprint: one [`AxisSketch`] per monitored feature,
//! with a versioned, checksummed binary form (`PFDF`) so a reference
//! fingerprint built from the training distribution can be committed
//! to the repo and verified bit for bit in CI.
//!
//! A fingerprint covers three sections:
//!
//! * **input** — the six raw IMU axes (accelerometer in g,
//!   gyroscope in rad/s) exactly as the detector tap sees them,
//!   sketched over the sample guard's physical clamp ranges;
//! * **score** — the sigmoid window score in `[0, 1]`;
//! * **attribution shares** — each modality branch's share of the
//!   activation L2 mass from
//!   [`forward_traced_into`](prefall_nn::network::Network::forward_traced_into)'s
//!   [`BranchStat`](prefall_nn::network::BranchStat)s, in `[0, 1]` —
//!   a label-free proxy for "which sensor the model is listening to".
//!
//! Because every sketch merge is exact (see [`crate::sketch`]),
//! [`Fingerprint::merge`] is associative and commutative and the
//! serialized bytes of a merged fleet view are identical for any
//! merge order or thread count.

use crate::sketch::{psi, quantile_shift, AxisSketch, FeatureRange, BINS};
use crate::DriftError;

/// Raw IMU axes sketched in the input section.
pub const INPUT_AXES: usize = 6;

/// Modality branches sketched in the attribution section (accel,
/// gyro, Euler for the paper's CNN).
pub const SHARE_BRANCHES: usize = 3;

/// Display names of the input axes, section order.
pub const INPUT_NAMES: [&str; INPUT_AXES] = [
    "accel_x", "accel_y", "accel_z", "gyro_x", "gyro_y", "gyro_z",
];

/// Display names of the attribution branches, section order.
pub const SHARE_NAMES: [&str; SHARE_BRANCHES] = ["accel", "gyro", "euler"];

/// Sketch ranges of the input axes: ±16 g (the guard's accel clamp)
/// and ±35 rad/s (≈ 2000 °/s, the guard's gyro clamp).
pub const INPUT_RANGES: [FeatureRange; INPUT_AXES] = [
    FeatureRange::new(-16.0, 16.0),
    FeatureRange::new(-16.0, 16.0),
    FeatureRange::new(-16.0, 16.0),
    FeatureRange::new(-35.0, 35.0),
    FeatureRange::new(-35.0, 35.0),
    FeatureRange::new(-35.0, 35.0),
];

/// Scores and attribution shares both live in `[0, 1]`.
pub const UNIT_RANGE: FeatureRange = FeatureRange::new(0.0, 1.0);

const MAGIC: u32 = 0x5046_4446; // "PFDF"
const VERSION: u16 = 1;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Bounds-checked little-endian reader over fingerprint bytes.
pub(crate) struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|b| u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    pub(crate) fn i64(&mut self) -> Option<i64> {
        self.u64().map(|v| v as i64)
    }

    pub(crate) fn i128(&mut self) -> Option<i128> {
        self.take(16)
            .map(|b| i128::from_le_bytes(b.try_into().expect("16 bytes")))
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

/// Mergeable distribution fingerprint of a detector stream (or of a
/// whole fleet, after merging).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    /// Per-axis input sketches, [`INPUT_NAMES`] order.
    pub input: [AxisSketch; INPUT_AXES],
    /// Window-score sketch.
    pub score: AxisSketch,
    /// Per-branch attribution-share sketches, [`SHARE_NAMES`] order.
    pub shares: [AxisSketch; SHARE_BRANCHES],
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    /// An empty fingerprint.
    pub const fn new() -> Self {
        Self {
            input: [
                AxisSketch::new(),
                AxisSketch::new(),
                AxisSketch::new(),
                AxisSketch::new(),
                AxisSketch::new(),
                AxisSketch::new(),
            ],
            score: AxisSketch::new(),
            shares: [AxisSketch::new(), AxisSketch::new(), AxisSketch::new()],
        }
    }

    /// Resets every sketch in place (no allocation).
    pub fn clear(&mut self) {
        for s in self.input.iter_mut() {
            s.clear();
        }
        self.score.clear();
        for s in self.shares.iter_mut() {
            s.clear();
        }
    }

    /// Folds one raw IMU sample (pre-guard accel in g, gyro in rad/s)
    /// into the input section.
    pub fn observe_sample(&mut self, accel: [f32; 3], gyro: [f32; 3]) {
        for i in 0..3 {
            self.input[i].observe(&INPUT_RANGES[i], f64::from(accel[i]));
            self.input[3 + i].observe(&INPUT_RANGES[3 + i], f64::from(gyro[i]));
        }
    }

    /// Folds one window score into the score section.
    pub fn observe_score(&mut self, score: f32) {
        self.score.observe(&UNIT_RANGE, f64::from(score));
    }

    /// Folds one set of branch shares (already normalized to sum 1)
    /// into the attribution section. Extra branches are ignored.
    pub fn observe_shares(&mut self, shares: &[f64]) {
        for (sketch, &s) in self.shares.iter_mut().zip(shares.iter()) {
            sketch.observe(&UNIT_RANGE, s);
        }
    }

    /// Merges `other` into `self`; exact, associative, commutative.
    pub fn merge(&mut self, other: &Fingerprint) {
        for (dst, src) in self.input.iter_mut().zip(other.input.iter()) {
            dst.merge(src);
        }
        self.score.merge(&other.score);
        for (dst, src) in self.shares.iter_mut().zip(other.shares.iter()) {
            dst.merge(src);
        }
    }

    /// Input samples folded in (all six axes see every sample, so any
    /// axis' count is the sample count).
    pub fn samples(&self) -> u64 {
        self.input[0].count()
    }

    /// Windows whose score was folded in.
    pub fn windows(&self) -> u64 {
        self.score.count()
    }

    /// Serializes to the versioned `PFDF` byte format with a trailing
    /// FNV-1a 64 checksum. Two fingerprints holding the same data
    /// produce identical bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            4 + 2 + 6 + (INPUT_AXES + 1 + SHARE_BRANCHES) * AxisSketch::WIRE_LEN + 8,
        );
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(INPUT_AXES as u16).to_le_bytes());
        out.extend_from_slice(&(SHARE_BRANCHES as u16).to_le_bytes());
        out.extend_from_slice(&(BINS as u16).to_le_bytes());
        for s in &self.input {
            s.write_bytes(&mut out);
        }
        self.score.write_bytes(&mut out);
        for s in &self.shares {
            s.write_bytes(&mut out);
        }
        let checksum = fnv1a64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Parses and validates `PFDF` bytes.
    ///
    /// # Errors
    ///
    /// [`DriftError::Format`] on a bad magic, unknown version, shape
    /// mismatch, truncation, trailing garbage, checksum mismatch, or
    /// internally inconsistent sketches.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DriftError> {
        if bytes.len() < 4 + 2 + 6 + 8 {
            return Err(DriftError::Format("fingerprint truncated".to_string()));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let expect = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
        if fnv1a64(body) != expect {
            return Err(DriftError::Format("checksum mismatch".to_string()));
        }
        let mut r = ByteReader::new(body);
        if r.u32() != Some(MAGIC) {
            return Err(DriftError::Format(
                "bad magic (not a PFDF file)".to_string(),
            ));
        }
        match r.u16() {
            Some(VERSION) => {}
            Some(v) => {
                return Err(DriftError::Format(format!("unsupported version {v}")));
            }
            None => return Err(DriftError::Format("fingerprint truncated".to_string())),
        }
        let n_input = r.u16();
        let n_share = r.u16();
        let n_bins = r.u16();
        if n_input != Some(INPUT_AXES as u16)
            || n_share != Some(SHARE_BRANCHES as u16)
            || n_bins != Some(BINS as u16)
        {
            return Err(DriftError::Format(format!(
                "shape mismatch: {n_input:?} axes / {n_share:?} branches / {n_bins:?} bins"
            )));
        }
        let mut fp = Fingerprint::new();
        for s in fp.input.iter_mut() {
            *s = AxisSketch::read_bytes(&mut r)
                .ok_or_else(|| DriftError::Format("corrupt input sketch".to_string()))?;
        }
        fp.score = AxisSketch::read_bytes(&mut r)
            .ok_or_else(|| DriftError::Format("corrupt score sketch".to_string()))?;
        for s in fp.shares.iter_mut() {
            *s = AxisSketch::read_bytes(&mut r)
                .ok_or_else(|| DriftError::Format("corrupt share sketch".to_string()))?;
        }
        if r.remaining() != 0 {
            return Err(DriftError::Format(format!(
                "{} trailing bytes",
                r.remaining()
            )));
        }
        Ok(fp)
    }
}

/// Drift of a live fingerprint against a reference, per section.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DriftScore {
    /// Worst per-axis PSI across the six input sketches.
    pub input_psi: f64,
    /// PSI of the window-score distribution.
    pub score_psi: f64,
    /// Worst per-branch PSI across the attribution shares (0 when the
    /// live side has no attribution — e.g. untapped fleet sessions).
    pub attribution_psi: f64,
    /// Worst normalized quantile displacement across the input axes.
    pub input_shift: f64,
    /// Normalized quantile displacement of the score distribution.
    pub score_shift: f64,
    /// Input samples on the live side.
    pub samples: u64,
}

impl DriftScore {
    /// The worst PSI across every section — the headline drift number.
    pub fn max_psi(&self) -> f64 {
        self.input_psi.max(self.score_psi).max(self.attribution_psi)
    }

    /// Whether any section's PSI breaches `threshold`.
    pub fn alarmed(&self, threshold: f64) -> bool {
        self.max_psi() >= threshold
    }
}

/// Scores `live` against `reference`. Sections empty on either side
/// contribute 0 (no evidence is not evidence of drift), so a fleet
/// view without attribution data never false-alarms on that section.
pub fn compare(reference: &Fingerprint, live: &Fingerprint) -> DriftScore {
    let mut score = DriftScore {
        samples: live.samples(),
        ..DriftScore::default()
    };
    for (i, range) in INPUT_RANGES.iter().enumerate() {
        score.input_psi = score
            .input_psi
            .max(psi(&reference.input[i], &live.input[i]));
        score.input_shift =
            score
                .input_shift
                .max(quantile_shift(&reference.input[i], &live.input[i], range));
    }
    score.score_psi = psi(&reference.score, &live.score);
    score.score_shift = quantile_shift(&reference.score, &live.score, &UNIT_RANGE);
    for i in 0..SHARE_BRANCHES {
        score.attribution_psi = score
            .attribution_psi
            .max(psi(&reference.shares[i], &live.shares[i]));
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_fp(seed: u64, n: usize) -> Fingerprint {
        let mut fp = Fingerprint::new();
        for i in 0..n {
            let t = (i as f64 + seed as f64 * 31.0) * 0.13;
            fp.observe_sample(
                [t.sin() as f32 * 0.1, t.cos() as f32 * 0.1, 1.0],
                [(t * 1.7).sin() as f32 * 5.0, 0.0, (t * 0.3).cos() as f32],
            );
            if i % 5 == 0 {
                fp.observe_score((0.2 + 0.1 * t.sin()) as f32);
                fp.observe_shares(&[0.5, 0.3, 0.2]);
            }
        }
        fp
    }

    #[test]
    fn bytes_round_trip_bit_exactly() {
        let fp = sample_fp(1, 500);
        let bytes = fp.to_bytes();
        let back = Fingerprint::from_bytes(&bytes).unwrap();
        assert_eq!(back, fp);
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn corruption_truncation_and_garbage_are_refused() {
        let bytes = sample_fp(2, 100).to_bytes();
        // Flip one byte mid-body: checksum must catch it.
        let mut bad = bytes.clone();
        bad[40] ^= 0x01;
        assert!(Fingerprint::from_bytes(&bad).is_err());
        // Truncate.
        assert!(Fingerprint::from_bytes(&bytes[..bytes.len() - 9]).is_err());
        // Trailing garbage (with a recomputed checksum it would still
        // fail shape/remaining checks; raw append fails the checksum).
        let mut long = bytes.clone();
        long.extend_from_slice(&[0u8; 4]);
        assert!(Fingerprint::from_bytes(&long).is_err());
        // Wrong magic.
        let mut wrong = bytes;
        wrong[0] ^= 0xFF;
        assert!(Fingerprint::from_bytes(&wrong).is_err());
    }

    #[test]
    fn merge_matches_single_stream_and_serializes_identically() {
        let whole = sample_fp(3, 400);
        // The same observations split across two fingerprints.
        let mut a = Fingerprint::new();
        let mut b = Fingerprint::new();
        for i in 0..400usize {
            let t = (i as f64 + 3.0 * 31.0) * 0.13;
            let target = if i % 2 == 0 { &mut a } else { &mut b };
            target.observe_sample(
                [t.sin() as f32 * 0.1, t.cos() as f32 * 0.1, 1.0],
                [(t * 1.7).sin() as f32 * 5.0, 0.0, (t * 0.3).cos() as f32],
            );
            if i % 5 == 0 {
                target.observe_score((0.2 + 0.1 * t.sin()) as f32);
                target.observe_shares(&[0.5, 0.3, 0.2]);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ab.to_bytes(), ba.to_bytes());
        assert_eq!(ab.to_bytes(), whole.to_bytes());
    }

    #[test]
    fn identical_distributions_score_zero_shifted_ones_do_not() {
        let reference = sample_fp(4, 1000);
        let live = sample_fp(4, 1000);
        let same = compare(&reference, &live);
        assert_eq!(same.max_psi(), 0.0);
        assert!(!same.alarmed(0.25));

        // A biased accelerometer: +4 g on x.
        let mut drifted = Fingerprint::new();
        for i in 0..1000usize {
            let t = (i as f64 + 4.0 * 31.0) * 0.13;
            drifted.observe_sample(
                [4.0 + t.sin() as f32 * 0.1, t.cos() as f32 * 0.1, 1.0],
                [(t * 1.7).sin() as f32 * 5.0, 0.0, (t * 0.3).cos() as f32],
            );
        }
        let off = compare(&reference, &drifted);
        assert!(off.input_psi > 0.25, "input psi {}", off.input_psi);
        assert!(off.input_shift > 0.0);
        // Score section is empty on the live side: contributes nothing.
        assert_eq!(off.score_psi, 0.0);
        assert!(off.alarmed(0.25));
    }
}
