//! Deterministic reference-fingerprint construction for the drift
//! monitor — the one definition of "the training distribution" shared
//! by the `prefall-fingerprint` binary (which writes and verifies the
//! committed `ci/drift_reference.pfdf`) and the `prefall-drift` bench
//! (which scores clean and faulted replays against it).
//!
//! Everything here is bit-deterministic: the dataset generator is
//! seeded, model weights are seeded, inference is the same f32 path the
//! replay gate already proves reproducible, and the sketches accumulate
//! integers. Building the reference twice — on different machines, in
//! different years — yields byte-identical `PFDF` files, which is what
//! lets CI verify the committed artifact instead of trusting it.

use prefall_core::detector::{DetectorConfig, GuardConfig, StreamingDetector};
use prefall_core::models::ModelKind;
use prefall_core::pipeline::PipelineConfig;
use prefall_drift::{DriftConfig, DriftHandle, DriftMonitor, Fingerprint};
use prefall_dsp::segment::Overlap;
use prefall_dsp::stats::Normalizer;
use prefall_imu::dataset::{Dataset, DatasetConfig};
use prefall_imu::trial::Trial;

/// Dataset seed the reference distribution is generated from. The
/// clean-replay leg of the drift bench deliberately uses a *different*
/// seed: same generator, same distribution, disjoint draws — the
/// honest "deployment looks like training" case.
pub const REFERENCE_SEED: u64 = 2025;

/// The detector shape the reference (and every scored replay) runs:
/// the paper's 400 ms window at half overlap, with an unreachable
/// threshold so trigger bookkeeping never perturbs the stream.
pub fn detector_config() -> DetectorConfig {
    DetectorConfig {
        pipeline: PipelineConfig::paper(400.0, Overlap::Half),
        threshold: 1.1,
        consecutive: 1,
        guard: GuardConfig::default(),
    }
}

/// A detector with a [`DriftMonitor`] installed as its tap (traced
/// inference path, so attribution shares are folded per window).
pub fn monitored_detector(cfg: DriftConfig) -> (StreamingDetector, DriftHandle) {
    let dc = detector_config();
    let window = dc.pipeline.segmentation.window();
    let net = ModelKind::ProposedCnn
        .build(window, 9, 1)
        .expect("model builds");
    let mut det =
        StreamingDetector::new(net, Normalizer::identity(9), dc).expect("detector builds");
    let handle = DriftMonitor::install(&mut det, cfg);
    (det, handle)
}

/// The ADL trials of a seeded synthetic dataset — the stand-in for a
/// free-living deployment stream (falls are rare events, not the
/// distribution's body). Seven subjects: with fewer, subject-level
/// variation dominates and two draws of the *same* generator can sit
/// a large PSI apart — the population has to be big enough that "same
/// distribution" is statistically meaningful.
pub fn adl_trials(seed: u64) -> Vec<Trial> {
    let dataset = Dataset::generate(&DatasetConfig {
        kfall_subjects: 4,
        self_collected_subjects: 3,
        trials_per_task: 1,
        duration_scale: 0.5,
        seed,
    })
    .expect("dataset generates");
    let adls: Vec<Trial> = dataset
        .trials()
        .iter()
        .filter(|t| !t.is_fall())
        .cloned()
        .collect();
    assert!(!adls.is_empty(), "dataset must contain ADL trials");
    adls
}

/// Streams one trial's raw channels through the detector sample by
/// sample, exactly as a wearer's device would.
pub fn stream_trial(det: &mut StreamingDetector, trial: &Trial) {
    let ch = trial.channels();
    // Six parallel channel slices share one sample index.
    #[allow(clippy::needless_range_loop)]
    for i in 0..trial.len() {
        let accel = [ch[0][i], ch[1][i], ch[2][i]];
        let gyro = [ch[3][i], ch[4][i], ch[5][i]];
        let _ = det.push_sample(accel, gyro);
    }
}

/// Builds the reference fingerprint: every ADL trial of the
/// [`REFERENCE_SEED`] dataset, streamed through a drift-tapped
/// detector. This is the artifact committed as
/// `ci/drift_reference.pfdf`.
pub fn build_reference() -> Fingerprint {
    let (mut det, handle) = monitored_detector(DriftConfig::default());
    for trial in &adl_trials(REFERENCE_SEED) {
        stream_trial(&mut det, trial);
    }
    handle.fingerprint()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_is_reproducible_and_fully_populated() {
        let a = build_reference();
        let b = build_reference();
        assert_eq!(a.to_bytes(), b.to_bytes(), "two builds must be bit-equal");
        assert!(a.samples() > 1000, "samples {}", a.samples());
        assert!(a.windows() > 0, "windows folded");
        assert_eq!(
            a.shares[0].count(),
            a.windows(),
            "attribution folded per window"
        );
    }
}
