//! Benchmark harness: every table and figure of the paper has a
//! regeneration binary in `src/bin/`, and the on-edge kernels (§IV-C)
//! are measured by the Criterion benches in `benches/`.
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1_context` | Table I context: threshold baseline vs the CNN at event level |
//! | `table2_activities` | Table II: the 44-task catalogue |
//! | `table3` | Table III: model × window segment-level comparison |
//! | `table4` | Table IV: event-level misclassification per task |
//! | `figure1` | Fig. 1: annotated fall-stage timeline |
//! | `edge_perf` | §IV-C: quantization + STM32F722 deployment envelope |
//! | `sweep_windows` | §III-A: window × overlap grid |
//! | `ablations` | DESIGN.md ablation suite |
//!
//! All binaries honour the `PREFALL_*` environment overrides documented
//! on [`prefall_core::experiment::ExperimentConfig`].
//!
//! The `benchdiff` binary (backed by [`diff`]) compares two
//! `BENCH_telemetry.json` snapshots and exits non-zero on latency or
//! lead-time regressions — the CI gate against the committed baseline.

pub mod diff;
pub mod driftref;

/// The paper's Table III values (%, macro-averaged), for side-by-side
/// printing: `(model, window_ms, accuracy, precision, recall, f1)`.
pub const PAPER_TABLE3: [(&str, f64, f64, f64, f64, f64); 12] = [
    ("MLP", 200.0, 96.76, 51.24, 50.00, 49.18),
    ("MLP", 300.0, 96.62, 53.02, 55.39, 54.13),
    ("MLP", 400.0, 96.45, 60.23, 54.63, 54.25),
    ("LSTM", 200.0, 97.28, 80.92, 68.62, 72.98),
    ("LSTM", 300.0, 97.43, 82.51, 72.08, 75.93),
    ("LSTM", 400.0, 97.60, 85.97, 75.74, 79.81),
    ("ConvLSTM2D", 200.0, 97.12, 81.24, 61.61, 66.37),
    ("ConvLSTM2D", 300.0, 97.21, 83.67, 63.55, 68.53),
    ("ConvLSTM2D", 400.0, 97.10, 85.57, 65.36, 70.75),
    ("CNN (Proposed)", 200.0, 97.93, 85.61, 78.85, 81.75),
    ("CNN (Proposed)", 300.0, 98.01, 86.38, 80.03, 82.85),
    ("CNN (Proposed)", 400.0, 98.28, 90.40, 83.95, 86.69),
];

/// Paper Table IVa: % of fall events misclassified as ADLs, per task.
pub const PAPER_TABLE4A: [(u8, f64); 21] = [
    (39, 16.00),
    (40, 12.00),
    (21, 9.47),
    (22, 8.42),
    (41, 8.00),
    (33, 6.95),
    (27, 5.35),
    (29, 4.42),
    (37, 4.00),
    (42, 4.00),
    (30, 3.85),
    (31, 3.37),
    (32, 3.17),
    (28, 2.73),
    (34, 2.72),
    (26, 2.19),
    (23, 2.17),
    (24, 1.61),
    (25, 1.60),
    (20, 1.60),
    (38, 0.00),
];

/// Paper Table IVb: % of ADL events misclassified as falls, per task.
pub const PAPER_TABLE4B: [(u8, f64); 23] = [
    (44, 20.00),
    (15, 11.29),
    (19, 6.74),
    (4, 6.35),
    (5, 2.16),
    (10, 2.13),
    (14, 1.63),
    (8, 1.62),
    (18, 1.10),
    (9, 0.56),
    (16, 0.56),
    (3, 0.54),
    (1, 0.00),
    (2, 0.00),
    (6, 0.00),
    (7, 0.00),
    (11, 0.00),
    (12, 0.00),
    (13, 0.00),
    (17, 0.00),
    (35, 0.00),
    (36, 0.00),
    (43, 0.00),
];

/// Paper headline event-level aggregates.
pub mod paper_aggregates {
    /// Overall % of fall events missed (Table IVa "All actions").
    pub const FALL_MISS_PCT: f64 = 4.17;
    /// Overall % of ADL events falsely flagged (Table IVb "All actions").
    pub const ADL_FP_PCT: f64 = 2.04;
    /// Red-task false-activation % (Table IVb).
    pub const RED_FP_PCT: f64 = 3.34;
    /// Green-task false-activation % (Table IVb).
    pub const GREEN_FP_PCT: f64 = 0.46;
}

/// Paper §IV-C on-edge envelope.
pub mod paper_edge {
    /// Model flash footprint in KiB.
    pub const MODEL_KIB: f64 = 67.03;
    /// Total RAM usage in KiB.
    pub const RAM_KIB: f64 = 16.87;
    /// Nominal inference latency in ms.
    pub const INFERENCE_MS: f64 = 4.0;
    /// Latency jitter in ms.
    pub const JITTER_MS: f64 = 3.0;
    /// Sensor-fusion pipeline latency in ms.
    pub const FUSION_MS: f64 = 3.0;
}

/// Shared telemetry plumbing for the bench binaries: every binary that
/// measures something routes its numbers through a
/// [`prefall_telemetry::Registry`] and dumps `BENCH_telemetry.json` for
/// machine consumption, alongside the human tables on stdout.
pub mod telemetry_out {
    use prefall_telemetry::{summary, JsonValue, Registry, Snapshot, TelemetryEnv};
    use std::io::Write;
    use std::sync::Arc;

    /// Directory every bench artifact lands in (gitignored; CI uploads
    /// from here). Keeping artifacts out of the repo root means a bench
    /// run never dirties `git status`.
    pub const BENCH_OUT_DIR: &str = "bench-out";

    /// The file every bench binary writes its telemetry snapshot to.
    pub const BENCH_TELEMETRY_PATH: &str = "BENCH_telemetry.json";

    /// `bench-out/<name>`, creating the directory on first use. Names
    /// that already carry a directory component pass through untouched
    /// (a caller that wants an explicit destination keeps it).
    pub fn out_path(name: &str) -> String {
        if name.contains('/') {
            return name.to_string();
        }
        if let Err(e) = std::fs::create_dir_all(BENCH_OUT_DIR) {
            eprintln!("bench: cannot create {BENCH_OUT_DIR}/: {e}");
            return name.to_string();
        }
        format!("{BENCH_OUT_DIR}/{name}")
    }

    /// The standard bench sinks: an aggregate [`Registry`] plus whatever
    /// progress recorder the environment asks for (stderr unless
    /// `PREFALL_QUIET=1`, JSONL when `PREFALL_TELEMETRY_JSONL` is set),
    /// already fanned out into one recorder.
    pub fn bench_recorder() -> (Arc<Registry>, Arc<dyn prefall_telemetry::Recorder>) {
        let registry = Arc::new(Registry::new());
        let progress = TelemetryEnv::from_env().progress_recorder();
        let fanout: Arc<dyn prefall_telemetry::Recorder> =
            Arc::new(prefall_telemetry::FanoutRecorder::new(vec![
                registry.clone(),
                progress,
            ]));
        (registry, fanout)
    }

    /// Writes `{"bench": name, ...extra, "counters": …, "gauges": …,
    /// "histograms": …}` to [`BENCH_TELEMETRY_PATH`] and prints the
    /// human-readable summary table on stderr (unless `PREFALL_QUIET`).
    pub fn dump(bench: &str, snapshot: &Snapshot, extra: Vec<(String, JsonValue)>) {
        dump_to(BENCH_TELEMETRY_PATH, bench, snapshot, extra);
    }

    /// Like [`dump`] but writing to an arbitrary file name, for
    /// binaries whose snapshot must not clobber `BENCH_telemetry.json`
    /// (e.g. the `robustness` sweep writes `BENCH_robustness.json` so
    /// both can be diffed against their own baselines). Bare names are
    /// routed into [`BENCH_OUT_DIR`].
    pub fn dump_to(path: &str, bench: &str, snapshot: &Snapshot, extra: Vec<(String, JsonValue)>) {
        let path = &out_path(path);
        let mut fields = vec![("bench".to_string(), JsonValue::Str(bench.to_string()))];
        fields.extend(extra);
        if let JsonValue::Obj(sections) = snapshot.to_json() {
            fields.extend(sections);
        }
        let doc = JsonValue::Obj(fields);
        let quiet = TelemetryEnv::from_env().quiet;
        match std::fs::File::create(path) {
            Ok(mut f) => {
                if let Err(e) = writeln!(f, "{doc}") {
                    eprintln!("{bench}: cannot write {path}: {e}");
                } else if !quiet {
                    eprintln!("{bench}: telemetry snapshot written to {path}");
                }
            }
            Err(e) => eprintln!("{bench}: cannot create {path}: {e}"),
        }
        if !quiet {
            eprint!("{}", summary::render(snapshot));
        }
    }
}

/// Looks up a paper Table III row.
pub fn paper_table3(model: &str, window_ms: f64) -> Option<(f64, f64, f64, f64)> {
    PAPER_TABLE3
        .iter()
        .find(|(m, w, ..)| *m == model && (*w - window_ms).abs() < 1e-9)
        .map(|&(_, _, a, p, r, f)| (a, p, r, f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table3_lookup() {
        let (a, p, r, f) = paper_table3("CNN (Proposed)", 400.0).unwrap();
        assert_eq!((a, p, r, f), (98.28, 90.40, 83.95, 86.69));
        assert!(paper_table3("CNN (Proposed)", 500.0).is_none());
    }

    #[test]
    fn table4b_covers_all_23_adls() {
        let mut tasks: Vec<u8> = PAPER_TABLE4B.iter().map(|(t, _)| *t).collect();
        tasks.sort_unstable();
        tasks.dedup();
        assert_eq!(tasks.len(), 23);
        for t in &tasks {
            let a = prefall_imu::activity::Activity::from_task(*t).unwrap();
            assert!(!a.is_fall(), "task {t} in IVb must be an ADL");
        }
    }

    #[test]
    fn table4a_tasks_are_falls() {
        let mut tasks: Vec<u8> = PAPER_TABLE4A.iter().map(|(t, _)| *t).collect();
        tasks.sort_unstable();
        tasks.dedup();
        assert_eq!(tasks.len(), 21, "all 21 fall tasks present");
        for t in &tasks {
            let a = prefall_imu::activity::Activity::from_task(*t).unwrap();
            assert!(a.is_fall(), "task {t} in IVa must be a fall");
        }
    }
}
