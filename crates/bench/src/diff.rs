//! Bench-snapshot regression diffing: the library behind the
//! `benchdiff` binary and the CI latency gate.
//!
//! Two `BENCH_telemetry.json` snapshots (a committed baseline and a
//! fresh candidate) are compared **by summary statistics** — p50, p95,
//! p99, mean — never by bucket layout, so a baseline recorded with the
//! coarse default buckets stays comparable after the histogram
//! resolution changes. Three regression rules apply:
//!
//! * **latency** (histograms named `*_seconds`): a quantile that grows
//!   past the relative threshold *and* the absolute floor fails. The
//!   default threshold is deliberately generous because CI baselines
//!   travel between machines.
//! * **lead time** (`detector.lead_time_ms`): simulation-domain, so a
//!   much tighter shrink threshold applies — higher is better here.
//! * **budget fraction** (`falls_lead_ge_budget / triggered_falls` from
//!   the snapshot's top-level fields): an absolute drop beyond the
//!   configured slack fails.
//! * **clean-leg drift** (gauges/fields named `drift.clean_*_psi`):
//!   PSI of a healthy replay against the committed reference
//!   fingerprint. Growth past an *absolute* allowance fails — PSI is
//!   already a normalized divergence, so a relative gate on a
//!   near-zero baseline would be meaningless noise.

use prefall_telemetry::JsonValue;
use std::collections::BTreeMap;

/// Summary statistics of one histogram, as serialised by
/// [`crate::telemetry_out::dump`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistStats {
    /// Observation count.
    pub count: f64,
    /// Sum of observations.
    pub sum: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (P² estimate).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// One parsed bench snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSnapshot {
    /// Which binary produced it (`"edge_perf"`, …).
    pub bench: String,
    /// Top-level scalar fields (`falls`, `triggered_falls`, …).
    pub fields: BTreeMap<String, f64>,
    /// Counter section.
    pub counters: BTreeMap<String, f64>,
    /// Gauge section.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries.
    pub histograms: BTreeMap<String, HistStats>,
}

fn num(obj: &JsonValue, key: &str) -> Option<f64> {
    obj.get(key).and_then(JsonValue::as_f64)
}

impl BenchSnapshot {
    /// Parses a `BENCH_telemetry.json` document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed construct.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = JsonValue::parse(text.trim())?;
        let bench = match doc.get("bench") {
            Some(JsonValue::Str(s)) => s.clone(),
            _ => return Err("missing \"bench\" field".to_string()),
        };
        let mut snap = Self {
            bench,
            fields: BTreeMap::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        };
        let JsonValue::Obj(top) = &doc else {
            return Err("top level is not an object".to_string());
        };
        for (key, value) in top {
            match key.as_str() {
                "bench" => {}
                "counters" | "gauges" => {
                    let JsonValue::Obj(entries) = value else {
                        return Err(format!("\"{key}\" is not an object"));
                    };
                    let section = if key == "counters" {
                        &mut snap.counters
                    } else {
                        &mut snap.gauges
                    };
                    for (name, v) in entries {
                        if let Some(x) = v.as_f64() {
                            section.insert(name.clone(), x);
                        }
                    }
                }
                "histograms" => {
                    let JsonValue::Obj(entries) = value else {
                        return Err("\"histograms\" is not an object".to_string());
                    };
                    for (name, h) in entries {
                        let stats = HistStats {
                            count: num(h, "count").unwrap_or(0.0),
                            sum: num(h, "sum").unwrap_or(f64::NAN),
                            mean: num(h, "mean").unwrap_or(f64::NAN),
                            p50: num(h, "p50").unwrap_or(f64::NAN),
                            p95: num(h, "p95").unwrap_or(f64::NAN),
                            p99: num(h, "p99").unwrap_or(f64::NAN),
                        };
                        snap.histograms.insert(name.clone(), stats);
                    }
                }
                _ => {
                    if let Some(x) = value.as_f64() {
                        snap.fields.insert(key.clone(), x);
                    }
                }
            }
        }
        Ok(snap)
    }

    /// Reads and parses a snapshot file.
    ///
    /// # Errors
    ///
    /// IO failures and parse failures, with the path in the message.
    pub fn load(path: &str) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Self::parse(&text).map_err(|e| format!("{path}: {e}"))
    }

    /// The lead-time-budget fraction encoded in the top-level fields,
    /// if the snapshot carries one.
    pub fn budget_fraction(&self) -> Option<f64> {
        let within = *self.fields.get("falls_lead_ge_budget")?;
        let triggered = *self.fields.get("triggered_falls")?;
        (triggered > 0.0).then(|| within / triggered)
    }
}

/// Regression thresholds. Latency thresholds are generous by default —
/// CI compares wall-clock numbers recorded on different machines —
/// while the simulation-domain lead-time thresholds are tight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Relative growth (in %) a latency quantile may show before it
    /// counts as a regression.
    pub latency_pct: f64,
    /// Absolute growth floor for latency, in seconds: changes smaller
    /// than this never fail, whatever the relative growth.
    pub latency_floor_s: f64,
    /// Relative shrink (in %) a lead-time quantile may show.
    pub lead_pct: f64,
    /// Absolute shrink floor for lead time, in ms.
    pub lead_floor_ms: f64,
    /// Absolute drop the lead-time-budget fraction may show.
    pub budget_drop: f64,
    /// Relative shrink (in %) a speedup gauge or field (any metric
    /// whose name contains `speedup`) may show — higher is better, so
    /// only shrink gates. Generous by default: parallel speedup depends
    /// on the host's core count.
    pub speedup_pct: f64,
    /// Relative shrink (in %) a throughput gauge or field (any metric
    /// whose name ends in `_per_s`, e.g. the fleet's
    /// `fleet.sessions_per_s`) may show — higher is better, so only
    /// shrink gates, and generously: wall-clock throughput travels
    /// between CI machines.
    pub throughput_pct: f64,
    /// Absolute PSI growth a clean-leg drift gauge or field (any
    /// metric named `drift.clean_*_psi`) may show. Absolute, not
    /// relative: the clean baseline sits near zero by construction, so
    /// percentage change is meaningless — what matters is how much
    /// divergence a healthy replay accumulated against the committed
    /// reference. 0.05 is a quarter of the conventional 0.2 "moderate
    /// shift" reading.
    pub drift_abs: f64,
    /// Minimum observation count (on both sides) before a histogram can
    /// gate at all. Tiny histograms — a 3-sample `normalize_seconds` —
    /// swing hundreds of percent run-to-run on the same machine from
    /// pure scheduling noise; they are reported but never fail.
    pub min_count: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Self {
            latency_pct: 200.0,
            latency_floor_s: 50e-6,
            lead_pct: 10.0,
            lead_floor_ms: 5.0,
            budget_drop: 0.05,
            speedup_pct: 25.0,
            throughput_pct: 30.0,
            drift_abs: 0.05,
            min_count: 20.0,
        }
    }
}

/// One compared statistic.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Metric name (`detector.infer_seconds`, …).
    pub metric: String,
    /// Statistic compared (`p95`, `mean`, `budget_fraction`, …).
    pub stat: &'static str,
    /// Baseline value.
    pub base: f64,
    /// Candidate value.
    pub cand: f64,
    /// Whether this delta trips the regression gate.
    pub regression: bool,
}

impl Delta {
    /// Relative change in percent (NaN when the baseline is zero or
    /// either side is non-finite).
    pub fn pct_change(&self) -> f64 {
        if self.base == 0.0 || !self.base.is_finite() || !self.cand.is_finite() {
            f64::NAN
        } else {
            (self.cand - self.base) / self.base * 100.0
        }
    }
}

/// A full comparison.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Every compared statistic, regression or not.
    pub deltas: Vec<Delta>,
    /// Metrics present on only one side (informational).
    pub unmatched: Vec<String>,
}

impl DiffReport {
    /// The deltas that tripped the gate.
    pub fn regressions(&self) -> impl Iterator<Item = &Delta> {
        self.deltas.iter().filter(|d| d.regression)
    }

    /// True when any statistic regressed.
    pub fn has_regressions(&self) -> bool {
        self.regressions().next().is_some()
    }

    /// Human-readable table: one line per compared statistic, with
    /// regressions marked `FAIL`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<34} {:<16} {:>12} {:>12} {:>9}  status\n",
            "metric", "stat", "baseline", "candidate", "change"
        ));
        for d in &self.deltas {
            let pct = d.pct_change();
            let change = if pct.is_nan() {
                "-".to_string()
            } else {
                format!("{pct:+.1}%")
            };
            out.push_str(&format!(
                "{:<34} {:<16} {:>12.6} {:>12.6} {:>9}  {}\n",
                d.metric,
                d.stat,
                d.base,
                d.cand,
                change,
                if d.regression { "FAIL" } else { "ok" }
            ));
        }
        for name in &self.unmatched {
            out.push_str(&format!("{name:<34} (present on one side only)\n"));
        }
        out
    }
}

fn is_latency(name: &str) -> bool {
    name.ends_with("_seconds")
}

fn is_lead_time(name: &str) -> bool {
    name.ends_with("lead_time_ms")
}

fn is_speedup(name: &str) -> bool {
    name.contains("speedup")
}

fn is_throughput(name: &str) -> bool {
    name.ends_with("_per_s")
}

fn is_clean_drift(name: &str) -> bool {
    name.starts_with("drift.clean_") && name.ends_with("_psi")
}

fn drift_regressed(base: f64, cand: f64, t: &Thresholds) -> bool {
    base.is_finite() && cand.is_finite() && cand - base > t.drift_abs
}

fn speedup_regressed(base: f64, cand: f64, t: &Thresholds) -> bool {
    base.is_finite() && cand.is_finite() && cand < base * (1.0 - t.speedup_pct / 100.0)
}

fn throughput_regressed(base: f64, cand: f64, t: &Thresholds) -> bool {
    base.is_finite() && cand.is_finite() && cand < base * (1.0 - t.throughput_pct / 100.0)
}

fn latency_regressed(base: f64, cand: f64, t: &Thresholds) -> bool {
    base.is_finite()
        && cand.is_finite()
        && cand - base > t.latency_floor_s
        && cand > base * (1.0 + t.latency_pct / 100.0)
}

fn lead_regressed(base: f64, cand: f64, t: &Thresholds) -> bool {
    base.is_finite()
        && cand.is_finite()
        && base - cand > t.lead_floor_ms
        && cand < base * (1.0 - t.lead_pct / 100.0)
}

/// Compares two snapshots under the given thresholds.
///
/// Latency histograms gate on p50/p95/p99/mean growth; the lead-time
/// histogram gates on p50/mean shrink; the budget fraction gates on an
/// absolute drop. Histograms under `min_count` observations on either
/// side, and everything else, are reported but never fail.
pub fn diff(base: &BenchSnapshot, cand: &BenchSnapshot, t: &Thresholds) -> DiffReport {
    let mut report = DiffReport::default();

    for (name, b) in &base.histograms {
        let Some(c) = cand.histograms.get(name) else {
            report.unmatched.push(name.clone());
            continue;
        };
        let gateable = b.count >= t.min_count && c.count >= t.min_count;
        let stats: [(&'static str, f64, f64); 4] = [
            ("p50", b.p50, c.p50),
            ("p95", b.p95, c.p95),
            ("p99", b.p99, c.p99),
            ("mean", b.mean, c.mean),
        ];
        for (stat, bv, cv) in stats {
            let regression = if !gateable {
                false
            } else if is_latency(name) {
                latency_regressed(bv, cv, t)
            } else if is_lead_time(name) {
                lead_regressed(bv, cv, t)
            } else {
                false
            };
            report.deltas.push(Delta {
                metric: name.clone(),
                stat,
                base: bv,
                cand: cv,
                regression,
            });
        }
        report.deltas.push(Delta {
            metric: name.clone(),
            stat: "count",
            base: b.count,
            cand: c.count,
            regression: false,
        });
    }
    for name in cand.histograms.keys() {
        if !base.histograms.contains_key(name) {
            report.unmatched.push(name.clone());
        }
    }

    // Speedup and throughput gauges/fields: higher is better; only
    // shrink past the respective threshold gates. Clean-leg drift PSI:
    // lower is better; only absolute growth gates.
    for (section_base, section_cand) in [(&base.gauges, &cand.gauges), (&base.fields, &cand.fields)]
    {
        for (name, bv) in section_base {
            let rule: fn(f64, f64, &Thresholds) -> bool = if is_speedup(name) {
                speedup_regressed
            } else if is_throughput(name) {
                throughput_regressed
            } else if is_clean_drift(name) {
                drift_regressed
            } else {
                continue;
            };
            let Some(cv) = section_cand.get(name) else {
                report.unmatched.push(name.clone());
                continue;
            };
            report.deltas.push(Delta {
                metric: name.clone(),
                stat: "value",
                base: *bv,
                cand: *cv,
                regression: rule(*bv, *cv, t),
            });
        }
    }

    if let (Some(bf), Some(cf)) = (base.budget_fraction(), cand.budget_fraction()) {
        report.deltas.push(Delta {
            metric: "lead_time_budget".to_string(),
            stat: "budget_fraction",
            base: bf,
            cand: cf,
            regression: bf - cf > t.budget_drop,
        });
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{"bench":"edge_perf","budget_ms":150.0,"falls":100,
        "triggered_falls":98,"falls_lead_ge_budget":90,
        "counters":{"detector.windows":5000},
        "gauges":{"edge.inference_ms":4.2},
        "histograms":{
          "detector.infer_seconds":{"count":5000,"sum":0.3,"min":1e-5,
            "max":2e-3,"mean":6e-5,"p50":5.6e-5,"p95":7.3e-5,"p99":8.8e-5,
            "bounds":[1e-4],"counts":[5000,0]},
          "detector.lead_time_ms":{"count":98,"sum":40000.0,"min":50.0,
            "max":900.0,"mean":420.0,"p50":360.0,"p95":800.0,"p99":880.0,
            "bounds":[500.0],"counts":[60,38]}}}"#;

    fn tweaked(f: impl Fn(&mut BenchSnapshot)) -> BenchSnapshot {
        let mut s = BenchSnapshot::parse(BASE).unwrap();
        f(&mut s);
        s
    }

    #[test]
    fn parse_extracts_all_sections() {
        let s = BenchSnapshot::parse(BASE).unwrap();
        assert_eq!(s.bench, "edge_perf");
        assert_eq!(s.fields["falls"], 100.0);
        assert_eq!(s.counters["detector.windows"], 5000.0);
        assert_eq!(s.gauges["edge.inference_ms"], 4.2);
        assert_eq!(s.histograms["detector.infer_seconds"].p95, 7.3e-5);
        let frac = s.budget_fraction().unwrap();
        assert!((frac - 90.0 / 98.0).abs() < 1e-12);
    }

    #[test]
    fn identical_snapshots_pass() {
        let s = BenchSnapshot::parse(BASE).unwrap();
        let report = diff(&s, &s, &Thresholds::default());
        assert!(!report.has_regressions(), "{}", report.render());
        assert!(!report.deltas.is_empty());
    }

    #[test]
    fn latency_blowup_fails_but_small_noise_passes() {
        let t = Thresholds::default();
        let base = BenchSnapshot::parse(BASE).unwrap();

        // 10× p95: clearly past +200 % and the 50 µs floor.
        let slow = tweaked(|s| {
            let h = s.histograms.get_mut("detector.infer_seconds").unwrap();
            h.p95 *= 10.0;
            h.p99 *= 10.0;
        });
        let report = diff(&base, &slow, &t);
        assert!(report.has_regressions());
        let failing: Vec<_> = report.regressions().map(|d| d.stat).collect();
        assert!(failing.contains(&"p95") && failing.contains(&"p99"));

        // 2× p95 stays inside the generous relative threshold.
        let noisy = tweaked(|s| {
            s.histograms.get_mut("detector.infer_seconds").unwrap().p95 *= 2.0;
        });
        assert!(!diff(&base, &noisy, &t).has_regressions());

        // Huge relative growth under the absolute floor also passes:
        // 5 µs → 40 µs is +700 % but only 35 µs of change.
        let tiny = tweaked(|s| {
            let h = s.histograms.get_mut("detector.infer_seconds").unwrap();
            h.p50 = 40e-6;
        });
        let base_tiny = tweaked(|s| {
            s.histograms.get_mut("detector.infer_seconds").unwrap().p50 = 5e-6;
        });
        assert!(!diff(&base_tiny, &tiny, &t).has_regressions());
    }

    #[test]
    fn lead_time_shrink_fails() {
        let base = BenchSnapshot::parse(BASE).unwrap();
        let worse = tweaked(|s| {
            let h = s.histograms.get_mut("detector.lead_time_ms").unwrap();
            h.p50 = 250.0; // −30 %: well past the 10 % gate
        });
        let report = diff(&base, &worse, &Thresholds::default());
        assert!(report.has_regressions());
        assert!(report
            .regressions()
            .any(|d| d.metric == "detector.lead_time_ms" && d.stat == "p50"));
        // Lead time *growing* is an improvement, never a failure.
        let better = tweaked(|s| {
            s.histograms.get_mut("detector.lead_time_ms").unwrap().p50 = 500.0;
        });
        assert!(!diff(&base, &better, &Thresholds::default()).has_regressions());
    }

    #[test]
    fn budget_fraction_drop_fails() {
        let base = BenchSnapshot::parse(BASE).unwrap();
        let worse = tweaked(|s| {
            s.fields.insert("falls_lead_ge_budget".to_string(), 70.0);
        });
        let report = diff(&base, &worse, &Thresholds::default());
        assert!(
            report.regressions().any(|d| d.stat == "budget_fraction"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn different_bucket_layouts_still_compare() {
        // The candidate was recorded with different bounds — summary
        // stats are all that matter.
        let cand = tweaked(|s| {
            // Simulates a re-bucketed snapshot: stats survive, layout
            // (which parse ignores) differs.
            let h = s.histograms.get_mut("detector.infer_seconds").unwrap();
            h.p95 *= 1.01;
        });
        let base = BenchSnapshot::parse(BASE).unwrap();
        assert!(!diff(&base, &cand, &Thresholds::default()).has_regressions());
    }

    #[test]
    fn low_count_histograms_never_gate() {
        // 3 observations: a +400 % mean swing is scheduling noise, not
        // a regression (seen live on back-to-back edge_perf runs).
        let base = tweaked(|s| {
            let h = s.histograms.get_mut("detector.infer_seconds").unwrap();
            h.count = 3.0;
        });
        let noisy = tweaked(|s| {
            let h = s.histograms.get_mut("detector.infer_seconds").unwrap();
            h.count = 3.0;
            h.p95 *= 5.0;
            h.mean *= 5.0;
        });
        assert!(!diff(&base, &noisy, &Thresholds::default()).has_regressions());
        // The same swing at full count still fails.
        let full = tweaked(|s| {
            let h = s.histograms.get_mut("detector.infer_seconds").unwrap();
            h.p95 *= 5.0;
            h.mean *= 5.0;
        });
        let full_base = BenchSnapshot::parse(BASE).unwrap();
        assert!(diff(&full_base, &full, &Thresholds::default()).has_regressions());
    }

    #[test]
    fn speedup_shrink_fails_but_growth_and_noise_pass() {
        let t = Thresholds::default();
        let with_speedup = |v: f64| {
            tweaked(move |s| {
                s.gauges.insert("perf.speedup".to_string(), v);
            })
        };
        let base = with_speedup(3.0);

        // Collapse to 1.0× (−67 %): well past the 25 % gate.
        let collapsed = with_speedup(1.0);
        let report = diff(&base, &collapsed, &t);
        assert!(
            report
                .regressions()
                .any(|d| d.metric == "perf.speedup" && d.stat == "value"),
            "{}",
            report.render()
        );

        // −10 % is machine noise; growth is an improvement.
        assert!(!diff(&base, &with_speedup(2.7), &t).has_regressions());
        assert!(!diff(&base, &with_speedup(4.0), &t).has_regressions());

        // Speedup encoded as a top-level field gates identically.
        let fbase = tweaked(|s| {
            s.fields.insert("wall_speedup".to_string(), 2.5);
        });
        let fworse = tweaked(|s| {
            s.fields.insert("wall_speedup".to_string(), 1.0);
        });
        assert!(diff(&fbase, &fworse, &t).has_regressions());
    }

    #[test]
    fn throughput_shrink_fails_but_growth_and_noise_pass() {
        let t = Thresholds::default();
        let with_tp = |v: f64| {
            tweaked(move |s| {
                s.gauges.insert("fleet.sessions_per_s".to_string(), v);
            })
        };
        let base = with_tp(1000.0);

        // −50 %: well past the 30 % gate.
        let report = diff(&base, &with_tp(500.0), &t);
        assert!(
            report
                .regressions()
                .any(|d| d.metric == "fleet.sessions_per_s" && d.stat == "value"),
            "{}",
            report.render()
        );

        // −20 % is machine noise; growth is an improvement.
        assert!(!diff(&base, &with_tp(800.0), &t).has_regressions());
        assert!(!diff(&base, &with_tp(2000.0), &t).has_regressions());

        // Throughput as a top-level field gates identically.
        let fbase = tweaked(|s| {
            s.fields.insert("batches_per_s".to_string(), 400.0);
        });
        let fworse = tweaked(|s| {
            s.fields.insert("batches_per_s".to_string(), 100.0);
        });
        assert!(diff(&fbase, &fworse, &t).has_regressions());
    }

    #[test]
    fn clean_drift_growth_fails_absolutely_shrink_and_noise_pass() {
        let t = Thresholds::default();
        let with_psi = |v: f64| {
            tweaked(move |s| {
                s.gauges.insert("drift.clean_input_psi".to_string(), v);
            })
        };
        // A healthy clean leg sits near zero.
        let base = with_psi(0.004);

        // +0.2 PSI: a healthy replay now diverges from the reference —
        // the sketches, the pipeline, or the generator changed.
        let report = diff(&base, &with_psi(0.204), &t);
        assert!(
            report
                .regressions()
                .any(|d| d.metric == "drift.clean_input_psi" && d.stat == "value"),
            "{}",
            report.render()
        );

        // +0.03 is inside the absolute allowance even though it is a
        // +750 % relative change; shrink is an improvement.
        assert!(!diff(&base, &with_psi(0.034), &t).has_regressions());
        assert!(!diff(&base, &with_psi(0.0), &t).has_regressions());

        // Non-clean drift gauges (the live monitor's own output during
        // the storm legs) never gate.
        let storm = |v: f64| {
            tweaked(move |s| {
                s.gauges.insert("drift.input_psi".to_string(), v);
            })
        };
        assert!(!diff(&storm(0.1), &storm(6.0), &t).has_regressions());

        // Clean drift as a top-level field gates identically.
        let fbase = tweaked(|s| {
            s.fields.insert("drift.clean_score_psi".to_string(), 0.01);
        });
        let fworse = tweaked(|s| {
            s.fields.insert("drift.clean_score_psi".to_string(), 0.30);
        });
        assert!(diff(&fbase, &fworse, &t).has_regressions());
    }

    #[test]
    fn missing_histograms_are_reported_not_failed() {
        let base = BenchSnapshot::parse(BASE).unwrap();
        let cand = tweaked(|s| {
            s.histograms.remove("detector.lead_time_ms");
        });
        let report = diff(&base, &cand, &Thresholds::default());
        assert!(!report.has_regressions());
        assert!(report
            .unmatched
            .contains(&"detector.lead_time_ms".to_string()));
    }

    #[test]
    fn render_marks_failures() {
        let base = BenchSnapshot::parse(BASE).unwrap();
        let slow = tweaked(|s| {
            s.histograms.get_mut("detector.infer_seconds").unwrap().p99 *= 20.0;
        });
        let text = diff(&base, &slow, &Thresholds::default()).render();
        assert!(text.contains("FAIL"));
        assert!(text.contains("detector.infer_seconds"));
    }
}
