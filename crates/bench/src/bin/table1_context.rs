//! **Table I context**: the threshold-based detector family that the
//! related-work table contrasts with learned models. Evaluates the
//! classic free-fall threshold detector (refs \[10\], \[11\]) at event
//! level — with the same 150 ms pre-impact deadline the CNN must meet —
//! next to the proposed CNN.
//!
//! ```text
//! cargo run --release -p prefall-bench --bin table1_context
//! ```

use prefall_core::events::EventReport;
use prefall_core::experiment::{Experiment, ExperimentConfig};
use prefall_core::models::ModelKind;
use prefall_core::threshold::{evaluate_threshold, ThresholdConfig, ThresholdDetector};
use prefall_imu::dataset::Dataset;

fn main() {
    let mut config = ExperimentConfig::table3_default().with_env_overrides();
    config.windows_ms = vec![400.0];
    config.models = vec![ModelKind::ProposedCnn];

    let dataset = Dataset::generate(&config.dataset).expect("dataset");

    println!("=== Table I context: threshold detectors vs the proposed CNN (event level) ===");
    println!(
        "{:<34} {:>9} {:>9} {:>9} {:>9}",
        "Detector", "Acc %", "Prec %", "Rec %", "F1 %"
    );
    println!("{}", "-".repeat(75));

    for (name, cfg) in [
        (
            "Threshold 0.60 g × 30 ms [11]",
            ThresholdConfig {
                freefall_g: 0.60,
                min_duration_samples: 3,
                gyro_gate_rads: 0.0,
            },
        ),
        (
            "Threshold 0.50 g × 50 ms [10]",
            ThresholdConfig {
                freefall_g: 0.50,
                min_duration_samples: 5,
                gyro_gate_rads: 0.0,
            },
        ),
        (
            "Threshold 0.60 g + gyro gate",
            ThresholdConfig {
                freefall_g: 0.60,
                min_duration_samples: 3,
                gyro_gate_rads: 0.8,
            },
        ),
    ] {
        let report = evaluate_threshold(&ThresholdDetector::new(cfg), dataset.trials());
        println!(
            "{:<34} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            name,
            report.accuracy_pct(),
            report.precision_pct(),
            report.recall_pct(),
            report.f1_pct()
        );
    }

    eprintln!("training the proposed CNN for the comparison row...");
    // The CNN is operated at the paper's FP-minimising point, not at
    // the raw 0.5 sigmoid midpoint.
    let threshold: f32 = std::env::var("PREFALL_THRESHOLD")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.95);
    let exp_report = Experiment::new(config).run().expect("cnn run");
    let cell = exp_report
        .cell(ModelKind::ProposedCnn, 400.0)
        .expect("cell");
    let events = EventReport::from_predictions(&cell.cv.all_predictions(), threshold);
    // Event-level confusion for the CNN.
    let falls: usize = events.fall_tasks.values().map(|s| s.events).sum();
    let detected: usize = events.fall_tasks.values().map(|s| s.flagged).sum();
    let adls: usize = events.adl_tasks.values().map(|s| s.events).sum();
    let fps: usize = events.adl_tasks.values().map(|s| s.flagged).sum();
    let acc = (detected + adls - fps) as f64 / (falls + adls) as f64 * 100.0;
    let rec = detected as f64 / falls.max(1) as f64 * 100.0;
    let prec = detected as f64 / (detected + fps).max(1) as f64 * 100.0;
    let f1 = if prec + rec > 0.0 {
        2.0 * prec * rec / (prec + rec)
    } else {
        0.0
    };
    println!(
        "{:<34} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
        "CNN (Proposed), 400 ms", acc, prec, rec, f1
    );
    println!();
    println!(
        "Note: as in the paper's Table I, tuned threshold detectors remain competitive at \
raw event-level detection (their published rows reach F1 94-98). The CNN's case is made \
elsewhere: it solves the harder 150 ms-truncated task, offers a tunable \
false-positive/recall trade for airbag control, and its false activations concentrate on \
movements (jumps, collapses) that threshold rules cannot separate without gates that then \
miss low-rotation falls from height."
    );
}
