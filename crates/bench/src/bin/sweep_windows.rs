//! Regenerates the **§III-A design-space sweep**: window sizes from
//! 100 ms to 400 ms × overlaps from 0 % to 75 %, for the proposed CNN.
//! This is the grid from which the paper picks 400 ms / 50 %.
//!
//! ```text
//! cargo run --release -p prefall-bench --bin sweep_windows
//! ```

use prefall_bench::telemetry_out;
use prefall_core::experiment::{Experiment, ExperimentConfig};
use prefall_core::models::ModelKind;
use prefall_dsp::segment::Overlap;
use prefall_telemetry::{JsonValue, Recorder, Value};

fn main() {
    let (registry, rec) = telemetry_out::bench_recorder();
    let base = ExperimentConfig::table3_default().with_env_overrides();
    rec.event("bench.phase", &[("bench", Value::from("sweep_windows"))]);
    println!("=== §III-A sweep (reproduced): CNN macro-F1 % by window × overlap ===");
    println!(
        "{:>8} | {:>8} {:>8} {:>8} {:>8}",
        "window", "0%", "25%", "50%", "75%"
    );
    println!("{}", "-".repeat(48));

    let mut best = (0.0f64, 0.0f64, Overlap::None);
    for window_ms in [100.0, 200.0, 300.0, 400.0] {
        print!("{window_ms:>5.0} ms |");
        for overlap in Overlap::ALL {
            let mut cfg = base.clone();
            cfg.windows_ms = vec![window_ms];
            cfg.overlap = overlap;
            cfg.models = vec![ModelKind::ProposedCnn];
            match Experiment::new(cfg).run_recorded(rec.as_ref()) {
                Ok(report) => {
                    let f1 = report
                        .cell(ModelKind::ProposedCnn, window_ms)
                        .map(|c| c.metrics.f1)
                        .unwrap_or(f64::NAN);
                    registry.gauge_set(&format!("sweep.f1_pct.{window_ms:.0}ms.{overlap}"), f1);
                    if f1 > best.0 {
                        best = (f1, window_ms, overlap);
                    }
                    print!(" {f1:>8.2}");
                }
                Err(e) => {
                    // 100 ms windows can be too short for the conv stack
                    // on some grids — report as a dash like the paper's
                    // unexplored corners.
                    let _ = e;
                    print!(" {:>8}", "-");
                }
            }
        }
        println!();
    }
    println!();
    println!(
        "best cell: {:.0} ms at {} overlap (F1 {:.2}%) — the paper selects 400 ms / 50%",
        best.1, best.2, best.0
    );

    telemetry_out::dump(
        "sweep_windows",
        &registry.snapshot(),
        vec![
            ("best_window_ms".to_string(), JsonValue::F64(best.1)),
            (
                "best_overlap".to_string(),
                JsonValue::Str(best.2.to_string()),
            ),
            ("best_f1_pct".to_string(), JsonValue::F64(best.0)),
        ],
    );
}
