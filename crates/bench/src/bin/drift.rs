//! Drift-monitor bench: proves the label-free health monitor tells
//! truth in both directions, merges deterministically, costs (almost)
//! nothing, and closes the loop into an incident dump.
//!
//! Five gated legs (exit non-zero on violation):
//!
//! 1. **Clean replay** — a deployment stream drawn from the *same*
//!    generator as the reference (different seed) must score under the
//!    alarm PSI on every section of the lifetime fingerprint: no false
//!    drift alarms on healthy data. Recorded as
//!    `drift.clean_input_psi` / `drift.clean_score_psi` /
//!    `drift.clean_attribution_psi` and CI-gated absolutely by
//!    `benchdiff --drift-abs` against `ci/drift_baseline.json`.
//! 2. **Degradation sweep** — a sensor-degradation plan at intensities
//!    0.3 / 0.6 / 1.0 (lower intensities corrupt a *subset* of higher
//!    ones) must produce strictly increasing input PSI, with the top
//!    intensity past the alarm threshold: drift evidence is monotone
//!    in actual drift.
//! 3. **Merge determinism** — a fleet ingesting the same batches on
//!    1, 2 and 8 worker threads must export byte-identical merged
//!    fingerprints: the integer sketches make merge order invisible.
//! 4. **Arming overhead** — interleaved armed/unarmed rounds on one
//!    detector; the drift tap's fixed ~3 µs cost may eat at most about
//!    a fifth of a classified push now that the packed-kernel
//!    workspace path halved the unarmed denominator
//!    (`drift.arming_speedup`, CI-gated by `benchdiff --speedup-pct 3`).
//! 5. **Drift → SLO → incident** — one steady wearer (a single ADL
//!    trial cycled, scored against its own in-run fingerprint, so the
//!    sliding view is stationary) on a virtual clock: clean to 300 s,
//!    then the degradation plan at full intensity to 900 s, under the
//!    production watch config. The `input_drift` / `score_drift`
//!    quality SLO must stay quiet through the clean phase, fire during
//!    the storm, and capture a blackbox incident dump when it does.
//!
//! Legs 1–2 score *lifetime* fingerprints against the committed
//! reference: the deployment mix covers every ADL task, and only the
//! whole-stream distribution is comparable to the whole-corpus
//! reference. The monitor's sliding view — which sees whatever tasks
//! the last minute happened to contain — is exercised by leg 5, where
//! the stream is stationary by construction.
//!
//! Output: `bench-out/BENCH_drift.json`.
//!
//! ```text
//! cargo run --release -p prefall-bench --bin prefall-drift
//! ```

use prefall_bench::{driftref, telemetry_out};
use prefall_blackbox::{FlightConfig, FlightRecorder};
use prefall_core::detector::StreamingDetector;
use prefall_core::models::ModelKind;
use prefall_core::session::ModelBundle;
use prefall_core::tap::{DetectorTap, TapFanout};
use prefall_drift::{compare, DriftConfig, DriftMonitor, DriftScore, Fingerprint};
use prefall_dsp::stats::Normalizer;
use prefall_faults::{run_on_faulted_trial, Fault, FaultPlan, Sensor};
use prefall_fleet::{BatchSample, Fleet, FleetConfig, IngestBatch};
use prefall_imu::trial::Trial;
use prefall_imu::SAMPLE_PERIOD_MS;
use prefall_telemetry::{JsonValue, Recorder, Value};
use prefall_watch::{Alert, Watch, WatchConfig};
use std::sync::Arc;
use std::time::Instant;

/// Dataset seed for the "deployment" streams: same generator as the
/// reference ([`driftref::REFERENCE_SEED`]), disjoint draws.
const CLEAN_SEED: u64 = 1234;

/// Degradation-sweep intensities; scaled plans corrupt nested subsets,
/// so drift evidence must be monotone across them.
const SWEEP: [f64; 3] = [0.3, 0.6, 1.0];

/// End-to-end timeline (virtual seconds): clean, then a fault storm.
const CLEAN_END_S: f64 = 300.0;
const REPLAY_END_S: f64 = 900.0;

/// Minimum samples in the steady-wearer reference of leg 5.
const STEADY_REF_SAMPLES: u64 = 30_000;

/// Classified windows per mode in the overhead leg.
const OVERHEAD_WINDOWS: usize = 200;

fn fail(gate: &str, detail: String) -> ! {
    eprintln!("drift bench: FAIL ({gate}) — {detail}");
    std::process::exit(1);
}

/// The drift the monitor exists to catch: not the rare transient
/// artifacts of `FaultPlan::kitchen_sink` (which the robustness bench
/// owns), but *distribution* shift — a rising noise floor, frequent
/// connector spikes, a gyro axis freezing for seconds at a time — the
/// way an aging or re-mounted sensor degrades in deployment. Every
/// component scales monotonically under [`FaultPlan::scaled`].
fn drift_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with(Fault::Noise {
            accel_sigma: 1.2,
            gyro_sigma: 8.0,
        })
        .with(Fault::Spike {
            rate: 0.08,
            magnitude: 9.0,
        })
        .with(Fault::StuckAxis {
            sensor: Sensor::Gyro,
            axis: 1,
            start: 0.2,
            len: 600,
        })
}

fn plain_detector() -> StreamingDetector {
    let cfg = driftref::detector_config();
    let window = cfg.pipeline.segmentation.window();
    let net = ModelKind::ProposedCnn
        .build(window, 9, 1)
        .expect("model builds");
    StreamingDetector::new(net, Normalizer::identity(9), cfg).expect("detector")
}

/// Streams every trial through a fresh monitored detector — faulted
/// when a plan is given — and scores the *lifetime* fingerprint
/// against `reference`.
fn lifetime_score(
    trials: &[Trial],
    plan: Option<&FaultPlan>,
    reference: &Fingerprint,
    rec: &dyn Recorder,
) -> DriftScore {
    let (mut det, handle) = driftref::monitored_detector(DriftConfig::default());
    for trial in trials {
        match plan {
            Some(p) => {
                let _ = run_on_faulted_trial(&mut det, trial, p, rec);
            }
            None => driftref::stream_trial(&mut det, trial),
        }
    }
    compare(reference, &handle.fingerprint())
}

/// Deterministic per-wearer motion for the fleet leg (streams must
/// differ per wearer or the merge test proves nothing).
fn motion(wearer: u64, tick: u64) -> ([f32; 3], [f32; 3]) {
    let w = wearer as f32;
    let t = tick as f32 * 0.07;
    (
        [0.02 * (t + w).sin(), -0.03 * (t * 0.9).cos(), 1.0],
        [
            8.0 * (t * 1.3 + w).sin(),
            -5.0 * t.cos(),
            2.0 * (w * 0.1).sin(),
        ],
    )
}

fn batch_for(wearer: u64, seq: u64, len: usize) -> IngestBatch {
    IngestBatch {
        wearer,
        seq,
        samples: (0..len as u64)
            .map(|i| {
                let (accel, gyro) = motion(wearer, seq + i);
                BatchSample::Sample { accel, gyro }
            })
            .collect(),
    }
}

fn main() {
    let (registry, rec) = telemetry_out::bench_recorder();
    let _server = prefall_obsd::serve_from_env(&registry);

    let seed: u64 = std::env::var("PREFALL_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    let alarm_psi = DriftConfig::default().alarm_psi;

    let reference = driftref::build_reference();
    let clean_trials = driftref::adl_trials(CLEAN_SEED);
    println!(
        "reference   : {} samples, {} windows (seed {})",
        reference.samples(),
        reference.windows(),
        driftref::REFERENCE_SEED
    );

    // Leg 1: a healthy deployment stream must not alarm.
    rec.event("bench.phase", &[("phase", Value::from("clean"))]);
    let clean = lifetime_score(&clean_trials, None, &reference, rec.as_ref());
    if clean.alarmed(alarm_psi) {
        fail(
            "clean",
            format!(
                "healthy stream alarmed: input_psi {:.4}, score_psi {:.4}, \
                 attribution_psi {:.4} (alarm {alarm_psi})",
                clean.input_psi, clean.score_psi, clean.attribution_psi
            ),
        );
    }
    registry.gauge_set("drift.clean_input_psi", clean.input_psi);
    registry.gauge_set("drift.clean_score_psi", clean.score_psi);
    registry.gauge_set("drift.clean_attribution_psi", clean.attribution_psi);
    println!(
        "clean       : input_psi {:.4}, score_psi {:.4}, attribution_psi {:.4} ({} samples)",
        clean.input_psi, clean.score_psi, clean.attribution_psi, clean.samples
    );

    // Leg 2: nested degradation intensities must yield monotone drift.
    rec.event("bench.phase", &[("phase", Value::from("sweep"))]);
    let mut sweep_out = Vec::new();
    let mut prev_psi = clean.input_psi;
    for &intensity in &SWEEP {
        let plan = drift_plan(seed).scaled(intensity);
        let score = lifetime_score(&clean_trials, Some(&plan), &reference, rec.as_ref());
        if score.input_psi <= prev_psi {
            fail(
                "sweep",
                format!(
                    "input PSI not strictly increasing: {:.4} at intensity {intensity} \
                     after {prev_psi:.4}",
                    score.input_psi
                ),
            );
        }
        println!(
            "sweep  {intensity:>4.1} : input_psi {:.4}, score_psi {:.4}{}",
            score.input_psi,
            score.score_psi,
            if score.alarmed(alarm_psi) {
                "  [alarm]"
            } else {
                ""
            }
        );
        sweep_out.push(JsonValue::Obj(vec![
            ("intensity".to_string(), JsonValue::F64(intensity)),
            ("input_psi".to_string(), JsonValue::F64(score.input_psi)),
            ("score_psi".to_string(), JsonValue::F64(score.score_psi)),
            (
                "alarmed".to_string(),
                JsonValue::Bool(score.alarmed(alarm_psi)),
            ),
        ]));
        if intensity == 1.0 && !score.alarmed(alarm_psi) {
            fail(
                "sweep",
                format!(
                    "full-intensity degradation stayed under the alarm: input_psi {:.4}",
                    score.input_psi
                ),
            );
        }
        prev_psi = score.input_psi;
    }

    // Leg 3: merged fleet fingerprints are thread-count invariant.
    rec.event("bench.phase", &[("phase", Value::from("merge"))]);
    let mut merged: Vec<Vec<u8>> = Vec::new();
    for &threads in &[1usize, 2, 8] {
        let cfg = driftref::detector_config();
        let window = cfg.pipeline.segmentation.window();
        let net = ModelKind::ProposedCnn
            .build(window, 9, 1)
            .expect("model builds");
        let bundle = ModelBundle::new(net, Normalizer::identity(9), cfg).expect("bundle");
        let fleet = Fleet::new(
            bundle,
            FleetConfig {
                threads: Some(threads),
                ..FleetConfig::default()
            },
        );
        for start in (0..600u64).step_by(25) {
            let batches: Vec<IngestBatch> = (0..9).map(|w| batch_for(w, start, 25)).collect();
            let _ = fleet.ingest_many(&batches);
        }
        merged.push(fleet.fleet_fingerprint().to_bytes());
    }
    if merged[0] != merged[1] || merged[1] != merged[2] {
        fail(
            "merge",
            "fleet fingerprints differ across 1/2/8 worker threads".into(),
        );
    }
    let merged_fp = Fingerprint::from_bytes(&merged[0]).expect("fleet bytes parse");
    println!(
        "merge       : 1/2/8-thread fleets byte-identical ({} samples, {} bytes)",
        merged_fp.samples(),
        merged[0].len()
    );

    // Leg 4: what does the armed drift tap cost a classified push?
    // Interleaved rounds on one detector so machine drift cancels; the
    // tap is installed/removed between rounds. Arming also switches
    // inference to the traced engine (attribution is part of the
    // price), so this measures the whole honest cost.
    rec.event("bench.phase", &[("phase", Value::from("overhead"))]);
    let mut det = plain_detector();
    let window = det.config().pipeline.segmentation.window();
    for _ in 0..2 * window {
        let _ = det.push_sample([0.01, -0.02, 1.0], [0.0, 0.1, 0.0]);
    }
    let (tap, dh) = DriftMonitor::create(DriftConfig::default());
    dh.set_reference(reference.clone());
    let mut tap_slot: Option<Box<dyn DetectorTap>> = Some(Box::new(tap));
    // Warm the traced path once (first armed window sizes its buffers).
    det.set_tap(tap_slot.take().expect("tap"));
    for _ in 0..2 * window {
        let _ = det.push_sample([0.01, -0.02, 1.0], [0.0, 0.1, 0.0]);
    }
    tap_slot = det.take_tap();
    let mut unarmed: Vec<f64> = Vec::with_capacity(OVERHEAD_WINDOWS * 2);
    let mut armed: Vec<f64> = Vec::with_capacity(OVERHEAD_WINDOWS * 2);
    let mut arm_next = false;
    while unarmed.len() < OVERHEAD_WINDOWS || armed.len() < OVERHEAD_WINDOWS {
        if arm_next {
            det.set_tap(tap_slot.take().expect("tap parked"));
        }
        let sink = if arm_next { &mut armed } else { &mut unarmed };
        let mut classified = 0usize;
        while classified < 20 {
            let t0 = Instant::now();
            let p = det.push_sample([0.01, -0.02, 1.0], [0.0, 0.1, 0.0]);
            let dt = t0.elapsed().as_secs_f64();
            if p.is_some() {
                sink.push(dt);
                classified += 1;
            }
        }
        if arm_next {
            tap_slot = det.take_tap();
        }
        arm_next = !arm_next;
    }
    let med = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let unarmed_med = med(&mut unarmed);
    let armed_med = med(&mut armed);
    let speedup = unarmed_med / armed_med;
    registry.gauge_set("drift.arming_speedup", speedup);
    println!(
        "overhead    : push median unarmed {:.1} µs, armed {:.1} µs (speedup {:.3})",
        unarmed_med * 1e6,
        armed_med * 1e6,
        speedup
    );
    // Re-derived when the packed-kernel workspace path cut the unarmed
    // classified push from ~31 µs to ~14 µs: the tap's absolute cost is
    // unchanged (~3 µs) but it is now a larger fraction of a much
    // cheaper push. Observed spread on the 1-CPU box is 0.82–0.84; the
    // committed baseline holds 0.82 and this hard floor sits below it.
    if speedup < 0.78 {
        fail(
            "overhead",
            format!(
                "armed drift tap costs {:.1} % on the classified push path",
                (1.0 / speedup - 1.0) * 100.0
            ),
        );
    }

    // Leg 5: the production loop end to end — drift gauges feed the
    // watch SLOs, a sustained breach fires, and the firing captures a
    // blackbox incident dump. One steady wearer: a single ADL trial
    // cycled, scored against an in-run fingerprint of the *same* cycled
    // stream, so the monitor's sliding view is stationary until the
    // degradation storm begins. Flight recorder and drift monitor share
    // the detector's tap slot through a fanout.
    rec.event("bench.phase", &[("phase", Value::from("slo"))]);
    // Truncate the wearer's trial to a hop multiple: the cycled stream
    // is then exactly periodic, every cycle yields the same windows,
    // and the sliding view matches the in-run reference bit for bit —
    // any PSI the storm produces is drift, not window-phase slippage.
    let hop = driftref::detector_config().pipeline.segmentation.hop();
    let steady_trial = {
        let full = clean_trials
            .iter()
            .max_by_key(|t| t.len())
            .expect("clean trials nonempty");
        let keep = (full.len() / hop) * hop;
        Trial::from_channels(
            full.subject,
            full.task,
            full.trial_index,
            full.source,
            full.channels().iter().map(|c| c[..keep].to_vec()).collect(),
            None,
            None,
        )
        .expect("truncated trial")
    };
    let steady_trial = &steady_trial;
    let steady_ref = {
        let (mut det, handle) = driftref::monitored_detector(DriftConfig::default());
        while handle.fingerprint().samples() < STEADY_REF_SAMPLES {
            driftref::stream_trial(&mut det, steady_trial);
        }
        handle.fingerprint()
    };

    let mut det = plain_detector();
    let flight = FlightRecorder::install(&mut det, Vec::new(), FlightConfig::default());
    flight.set_recorder(registry.clone());
    let flight_tap = det.take_tap().expect("flight tap installed");
    let (drift_tap, dh) = DriftMonitor::create(DriftConfig {
        publish_every: 1,
        ..DriftConfig::default()
    });
    dh.set_recorder(registry.clone());
    dh.set_reference(steady_ref.clone());
    det.set_tap(Box::new(
        TapFanout::new(vec![flight_tap]).with(Box::new(drift_tap)),
    ));

    let watch = Arc::new(Watch::new(Arc::clone(&registry), WatchConfig::production()));
    watch.set_incident_capture(Arc::new(flight.clone()));

    let storm_plan = drift_plan(seed).scaled(1.0);
    let mut vt = 0.0f64;
    let mut next_tick = 0.0f64;
    while vt < REPLAY_END_S {
        if vt < CLEAN_END_S {
            driftref::stream_trial(&mut det, steady_trial);
        } else {
            let _ = run_on_faulted_trial(&mut det, steady_trial, &storm_plan, rec.as_ref());
        }
        vt += steady_trial.len() as f64 * SAMPLE_PERIOD_MS / 1000.0;
        while next_tick <= vt {
            watch.tick_at(next_tick);
            next_tick += 1.0;
        }
    }
    let alerts = watch.alerts();
    let drift_alerts: Vec<&Alert> = alerts
        .iter()
        .filter(|a| a.slo == "input_drift" || a.slo == "score_drift")
        .collect();
    if let Some(early) = drift_alerts.iter().find(|a| a.fired && a.at < CLEAN_END_S) {
        fail(
            "slo",
            format!(
                "{} fired at {:.0}s, inside the clean phase",
                early.slo, early.at
            ),
        );
    }
    let fired = drift_alerts
        .iter()
        .find(|a| a.fired)
        .unwrap_or_else(|| fail("slo", "no drift SLO fired during the storm".into()));
    if !fired.incident_requested || flight.incident_count() == 0 {
        fail(
            "slo",
            "drift quality breach did not capture a blackbox incident".into(),
        );
    }
    println!(
        "slo         : {} fired {:.0}s into the replay, incident {}",
        fired.slo,
        fired.at,
        flight.latest().map(|d| d.id).unwrap_or_default()
    );

    telemetry_out::dump_to(
        "BENCH_drift.json",
        "drift",
        &registry.snapshot(),
        vec![
            ("fault_seed".to_string(), JsonValue::U64(seed)),
            (
                "reference_samples".to_string(),
                JsonValue::U64(reference.samples()),
            ),
            ("sweep".to_string(), JsonValue::Arr(sweep_out)),
            ("virtual_seconds".to_string(), JsonValue::F64(vt)),
            (
                "drift_alert".to_string(),
                JsonValue::Obj(vec![
                    ("slo".to_string(), JsonValue::Str(fired.slo.clone())),
                    ("at_s".to_string(), JsonValue::F64(fired.at)),
                    (
                        "incident".to_string(),
                        JsonValue::Bool(fired.incident_requested),
                    ),
                ]),
            ),
        ],
    );
}
