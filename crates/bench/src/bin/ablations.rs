//! Ablation suite for the design choices DESIGN.md calls out:
//!
//! 1. **150 ms truncation** — train with vs without removing the last
//!    150 ms of each falling phase (the paper argues the conventional
//!    labelling inflates scores while being useless for an airbag).
//! 2. **Modality split** — the proposed three-branch CNN vs a
//!    single-branch CNN of the same conv budget.
//! 3. **Augmentation** — time/window warping on vs off.
//! 4. **Class weights + bias init** — on vs off.
//!
//! ```text
//! cargo run --release -p prefall-bench --bin ablations
//! ```

use prefall_core::cv::{run_cv, CvConfig};
use prefall_core::metrics::TableMetrics;
use prefall_core::models::ModelKind;
use prefall_core::pipeline::{Pipeline, PipelineConfig};
use prefall_imu::dataset::{Dataset, DatasetConfig};

struct Row {
    name: &'static str,
    metrics: TableMetrics,
}

fn main() {
    let dataset_cfg = DatasetConfig {
        kfall_subjects: 5,
        self_collected_subjects: 5,
        trials_per_task: 1,
        duration_scale: 0.5,
        seed: 2025,
    };
    let mut cv = CvConfig::paper_scaled(8);
    cv.folds = 3;
    cv.val_subjects = 1;
    if let Ok(n) = std::env::var("PREFALL_EPOCHS").map(|v| v.parse().unwrap_or(8)) {
        cv.epochs = n;
    }

    eprintln!("ablations: generating dataset...");
    let dataset = Dataset::generate(&dataset_cfg).expect("dataset");
    let paper_pipeline = Pipeline::new(PipelineConfig::paper_400ms()).expect("pipeline");

    let mut rows: Vec<Row> = Vec::new();
    let mut run = |name: &'static str, pipeline: &Pipeline, model: ModelKind, cfg: &CvConfig| {
        eprintln!("ablations: {name}...");
        match run_cv(&dataset, pipeline, model, cfg) {
            Ok(out) => rows.push(Row {
                name,
                metrics: out.mean,
            }),
            Err(e) => eprintln!("  {name} failed: {e}"),
        }
    };

    // Reference configuration.
    run(
        "proposed (full method)",
        &paper_pipeline,
        ModelKind::ProposedCnn,
        &cv,
    );

    // 1. No 150 ms truncation (conventional labelling).
    let mut no_trunc_cfg = PipelineConfig::paper_400ms();
    no_trunc_cfg.airbag_budget_samples = 0;
    let no_trunc = Pipeline::new(no_trunc_cfg).expect("pipeline");
    run(
        "no 150 ms truncation",
        &no_trunc,
        ModelKind::ProposedCnn,
        &cv,
    );

    // 2. Single-branch CNN.
    run(
        "single-branch CNN",
        &paper_pipeline,
        ModelKind::MonolithicCnn,
        &cv,
    );

    // 3. No augmentation.
    let mut no_aug = cv;
    no_aug.augment_factor = 0;
    run(
        "no augmentation",
        &paper_pipeline,
        ModelKind::ProposedCnn,
        &no_aug,
    );

    // 4. No imbalance countermeasures.
    let mut no_weights = cv;
    no_weights.class_weights = false;
    no_weights.bias_init = false;
    run(
        "no class weights / bias init",
        &paper_pipeline,
        ModelKind::ProposedCnn,
        &no_weights,
    );

    println!("=== Ablations (400 ms, 50% overlap; Accuracy/Precision/Recall/F1 %, macro) ===");
    println!(
        "{:<30} {:>8} {:>9} {:>8} {:>8}",
        "Configuration", "Acc", "Prec", "Rec", "F1"
    );
    println!("{}", "-".repeat(68));
    for r in &rows {
        println!(
            "{:<30} {:>8.2} {:>9.2} {:>8.2} {:>8.2}",
            r.name, r.metrics.accuracy, r.metrics.precision, r.metrics.recall, r.metrics.f1
        );
    }
    println!();
    println!("expected shapes:");
    println!("  • 'no 150 ms truncation' scores HIGHER (the easy, airbag-useless task the paper refuses to optimise)");
    println!("  • the modality split and the imbalance countermeasures each buy recall/F1");
}
