//! Regenerates **Table III**: segment-level comparison of MLP, LSTM,
//! ConvLSTM2D and the proposed CNN at 200/300/400 ms windows with 50 %
//! overlap, under subject-independent 5-fold CV.
//!
//! ```text
//! cargo run --release -p prefall-bench --bin table3
//! PREFALL_KFALL=32 PREFALL_SELF=29 PREFALL_EPOCHS=50 cargo run --release -p prefall-bench --bin table3
//! ```

use prefall_bench::{paper_table3, telemetry_out};
use prefall_core::experiment::{Experiment, ExperimentConfig};
use prefall_telemetry::{Recorder, Value};

fn main() {
    let (registry, rec) = telemetry_out::bench_recorder();
    let config = ExperimentConfig::table3_default().with_env_overrides();
    rec.event(
        "bench.phase",
        &[
            ("bench", Value::from("table3")),
            ("kfall", Value::from(config.dataset.kfall_subjects)),
            (
                "self_collected",
                Value::from(config.dataset.self_collected_subjects),
            ),
            ("folds", Value::from(config.cv.folds)),
            ("epochs", Value::from(config.cv.epochs)),
        ],
    );

    let experiment = Experiment::new(config.clone());
    let report = match experiment.run_recorded(rec.as_ref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("table3 failed: {e}");
            std::process::exit(1);
        }
    };
    for cell in &report.cells {
        registry.gauge_set(
            &format!("table3.f1_pct.{}.{}ms", cell.model.name(), cell.window_ms),
            cell.metrics.f1,
        );
    }

    println!("=== Table III (reproduced) — measured vs paper ===");
    println!(
        "{:<16} {:>7} | {:>8} {:>9} {:>8} {:>8} | {:>8} {:>9} {:>8} {:>8}",
        "Model", "window", "Acc", "Prec", "Rec", "F1", "Acc*", "Prec*", "Rec*", "F1*"
    );
    println!("{}", "-".repeat(110));
    for cell in &report.cells {
        let m = &cell.metrics;
        let paper = paper_table3(cell.model.name(), cell.window_ms);
        let (pa, pp, pr, pf) = paper.unwrap_or((f64::NAN, f64::NAN, f64::NAN, f64::NAN));
        println!(
            "{:<16} {:>4.0} ms | {:>8.2} {:>9.2} {:>8.2} {:>8.2} | {:>8.2} {:>9.2} {:>8.2} {:>8.2}",
            cell.model.name(),
            cell.window_ms,
            m.accuracy,
            m.precision,
            m.recall,
            m.f1,
            pa,
            pp,
            pr,
            pf
        );
    }
    println!("(* = values reported in the paper; absolute numbers differ on the synthetic substrate — the ordering and window-size trend are the reproduction target)");
    println!();
    println!("{report}");

    // Shape checks the paper's narrative rests on (non-fatal warnings).
    let f1_of = |model: prefall_core::models::ModelKind, w: f64| {
        report.cell(model, w).map(|c| c.metrics.f1).unwrap_or(0.0)
    };
    use prefall_core::models::ModelKind::*;
    let cnn400 = f1_of(ProposedCnn, 400.0);
    for (name, other) in [
        ("MLP", f1_of(Mlp, 400.0)),
        ("LSTM", f1_of(Lstm, 400.0)),
        ("ConvLSTM2D", f1_of(ConvLstm2d, 400.0)),
    ] {
        if cnn400 <= other {
            eprintln!("warning: CNN (Proposed) F1 {cnn400:.2} did not beat {name} ({other:.2}) at 400 ms in this run");
        }
    }
    if f1_of(ProposedCnn, 400.0) <= f1_of(ProposedCnn, 200.0) {
        eprintln!("warning: 400 ms did not beat 200 ms for the proposed CNN in this run");
    }

    telemetry_out::dump("table3", &registry.snapshot(), Vec::new());
}
