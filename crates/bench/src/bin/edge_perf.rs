//! Regenerates the **§IV-C on-edge performance** results: trains the
//! proposed CNN, applies int8 post-training quantization, verifies the
//! accuracy is unchanged, fits the model onto the STM32F722 deployment
//! model (flash / RAM / latency envelope), and streams every trial
//! through the quantized detector to measure host-side per-sample
//! latency (p50/p95/p99) and the detection lead time against the 150 ms
//! airbag-inflation budget.
//!
//! All measured numbers route through a telemetry registry and are
//! dumped to `BENCH_telemetry.json`; `PREFALL_QUIET=1` silences the
//! progress events and summary table. Setting `PREFALL_METRICS_ADDR`
//! (e.g. `127.0.0.1:9898`) additionally serves the registry live over
//! HTTP — `curl localhost:9898/metrics` during the run returns
//! Prometheus text with the inference-latency histograms, per-activity
//! confusion counters and the lead-time-budget gauges.
//!
//! ```text
//! cargo run --release -p prefall-bench --bin edge_perf
//! ```

use prefall_bench::{paper_edge, telemetry_out};
use prefall_core::cv::{subject_folds, train_on_sets_recorded, CvConfig};
use prefall_core::detector::{
    lead_time_bounds_ms, run_on_trial_monitored, DetectorConfig, StreamingDetector,
};
use prefall_core::metrics::{Confusion, TableMetrics};
use prefall_core::models::ModelKind;
use prefall_core::monitor::QualityMonitor;
use prefall_core::pipeline::{Pipeline, PipelineConfig};
use prefall_imu::dataset::{Dataset, DatasetConfig};
use prefall_imu::AIRBAG_INFLATION_MS;
use prefall_mcu::deploy::deploy;
use prefall_mcu::export::to_c_header;
use prefall_mcu::target::McuTarget;
use prefall_nn::quant::QuantizedNetwork;
use prefall_nn::train::predict_proba;
use prefall_telemetry::{Histogram, JsonValue, Recorder, Value};

fn main() {
    let (registry, rec) = telemetry_out::bench_recorder();
    registry.register_histogram("detector.lead_time_ms", lead_time_bounds_ms());
    // Sub-ms per-sample latencies need finer resolution than the
    // default decade-of-five buckets give.
    let fine = Histogram::log_bounds(1e-8, 1.0, 10);
    registry.register_histogram("detector.push_sample_seconds", fine.clone());
    registry.register_histogram("detector.infer_seconds", fine);
    // Live exporter, when PREFALL_METRICS_ADDR asks for one. Held until
    // the end of main so a scrape can watch the whole run.
    let _server = prefall_obsd::serve_from_env(&registry);
    let phase = |name: &str| {
        rec.event(
            "bench.phase",
            &[
                ("bench", Value::from("edge_perf")),
                ("phase", Value::from(name)),
            ],
        );
    };

    let mut dataset_cfg = DatasetConfig {
        kfall_subjects: 4,
        self_collected_subjects: 4,
        trials_per_task: 1,
        duration_scale: 0.5,
        seed: 2025,
    };
    if let Ok(n) = std::env::var("PREFALL_KFALL").map(|v| v.parse().unwrap_or(4)) {
        dataset_cfg.kfall_subjects = n;
    }
    if let Ok(n) = std::env::var("PREFALL_SELF").map(|v| v.parse().unwrap_or(4)) {
        dataset_cfg.self_collected_subjects = n;
    }
    let mut cv = CvConfig::paper_scaled(8);
    cv.folds = 2;
    cv.val_subjects = 1;
    if let Ok(n) = std::env::var("PREFALL_EPOCHS").map(|v| v.parse().unwrap_or(8)) {
        cv.epochs = n;
    }

    phase("train");
    let dataset = Dataset::generate(&dataset_cfg).expect("dataset");
    let pipeline = Pipeline::new(PipelineConfig::paper_400ms()).expect("pipeline");
    let full = pipeline.segment_set_recorded(dataset.trials(), rec.as_ref());
    let splits =
        subject_folds(&dataset.subject_ids(), cv.folds, cv.val_subjects, cv.seed).expect("folds");
    let split = &splits[0];
    let train_set = full.filter_subjects(&split.train);
    let val_set = full.filter_subjects(&split.val);
    let test_set = full.filter_subjects(&split.test);
    let test_labels = test_set.y.clone();
    let test_x_raw = test_set.x.clone();

    let (mut net, _preds, _epochs) = train_on_sets_recorded(
        &pipeline,
        train_set.clone(),
        val_set,
        test_set,
        ModelKind::ProposedCnn,
        &cv,
        7,
        rec.as_ref(),
    )
    .expect("training");

    // Re-derive the normaliser exactly as train_on_sets does (it fits on
    // the augmented training set; for calibration the raw one is fine).
    let norm = pipeline.fit_normalizer(&train_set);
    let normalize =
        |xs: &[Vec<f32>]| -> Vec<Vec<f32>> { xs.iter().map(|x| norm.apply(x)).collect() };
    let calib = normalize(&train_set.x[..train_set.x.len().min(256)]);
    let test_x = normalize(&test_x_raw);

    // Quantize and compare.
    phase("quantize");
    let qnet = QuantizedNetwork::from_network(&mut net, &calib).expect("quantization");
    let float_probs = predict_proba(&mut net, &test_x);
    let quant_probs: Vec<f32> = test_x.iter().map(|x| qnet.predict_proba(x)).collect();
    let float_m =
        TableMetrics::from_confusion(&Confusion::from_probs(&float_probs, &test_labels, 0.5));
    let quant_m =
        TableMetrics::from_confusion(&Confusion::from_probs(&quant_probs, &test_labels, 0.5));
    let agreement = float_probs
        .iter()
        .zip(&quant_probs)
        .filter(|(f, q)| (**f >= 0.5) == (**q >= 0.5))
        .count() as f64
        / float_probs.len().max(1) as f64
        * 100.0;
    registry.gauge_set("edge.float_f1_pct", float_m.f1);
    registry.gauge_set("edge.int8_f1_pct", quant_m.f1);
    registry.gauge_set("edge.float_int8_agreement_pct", agreement);
    registry.gauge_set("edge.params", net.param_count() as f64);

    println!("=== §IV-C (reproduced): quantization ===");
    println!("model parameters        : {}", net.param_count());
    println!("float  Acc/Prec/Rec/F1  : {float_m}");
    println!("int8   Acc/Prec/Rec/F1  : {quant_m}");
    println!("float↔int8 agreement    : {agreement:.2} % of test segments");
    println!();

    // Deployment envelope.
    let target = McuTarget::stm32f722();
    let d = deploy(&qnet, &target, 40, 9).expect("fits the STM32F722");
    registry.gauge_set("edge.model_flash_kib", d.model_flash_bytes as f64 / 1024.0);
    registry.gauge_set("edge.ram_kib", d.ram_bytes as f64 / 1024.0);
    registry.gauge_set("edge.inference_ms", d.inference_ms);
    registry.gauge_set("edge.inference_jitter_ms", d.inference_jitter_ms);
    registry.gauge_set("edge.fusion_ms", d.fusion_ms);
    println!("=== §IV-C (reproduced): deployment on {} ===", target.name);
    println!(
        "model flash : {:7.2} KiB   (paper: {:.2} KiB)",
        d.model_flash_bytes as f64 / 1024.0,
        paper_edge::MODEL_KIB
    );
    println!(
        "total ram   : {:7.2} KiB   (paper: {:.2} KiB)",
        d.ram_bytes as f64 / 1024.0,
        paper_edge::RAM_KIB
    );
    println!(
        "inference   : {:7.2} ms ± {:.2} ms   (paper: {:.0} ms ± {:.0} ms)",
        d.inference_ms,
        d.inference_jitter_ms,
        paper_edge::INFERENCE_MS,
        paper_edge::JITTER_MS
    );
    println!(
        "fusion      : {:7.2} ms   (paper: {:.0} ms)",
        d.fusion_ms,
        paper_edge::FUSION_MS
    );
    println!(
        "deadline    : total {:.2} ms per 200 ms hop → real-time: {}",
        d.total_latency_ms(),
        if d.meets_deadline(200.0) { "yes" } else { "NO" }
    );

    let header = to_c_header(&qnet, "prefall_model");
    println!(
        "C export    : {} bytes of weights → {} KiB header ({} lines)",
        qnet.weight_blob().len(),
        header.len() / 1024,
        header.lines().count()
    );
    println!();

    // Stream every trial through the quantized detector: host-side
    // per-sample latency plus the lead-time distribution against the
    // 150 ms inflation budget.
    phase("stream");
    let mut detector =
        StreamingDetector::new(qnet, norm, DetectorConfig::paper_400ms()).expect("detector");
    detector.set_recorder(registry.clone());
    let mut monitor = QualityMonitor::new();
    let (mut falls, mut triggered_falls, mut protected, mut lead_ok, mut false_act) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for trial in dataset.trials() {
        let outcome = run_on_trial_monitored(&mut detector, trial, rec.as_ref(), &mut monitor);
        if trial.is_fall() {
            falls += 1;
            if outcome.triggered_at.is_some() {
                triggered_falls += 1;
            }
            if outcome.protected == Some(true) {
                protected += 1;
            }
            if outcome.lead_time_ms.unwrap_or(f64::NEG_INFINITY) >= AIRBAG_INFLATION_MS {
                lead_ok += 1;
            }
        } else if outcome.false_activation {
            false_act += 1;
        }
    }

    let snap = registry.snapshot();
    let push = snap.histograms.get("detector.push_sample_seconds");
    let lead = snap.histograms.get("detector.lead_time_ms");
    println!("=== streaming detector (host-side measurements) ===");
    if let Some(h) = push {
        println!(
            "push_sample : {} samples, p50 {:.1} µs  p95 {:.1} µs  p99 {:.1} µs  max {:.1} µs",
            h.count,
            h.p50 * 1e6,
            h.p95 * 1e6,
            h.p99 * 1e6,
            h.max * 1e6
        );
    }
    if let Some(h) = lead {
        println!(
            "lead time   : {} triggered falls, p50 {:.0} ms (budget {:.0} ms); {}/{} falls lead ≥ budget, {}/{} protected, {} false activations",
            h.count, h.p50, AIRBAG_INFLATION_MS, lead_ok, falls, protected, falls, false_act
        );
    }

    telemetry_out::dump(
        "edge_perf",
        &snap,
        vec![
            ("budget_ms".to_string(), JsonValue::F64(AIRBAG_INFLATION_MS)),
            ("falls".to_string(), JsonValue::U64(falls)),
            (
                "triggered_falls".to_string(),
                JsonValue::U64(triggered_falls),
            ),
            ("falls_lead_ge_budget".to_string(), JsonValue::U64(lead_ok)),
            ("falls_protected".to_string(), JsonValue::U64(protected)),
            ("false_activations".to_string(), JsonValue::U64(false_act)),
        ],
    );
}
