//! Reference-fingerprint tool: builds the deterministic training
//! distribution fingerprint (see `prefall_bench::driftref`), writes it
//! as a `PFDF` file, verifies a committed copy bit for bit, or prints
//! a human summary.
//!
//! ```text
//! prefall-fingerprint write  <path>   build the reference and write it
//! prefall-fingerprint verify <path>   rebuild and require bit-equality
//! prefall-fingerprint show   <path>   parse and summarise a PFDF file
//! ```
//!
//! CI runs `verify ci/drift_reference.pfdf` on every change: because
//! the builder is bit-deterministic, the committed artifact is either
//! exactly reproducible from source or the build fails — nobody has to
//! trust a binary blob. Exit codes: 0 ok, 1 verification mismatch,
//! 2 usage/IO/format error.

use prefall_bench::driftref;
use prefall_drift::fingerprint::{INPUT_NAMES, INPUT_RANGES, SHARE_NAMES, UNIT_RANGE};
use prefall_drift::{AxisSketch, FeatureRange, Fingerprint};

fn usage() -> ! {
    eprintln!("usage: prefall-fingerprint <write|verify|show> <path.pfdf>");
    std::process::exit(2);
}

fn load(path: &str) -> Fingerprint {
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("prefall-fingerprint: cannot read {path}: {e}");
        std::process::exit(2);
    });
    Fingerprint::from_bytes(&bytes).unwrap_or_else(|e| {
        eprintln!("prefall-fingerprint: {path}: {e}");
        std::process::exit(2);
    })
}

fn describe(name: &str, sketch: &AxisSketch, range: &FeatureRange) {
    match (
        sketch.mean(range),
        sketch.quantile(range, 0.5),
        sketch.quantile(range, 0.99),
    ) {
        (Some(mean), Some(p50), Some(p99)) => println!(
            "  {name:<10} count {:>8}  mean {mean:>9.4}  p50 {p50:>9.4}  p99 {p99:>9.4}  skipped {}",
            sketch.count(),
            sketch.skipped(),
        ),
        _ => println!("  {name:<10} (empty)"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [cmd, path] = args.as_slice() else {
        usage();
    };
    match cmd.as_str() {
        "write" => {
            let fp = driftref::build_reference();
            let bytes = fp.to_bytes();
            if let Some(dir) = std::path::Path::new(path).parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            std::fs::write(path, &bytes).unwrap_or_else(|e| {
                eprintln!("prefall-fingerprint: cannot write {path}: {e}");
                std::process::exit(2);
            });
            println!(
                "wrote {path}: {} bytes, {} samples, {} windows (dataset seed {})",
                bytes.len(),
                fp.samples(),
                fp.windows(),
                driftref::REFERENCE_SEED,
            );
        }
        "verify" => {
            let committed = load(path);
            let rebuilt = driftref::build_reference();
            if committed.to_bytes() != rebuilt.to_bytes() {
                eprintln!(
                    "prefall-fingerprint: {path} does not match the rebuilt reference \
                     (committed: {} samples / {} windows, rebuilt: {} / {}) — \
                     regenerate it with `prefall-fingerprint write {path}`",
                    committed.samples(),
                    committed.windows(),
                    rebuilt.samples(),
                    rebuilt.windows(),
                );
                std::process::exit(1);
            }
            println!(
                "{path}: bit-identical to the rebuilt reference ({} samples, {} windows)",
                committed.samples(),
                committed.windows(),
            );
        }
        "show" => {
            let fp = load(path);
            println!("{path}: {} samples, {} windows", fp.samples(), fp.windows());
            println!("input axes:");
            for (i, name) in INPUT_NAMES.iter().enumerate() {
                describe(name, &fp.input[i], &INPUT_RANGES[i]);
            }
            println!("window score:");
            describe("score", &fp.score, &UNIT_RANGE);
            println!("attribution shares:");
            for (i, name) in SHARE_NAMES.iter().enumerate() {
                describe(name, &fp.shares[i], &UNIT_RANGE);
            }
        }
        _ => usage(),
    }
}
