//! Timeline profiler: where does the wall-clock actually go?
//!
//! `perf` answers *how fast*; this binary answers *where*. It arms the
//! `prefall-trace` ring buffers, runs the experiment grid, and folds the
//! drained timeline into a wall-clock attribution:
//!
//! * **% kernel** — time inside task bodies (experiment cells, CV
//!   folds, cache fills, training compute, forward-pass kernels);
//! * **% task overhead** — pool machinery: `par.map` self time (queue
//!   build, spawn, result placement, the inline claim loop);
//! * **% barrier** — the caller waiting at the fork-join barrier after
//!   finishing its own share of the queue;
//! * **% idle** — spawned workers between tasks (steal loop + waiting),
//!
//! plus per-worker utilization, steal/queue statistics from the new
//! `par.steal_attempts` / `par.queue_depth` accounting, and a per-layer
//! decomposition of the streaming forward pass (nanoseconds per window
//! in the fused conv, dense, … kernels).
//!
//! Tracing overhead is measured on the streaming detector path — the
//! same classification loop coarse-armed and disarmed, interleaved
//! over several rounds — and recorded as the `trace.arming_speedup`
//! gauge (disarmed ÷ armed median; `1.0` means free). CI gates it
//! against `ci/trace_baseline.json` with `benchdiff --speedup-pct 3`,
//! enforcing the ≤ 3 % overhead budget. The per-layer decomposition
//! runs as a separate leg with `prefall_trace::set_detail(true)` —
//! per-kernel spans are opt-in exactly because they would not fit the
//! coarse budget inside a ~30 µs forward pass.
//!
//! ```text
//! cargo run --release -p prefall-bench --bin prefall-profile
//! PREFALL_TRACE_CAPACITY=262144 cargo run --release -p prefall-bench --bin prefall-profile
//! ```
//!
//! Output: `BENCH_trace.json` (benchdiff-able snapshot) and
//! `BENCH_trace_chrome.json` (Chrome trace-event JSON — open it at
//! <https://ui.perfetto.dev> or `chrome://tracing`). With
//! `PREFALL_METRICS_ADDR` set, the trace is also served on the obsd
//! `/trace` endpoint for the duration of the run.

use prefall_bench::telemetry_out;
use prefall_core::detector::{DetectorConfig, GuardConfig, StreamingDetector};
use prefall_core::experiment::{Experiment, ExperimentConfig, ExperimentReport};
use prefall_core::models::ModelKind;
use prefall_core::pipeline::PipelineConfig;
use prefall_dsp::segment::Overlap;
use prefall_dsp::stats::Normalizer;
use prefall_telemetry::{JsonValue, NoopRecorder, Recorder, TelemetryEnv, Value};
use prefall_trace::{report::Attribution, EventKind, LastTrace, ThreadTimeline, Timeline};
use std::sync::Arc;
use std::time::Instant;

/// The benchdiff-able snapshot; never clobbers `BENCH_telemetry.json`.
const BENCH_TRACE_PATH: &str = "BENCH_trace.json";

/// The Perfetto-loadable export of the grid run.
const CHROME_TRACE_PATH: &str = "BENCH_trace_chrome.json";

/// Classified windows to time per overhead leg.
const INFER_WINDOWS: usize = 64;

/// Classified windows per mode for the overhead gate. Modes alternate
/// window-by-window (see [`measure_overhead`]), so both populations
/// sample near-identical machine states and drift cancels.
const OVERHEAD_WINDOWS: usize = 300;

/// A reduced grid: enough cells to exercise parallel workers, folds and
/// the cache, small enough for a CI trace job.
fn grid_config() -> ExperimentConfig {
    let mut config = ExperimentConfig::fast();
    config.dataset.kfall_subjects = 3;
    config.dataset.self_collected_subjects = 3;
    config.windows_ms = vec![200.0, 400.0];
    config.models = vec![ModelKind::Mlp, ModelKind::ProposedCnn];
    config.cv.epochs = 3;
    config.with_env_overrides()
}

fn run_grid(
    config: &ExperimentConfig,
    threads: usize,
    rec: &dyn Recorder,
) -> Result<(ExperimentReport, f64), String> {
    let mut cfg = config.clone();
    cfg.threads = Some(threads);
    let start = Instant::now();
    let report = Experiment::new(cfg)
        .run_recorded(rec)
        .map_err(|e| format!("experiment failed: {e}"))?;
    Ok((report, start.elapsed().as_secs_f64()))
}

/// Streams synthetic samples through a fresh 400 ms detector and
/// returns the wall time of each push that completed a hop (segment
/// assembly + normalise + forward pass) — the paper's real-time path.
fn measure_stream() -> Vec<f64> {
    let det_cfg = DetectorConfig {
        pipeline: PipelineConfig::paper(400.0, Overlap::Half),
        threshold: 1.1, // never trigger: measure pure classification
        consecutive: 1,
        guard: GuardConfig::default(),
    };
    let window = det_cfg.pipeline.segmentation.window();
    let net = ModelKind::ProposedCnn
        .build(window, 9, 1)
        .expect("model builds");
    let mut det = StreamingDetector::new(net, Normalizer::identity(9), det_cfg).expect("detector");
    let mut classified = 0usize;
    for _ in 0..2 * window {
        if det
            .push_sample([0.01, -0.02, 1.0], [0.0, 0.1, 0.0])
            .is_some()
        {
            classified += 1;
        }
    }
    assert!(classified > 0, "warm-up must classify at least once");
    let mut samples = Vec::with_capacity(INFER_WINDOWS);
    while samples.len() < INFER_WINDOWS {
        let t0 = Instant::now();
        let p = det.push_sample([0.01, -0.02, 1.0], [0.0, 0.1, 0.0]);
        let elapsed = t0.elapsed().as_secs_f64();
        if p.is_some() {
            samples.push(elapsed);
        }
    }
    samples
}

fn median(samples: &[f64]) -> f64 {
    let mut v = samples.to_vec();
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

/// Times [`OVERHEAD_WINDOWS`] classified windows per mode on ONE live
/// detector, toggling coarse tracing between consecutive windows.
/// A-then-B ordering (or even round-level interleaving) folds
/// clock-frequency and noisy-neighbour drift into whichever mode drew
/// the slow stretch; alternating window-by-window puts the two
/// populations microseconds apart, so the median ratio isolates the
/// true arming cost. Returns `(disarmed, armed)` samples.
fn measure_overhead() -> (Vec<f64>, Vec<f64>) {
    let det_cfg = DetectorConfig {
        pipeline: PipelineConfig::paper(400.0, Overlap::Half),
        threshold: 1.1, // never trigger: measure pure classification
        consecutive: 1,
        guard: GuardConfig::default(),
    };
    let window = det_cfg.pipeline.segmentation.window();
    let net = ModelKind::ProposedCnn
        .build(window, 9, 1)
        .expect("model builds");
    let mut det = StreamingDetector::new(net, Normalizer::identity(9), det_cfg).expect("detector");
    for _ in 0..2 * window {
        let _ = det.push_sample([0.01, -0.02, 1.0], [0.0, 0.1, 0.0]);
    }
    let mut disarmed = Vec::with_capacity(OVERHEAD_WINDOWS);
    let mut armed = Vec::with_capacity(OVERHEAD_WINDOWS);
    let mut arm_next = false;
    while disarmed.len() < OVERHEAD_WINDOWS || armed.len() < OVERHEAD_WINDOWS {
        // Toggle outside the timed region; the small ring keeps the
        // per-toggle reset cheap (events are discarded, not reported).
        if arm_next {
            prefall_trace::arm(4096);
        } else {
            prefall_trace::disarm();
        }
        loop {
            let t0 = Instant::now();
            let p = det.push_sample([0.01, -0.02, 1.0], [0.0, 0.1, 0.0]);
            let elapsed = t0.elapsed().as_secs_f64();
            if p.is_some() {
                if arm_next {
                    armed.push(elapsed);
                } else {
                    disarmed.push(elapsed);
                }
                break;
            }
        }
        arm_next = !arm_next;
    }
    prefall_trace::disarm();
    let _ = prefall_trace::drain(); // discard the toggle legs' events
    (disarmed, armed)
}

/// The four-way wall-clock split of a grid timeline, in nanoseconds.
struct Split {
    kernel: u64,
    overhead: u64,
    barrier: u64,
    idle: u64,
}

impl Split {
    fn from(attr: &Attribution) -> Self {
        // Self times partition in-span wall time exactly — every
        // nanosecond belongs to exactly one span's self time — so the
        // split stays honest under nested parallelism (fold-level maps
        // inside cell tasks nest par.task within par.task; span totals
        // would double-count those interiors). A task span's own self
        // time is the body's uninstrumented compute (training math,
        // telemetry-only stages), so it counts as kernel; the pool
        // machinery proper is the map span's self time (queue build,
        // spawn, result placement, the inline claim loop).
        let kernel = attr
            .total_matching(|n| !matches!(n, "par.map" | "par.worker" | "par.barrier"))
            .self_ns;
        let overhead = attr.total("par.map").self_ns;
        let barrier = attr.total("par.barrier").self_ns;
        // A worker span's self time is everything outside its tasks:
        // queue polls that found nothing plus plain waiting.
        let idle = attr.total("par.worker").self_ns;
        Split {
            kernel,
            overhead,
            barrier,
            idle,
        }
    }

    fn denom(&self) -> u64 {
        (self.kernel + self.overhead + self.barrier + self.idle).max(1)
    }

    fn pct(&self, part: u64) -> f64 {
        part as f64 / self.denom() as f64 * 100.0
    }
}

/// Flattened `par.task` busy time on one thread — the union of task
/// intervals via a depth counter, so fold-level maps nested inside
/// cell tasks count their interior once. Returns `(busy_ns, tasks)`.
fn flat_task_busy(t: &ThreadTimeline, task_name: Option<usize>) -> (u64, u64) {
    let Some(idx) = task_name else { return (0, 0) };
    let idx = idx as u32;
    let (mut busy, mut tasks) = (0u64, 0u64);
    let mut depth = 0u32;
    let mut open_ts = 0u64;
    for e in &t.events {
        if e.name != idx {
            continue;
        }
        match e.kind {
            EventKind::Begin => {
                if depth == 0 {
                    open_ts = e.ts_ns;
                }
                depth += 1;
                tasks += 1;
            }
            EventKind::End => {
                if depth > 0 {
                    depth -= 1;
                    if depth == 0 {
                        busy += e.ts_ns.saturating_sub(open_ts);
                    }
                }
            }
            EventKind::Instant => {}
        }
    }
    (busy, tasks)
}

/// The wall-clock window a thread was observed over (first to last
/// event), in nanoseconds, never zero.
fn thread_span_ns(t: &ThreadTimeline) -> u64 {
    match (t.events.first(), t.events.last()) {
        (Some(a), Some(b)) => b.ts_ns.saturating_sub(a.ts_ns).max(1),
        _ => 1,
    }
}

/// Per-worker utilization rows for the snapshot's `workers` field.
fn worker_rows(timeline: &Timeline) -> JsonValue {
    let task_name = timeline.names.iter().position(|n| n == "par.task");
    let rows = timeline
        .threads
        .iter()
        .filter_map(|t| {
            let (busy, tasks) = flat_task_busy(t, task_name);
            if tasks == 0 {
                return None;
            }
            let span_ns = thread_span_ns(t);
            Some(JsonValue::Obj(vec![
                ("tid".to_string(), JsonValue::U64(u64::from(t.tid))),
                ("label".to_string(), JsonValue::Str(t.label.clone())),
                ("tasks".to_string(), JsonValue::U64(tasks)),
                ("busy_ns".to_string(), JsonValue::U64(busy)),
                ("span_ns".to_string(), JsonValue::U64(span_ns)),
                (
                    "utilization".to_string(),
                    JsonValue::F64(busy as f64 / span_ns as f64),
                ),
            ]))
        })
        .collect();
    JsonValue::Arr(rows)
}

/// The per-layer forward-pass decomposition of a streaming timeline:
/// `(layer span name, total ns, spans, ns per classified window)`.
fn layer_rows(attr: &Attribution, windows: u64) -> Vec<(String, u64, u64, f64)> {
    attr.by_total()
        .into_iter()
        .filter(|(name, _)| name.starts_with("nn."))
        .map(|(name, agg)| {
            let per_window = agg.total_ns as f64 / windows.max(1) as f64;
            (name, agg.total_ns, agg.count, per_window)
        })
        .collect()
}

fn real_main() -> Result<(), String> {
    let quiet = TelemetryEnv::from_env().quiet;
    let say = |line: String| {
        if !quiet {
            println!("{line}");
        }
    };
    let (registry, rec) = telemetry_out::bench_recorder();
    let config = grid_config();
    let threads: usize = std::env::var("PREFALL_PERF_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let capacity: usize = std::env::var("PREFALL_TRACE_CAPACITY")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1 << 18);

    // Leg A: the grid with tracing disarmed — the reference wall clock.
    rec.event(
        "bench.phase",
        &[
            ("bench", Value::from("trace")),
            ("phase", Value::from("grid_disarmed")),
            ("threads", Value::from(threads)),
        ],
    );
    prefall_trace::disarm();
    let (report_disarmed, grid_disarmed_s) = run_grid(&config, threads, &NoopRecorder)?;

    // Leg B: the same grid armed. Telemetry routes to the real recorder
    // so the dumped snapshot carries the armed leg's par.* accounting.
    rec.event(
        "bench.phase",
        &[
            ("bench", Value::from("trace")),
            ("phase", Value::from("grid_armed")),
        ],
    );
    prefall_trace::arm(capacity);
    let (report_armed, grid_armed_s) = run_grid(&config, threads, rec.as_ref())?;
    prefall_trace::disarm();
    let grid_timeline: Timeline = prefall_trace::drain();

    // Tracing must be an observer: same bits with the rings armed.
    if report_disarmed.cells != report_armed.cells {
        return Err(
            "TRACING CHANGED RESULTS — armed grid produced different cells \
             than the disarmed run; refusing to report"
                .to_string(),
        );
    }

    let attr = grid_timeline.attribution();
    let split = Split::from(&attr);
    registry.gauge_set("trace.pct_kernel", split.pct(split.kernel));
    registry.gauge_set("trace.pct_task_overhead", split.pct(split.overhead));
    registry.gauge_set("trace.pct_barrier", split.pct(split.barrier));
    registry.gauge_set("trace.pct_idle", split.pct(split.idle));
    registry.gauge_set("trace.grid_events", grid_timeline.event_count() as f64);
    registry.gauge_set("trace.grid_dropped", grid_timeline.dropped() as f64);

    let chrome = grid_timeline.to_chrome_json();
    let chrome_path = prefall_bench::telemetry_out::out_path(CHROME_TRACE_PATH);
    std::fs::write(&chrome_path, &chrome)
        .map_err(|e| format!("cannot write {chrome_path}: {e}"))?;
    let last = Arc::new(LastTrace::new());
    last.store(chrome);
    // With PREFALL_METRICS_ADDR set, serve the drained trace (and the
    // live registry) for the rest of the run.
    let _server = TelemetryEnv::from_env().metrics_addr.and_then(|addr| {
        prefall_obsd::MetricsServer::start_full(
            addr.as_str(),
            Arc::clone(&registry),
            prefall_obsd::ServerConfig::default(),
            None,
            Some(Arc::clone(&last)),
        )
        .map_err(|e| eprintln!("profile: cannot bind {addr}: {e}"))
        .ok()
    });

    // Overhead on the streaming path: coarse armed (the whole-pass
    // `nn.infer` span — what production would leave on) vs disarmed,
    // interleaved over several rounds. The resulting
    // `trace.arming_speedup` gauge is what CI gates
    // (≥ 0.97 ⇔ ≤ 3 % overhead).
    rec.event(
        "bench.phase",
        &[
            ("bench", Value::from("trace")),
            ("phase", Value::from("stream")),
        ],
    );
    let (disarmed_samples, armed_samples) = measure_overhead();

    // Per-layer decomposition needs detail mode (per-kernel spans are
    // opt-in precisely because of the overhead budget above).
    prefall_trace::arm(capacity);
    prefall_trace::set_detail(true);
    let detail_samples = measure_stream();
    prefall_trace::disarm();
    let stream_timeline = prefall_trace::drain();

    let armed_median = median(&armed_samples);
    let disarmed_median = median(&disarmed_samples);
    let detail_median = median(&detail_samples);
    let arming_speedup = disarmed_median / armed_median;
    registry.gauge_set("trace.arming_speedup", arming_speedup);
    registry.gauge_set("trace.stream_armed_p50_us", armed_median * 1e6);
    registry.gauge_set("trace.stream_disarmed_p50_us", disarmed_median * 1e6);
    registry.gauge_set("trace.stream_detail_p50_us", detail_median * 1e6);

    let stream_attr = stream_timeline.attribution();
    let windows = stream_attr.total("nn.infer").count;
    let layers = layer_rows(&stream_attr, windows);
    for (name, _, _, per_window) in &layers {
        registry.gauge_set(&format!("trace.{name}_ns_per_window"), *per_window);
    }

    // Human report.
    let snap = registry.snapshot();
    say("=== profile: wall-clock attribution (grid, armed) ===".to_string());
    say(format!(
        "grid wall    : {grid_disarmed_s:8.2} s disarmed   {grid_armed_s:8.2} s armed   ({} cells, {threads} threads, bit-identical)",
        report_armed.cells.len()
    ));
    say(format!(
        "traced time  : {:8.2} s across {} events on {} threads ({} dropped)",
        split.denom() as f64 / 1e9,
        grid_timeline.event_count(),
        grid_timeline.threads.len(),
        grid_timeline.dropped()
    ));
    say(format!(
        "  kernel     : {:6.2} %   (task bodies: cells, folds, cache fills, training compute)",
        split.pct(split.kernel)
    ));
    say(format!(
        "  overhead   : {:6.2} %   (pool machinery: par.map self time)",
        split.pct(split.overhead)
    ));
    say(format!(
        "  barrier    : {:6.2} %   (caller waiting at the fork-join)",
        split.pct(split.barrier)
    ));
    say(format!(
        "  idle       : {:6.2} %   (workers between tasks: steal loop + waiting)",
        split.pct(split.idle)
    ));
    for key in [
        "par.tasks",
        "par.tasks_stolen",
        "par.steal_attempts",
        "par.maps",
        "par.maps_inline",
        "cache.hits",
        "cache.misses",
    ] {
        if let Some(v) = snap.counters.get(key) {
            say(format!("{key:<19}: {v}"));
        }
    }
    if let Some(depth) = snap.gauges.get("par.queue_depth") {
        say(format!("{:<19}: {depth}", "par.queue_depth"));
    }
    say("=== profile: per-worker utilization ===".to_string());
    let task_name = grid_timeline.names.iter().position(|n| n == "par.task");
    for t in &grid_timeline.threads {
        let (busy, tasks) = flat_task_busy(t, task_name);
        if tasks > 0 {
            say(format!(
                "  tid {:>3} {:<14} {:5} tasks  busy {:8.3} s  utilization {:5.1} %",
                t.tid,
                t.label,
                tasks,
                busy as f64 / 1e9,
                busy as f64 / thread_span_ns(t) as f64 * 100.0
            ));
        }
    }
    say("=== profile: streaming forward pass (400 ms window) ===".to_string());
    say(format!(
        "overhead     : armed p50 {:7.1} µs vs disarmed p50 {:7.1} µs  (arming_speedup {arming_speedup:.3}, gate ≥ 0.97, {OVERHEAD_WINDOWS} windows/mode, alternating)",
        armed_median * 1e6,
        disarmed_median * 1e6
    ));
    say(format!(
        "detail mode  : p50 {:7.1} µs with per-kernel spans on (opt-in, ungated)",
        detail_median * 1e6
    ));
    for (name, total_ns, count, per_window) in &layers {
        say(format!(
            "  {name:<26} {per_window:9.0} ns/window  ({count} spans, {:.3} ms total)",
            *total_ns as f64 / 1e6
        ));
    }

    telemetry_out::dump_to(
        BENCH_TRACE_PATH,
        "trace",
        &snap,
        vec![
            (
                "grid_disarmed_wall_s".to_string(),
                JsonValue::F64(grid_disarmed_s),
            ),
            (
                "grid_armed_wall_s".to_string(),
                JsonValue::F64(grid_armed_s),
            ),
            ("threads".to_string(), JsonValue::U64(threads as u64)),
            (
                "grid_cells".to_string(),
                JsonValue::U64(report_armed.cells.len() as u64),
            ),
            ("workers".to_string(), worker_rows(&grid_timeline)),
            (
                "chrome_trace".to_string(),
                JsonValue::Str(prefall_bench::telemetry_out::out_path(CHROME_TRACE_PATH)),
            ),
        ],
    );
    if !quiet {
        eprintln!(
            "profile: Chrome trace written to {} (open at https://ui.perfetto.dev)",
            prefall_bench::telemetry_out::out_path(CHROME_TRACE_PATH)
        );
    }
    Ok(())
}

fn main() {
    // All telemetry sinks (JSONL recorders flush on drop) live inside
    // real_main, so an error path still flushes before the exit code.
    if let Err(e) = real_main() {
        eprintln!("profile: {e}");
        std::process::exit(1);
    }
}
