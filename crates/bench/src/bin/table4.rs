//! Regenerates **Table IV**: event-level misclassification statistics of
//! the proposed CNN at 400 ms — (a) fall events missed per task,
//! (b) ADL events falsely flagged per task with the red/green grouping.
//!
//! ```text
//! cargo run --release -p prefall-bench --bin table4
//! ```

use prefall_bench::{paper_aggregates, PAPER_TABLE4A, PAPER_TABLE4B};
use prefall_core::events::EventReport;
use prefall_core::experiment::{Experiment, ExperimentConfig};
use prefall_core::models::ModelKind;
use prefall_imu::activity::{Activity, RiskGroup};

fn paper_pct(table: &[(u8, f64)], task: u8) -> f64 {
    table
        .iter()
        .find(|(t, _)| *t == task)
        .map(|(_, p)| *p)
        .unwrap_or(f64::NAN)
}

fn main() {
    let mut config = ExperimentConfig::table3_default().with_env_overrides();
    config.windows_ms = vec![400.0];
    config.models = vec![ModelKind::ProposedCnn];
    // Event statistics need repetitions: default 2 trials per task.
    if std::env::var("PREFALL_TRIALS").is_err() {
        config.dataset.trials_per_task = 2;
    }
    eprintln!(
        "table4: {} + {} subjects × {} trials/task, {} folds, {} epochs",
        config.dataset.kfall_subjects,
        config.dataset.self_collected_subjects,
        config.dataset.trials_per_task,
        config.cv.folds,
        config.cv.epochs
    );

    // The paper configures the model "to minimize false positives, even
    // at the cost of missing the detection of some actual falls": the
    // event-level operating point sits well above 0.5.
    let threshold: f32 = std::env::var("PREFALL_THRESHOLD")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.95);
    let report = match Experiment::new(config).run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("table4 failed: {e}");
            std::process::exit(1);
        }
    };
    let cell = report
        .cell(ModelKind::ProposedCnn, 400.0)
        .expect("cell present");
    let events = EventReport::from_predictions(&cell.cv.all_predictions(), threshold);

    println!("=== Table IVa (reproduced): falls misclassified as ADLs (400 ms) ===");
    println!(
        "{:<8} {:>8} {:>8} {:>10}",
        "Task ID", "miss %", "paper %", "events"
    );
    for (task, miss) in events.fall_tasks_by_miss() {
        println!(
            "{:<8} {:>8.2} {:>8.2} {:>10}",
            format!("{task:02}"),
            miss,
            paper_pct(&PAPER_TABLE4A, task),
            events.fall_tasks[&task].events
        );
    }
    println!(
        "{:<8} {:>8.2} {:>8.2}",
        "All",
        events.overall_fall_miss_pct(),
        paper_aggregates::FALL_MISS_PCT
    );
    println!();

    println!("=== Table IVb (reproduced): ADLs misclassified as falls (400 ms) ===");
    println!(
        "{:<8} {:>8} {:>8} {:>10} {:>7}",
        "Task ID", "FP %", "paper %", "events", "group"
    );
    for (task, fp) in events.adl_tasks_by_fp() {
        let group = match Activity::from_task(task).expect("valid").risk_group {
            Some(RiskGroup::Red) => "red",
            Some(RiskGroup::Green) => "green",
            None => "-",
        };
        println!(
            "{:<8} {:>8.2} {:>8.2} {:>10} {:>7}",
            format!("{task:02}"),
            fp,
            paper_pct(&PAPER_TABLE4B, task),
            events.adl_tasks[&task].events,
            group
        );
    }
    println!(
        "{:<8} {:>8.2} {:>8.2}",
        "All",
        events.overall_adl_fp_pct(),
        paper_aggregates::ADL_FP_PCT
    );
    println!(
        "{:<8} {:>8.2} {:>8.2}",
        "Red",
        events.risk_group_fp_pct(RiskGroup::Red),
        paper_aggregates::RED_FP_PCT
    );
    println!(
        "{:<8} {:>8.2} {:>8.2}",
        "Green",
        events.risk_group_fp_pct(RiskGroup::Green),
        paper_aggregates::GREEN_FP_PCT
    );

    // Shape checks.
    let red = events.risk_group_fp_pct(RiskGroup::Red);
    let green = events.risk_group_fp_pct(RiskGroup::Green);
    if red <= green {
        eprintln!(
            "warning: red-task FP rate ({red:.2}%) did not exceed green ({green:.2}%) in this run"
        );
    }

    // Post-hoc operating curve (the trade the paper tunes on validation
    // data: fewer false activations at the cost of missed falls).
    println!();
    println!("operating curve (event level):");
    println!("{:>10} {:>8} {:>8}", "threshold", "miss %", "FP %");
    let preds = cell.cv.all_predictions();
    for t in [0.5f32, 0.7, 0.9, 0.95, 0.99] {
        let e = EventReport::from_predictions(&preds, t);
        println!(
            "{:>10.2} {:>8.2} {:>8.2}",
            t,
            e.overall_fall_miss_pct(),
            e.overall_adl_fp_pct()
        );
    }
    let op = prefall_core::tuning::pick_fp_minimising_threshold(&preds, 15.0);
    println!(
        "FP-minimising point within a 15% miss budget: threshold {:.2} (miss {:.2}%, FP {:.2}%)",
        op.threshold, op.fall_miss_pct, op.adl_fp_pct
    );
}
