//! Performance baseline for the parallel/fused/cached fast path.
//!
//! Runs the same (model × window) experiment grid twice:
//!
//! * **leg A — seed-equivalent serial**: naive reference kernels
//!   ([`set_reference_kernels`]`(true)`), preprocessing cache disabled
//!   (`PREFALL_PREPROC_CACHE=0`), one worker thread. This is the code
//!   path the repo shipped before the fast path existed.
//! * **leg B — optimised**: blocked/fused kernels, segment cache on,
//!   `PREFALL_PERF_THREADS` workers (falls back to `PREFALL_THREADS`,
//!   then 4 — the CI matrix drives this leg at 1/2/4 threads).
//!
//! The two reports must be **bit-identical** (the fast path's core
//! guarantee; the binary exits non-zero if any cell differs), so the
//! wall-clock ratio is a pure like-for-like speedup. It is recorded as
//! the `perf.speedup` gauge, which `benchdiff` gates against the
//! committed baseline in `ci/perf_baseline.json` (shrink beyond
//! `--speedup-pct` fails CI). On a single-core runner the parallel leg
//! cannot beat serial on threads alone — the measured win comes from
//! the kernels and the cache, and grows with available cores.
//!
//! Steady-state streaming inference is measured separately per window
//! length into `detector.infer_w{200,300,400}_seconds` histograms
//! (p50/p95/p99 latency-gated by benchdiff's `*_seconds` rule).
//!
//! ```text
//! cargo run --release -p prefall-bench --bin perf
//! PREFALL_EPOCHS=8 PREFALL_KFALL=6 cargo run --release -p prefall-bench --bin perf
//! ```
//!
//! Output: `bench-out/BENCH_perf.json` (kept separate from `BENCH_telemetry.json`
//! so both gates diff against their own baselines).

use prefall_bench::telemetry_out;
use prefall_core::detector::{DetectorConfig, GuardConfig, StreamingDetector};
use prefall_core::experiment::{Experiment, ExperimentConfig, ExperimentReport};
use prefall_core::models::ModelKind;
use prefall_core::pipeline::PipelineConfig;
use prefall_dsp::segment::Overlap;
use prefall_dsp::stats::Normalizer;
use prefall_nn::kernels::set_reference_kernels;
use prefall_telemetry::{Histogram, JsonValue, NoopRecorder, Recorder, TelemetryEnv, Value};
use std::time::Instant;

/// The output file; never clobbers `BENCH_telemetry.json`.
const BENCH_PERF_PATH: &str = "BENCH_perf.json";

/// Classified windows to time per window length — comfortably above
/// benchdiff's `--min-count` default of 20.
const INFER_WINDOWS: usize = 64;

/// A grid small enough for CI but wide enough to exercise parallel
/// cells, parallel folds and cache sharing (same windows across two
/// models ⇒ every cell after the first six is a cache hit).
fn grid_config() -> ExperimentConfig {
    let mut config = ExperimentConfig::fast();
    config.dataset.kfall_subjects = 4;
    config.dataset.self_collected_subjects = 4;
    config.windows_ms = vec![200.0, 300.0, 400.0];
    config.models = vec![ModelKind::Mlp, ModelKind::ProposedCnn];
    config.cv.epochs = 4;
    config.with_env_overrides()
}

/// Streams synthetic samples through a fresh detector at `window_ms`
/// and returns the wall time of each of the [`INFER_WINDOWS`] pushes
/// that completed a hop (segment assembly + normalise + inference).
/// With `reference` set, the naive seed kernels and the allocating
/// inference path are forced for the duration.
fn measure_infer(window_ms: f64, reference: bool) -> Vec<f64> {
    let det_cfg = DetectorConfig {
        pipeline: PipelineConfig::paper(window_ms, Overlap::Half),
        threshold: 1.1, // never trigger: measure pure inference
        consecutive: 1,
        guard: GuardConfig::default(),
    };
    let window = det_cfg.pipeline.segmentation.window();
    let net = ModelKind::ProposedCnn
        .build(window, 9, 1)
        .expect("model builds");
    let mut det = StreamingDetector::new(net, Normalizer::identity(9), det_cfg).expect("detector");
    set_reference_kernels(reference);
    // Warm up: fill the window and classify at least once so the
    // workspace and segment scratch are sized.
    let mut classified = 0usize;
    for _ in 0..2 * window {
        if det
            .push_sample([0.01, -0.02, 1.0], [0.0, 0.1, 0.0])
            .is_some()
        {
            classified += 1;
        }
    }
    assert!(classified > 0, "warm-up must classify at least once");
    let mut samples = Vec::with_capacity(INFER_WINDOWS);
    while samples.len() < INFER_WINDOWS {
        let t0 = Instant::now();
        let p = det.push_sample([0.01, -0.02, 1.0], [0.0, 0.1, 0.0]);
        let elapsed = t0.elapsed().as_secs_f64();
        if p.is_some() {
            samples.push(elapsed);
        }
    }
    set_reference_kernels(false);
    samples
}

fn median(samples: &[f64]) -> f64 {
    let mut v = samples.to_vec();
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn run_leg(
    config: &ExperimentConfig,
    threads: usize,
    rec: &dyn Recorder,
) -> Result<(ExperimentReport, f64), String> {
    let mut cfg = config.clone();
    cfg.threads = Some(threads);
    let start = Instant::now();
    let report = Experiment::new(cfg)
        .run_recorded(rec)
        .map_err(|e| format!("experiment failed: {e}"))?;
    Ok((report, start.elapsed().as_secs_f64()))
}

fn real_main() -> Result<(), String> {
    let quiet = TelemetryEnv::from_env().quiet;
    let say = |line: String| {
        if !quiet {
            println!("{line}");
        }
    };
    let (registry, rec) = telemetry_out::bench_recorder();
    let config = grid_config();
    let threads: usize = std::env::var("PREFALL_PERF_THREADS")
        .or_else(|_| std::env::var("PREFALL_THREADS"))
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    // The env var is consumed: nested CV/train pools resolve
    // `PREFALL_THREADS` ahead of the inherited map budget, so leaving
    // it set would silently parallelise leg A's inner loops and
    // corrupt the serial baseline.
    std::env::remove_var("PREFALL_THREADS");
    rec.event(
        "bench.phase",
        &[
            ("bench", Value::from("perf")),
            ("phase", Value::from("serial")),
            ("threads", Value::from(threads)),
        ],
    );

    // Leg A: the seed-equivalent serial path. Reference kernels, no
    // cache, one worker. Telemetry routes to the no-op recorder so the
    // dumped snapshot describes only the optimised leg.
    set_reference_kernels(true);
    std::env::set_var("PREFALL_PREPROC_CACHE", "0");
    let serial = run_leg(&config, 1, &NoopRecorder);
    set_reference_kernels(false);
    std::env::remove_var("PREFALL_PREPROC_CACHE");
    let (report_a, serial_wall_s) = serial?;

    // Leg B: blocked/fused kernels, segment cache, worker pool.
    rec.event(
        "bench.phase",
        &[
            ("bench", Value::from("perf")),
            ("phase", Value::from("parallel")),
        ],
    );
    let (report_b, parallel_wall_s) = run_leg(&config, threads, rec.as_ref())?;

    // The contract that makes the ratio meaningful: same bits out.
    if report_a.cells != report_b.cells {
        return Err(
            "FAST PATH DIVERGED — optimised run produced different cells \
             than the reference serial run; refusing to report a speedup"
                .to_string(),
        );
    }

    let speedup = serial_wall_s / parallel_wall_s;
    registry.gauge_set("perf.speedup", speedup);
    registry.gauge_set("perf.threads", threads as f64);
    registry.gauge_set("perf.grid_cells", report_b.cells.len() as f64);

    // Steady-state streaming inference per window length: fill the
    // ring, then time only the pushes that complete a hop (those run
    // the full segment-assembly + normalise + inference path). Each
    // window is measured twice — optimised (fused workspace kernels)
    // and reference (the allocating seed path) — and the per-window
    // median ratio is the kernel speedup, which unlike the grid wall
    // ratio does not depend on how many cores the runner has.
    rec.event(
        "bench.phase",
        &[
            ("bench", Value::from("perf")),
            ("phase", Value::from("stream")),
        ],
    );
    let fine = Histogram::log_bounds(1e-8, 1.0, 10);
    let mut infer_speedup_product = 1.0f64;
    for &window_ms in &[200.0, 300.0, 400.0] {
        let name = format!("detector.infer_w{}_seconds", window_ms as u32);
        registry.register_histogram(&name, fine.clone());
        let fused = measure_infer(window_ms, false);
        let reference = measure_infer(window_ms, true);
        for &s in &fused {
            registry.observe(&name, s);
        }
        let ratio = median(&reference) / median(&fused);
        registry.gauge_set(&format!("perf.infer_speedup_w{}", window_ms as u32), ratio);
        infer_speedup_product *= ratio;
    }
    let infer_speedup = infer_speedup_product.cbrt();
    registry.gauge_set("perf.infer_speedup", infer_speedup);

    let snap = registry.snapshot();
    say("=== perf: fast path vs seed-equivalent serial ===".to_string());
    say(format!(
        "grid         : {} cells ({} models × {} windows), {} folds, {} epochs",
        report_b.cells.len(),
        config.models.len(),
        config.windows_ms.len(),
        config.cv.folds,
        config.cv.epochs
    ));
    say(format!(
        "serial wall  : {serial_wall_s:8.2} s  (reference kernels, no cache, 1 thread)"
    ));
    say(format!(
        "parallel wall: {parallel_wall_s:8.2} s  (fused kernels, cache, {threads} threads)"
    ));
    say(format!(
        "speedup      : {speedup:8.2}×  (bit-identical cells — verified)"
    ));
    say(format!("infer speedup: {infer_speedup:8.2}×  (fused workspace path vs reference, median of medians)"));
    for &window_ms in &[200.0, 300.0, 400.0] {
        let name = format!("detector.infer_w{}_seconds", window_ms as u32);
        let ratio = snap
            .gauges
            .get(&format!("perf.infer_speedup_w{}", window_ms as u32))
            .copied()
            .unwrap_or(f64::NAN);
        if let Some(h) = snap.histograms.get(&name) {
            say(format!(
                "infer {window_ms:3.0} ms : {} windows, p50 {:7.1} µs  p95 {:7.1} µs  p99 {:7.1} µs  ({ratio:.2}× vs reference)",
                h.count,
                h.p50 * 1e6,
                h.p95 * 1e6,
                h.p99 * 1e6
            ));
        }
    }
    for key in ["cache.hits", "cache.misses", "par.maps", "par.tasks"] {
        if let Some(v) = snap.counters.get(key) {
            say(format!("{key:<13}: {v}"));
        }
    }

    telemetry_out::dump_to(
        BENCH_PERF_PATH,
        "perf",
        &snap,
        vec![
            ("serial_wall_s".to_string(), JsonValue::F64(serial_wall_s)),
            (
                "parallel_wall_s".to_string(),
                JsonValue::F64(parallel_wall_s),
            ),
            ("threads".to_string(), JsonValue::U64(threads as u64)),
            (
                "grid_cells".to_string(),
                JsonValue::U64(report_b.cells.len() as u64),
            ),
        ],
    );
    Ok(())
}

fn main() {
    // All telemetry sinks (JSONL recorders flush on drop) live inside
    // real_main, so an error path still flushes before the exit code.
    if let Err(e) = real_main() {
        eprintln!("perf: {e}");
        std::process::exit(1);
    }
}
