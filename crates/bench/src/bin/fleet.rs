//! Fleet-serving bench: drives the `prefall-fleet` ingest server with
//! real TCP clients — a clean leg and a chaos leg — plus an in-process
//! batched-throughput leg, and gates the robustness contract.
//!
//! Legs:
//!
//! 1. **clean** — N concurrent wearers stream tick-sequenced batches
//!    over keep-alive connections. Gates: every batch accepted, zero
//!    shedding, and every wearer's probability stream **bit-identical**
//!    (`f32::to_bits`) to the serial single-stream detector.
//! 2. **throughput** — in-process `ingest_many` over the worker pool:
//!    session onboarding rate (`fleet.sessions_per_s`) and steady-state
//!    batch rate (`fleet.batches_per_s`), both benchdiff-gated as
//!    `*_per_s` throughput metrics.
//! 3. **chaos** — [`NetFaultPlan::storm`] clients act out stalls,
//!    partial writes, reorders, duplicates, mid-batch disconnects and
//!    reconnect storms against the live server while a fast supervisor
//!    reaps idle sessions underneath. Gates: no rejection, no
//!    cross-contamination (clean wearers stay bit-identical to serial),
//!    every faulty wearer converges to the full tick count, duplicates
//!    recognised, memory bounded (sessions, parked checkpoints, accept
//!    queue).
//! 4. **shed** — forced load-shedding accounting: every shed window
//!    counted, none classified, recovery restores inference; plus the
//!    transport backpressure contract (429 + exponentially growing
//!    `Retry-After` hints) checked over TCP.
//!
//! Output: `bench-out/BENCH_fleet.json`, diffed in CI against
//! `ci/fleet_baseline.json` (p99 ingest latency via
//! `fleet.ingest_seconds`, throughput via the `*_per_s` gauges).
//!
//! ```text
//! cargo run --release -p prefall-bench --bin prefall-fleet
//! ```

use prefall_bench::telemetry_out;
use prefall_core::detector::{DetectorConfig, GuardConfig, StreamingDetector};
use prefall_core::models::ModelKind;
use prefall_core::pipeline::PipelineConfig;
use prefall_core::session::ModelBundle;
use prefall_dsp::segment::Overlap;
use prefall_dsp::stats::Normalizer;
use prefall_faults::NetFaultPlan;
use prefall_fleet::{
    BatchSample, Fleet, FleetConfig, FleetServer, IngestBatch, IngestReply, IngestStatus,
};
use prefall_telemetry::{JsonValue, Recorder};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Clean leg: wearers × ticks over TCP.
const CLEAN_WEARERS: u64 = 12;
const CLEAN_TICKS: u64 = 400;
const CLEAN_BATCH: u64 = 40;

/// Throughput leg: sessions onboarded in one `ingest_many` round.
const ONBOARD_SESSIONS: u64 = 192;
const STEADY_ROUNDS: u64 = 2;

/// Chaos leg: faulty + clean streams, ticks each.
const CHAOS_FAULTY: u64 = 10;
const CHAOS_CLEAN: u64 = 4;
const CHAOS_BATCHES: u64 = 10;
const CHAOS_BATCH: u64 = 30;

fn detector_config() -> DetectorConfig {
    DetectorConfig {
        pipeline: PipelineConfig::paper(400.0, Overlap::Half),
        threshold: 0.5,
        consecutive: 3,
        guard: GuardConfig::default(),
    }
}

fn bundle() -> ModelBundle {
    let cfg = detector_config();
    let net = ModelKind::ProposedCnn
        .build(cfg.pipeline.segmentation.window(), 9, 1)
        .expect("model builds");
    ModelBundle::new(net, Normalizer::identity(9), cfg).expect("bundle")
}

/// Deterministic wearer-distinct motion, every axis varying.
fn motion(wearer: u64, tick: u64) -> ([f32; 3], [f32; 3]) {
    let w = wearer as f32;
    let t = tick as f32 * 0.06;
    (
        [
            0.05 * (t + w).sin(),
            -0.03 * (t * 0.9 + w).cos(),
            1.0 + 0.02 * (2.1 * t).sin(),
        ],
        [
            11.0 * (t * 1.3 + w).sin(),
            -6.0 * (t + 0.2 * w).cos(),
            3.0 * (0.7 * t + w).sin(),
        ],
    )
}

fn batch_for(wearer: u64, seq: u64, len: u64) -> IngestBatch {
    IngestBatch {
        wearer,
        seq,
        samples: (0..len)
            .map(|i| {
                let (accel, gyro) = motion(wearer, seq + i);
                BatchSample::Sample { accel, gyro }
            })
            .collect(),
    }
}

/// The serial single-stream reference: one wearer, one detector,
/// bit-exact probability stream.
fn serial_probs(wearer: u64, ticks: u64) -> Vec<u32> {
    let cfg = detector_config();
    let net = ModelKind::ProposedCnn
        .build(cfg.pipeline.segmentation.window(), 9, 1)
        .expect("model builds");
    let mut det = StreamingDetector::new(net, Normalizer::identity(9), cfg).expect("detector");
    let mut probs = Vec::new();
    for t in 0..ticks {
        let (a, g) = motion(wearer, t);
        if let Some(p) = det.push_sample(a, g) {
            probs.push(p.to_bits());
        }
    }
    probs
}

fn fail(gate: &str, detail: String) -> ! {
    eprintln!("fleet bench: FAIL ({gate}) — {detail}");
    std::process::exit(1);
}

// ---------------------------------------------------------------------
// Minimal HTTP/1.1 ingest client
// ---------------------------------------------------------------------

struct Client {
    addr: SocketAddr,
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

struct HttpReply {
    code: u16,
    retry_after_ms: Option<u64>,
    body: Vec<u8>,
}

impl Client {
    fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            addr,
            stream,
            reader,
        })
    }

    fn reconnect(&mut self) -> std::io::Result<()> {
        *self = Self::connect(self.addr)?;
        Ok(())
    }

    fn request_bytes(batch: &[u8]) -> Vec<u8> {
        let mut req = format!(
            "POST /ingest HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            batch.len()
        )
        .into_bytes();
        req.extend_from_slice(batch);
        req
    }

    fn read_reply(&mut self) -> std::io::Result<HttpReply> {
        let mut status = String::new();
        if self.reader.read_line(&mut status)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before status line",
            ));
        }
        let code: u16 = status
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line")
            })?;
        let mut content_length = 0usize;
        let mut retry_after_ms = None;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.parse().unwrap_or(0);
                } else if name.eq_ignore_ascii_case("retry-after-ms") {
                    retry_after_ms = value.parse().ok();
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(HttpReply {
            code,
            retry_after_ms,
            body,
        })
    }

    /// One clean request/response exchange.
    fn post(&mut self, batch: &IngestBatch) -> std::io::Result<HttpReply> {
        self.stream
            .write_all(&Self::request_bytes(&batch.to_bytes()))?;
        self.stream.flush()?;
        self.read_reply()
    }
}

fn parse_reply(body: &[u8]) -> IngestReply {
    let text = std::str::from_utf8(body)
        .unwrap_or_else(|e| fail("protocol", format!("non-UTF-8 reply body: {e}")));
    let doc = JsonValue::parse(text)
        .unwrap_or_else(|e| fail("protocol", format!("unparseable reply: {e}")));
    IngestReply::from_json(&doc).unwrap_or_else(|e| fail("protocol", format!("bad reply: {e}")))
}

// ---------------------------------------------------------------------
// Legs
// ---------------------------------------------------------------------

/// Clean TCP leg: concurrent streams, bit-identity gate, server-side
/// ingest latency histogram.
fn clean_leg(rec: &Arc<dyn prefall_telemetry::Recorder>) {
    let mut fleet = Fleet::new(
        bundle(),
        FleetConfig {
            // Pressure thresholds out of reach: this leg *defines* the
            // bit-identity contract, so shedding must never engage.
            shed_at: 1 << 20,
            reject_at: 1 << 20,
            ..FleetConfig::default()
        },
    );
    fleet.set_recorder(Arc::clone(rec));
    let fleet = Arc::new(fleet);
    let server = FleetServer::start("127.0.0.1:0", Arc::clone(&fleet)).expect("bind");
    let addr = server.addr();

    let start = Instant::now();
    let handles: Vec<_> = (0..CLEAN_WEARERS)
        .map(|w| {
            std::thread::spawn(move || -> Vec<u32> {
                let mut client = Client::connect(addr).expect("connect");
                let mut probs = Vec::new();
                for seq in (0..CLEAN_TICKS).step_by(CLEAN_BATCH as usize) {
                    let reply = client
                        .post(&batch_for(w, seq, CLEAN_BATCH))
                        .unwrap_or_else(|e| fail("clean", format!("wearer {w} io: {e}")));
                    if reply.code != 200 {
                        fail("clean", format!("wearer {w} got HTTP {}", reply.code));
                    }
                    let reply = parse_reply(&reply.body);
                    if reply.status != IngestStatus::Accepted || reply.shed {
                        fail(
                            "clean",
                            format!("wearer {w}: {:?} shed={}", reply.status, reply.shed),
                        );
                    }
                    probs.extend(reply.probs_bits);
                }
                probs
            })
        })
        .collect();
    let streams: Vec<Vec<u32>> = handles
        .into_iter()
        .map(|h| h.join().expect("join"))
        .collect();
    let wall = start.elapsed().as_secs_f64();

    for (w, probs) in streams.iter().enumerate() {
        let serial = serial_probs(w as u64, CLEAN_TICKS);
        if probs != &serial {
            fail(
                "clean bit-identity",
                format!("wearer {w} diverged from the serial detector"),
            );
        }
    }
    let stats = fleet.stats();
    if stats.shed_windows != 0 || stats.rejected != 0 {
        fail(
            "clean",
            format!(
                "unexpected degradation: shed={} rejected={}",
                stats.shed_windows, stats.rejected
            ),
        );
    }
    println!(
        "clean       : {CLEAN_WEARERS} streams x {CLEAN_TICKS} ticks over TCP in {:.2}s, \
         {} windows, bit-identical to serial",
        wall, stats.windows
    );
    server.shutdown();
}

/// In-process batched throughput: onboarding rate and steady-state
/// batch rate across the worker pool.
fn throughput_leg(registry: &Arc<prefall_telemetry::Registry>) {
    let fleet = Fleet::new(
        bundle(),
        FleetConfig {
            // Wearers hash unevenly across shards; leave per-shard slack.
            max_sessions: ONBOARD_SESSIONS as usize * 2,
            shed_at: 1 << 20,
            reject_at: 1 << 20,
            ..FleetConfig::default()
        },
    );

    let onboard: Vec<IngestBatch> = (0..ONBOARD_SESSIONS)
        .map(|w| batch_for(w, 0, CLEAN_BATCH))
        .collect();
    let t0 = Instant::now();
    let replies = fleet.ingest_many(&onboard);
    let onboard_wall = t0.elapsed().as_secs_f64();
    if replies.iter().any(|r| r.status != IngestStatus::Accepted) {
        fail("throughput", "onboarding batch rejected".into());
    }

    let mut batches = ONBOARD_SESSIONS;
    let t1 = Instant::now();
    for round in 1..=STEADY_ROUNDS {
        let seq = round * CLEAN_BATCH;
        let wave: Vec<IngestBatch> = (0..ONBOARD_SESSIONS)
            .map(|w| batch_for(w, seq, CLEAN_BATCH))
            .collect();
        let replies = fleet.ingest_many(&wave);
        if replies.iter().any(|r| r.status != IngestStatus::Accepted) {
            fail("throughput", format!("round {round} rejected a batch"));
        }
        batches += ONBOARD_SESSIONS;
    }
    let steady_wall = t1.elapsed().as_secs_f64();

    let sessions_per_s = ONBOARD_SESSIONS as f64 / onboard_wall.max(1e-9);
    let batches_per_s = (batches - ONBOARD_SESSIONS) as f64 / steady_wall.max(1e-9);
    registry.gauge_set("fleet.sessions_per_s", sessions_per_s);
    registry.gauge_set("fleet.batches_per_s", batches_per_s);
    println!(
        "throughput  : onboarded {ONBOARD_SESSIONS} sessions at {:.0}/s, \
         steady ingest {:.0} batches/s",
        sessions_per_s, batches_per_s
    );
}

/// One faulty chaos stream: acts out the plan's transport faults,
/// returns (final next_seq, duplicates seen, regressions seen).
fn run_faulty_stream(addr: SocketAddr, wearer: u64, plan: &NetFaultPlan) -> (u64, u64, u64) {
    let mut client = Client::connect(addr).expect("connect");
    let batches: Vec<Vec<u8>> = (0..CHAOS_BATCHES)
        .map(|k| batch_for(wearer, k * CHAOS_BATCH, CHAOS_BATCH).to_bytes())
        .collect();

    // Apply reorders up front: a reordered batch swaps places with its
    // successor on the wire.
    let mut order: Vec<usize> = (0..batches.len()).collect();
    let mut k = 0;
    while k + 1 < order.len() {
        if plan.actions(wearer, k as u64).reorder_with_next {
            order.swap(k, k + 1);
            k += 2;
        } else {
            k += 1;
        }
    }

    let mut next_seq = 0u64;
    let mut duplicates = 0u64;
    let mut regressions = 0u64;
    for &i in &order {
        let acts = plan.actions(wearer, i as u64);
        for _ in 0..acts.reconnect_burst {
            client.reconnect().expect("reconnect burst");
        }
        if acts.stall_ms > 0 {
            std::thread::sleep(Duration::from_millis(acts.stall_ms));
        }
        let req = Client::request_bytes(&batches[i]);
        if acts.disconnect_mid_batch {
            // Half a request, then the connection dies.
            let _ = client.stream.write_all(&req[..req.len() / 2]);
            let _ = client.stream.flush();
            client.reconnect().expect("reconnect after mid-batch drop");
        }
        let sends = if acts.duplicate { 2 } else { 1 };
        for _ in 0..sends {
            let outcome = (|| -> std::io::Result<HttpReply> {
                if acts.partial_write {
                    let half = req.len() / 2;
                    client.stream.write_all(&req[..half])?;
                    client.stream.flush()?;
                    std::thread::sleep(Duration::from_millis(2));
                    client.stream.write_all(&req[half..])?;
                } else {
                    client.stream.write_all(&req)?;
                }
                client.stream.flush()?;
                client.read_reply()
            })();
            let http = match outcome {
                Ok(http) => http,
                Err(_) => {
                    // Cut mid-exchange: reconnect and retransmit — the
                    // tick-sequenced protocol makes the retry safe.
                    client.reconnect().expect("reconnect after cut");
                    client.stream.write_all(&req).expect("retransmit");
                    client.read_reply().expect("reply after retransmit")
                }
            };
            if http.code != 200 {
                fail(
                    "chaos",
                    format!("faulty wearer {wearer} got HTTP {}", http.code),
                );
            }
            let reply = parse_reply(&http.body);
            if reply.wearer != wearer {
                fail(
                    "chaos cross-contamination",
                    format!("wearer {wearer} got wearer {}'s reply", reply.wearer),
                );
            }
            match reply.status {
                IngestStatus::Rejected => {
                    fail("chaos", format!("wearer {wearer} rejected mid-stream"))
                }
                IngestStatus::Duplicate => duplicates += 1,
                IngestStatus::Accepted => {}
            }
            if reply.regressed {
                regressions += 1;
            }
            next_seq = next_seq.max(reply.next_seq);
        }
    }
    (next_seq, duplicates, regressions)
}

/// Chaos leg: faulty and clean streams share the server while the
/// supervisor reaps underneath.
fn chaos_leg(rec: &Arc<dyn prefall_telemetry::Recorder>, seed: u64) -> (u64, u64) {
    let cfg = FleetConfig {
        // Shedding stays out of reach so the concurrently-served clean
        // streams keep their bit-identity guarantee (the shed leg
        // exercises degradation separately).
        shed_at: 1 << 20,
        reject_at: 1 << 20,
        max_parked: 64,
        // An aggressive supervisor: stalled streams get parked quickly
        // and must resume warm when their wearer retransmits.
        idle_timeout: Duration::from_millis(200),
        supervise_interval: Duration::from_millis(50),
        ..FleetConfig::default()
    };
    let queue_cap = cfg.queue_cap;
    let mut fleet = Fleet::new(bundle(), cfg);
    fleet.set_recorder(Arc::clone(rec));
    let fleet = Arc::new(fleet);
    let supervisor = fleet.spawn_supervisor();
    let server = FleetServer::start("127.0.0.1:0", Arc::clone(&fleet)).expect("bind");
    let addr = server.addr();
    let plan = NetFaultPlan::storm(seed);
    let total_ticks = CHAOS_BATCHES * CHAOS_BATCH;

    let faulty: Vec<_> = (0..CHAOS_FAULTY)
        .map(|i| {
            let plan = plan.clone();
            let wearer = 100 + i;
            std::thread::spawn(move || run_faulty_stream(addr, wearer, &plan))
        })
        .collect();
    let clean: Vec<_> = (0..CHAOS_CLEAN)
        .map(|i| {
            let wearer = 200 + i;
            std::thread::spawn(move || -> (u64, Vec<u32>) {
                let mut client = Client::connect(addr).expect("connect");
                let mut probs = Vec::new();
                for seq in (0..total_ticks).step_by(CHAOS_BATCH as usize) {
                    let http = client
                        .post(&batch_for(wearer, seq, CHAOS_BATCH))
                        .unwrap_or_else(|e| fail("chaos", format!("clean wearer {wearer}: {e}")));
                    if http.code != 200 {
                        fail(
                            "chaos",
                            format!("clean wearer {wearer} got HTTP {}", http.code),
                        );
                    }
                    let reply = parse_reply(&http.body);
                    if reply.status != IngestStatus::Accepted || reply.wearer != wearer {
                        fail("chaos", format!("clean wearer {wearer} mis-served"));
                    }
                    probs.extend(reply.probs_bits);
                }
                (wearer, probs)
            })
        })
        .collect();

    let mut duplicates = 0u64;
    let mut regressions = 0u64;
    for h in faulty {
        let (next_seq, dups, regs) = h.join().expect("faulty stream panicked");
        if next_seq != total_ticks {
            fail(
                "chaos convergence",
                format!("faulty stream stopped at tick {next_seq} of {total_ticks}"),
            );
        }
        duplicates += dups;
        regressions += regs;
    }
    for h in clean {
        let (wearer, probs) = h.join().expect("clean stream panicked");
        if probs != serial_probs(wearer, total_ticks) {
            fail(
                "chaos cross-contamination",
                format!("clean wearer {wearer} diverged under concurrent chaos"),
            );
        }
    }

    // Bounded memory: sessions never exceed the wearer population,
    // parked checkpoints and the accept queue stay within their caps,
    // and the free-list accounting balances.
    let stats = fleet.stats();
    let population = CHAOS_FAULTY + CHAOS_CLEAN;
    if stats.sessions_created > population {
        fail(
            "chaos memory",
            format!(
                "{} sessions created for {population} wearers",
                stats.sessions_created
            ),
        );
    }
    if stats.sessions_parked > 64 {
        fail(
            "chaos memory",
            "parked checkpoints exceeded max_parked".into(),
        );
    }
    if stats.queue_depth_hw > queue_cap {
        fail("chaos memory", "accept queue exceeded its cap".into());
    }
    if stats.sessions_created != (stats.sessions_active + stats.sessions_free) as u64 {
        fail("chaos memory", "session accounting leaked".into());
    }
    if stats.duplicates == 0 {
        fail(
            "chaos coverage",
            "storm produced no duplicate deliveries — plan not exercised".into(),
        );
    }
    if stats.shed_windows != 0 {
        fail("chaos", "unexpected shedding in the chaos leg".into());
    }
    println!(
        "chaos       : {CHAOS_FAULTY} faulty + {CHAOS_CLEAN} clean streams converged \
         ({} dups, {} regressions, {} reaped, {} resumed), memory bounded",
        duplicates, regressions, stats.reaped, stats.resumed
    );
    server.shutdown();
    supervisor.shutdown();
    (duplicates, regressions)
}

/// Shed accounting + transport backpressure contract.
fn shed_leg(rec: &Arc<dyn prefall_telemetry::Recorder>) -> f64 {
    let mut fleet = Fleet::new(bundle(), FleetConfig::default());
    fleet.set_recorder(Arc::clone(rec));
    let wearers = 8u64;
    let ticks = 200u64;

    // Forced shed: cadence advances, nothing classifies.
    let mut replied_shed = 0u64;
    for seq in (0..ticks).step_by(CLEAN_BATCH as usize) {
        let wave: Vec<IngestBatch> = (0..wearers)
            .map(|w| batch_for(w, seq, CLEAN_BATCH))
            .collect();
        for reply in fleet.ingest_many_with(&wave, true) {
            if !reply.shed || !reply.probs_bits.is_empty() || reply.windows != 0 {
                fail("shed", "forced shed still ran inference".into());
            }
            replied_shed += reply.shed_windows;
        }
    }
    let stats = fleet.stats();
    if stats.shed_windows != replied_shed || replied_shed == 0 {
        fail(
            "shed accounting",
            format!(
                "counted {} shed windows, replies said {replied_shed}",
                stats.shed_windows
            ),
        );
    }
    // Recovery: inference resumes on the same sessions.
    let wave: Vec<IngestBatch> = (0..wearers)
        .map(|w| batch_for(w, ticks, CLEAN_BATCH))
        .collect();
    if !fleet
        .ingest_many_with(&wave, false)
        .iter()
        .all(|r| r.windows > 0 && !r.shed)
    {
        fail(
            "shed recovery",
            "inference did not resume after shed".into(),
        );
    }
    let stats = fleet.stats();
    let shed_rate = stats.shed_windows as f64 / (stats.shed_windows + stats.windows) as f64;

    // Transport backpressure: a saturated fleet answers 429 with
    // exponentially growing retry hints.
    let mut bp = Fleet::new(
        bundle(),
        FleetConfig {
            reject_at: 0,
            retry_after_ms: 100,
            ..FleetConfig::default()
        },
    );
    bp.set_recorder(Arc::clone(rec));
    let bp = Arc::new(bp);
    let server = FleetServer::start("127.0.0.1:0", Arc::clone(&bp)).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let mut hints = Vec::new();
    for _ in 0..3 {
        let http = client.post(&batch_for(1, 0, 10)).expect("post");
        if http.code != 429 {
            fail("backpressure", format!("expected 429, got {}", http.code));
        }
        hints.push(http.retry_after_ms.unwrap_or(0));
    }
    if hints != [100, 200, 400] {
        fail(
            "backpressure",
            format!("retry hints not exponential: {hints:?}"),
        );
    }
    server.shutdown();
    println!(
        "shed        : {replied_shed} shed windows accounted exactly (rate {:.3}), \
         429 hints {hints:?}",
        shed_rate
    );
    shed_rate
}

fn main() {
    let (registry, rec) = telemetry_out::bench_recorder();
    let seed: u64 = std::env::var("PREFALL_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);

    clean_leg(&rec);
    throughput_leg(&registry);
    let (duplicates, regressions) = chaos_leg(&rec, seed);
    let shed_rate = shed_leg(&rec);
    registry.gauge_set("fleet.shed_rate", shed_rate);

    telemetry_out::dump_to(
        "BENCH_fleet.json",
        "fleet",
        &registry.snapshot(),
        vec![
            ("fault_seed".to_string(), JsonValue::U64(seed)),
            ("clean_streams".to_string(), JsonValue::U64(CLEAN_WEARERS)),
            (
                "chaos_streams".to_string(),
                JsonValue::U64(CHAOS_FAULTY + CHAOS_CLEAN),
            ),
            ("chaos_duplicates".to_string(), JsonValue::U64(duplicates)),
            ("chaos_regressions".to_string(), JsonValue::U64(regressions)),
            ("shed_rate".to_string(), JsonValue::F64(shed_rate)),
        ],
    );
}
