//! Robustness sweep: trains the proposed CNN, then streams every trial
//! through the hardened [`StreamingDetector`] under increasingly severe
//! sensor corruption ([`FaultPlan::kitchen_sink`] scaled from 0 to 1)
//! and reports how detection degrades.
//!
//! Three gates make the binary a CI check rather than just a report:
//!
//! 1. **Clean-signal identity** — on the uncorrupted dataset the
//!    hardened guard must be a bit-exact no-op: every trial's
//!    `triggered_at` must match the guard-disabled legacy path.
//!    Mismatch → exit 1.
//! 2. **Finite probabilities** — no window under any fault intensity
//!    may produce a non-finite probability. Violation → exit 2.
//! 3. **Monotone degradation** — detection rate must not *increase*
//!    with fault intensity beyond a 5-point tolerance (the nested
//!    per-sample hashing makes lower intensities strict subsets of
//!    higher ones, so real increases indicate a seeding bug).
//!    Violation → exit 3.
//!
//! The telemetry snapshot lands in `BENCH_robustness.json` (not
//! `BENCH_telemetry.json`, so both files can be diffed against their
//! own committed baselines by `benchdiff`). `PREFALL_SEED` picks the
//! fault seed (default 7); `PREFALL_EPOCHS`, `PREFALL_KFALL` and
//! `PREFALL_SELF` shrink or grow the training run as usual.
//!
//! ```text
//! cargo run --release -p prefall-bench --bin robustness
//! ```

use prefall_bench::telemetry_out;
use prefall_core::cv::{subject_folds, train_on_sets_recorded, CvConfig};
use prefall_core::detector::{
    run_on_trial, DetectorConfig, GuardConfig, StreamingDetector, TrialOutcome,
};
use prefall_core::models::ModelKind;
use prefall_core::pipeline::{Pipeline, PipelineConfig};
use prefall_faults::{run_on_faulted_trial, FaultPlan};
use prefall_imu::dataset::{Dataset, DatasetConfig};
use prefall_telemetry::{JsonValue, Recorder, Value};

/// Fault intensities swept, in order.
const INTENSITIES: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];
/// Detection rate may rise by at most this much between adjacent
/// intensities before the sweep is declared non-monotone.
const MONOTONE_TOLERANCE: f64 = 0.05;

/// Per-intensity aggregates over one pass of the dataset.
struct SweepPoint {
    intensity: f64,
    detection_rate: f64,
    lead_p50_ms: f64,
    false_activation_rate: f64,
    fault_rate: f64,
}

fn main() {
    let (registry, rec) = telemetry_out::bench_recorder();
    let _server = prefall_obsd::serve_from_env(&registry);

    let seed: u64 = std::env::var("PREFALL_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);

    let mut dataset_cfg = DatasetConfig {
        kfall_subjects: 2,
        self_collected_subjects: 2,
        trials_per_task: 1,
        duration_scale: 0.5,
        seed: 2025,
    };
    if let Ok(n) = std::env::var("PREFALL_KFALL").map(|v| v.parse().unwrap_or(2)) {
        dataset_cfg.kfall_subjects = n;
    }
    if let Ok(n) = std::env::var("PREFALL_SELF").map(|v| v.parse().unwrap_or(2)) {
        dataset_cfg.self_collected_subjects = n;
    }
    let mut cv = CvConfig::paper_scaled(8);
    cv.folds = 2;
    cv.val_subjects = 1;
    if let Ok(n) = std::env::var("PREFALL_EPOCHS").map(|v| v.parse().unwrap_or(6)) {
        cv.epochs = n;
    }

    rec.event("bench.phase", &[("phase", Value::from("train"))]);
    let dataset = Dataset::generate(&dataset_cfg).expect("dataset");
    let pipeline = Pipeline::new(PipelineConfig::paper_400ms()).expect("pipeline");
    let full = pipeline.segment_set_recorded(dataset.trials(), rec.as_ref());
    let splits =
        subject_folds(&dataset.subject_ids(), cv.folds, cv.val_subjects, cv.seed).expect("folds");
    let split = &splits[0];
    let train_set = full.filter_subjects(&split.train);
    let val_set = full.filter_subjects(&split.val);
    let test_set = full.filter_subjects(&split.test);
    let (net, _preds, _epochs) = train_on_sets_recorded(
        &pipeline,
        train_set.clone(),
        val_set,
        test_set,
        ModelKind::ProposedCnn,
        &cv,
        seed,
        rec.as_ref(),
    )
    .expect("training");
    let norm = pipeline.fit_normalizer(&train_set);

    let mut detector =
        StreamingDetector::new(net, norm, DetectorConfig::paper_400ms()).expect("detector");
    detector.set_recorder(registry.clone());

    // Gate 1: on clean signal the guard must change nothing. Run every
    // trial twice — guard off (the legacy byte-for-byte path), guard on
    // — and demand identical trigger samples.
    rec.event("bench.phase", &[("phase", Value::from("clean_gate"))]);
    let clean_pass = |d: &mut StreamingDetector| -> Vec<Option<usize>> {
        dataset
            .trials()
            .iter()
            .map(|t| run_on_trial(d, t).triggered_at)
            .collect()
    };
    detector.set_guard(GuardConfig::disabled());
    let legacy = clean_pass(&mut detector);
    detector.set_guard(GuardConfig::default());
    let hardened = clean_pass(&mut detector);
    if legacy != hardened {
        let diverged = legacy.iter().zip(&hardened).filter(|(a, b)| a != b).count();
        eprintln!(
            "robustness: FAIL — hardened ingest changed {diverged}/{} clean-signal trigger \
             decisions (guard must be a no-op on valid data)",
            legacy.len()
        );
        std::process::exit(1);
    }
    println!(
        "clean gate  : guard on == guard off across {} trials",
        legacy.len()
    );

    // The sweep: same trained detector, same trials, ever nastier bus.
    rec.event("bench.phase", &[("phase", Value::from("sweep"))]);
    let mut points: Vec<SweepPoint> = Vec::new();
    let mut nonfinite_total: u64 = 0;
    for &intensity in &INTENSITIES {
        let plan = FaultPlan::kitchen_sink(seed).scaled(intensity);
        // Fresh counters so this intensity's fault rate is its own.
        detector.set_guard(GuardConfig::default());
        let (mut falls, mut triggered, mut adls, mut false_act) = (0u64, 0u64, 0u64, 0u64);
        let mut leads: Vec<f64> = Vec::new();
        for trial in dataset.trials() {
            let out: TrialOutcome = run_on_faulted_trial(&mut detector, trial, &plan, rec.as_ref());
            if let Some(p) = out.peak_prob {
                assert!(p.is_finite(), "runner filters non-finite peaks");
            }
            if trial.is_fall() {
                falls += 1;
                if out.triggered_at.is_some() {
                    triggered += 1;
                }
                if let Some(l) = out.lead_time_ms {
                    leads.push(l);
                }
            } else {
                adls += 1;
                if out.false_activation {
                    false_act += 1;
                }
            }
        }
        let status = detector.guard_status();
        nonfinite_total += status.engine_rejects;
        leads.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let lead_p50 = if leads.is_empty() {
            f64::NAN
        } else {
            leads[leads.len() / 2]
        };
        let point = SweepPoint {
            intensity,
            detection_rate: triggered as f64 / falls.max(1) as f64,
            lead_p50_ms: lead_p50,
            false_activation_rate: false_act as f64 / adls.max(1) as f64,
            fault_rate: status.fault_rate(),
        };
        registry.gauge_set(
            &format!("robustness.detection_rate{{intensity={intensity}}}"),
            point.detection_rate,
        );
        if point.lead_p50_ms.is_finite() {
            registry.gauge_set(
                &format!("robustness.lead_p50_ms{{intensity={intensity}}}"),
                point.lead_p50_ms,
            );
        }
        registry.gauge_set(
            &format!("robustness.false_activation_rate{{intensity={intensity}}}"),
            point.false_activation_rate,
        );
        registry.gauge_set(
            &format!("robustness.fault_rate{{intensity={intensity}}}"),
            point.fault_rate,
        );
        println!(
            "intensity {:4.2}: detection {:6.2} %  lead p50 {:7.1} ms  false-act {:5.2} %  \
             fault rate {:6.3}",
            intensity,
            point.detection_rate * 100.0,
            point.lead_p50_ms,
            point.false_activation_rate * 100.0,
            point.fault_rate
        );
        points.push(point);
    }

    // Gate 2: not one window anywhere in the sweep may have produced a
    // non-finite probability (engine_rejects counts segments the guard
    // had to veto at the network boundary; the runner separately counts
    // probabilities that escaped — both must be clean for the hardened
    // path, and the runner's counter is the authoritative one).
    let snap = registry.snapshot();
    let escaped = snap
        .counters
        .get("faults.nonfinite_probs")
        .copied()
        .unwrap_or(0);
    if escaped > 0 {
        eprintln!("robustness: FAIL — {escaped} non-finite probabilities escaped the guard");
        std::process::exit(2);
    }
    println!(
        "finite gate : 0 non-finite probabilities escaped ({} segments vetoed at the engine)",
        nonfinite_total
    );

    // Gate 3: monotone degradation.
    for pair in points.windows(2) {
        if pair[1].detection_rate > pair[0].detection_rate + MONOTONE_TOLERANCE {
            eprintln!(
                "robustness: FAIL — detection rate rose from {:.3} (intensity {}) to {:.3} \
                 (intensity {}): degradation curve is not monotone",
                pair[0].detection_rate,
                pair[0].intensity,
                pair[1].detection_rate,
                pair[1].intensity
            );
            std::process::exit(3);
        }
    }
    println!("monotone gate: detection rate non-increasing across the sweep");

    let curve = JsonValue::Arr(
        points
            .iter()
            .map(|p| {
                JsonValue::Obj(vec![
                    ("intensity".to_string(), JsonValue::F64(p.intensity)),
                    (
                        "detection_rate".to_string(),
                        JsonValue::F64(p.detection_rate),
                    ),
                    ("lead_p50_ms".to_string(), JsonValue::F64(p.lead_p50_ms)),
                    (
                        "false_activation_rate".to_string(),
                        JsonValue::F64(p.false_activation_rate),
                    ),
                    ("fault_rate".to_string(), JsonValue::F64(p.fault_rate)),
                ])
            })
            .collect(),
    );
    telemetry_out::dump_to(
        "BENCH_robustness.json",
        "robustness",
        &snap,
        vec![
            ("fault_seed".to_string(), JsonValue::U64(seed)),
            ("curve".to_string(), curve),
        ],
    );
}
