//! Regenerates **Table II**: the 44-task activity catalogue with class,
//! fall category, risk grouping and KFall membership.
//!
//! ```text
//! cargo run -p prefall-bench --bin table2_activities
//! ```

use prefall_imu::activity::{Activity, ActivityClass, FallCategory, RiskGroup};

fn main() {
    println!("=== Table II (reproduced): activities of the combined protocol ===");
    println!(
        "{:<5} {:<6} {:<13} {:<7} {:<6} description",
        "Task", "class", "category", "group", "KFall"
    );
    println!("{}", "-".repeat(100));
    for a in Activity::catalog() {
        let class = match a.class {
            ActivityClass::Adl => "ADL",
            ActivityClass::Fall => "FALL",
        };
        let category = match a.fall_category {
            Some(FallCategory::FromWalking) => "from-walking",
            Some(FallCategory::FromSitting) => "from-sitting",
            Some(FallCategory::FromStanding) => "from-standing",
            Some(FallCategory::FromHeight) => "from-height",
            None => "-",
        };
        let group = match a.risk_group {
            Some(RiskGroup::Red) => "red",
            Some(RiskGroup::Green) => "green",
            None => "-",
        };
        println!(
            "{:<5} {:<6} {:<13} {:<7} {:<6} {}",
            a.id,
            class,
            category,
            group,
            if a.in_kfall { "yes" } else { "no" },
            a.description
        );
    }
    let adls = Activity::adls().count();
    let falls = Activity::falls().count();
    let kfall_tasks = Activity::catalog().iter().filter(|a| a.in_kfall).count();
    println!("{}", "-".repeat(100));
    println!(
        "{adls} ADL types, {falls} fall types ({kfall_tasks} tasks shared with KFall; tasks 37-44 are construction-site extensions)"
    );
}
