//! Watch-layer bench: replays a long faulted stream on a **virtual
//! clock** and asserts the full alert lifecycle — a quality SLO fires
//! during the fault storm, holds through its refractory window, and
//! resolves after the stream heals — then measures what the wall-clock
//! sampling daemon costs the hot ingest path.
//!
//! The scripted timeline (virtual seconds):
//!
//! | phase | span | detector | signal |
//! |---|---|---|---|
//! | healthy-1 | 0 – 120 s | threshold 1.1 (never fires) | clean trials |
//! | storm | 120 – 300 s | threshold 0.0 (every window fires) + `FaultPlan::kitchen_sink(1.0)` | false activations + degraded guard samples |
//! | healthy-2 | 300 – 600 s | threshold 1.1 | clean trials |
//!
//! Gates (exit non-zero on violation):
//!
//! 1. `fa_rate` (quality) fires inside the storm, is still firing at
//!    storm end, resolves in healthy-2 — and its firing captured a
//!    blackbox incident dump.
//! 2. `degraded_rate` fires inside the storm and resolves.
//! 3. `ingest_p99` never fires (the push path is not the thing being
//!    faulted).
//! 4. Overhead: streaming classification with the sampling daemon
//!    armed must stay within a few percent of the unarmed path —
//!    recorded as the `watch.arming_speedup` gauge and CI-gated by
//!    `benchdiff --speedup-pct 3` against `ci/watch_baseline.json`.
//!
//! Output: `bench-out/BENCH_watch.json`.
//!
//! ```text
//! cargo run --release -p prefall-bench --bin prefall-watch
//! ```

use prefall_bench::telemetry_out;
use prefall_blackbox::{FlightConfig, FlightRecorder};
use prefall_core::detector::{
    run_on_trial_recorded, DetectorConfig, GuardConfig, StreamingDetector,
};
use prefall_core::models::ModelKind;
use prefall_core::pipeline::PipelineConfig;
use prefall_dsp::segment::Overlap;
use prefall_dsp::stats::Normalizer;
use prefall_faults::{run_on_faulted_trial, FaultPlan};
use prefall_imu::dataset::{Dataset, DatasetConfig};
use prefall_imu::SAMPLE_PERIOD_MS;
use prefall_telemetry::{JsonValue, Recorder, Registry, Value};
use prefall_watch::{Alert, SloObjective, SloSpec, StoreConfig, Watch, WatchConfig};
use std::sync::Arc;
use std::time::Instant;

/// Phase boundaries on the virtual clock (seconds).
const STORM_START_S: f64 = 120.0;
const STORM_END_S: f64 = 300.0;
const REPLAY_END_S: f64 = 600.0;

/// Classified windows per mode in the overhead leg.
const OVERHEAD_WINDOWS: usize = 200;

/// The bench's SLO dynamics: tight windows so the 600 s replay covers
/// fire + refractory + resolve with margin.
fn bench_slos() -> Vec<SloSpec> {
    vec![
        SloSpec::new(
            "fa_rate",
            SloObjective::CounterRateCeiling {
                counter: "detector.false_activations".into(),
                per_seconds: 3600.0,
                max: 30.0,
            },
        )
        .windows(120.0, 30.0)
        .burn(2.0, 1.0)
        .hold(60.0, 30.0)
        .quality(),
        SloSpec::new(
            "degraded_rate",
            SloObjective::RatioCeiling {
                num: "guard.degraded_samples".into(),
                den: "guard.samples".into(),
                max: 0.05,
                min_den: 100.0,
            },
        )
        .windows(120.0, 30.0)
        .burn(2.0, 1.0)
        .hold(60.0, 30.0),
        SloSpec::new(
            "ingest_p99",
            SloObjective::QuantileCeiling {
                histogram: "detector.push_sample_seconds".into(),
                q: 0.99,
                max: 5e-3,
                min_count: 100.0,
            },
        )
        .windows(120.0, 30.0)
        .burn(2.0, 1.0)
        .hold(60.0, 30.0),
    ]
}

fn build_detector(threshold: f32, registry: &Arc<Registry>) -> StreamingDetector {
    let cfg = DetectorConfig {
        pipeline: PipelineConfig::paper(400.0, Overlap::Half),
        threshold,
        consecutive: 1,
        guard: GuardConfig::default(),
    };
    let window = cfg.pipeline.segmentation.window();
    let net = ModelKind::ProposedCnn
        .build(window, 9, 1)
        .expect("model builds");
    let mut det = StreamingDetector::new(net, Normalizer::identity(9), cfg).expect("detector");
    det.set_recorder(registry.clone());
    det
}

fn fail(gate: &str, detail: String) -> ! {
    eprintln!("watch bench: FAIL ({gate}) — {detail}");
    std::process::exit(1);
}

fn transitions<'a>(alerts: &'a [Alert], slo: &str) -> Vec<&'a Alert> {
    alerts.iter().filter(|a| a.slo == slo).collect()
}

fn main() {
    let (registry, rec) = telemetry_out::bench_recorder();
    let _server = prefall_obsd::serve_from_env(&registry);

    let seed: u64 = std::env::var("PREFALL_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);

    let dataset = Dataset::generate(&DatasetConfig {
        kfall_subjects: 1,
        self_collected_subjects: 1,
        trials_per_task: 1,
        duration_scale: 0.5,
        seed: 2025,
    })
    .expect("dataset");
    // ADL trials only: the storm's scripted signal is *false*
    // activations, so fall trials (where triggering is correct) would
    // only dilute the timeline.
    let adls: Vec<_> = dataset.trials().iter().filter(|t| !t.is_fall()).collect();
    assert!(!adls.is_empty(), "dataset must contain ADL trials");

    let config = WatchConfig {
        store: StoreConfig {
            resolution_s: 1.0,
            retention_s: REPLAY_END_S + 60.0,
            max_series: 256,
        },
        slos: bench_slos(),
        alert_log_cap: 64,
    };
    let watch = Arc::new(Watch::new(Arc::clone(&registry), config));

    // The storm detector carries the flight recorder; its handle is the
    // incident sink quality SLOs dump through.
    let mut storm_detector = build_detector(0.0, &registry);
    let flight = FlightRecorder::install(&mut storm_detector, Vec::new(), FlightConfig::default());
    flight.set_recorder(registry.clone());
    watch.set_incident_capture(Arc::new(flight.clone()));
    let mut clean_detector = build_detector(1.1, &registry);

    // Materialise the storm counters up front so their series exist
    // from t=0 (a counter born mid-window would skew the first rate).
    registry.counter_add("detector.false_activations", 0);
    registry.counter_add("guard.degraded_samples", 0);

    rec.event("bench.phase", &[("phase", Value::from("replay"))]);
    let storm_plan = FaultPlan::kitchen_sink(seed).scaled(1.0);
    let mut vt = 0.0f64; // virtual seconds
    let mut next_tick = 0.0f64;
    let mut trial_idx = 0usize;
    let mut trials_run = 0u64;
    while vt < REPLAY_END_S {
        let trial = adls[trial_idx % adls.len()];
        trial_idx += 1;
        trials_run += 1;
        let in_storm = (STORM_START_S..STORM_END_S).contains(&vt);
        if in_storm {
            let out = run_on_faulted_trial(&mut storm_detector, trial, &storm_plan, rec.as_ref());
            // The faulted runner emits faults.* counters only; mirror
            // the outcome into the detector.* counters the SLOs watch.
            rec.counter_add("detector.trials", 1);
            if out.false_activation {
                rec.counter_add("detector.false_activations", 1);
            }
        } else {
            let out = run_on_trial_recorded(&mut clean_detector, trial, rec.as_ref());
            if out.false_activation {
                fail(
                    "clean phase",
                    format!("threshold-1.1 detector fired on trial {trial_idx}"),
                );
            }
        }
        vt += trial.len() as f64 * SAMPLE_PERIOD_MS / 1000.0;
        while next_tick <= vt {
            watch.tick_at(next_tick);
            next_tick += 1.0;
        }
    }
    println!(
        "replay      : {trials_run} trials over {:.0} virtual seconds ({} alerts)",
        vt,
        watch.alerts().len()
    );

    // Gate 1: the fa_rate lifecycle, at the scripted times.
    let alerts = watch.alerts();
    let fa = transitions(&alerts, "fa_rate");
    let fa_fired = fa
        .iter()
        .find(|a| a.fired)
        .unwrap_or_else(|| fail("fa_rate", "never fired during the storm".into()));
    if !(STORM_START_S..=STORM_START_S + 80.0).contains(&fa_fired.at) {
        fail(
            "fa_rate",
            format!(
                "fired at {:.0}s, expected shortly after storm start",
                fa_fired.at
            ),
        );
    }
    let fa_resolved = fa
        .iter()
        .find(|a| !a.fired)
        .unwrap_or_else(|| fail("fa_rate", "never resolved after the storm".into()));
    if fa_resolved.at <= STORM_END_S || fa_resolved.at > STORM_END_S + 180.0 {
        fail(
            "fa_rate",
            format!(
                "resolved at {:.0}s, expected inside healthy-2",
                fa_resolved.at
            ),
        );
    }
    if fa_resolved.at < fa_fired.at + 60.0 {
        fail(
            "fa_rate",
            format!(
                "resolved {:.0}s after firing — refractory hold (60 s) not honoured",
                fa_resolved.at - fa_fired.at
            ),
        );
    }
    if !fa_fired.incident_requested || flight.incident_count() == 0 {
        fail(
            "fa_rate",
            "quality breach did not capture a blackbox incident".into(),
        );
    }
    println!(
        "fa_rate     : fired {:.0}s resolved {:.0}s (hold {:.0}s), incident {}",
        fa_fired.at,
        fa_resolved.at,
        fa_resolved.at - fa_fired.at,
        flight.latest().map(|d| d.id).unwrap_or_default()
    );

    // Gate 2: degraded_rate breached and recovered.
    let dg = transitions(&alerts, "degraded_rate");
    let dg_fired = dg
        .iter()
        .find(|a| a.fired)
        .unwrap_or_else(|| fail("degraded_rate", "never fired during the storm".into()));
    if !(STORM_START_S..STORM_END_S + 30.0).contains(&dg_fired.at) {
        fail(
            "degraded_rate",
            format!("fired at {:.0}s, expected inside the storm", dg_fired.at),
        );
    }
    if !dg.iter().any(|a| !a.fired) {
        fail("degraded_rate", "never resolved after the storm".into());
    }
    println!(
        "degraded    : fired {:.0}s, resolved in healthy-2",
        dg_fired.at
    );

    // Gate 3: the latency SLO stayed quiet.
    if transitions(&alerts, "ingest_p99").iter().any(|a| a.fired) {
        fail("ingest_p99", "latency SLO fired on an unloaded path".into());
    }
    if !watch.firing().is_empty() {
        fail(
            "steady state",
            format!("still firing at end: {:?}", watch.firing()),
        );
    }
    println!("ingest_p99  : quiet across the replay");

    // Overhead leg: what does the wall-clock daemon cost the hot path?
    // Interleaved rounds (daemon up / daemon down) on one detector so
    // machine drift cancels; the daemon samples the same live registry
    // the detector records into, at a deliberately aggressive 10 ms
    // cadence (the production default is 1 s).
    rec.event("bench.phase", &[("phase", Value::from("overhead"))]);
    let mut det = build_detector(1.1, &registry);
    let window = det.config().pipeline.segmentation.window();
    for _ in 0..2 * window {
        let _ = det.push_sample([0.01, -0.02, 1.0], [0.0, 0.1, 0.0]);
    }
    let overhead_watch = Arc::new(Watch::new(
        Arc::clone(&registry),
        WatchConfig {
            store: StoreConfig {
                resolution_s: 0.01,
                retention_s: 60.0,
                max_series: 256,
            },
            slos: bench_slos(),
            alert_log_cap: 16,
        },
    ));
    let mut unarmed: Vec<f64> = Vec::with_capacity(OVERHEAD_WINDOWS * 2);
    let mut armed: Vec<f64> = Vec::with_capacity(OVERHEAD_WINDOWS * 2);
    let mut arm_next = false;
    while unarmed.len() < OVERHEAD_WINDOWS || armed.len() < OVERHEAD_WINDOWS {
        let daemon = arm_next.then(|| overhead_watch.spawn());
        let sink = if arm_next { &mut armed } else { &mut unarmed };
        let mut classified = 0usize;
        while classified < 20 {
            let t0 = Instant::now();
            let p = det.push_sample([0.01, -0.02, 1.0], [0.0, 0.1, 0.0]);
            let dt = t0.elapsed().as_secs_f64();
            if p.is_some() {
                sink.push(dt);
                classified += 1;
            }
        }
        drop(daemon);
        arm_next = !arm_next;
    }
    let med = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let unarmed_med = med(&mut unarmed);
    let armed_med = med(&mut armed);
    let speedup = unarmed_med / armed_med;
    registry.gauge_set("watch.arming_speedup", speedup);
    println!(
        "overhead    : push median unarmed {:.1} µs, armed {:.1} µs (speedup {:.3})",
        unarmed_med * 1e6,
        armed_med * 1e6,
        speedup
    );

    let timeline = JsonValue::Arr(
        alerts
            .iter()
            .map(|a| {
                JsonValue::Obj(vec![
                    ("slo".to_string(), JsonValue::Str(a.slo.clone())),
                    (
                        "state".to_string(),
                        JsonValue::Str(if a.fired { "fired" } else { "resolved" }.to_string()),
                    ),
                    ("at_s".to_string(), JsonValue::F64(a.at)),
                    (
                        "incident".to_string(),
                        JsonValue::Bool(a.incident_requested),
                    ),
                ])
            })
            .collect(),
    );
    telemetry_out::dump_to(
        "BENCH_watch.json",
        "watch",
        &registry.snapshot(),
        vec![
            ("fault_seed".to_string(), JsonValue::U64(seed)),
            ("virtual_seconds".to_string(), JsonValue::F64(vt)),
            ("trials".to_string(), JsonValue::U64(trials_run)),
            ("alert_timeline".to_string(), timeline),
        ],
    );
}
