//! `prefall-replay`: record, inspect and deterministically re-run
//! incident dumps from the flight recorder.
//!
//! ```text
//! prefall-replay record-golden <path>   # record the canonical incident fixture
//! prefall-replay verify <path>          # replay a dump; exit 0 iff bit-exact
//! prefall-replay show <path>            # print the forensics document (JSON)
//! prefall-replay selfcheck              # record in memory and verify (no file)
//! ```
//!
//! `verify` is the CI gate: it rebuilds the detector from the model
//! bundle embedded in the dump, re-feeds the recorded raw input
//! stream, and compares every replayed window score to the recorded
//! one with [`f32::to_bits`] — any divergence exits non-zero.
//!
//! The recording recipe is fully seeded (dataset seed 7, weight-init
//! seed 7, the robustness acceptance fault plan), so `record-golden`
//! reproduces the committed `ci/golden_incident.pfbb` byte for byte on
//! the machine class that recorded it.

use prefall_blackbox::{armed_detector_from_bundle, replay, FlightConfig, IncidentDump};
use prefall_core::detector::{DetectorConfig, GuardConfig};
use prefall_core::models::ModelKind;
use prefall_core::persist::DetectorBundle;
use prefall_dsp::stats::Normalizer;
use prefall_faults::{run_on_faulted_trial, FaultPlan};
use prefall_imu::dataset::Dataset;
use prefall_telemetry::NoopRecorder;
use std::process::ExitCode;

const SEED: u64 = 7;

fn bundle_blob() -> Vec<u8> {
    let cfg = DetectorConfig::paper_400ms();
    let w = cfg.pipeline.segmentation.window();
    let mut bundle = DetectorBundle {
        model: ModelKind::ProposedCnn,
        window: w,
        channels: 9,
        init_seed: SEED,
        pipeline: cfg.pipeline,
        normalizer: Normalizer::identity(9),
        network: ModelKind::ProposedCnn
            .build(w, 9, SEED)
            .expect("seeded build"),
    };
    bundle.to_bytes()
}

/// Streams seeded fall trials through a seeded detector under the
/// robustness acceptance fault plan until the flight recorder takes
/// its first incident — fully deterministic end to end.
fn record() -> IncidentDump {
    let blob = bundle_blob();
    let cfg = FlightConfig {
        ring_samples: 20_000,
        ring_windows: 2_000,
        max_incidents: 8,
    };
    let (mut det, flight) = armed_detector_from_bundle(&blob, 0.5, 1, GuardConfig::default(), cfg)
        .expect("seeded bundle is valid");
    let plan = FaultPlan::dropout_nan(SEED, 0.05, 0.01, 5);
    let dataset = Dataset::combined_scaled(2, 2, SEED).expect("seeded dataset");
    for trial in dataset.trials().iter().filter(|t| t.is_fall()) {
        run_on_faulted_trial(&mut det, trial, &plan, &NoopRecorder);
        if let Some(dump) = flight.latest() {
            return dump;
        }
    }
    unreachable!("every fall trial ends in a trigger or missed-fall incident")
}

fn verify(dump: &IncidentDump) -> ExitCode {
    match replay(dump) {
        Ok(report) if report.bit_exact && report.trigger_match => {
            println!(
                "replay OK: {} ({}) — {} samples, {} windows, bit-exact",
                dump.id,
                dump.kind.name(),
                report.samples_fed,
                report.windows_compared
            );
            ExitCode::SUCCESS
        }
        Ok(report) => {
            eprintln!(
                "replay DIVERGED: {} — bit_exact={} trigger_match={} divergence={:?}",
                dump.id, report.bit_exact, report.trigger_match, report.divergence
            );
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("replay failed: {e}");
            ExitCode::from(2)
        }
    }
}

fn load(path: &str) -> Result<IncidentDump, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    IncidentDump::from_bytes(&bytes).map_err(|e| format!("parse {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["record-golden", path] => {
            let dump = record();
            if let Err(e) = std::fs::write(path, dump.to_bytes()) {
                eprintln!("write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "recorded {}: {} ({}) — {} samples, {} windows, truncated={}",
                path,
                dump.id,
                dump.kind.name(),
                dump.samples.len(),
                dump.windows.len(),
                dump.truncated
            );
            verify(&dump)
        }
        ["verify", path] => match load(path) {
            Ok(dump) => verify(&dump),
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        ["show", path] => match load(path) {
            Ok(dump) => {
                println!("{}", dump.to_json(false));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        ["selfcheck"] | [] => {
            let dump = record();
            let decoded = match IncidentDump::from_bytes(&dump.to_bytes()) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("round trip failed: {e}");
                    return ExitCode::from(2);
                }
            };
            verify(&decoded)
        }
        _ => {
            eprintln!(
                "usage: prefall-replay [record-golden <path> | verify <path> | show <path> | selfcheck]"
            );
            ExitCode::FAILURE
        }
    }
}
