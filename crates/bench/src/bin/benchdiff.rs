//! Regression gate between two `BENCH_telemetry.json` snapshots.
//!
//! ```text
//! benchdiff <baseline.json> <candidate.json> [options]
//!
//!   --latency-pct <P>       latency growth allowed, % (default 200)
//!   --latency-floor-us <U>  absolute latency slack, µs (default 50)
//!   --lead-pct <P>          lead-time shrink allowed, % (default 10)
//!   --lead-floor-ms <M>     absolute lead-time slack, ms (default 5)
//!   --budget-drop <F>       budget-fraction drop allowed (default 0.05)
//!   --speedup-pct <P>       speedup shrink allowed, % (default 25)
//!   --throughput-pct <P>    throughput (`*_per_s`) shrink allowed, %
//!                           (default 30)
//!   --drift-abs <F>         absolute clean-leg drift PSI growth
//!                           (`drift.clean_*_psi`) allowed (default 0.05)
//!   --min-count <N>         observations needed before a histogram
//!                           can gate (default 20)
//! ```
//!
//! Exit codes: 0 clean, 1 regression detected, 2 usage or parse error.

use prefall_bench::diff::{diff, BenchSnapshot, Thresholds};

fn usage() -> ! {
    eprintln!(
        "usage: benchdiff <baseline.json> <candidate.json> \
         [--latency-pct P] [--latency-floor-us U] \
         [--lead-pct P] [--lead-floor-ms M] [--budget-drop F] \
         [--speedup-pct P] [--throughput-pct P] [--drift-abs F] \
         [--min-count N]"
    );
    std::process::exit(2);
}

fn parse_args() -> (String, String, Thresholds) {
    let mut paths = Vec::new();
    let mut t = Thresholds::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut flag = |t_field: &mut f64| match args.next().and_then(|v| v.parse().ok()) {
            Some(v) => *t_field = v,
            None => usage(),
        };
        match arg.as_str() {
            "--latency-pct" => flag(&mut t.latency_pct),
            "--latency-floor-us" => {
                let mut us = 0.0;
                flag(&mut us);
                t.latency_floor_s = us * 1e-6;
            }
            "--lead-pct" => flag(&mut t.lead_pct),
            "--lead-floor-ms" => flag(&mut t.lead_floor_ms),
            "--budget-drop" => flag(&mut t.budget_drop),
            "--speedup-pct" => flag(&mut t.speedup_pct),
            "--throughput-pct" => flag(&mut t.throughput_pct),
            "--drift-abs" => flag(&mut t.drift_abs),
            "--min-count" => flag(&mut t.min_count),
            "-h" | "--help" => usage(),
            _ if arg.starts_with('-') => usage(),
            _ => paths.push(arg),
        }
    }
    if paths.len() != 2 {
        usage();
    }
    let candidate = paths.pop().expect("checked");
    let baseline = paths.pop().expect("checked");
    (baseline, candidate, t)
}

fn main() {
    let (baseline_path, candidate_path, thresholds) = parse_args();
    let load = |path: &str| {
        BenchSnapshot::load(path).unwrap_or_else(|e| {
            eprintln!("benchdiff: {e}");
            std::process::exit(2);
        })
    };
    let baseline = load(&baseline_path);
    let candidate = load(&candidate_path);
    if baseline.bench != candidate.bench {
        eprintln!(
            "benchdiff: comparing different benches ({} vs {})",
            baseline.bench, candidate.bench
        );
    }

    let report = diff(&baseline, &candidate, &thresholds);
    print!("{}", report.render());

    let failures: Vec<_> = report.regressions().collect();
    if failures.is_empty() {
        println!(
            "benchdiff: no regressions ({} stats compared)",
            report.deltas.len()
        );
    } else {
        println!("benchdiff: {} regression(s):", failures.len());
        for d in &failures {
            println!(
                "  {} {}: {} -> {} ({:+.1}%)",
                d.metric,
                d.stat,
                d.base,
                d.cand,
                d.pct_change()
            );
        }
        std::process::exit(1);
    }
}
