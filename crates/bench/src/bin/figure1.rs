//! Regenerates **Fig. 1**: the fall-stage timeline — pre-fall activity,
//! falling phase, the last 150 ms before impact, the impact, and the
//! post-fall phase — on the accelerometer-magnitude trace of one fall.
//!
//! ```text
//! cargo run -p prefall-bench --bin figure1 [task_id] [seed]
//! ```

use prefall_core::phases::{ascii_plot, phase_durations, phase_series};
use prefall_imu::activity::Activity;
use prefall_imu::dataset::{Dataset, DatasetConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let task: u8 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(30);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2025);

    let activity = match Activity::from_task(task) {
        Ok(a) if a.is_fall() => a,
        Ok(a) => {
            eprintln!(
                "task {task} ({}) is an ADL; pick a fall task (20-34, 37-42)",
                a.description
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };

    let ds = Dataset::generate(&DatasetConfig {
        kfall_subjects: 0,
        self_collected_subjects: 1,
        trials_per_task: 1,
        duration_scale: 1.0,
        seed,
    })
    .expect("single-subject generation succeeds");
    let trial = ds
        .trials()
        .iter()
        .find(|t| t.task.get() == task)
        .expect("task present");

    println!(
        "=== Fig. 1 (reproduced): fall stages of task {task} — {} ===",
        activity.description
    );
    let series = phase_series(trial);
    let peak = series.iter().map(|p| p.accel_mag).fold(1.0f32, f32::max);
    print!("{}", ascii_plot(&series, 4, peak));
    println!();
    let d = phase_durations(trial);
    println!("phase durations:");
    println!("  pre-fall activity : {:8.0} ms (green)", d.pre_ms);
    println!("  falling, usable   : {:8.0} ms (red)", d.falling_ms);
    println!(
        "  last 150 ms       : {:8.0} ms (yellow — airbag inflation budget)",
        d.inflation_ms
    );
    println!(
        "  impact + post-fall: {:8.0} ms (violet cross + orange)",
        d.post_ms
    );
    println!(
        "  fall onset → impact: {:7.0} ms (paper: 150-1100 ms in the wild)",
        d.falling_ms + d.inflation_ms
    );
}
