//! Training-side kernels: one epoch of each model on a small balanced
//! segment set, plus the fall-segment augmentations.

use criterion::{criterion_group, criterion_main, Criterion};
use prefall_core::augment::{time_warp_segment, window_warp_segment};
use prefall_core::models::ModelKind;
use prefall_imu::rng::GenRng;
use prefall_nn::loss::WeightedBce;
use prefall_nn::optim::OptimizerKind;
use prefall_nn::train::{train, DataRef, TrainConfig};
use std::hint::black_box;

fn toy_segments(n: usize, window: usize) -> (Vec<Vec<f32>>, Vec<f32>) {
    let xs: Vec<Vec<f32>> = (0..n)
        .map(|k| {
            (0..window * 9)
                .map(|i| {
                    (((i * 7 + k * 131) % 97) as f32 / 48.0 - 1.0)
                        * if k % 5 == 0 { 2.0 } else { 1.0 }
                })
                .collect()
        })
        .collect();
    let ys: Vec<f32> = (0..n).map(|k| if k % 5 == 0 { 1.0 } else { 0.0 }).collect();
    (xs, ys)
}

fn bench_one_epoch(c: &mut Criterion) {
    let (xs, ys) = toy_segments(128, 40);
    let mut group = c.benchmark_group("train_one_epoch_128seg");
    group.sample_size(10);
    for kind in ModelKind::ALL {
        group.bench_function(format!("{kind:?}").to_lowercase(), |b| {
            b.iter(|| {
                let mut net = kind.build(40, 9, 3).expect("build");
                let cfg = TrainConfig {
                    epochs: 1,
                    batch_size: 32,
                    learning_rate: 1e-3,
                    optimizer: OptimizerKind::Adam,
                    patience: None,
                    seed: 1,
                };
                black_box(
                    train(
                        &mut net,
                        DataRef::new(&xs, &ys),
                        None,
                        WeightedBce::unweighted(),
                        &cfg,
                    )
                    .expect("train"),
                )
            })
        });
    }
    group.finish();
}

fn bench_augmentation(c: &mut Criterion) {
    let seg: Vec<f32> = (0..40 * 9).map(|i| (i as f32 * 0.05).sin()).collect();
    c.bench_function("time_warp_40x9", |b| {
        let mut rng = GenRng::seed_from_u64(1);
        b.iter(|| black_box(time_warp_segment(black_box(&seg), 9, 0.25, &mut rng)))
    });
    c.bench_function("window_warp_40x9", |b| {
        let mut rng = GenRng::seed_from_u64(2);
        b.iter(|| black_box(window_warp_segment(black_box(&seg), 9, &mut rng)))
    });
}

criterion_group!(benches, bench_one_epoch, bench_augmentation);
criterion_main!(benches);
