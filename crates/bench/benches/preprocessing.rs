//! §III-A preprocessing kernels: Butterworth filtering, sensor fusion,
//! segmentation, and the full trial→segments pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use prefall_core::pipeline::{Pipeline, PipelineConfig};
use prefall_dsp::butterworth::Butterworth;
use prefall_dsp::fusion::ComplementaryFilter;
use prefall_dsp::segment::{Overlap, Segmentation};
use prefall_imu::dataset::Dataset;
use std::hint::black_box;

fn one_second_channel() -> Vec<f32> {
    (0..100).map(|i| (i as f32 * 0.31).sin()).collect()
}

fn bench_filtering(c: &mut Criterion) {
    let design = Butterworth::lowpass(4, 5.0, 100.0).expect("design");
    let xs = one_second_channel();
    c.bench_function("butterworth4_1s_channel", |b| {
        let mut f = design.to_filter();
        b.iter(|| {
            f.reset();
            black_box(f.process_slice(black_box(&xs)))
        })
    });
}

fn bench_fusion(c: &mut Criterion) {
    let a = one_second_channel();
    c.bench_function("complementary_fusion_1s", |b| {
        let mut fusion = ComplementaryFilter::new(100.0, 0.98);
        b.iter(|| {
            fusion.reset();
            black_box(fusion.process_channels([&a, &a, &a], [&a, &a, &a]))
        })
    });
}

fn bench_segmentation(c: &mut Criterion) {
    let seg = Segmentation::new(40, Overlap::Half).expect("segmentation");
    let channels: Vec<Vec<f32>> = (0..9)
        .map(|k| {
            (0..1000)
                .map(|i| ((i + k * 31) as f32 * 0.17).sin())
                .collect()
        })
        .collect();
    c.bench_function("segment_extract_10s_9ch", |b| {
        b.iter(|| black_box(seg.extract(black_box(&channels))))
    });
}

fn bench_full_pipeline(c: &mut Criterion) {
    let ds = Dataset::combined_scaled(0, 1, 5).expect("dataset");
    let trial = ds.trials()[5].clone();
    let pipeline = Pipeline::new(PipelineConfig::paper_400ms()).expect("pipeline");
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(30);
    group.bench_function("trial_to_segments_400ms", |b| {
        b.iter(|| black_box(pipeline.segments_for_trial(black_box(&trial))))
    });
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset");
    group.sample_size(10);
    group.bench_function("generate_one_subject", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(Dataset::combined_scaled(0, 1, seed).expect("dataset"))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_filtering,
    bench_fusion,
    bench_segmentation,
    bench_full_pipeline,
    bench_generation
);
criterion_main!(benches);
