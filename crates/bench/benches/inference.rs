//! §IV-C inference kernels: float and int8 forward passes of every
//! model at the paper's window sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use prefall_core::models::ModelKind;
use prefall_nn::quant::QuantizedNetwork;
use std::hint::black_box;

fn segment(window: usize) -> Vec<f32> {
    (0..window * 9)
        .map(|i| ((i * 37) % 100) as f32 / 50.0 - 1.0)
        .collect()
}

fn calib(window: usize) -> Vec<Vec<f32>> {
    (0..32)
        .map(|k| {
            (0..window * 9)
                .map(|i| (((i + 13 * k) * 37) % 100) as f32 / 50.0 - 1.0)
                .collect()
        })
        .collect()
}

fn bench_float_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("float_inference");
    group.sample_size(40);
    for window in [20usize, 30, 40] {
        let mut net = ModelKind::ProposedCnn.build(window, 9, 1).expect("build");
        let x = segment(window);
        group.bench_function(format!("cnn_{}ms", window * 10), |b| {
            b.iter(|| black_box(net.forward(black_box(&x))))
        });
    }
    for kind in [ModelKind::Mlp, ModelKind::Lstm, ModelKind::ConvLstm2d] {
        let mut net = kind.build(40, 9, 1).expect("build");
        let x = segment(40);
        group.bench_function(format!("{:?}_400ms", kind).to_lowercase(), |b| {
            b.iter(|| black_box(net.forward(black_box(&x))))
        });
    }
    group.finish();
}

fn bench_int8_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("int8_inference");
    group.sample_size(40);
    for window in [20usize, 30, 40] {
        let mut net = ModelKind::ProposedCnn.build(window, 9, 1).expect("build");
        let q = QuantizedNetwork::from_network(&mut net, &calib(window)).expect("quantize");
        let x = segment(window);
        group.bench_function(format!("cnn_{}ms", window * 10), |b| {
            b.iter(|| black_box(q.forward_logit(black_box(&x))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_float_inference, bench_int8_inference);
criterion_main!(benches);
