//! Streams faulted trials through a (hardened) detector.

use crate::plan::FaultPlan;
use crate::stream::SampleEvent;
use prefall_core::detector::{AirbagController, StreamingDetector, TrialOutcome};
use prefall_imu::trial::Trial;
use prefall_imu::SAMPLE_PERIOD_MS;
use prefall_telemetry::Recorder;

/// Streams one trial through the detector with the plan's faults
/// applied live: corrupted samples go through
/// [`StreamingDetector::push_sample`], dropped ticks through
/// [`StreamingDetector::push_missing`]. The airbag fires from the
/// policy-aware [`StreamingDetector::trigger_decision`].
///
/// Emits `faults.trials`, `faults.dropped_samples` and
/// `faults.nonfinite_probs` counters (the latter stays at zero while
/// the guard is on — that is the guarantee under test), plus the same
/// outcome shape as [`prefall_core::detector::run_on_trial`].
pub fn run_on_faulted_trial(
    detector: &mut StreamingDetector,
    trial: &Trial,
    plan: &FaultPlan,
    rec: &dyn Recorder,
) -> TrialOutcome {
    detector.reset();
    let mut airbag = AirbagController::new();
    let mut triggered_at = None;
    let mut peak_prob: Option<f32> = None;
    let mut dropped: u64 = 0;
    let mut nonfinite_probs: u64 = 0;

    for (i, ev) in plan.stream(trial).enumerate() {
        let prob = match ev {
            SampleEvent::Sample { accel, gyro } => detector.push_sample(accel, gyro),
            SampleEvent::Dropped => {
                dropped += 1;
                detector.push_missing()
            }
        };
        if let Some(p) = prob {
            if p.is_finite() {
                peak_prob = Some(peak_prob.map_or(p, |q| q.max(p)));
            } else {
                nonfinite_probs += 1;
            }
        }
        let fire = detector.trigger_decision() && triggered_at.is_none();
        if fire {
            triggered_at = Some(i);
        }
        airbag.step(i, fire);
    }

    if rec.enabled() {
        rec.counter_add("faults.trials", 1);
        if dropped > 0 {
            rec.counter_add("faults.dropped_samples", dropped);
        }
        if nonfinite_probs > 0 {
            rec.counter_add("faults.nonfinite_probs", nonfinite_probs);
        }
    }

    let impact = trial.impact();
    let lead_time_ms = match (triggered_at, impact) {
        (Some(t), Some(im)) => Some((im as f64 - t as f64) * SAMPLE_PERIOD_MS),
        _ => None,
    };
    let protected = impact.map(|im| airbag.protects_at(im));
    let outcome = TrialOutcome {
        triggered_at,
        impact,
        lead_time_ms,
        protected,
        false_activation: !trial.is_fall() && triggered_at.is_some(),
        peak_prob,
    };
    detector.notify_trial_end(trial, &outcome);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;
    use prefall_core::detector::{run_on_trial, DetectorConfig, StreamingDetector};
    use prefall_core::models::ModelKind;
    use prefall_dsp::stats::Normalizer;
    use prefall_imu::dataset::Dataset;
    use prefall_telemetry::NoopRecorder;

    fn detector() -> StreamingDetector {
        let cfg = DetectorConfig::paper_400ms();
        let w = cfg.pipeline.segmentation.window();
        let net = ModelKind::ProposedCnn.build(w, 9, 1).unwrap();
        StreamingDetector::new(net, Normalizer::identity(9), cfg).unwrap()
    }

    #[test]
    fn empty_plan_matches_clean_run() {
        let ds = Dataset::combined_scaled(1, 1, 13).unwrap();
        let mut d = detector();
        let plan = FaultPlan::new(7);
        for trial in ds.trials().iter().take(6) {
            let clean = run_on_trial(&mut d, trial);
            let faulted = run_on_faulted_trial(&mut d, trial, &plan, &NoopRecorder);
            assert_eq!(clean, faulted, "empty plan must be a no-op");
        }
    }

    #[test]
    fn acceptance_plan_stays_finite_on_every_fall() {
        let ds = Dataset::combined_scaled(2, 2, 7).unwrap();
        let mut d = detector();
        let plan = FaultPlan::dropout_nan(7, 0.05, 0.01, 5);
        let mut falls = 0;
        for trial in ds.trials().iter().filter(|t| t.is_fall()) {
            falls += 1;
            let out = run_on_faulted_trial(&mut d, trial, &plan, &NoopRecorder);
            if let Some(p) = out.peak_prob {
                assert!(p.is_finite(), "non-finite peak prob");
            }
        }
        assert!(falls > 0, "dataset has falls");
        let s = d.guard_status();
        assert!(s.gaps_filled > 0, "dropout exercised gap fill");
        assert!(s.nonfinite > 0, "NaN bursts exercised validation");
        assert_eq!(s.engine_rejects, 0, "guard kept segments clean");
    }
}
