//! Transport-level fault injection: the connection-shaped counterpart
//! of the sensor [`FaultPlan`](crate::FaultPlan).
//!
//! At fleet scale the dominant failure mode is no longer a bad sensor
//! but a bad *connection*: clients stall mid-request, writes land
//! partially, batches arrive duplicated or out of order, connections
//! die mid-batch and come back in reconnect storms. A [`NetFaultPlan`]
//! makes those artifacts reproducible the same way the sensor plan
//! does — every decision is a pure hash of
//! `(seed, fault, connection, batch)`, so a chaos run replays exactly
//! and two streams driven by the same plan never share randomness.
//!
//! The plan does not touch sockets itself: a load generator (the
//! `prefall-fleet` bench chaos leg) asks for the [`NetActions`] of
//! each `(connection, batch)` pair and acts them out against a real
//! server — sleeping through a stall, splitting a write, swapping or
//! re-sending batches, or dropping the connection and reconnecting.
//!
//! # Example
//!
//! ```
//! use prefall_faults::net::{NetFault, NetFaultPlan};
//!
//! let plan = NetFaultPlan::new(7)
//!     .with(NetFault::Duplicate { rate: 0.5 })
//!     .with(NetFault::Disconnect { rate: 0.1 });
//! let a = plan.actions(3, 40);
//! // Same plan, same (connection, batch) → the exact same actions.
//! assert_eq!(a, plan.actions(3, 40));
//! // A different connection draws independently.
//! let hits = (0..1000).filter(|&b| plan.actions(4, b).duplicate).count();
//! assert!(hits > 400 && hits < 600);
//! ```

use crate::plan::unit;

/// Per-fault salts so one `(connection, batch)` key draws
/// independently for every fault kind.
const SALT_NET: u64 = 0x6e65_745f_6661_756c; // "net_faul"
const TAG_STALL: u64 = 1;
const TAG_PARTIAL: u64 = 2;
const TAG_REORDER: u64 = 3;
const TAG_DUPLICATE: u64 = 4;
const TAG_DISCONNECT: u64 = 5;
const TAG_STORM: u64 = 6;

/// One kind of transport misbehaviour, with its intensity knobs. All
/// rates are per *batch send*, in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetFault {
    /// The client freezes mid-request for `ms` milliseconds before
    /// finishing the send — the slowloris pattern a per-connection
    /// deadline must bound.
    Stall {
        /// Probability a batch send stalls.
        rate: f64,
        /// Stall duration in milliseconds.
        ms: u64,
    },
    /// The request body is written in two flushes with a pause between
    /// them, exercising short-read handling on the server.
    PartialWrite {
        /// Probability a batch is split.
        rate: f64,
    },
    /// The batch is held back and sent *after* its successor — the
    /// sequenced ingest must drop or bridge, never corrupt.
    Reorder {
        /// Probability a batch swaps with the next one.
        rate: f64,
    },
    /// The batch is sent twice; the second copy must be recognised as
    /// already-consumed (idempotent delivery).
    Duplicate {
        /// Probability a batch is re-sent.
        rate: f64,
    },
    /// The connection is torn down mid-batch; the client reconnects
    /// and re-sends, so the server sees a broken request followed by a
    /// duplicate.
    Disconnect {
        /// Probability the connection drops on a batch.
        rate: f64,
    },
    /// A reconnect storm: the client drops and immediately redials
    /// `burst` times in a tight loop before resuming, hammering the
    /// accept path.
    ReconnectStorm {
        /// Probability a storm starts at a batch.
        rate: f64,
        /// Reconnect attempts per storm.
        burst: u32,
    },
}

/// What the load generator should do to one `(connection, batch)`
/// send. Multiple faults can fire on the same batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetActions {
    /// Freeze this long mid-request before completing the send.
    pub stall_ms: u64,
    /// Split the request body into two flushes with a pause.
    pub partial_write: bool,
    /// Hold this batch and send it after its successor.
    pub reorder_with_next: bool,
    /// Send the batch a second time after it succeeds.
    pub duplicate: bool,
    /// Tear the connection down mid-batch, reconnect, re-send.
    pub disconnect_mid_batch: bool,
    /// Drop and redial this many times before resuming (0 = no storm).
    pub reconnect_burst: u32,
}

impl NetActions {
    /// `true` when no fault fired for this batch.
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }
}

/// A seeded composition of transport faults.
#[derive(Debug, Clone, PartialEq)]
pub struct NetFaultPlan {
    seed: u64,
    faults: Vec<NetFault>,
}

impl NetFaultPlan {
    /// An empty plan: every batch is clean.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds a fault to the composition.
    #[must_use]
    pub fn with(mut self, fault: NetFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// The seed the plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `true` when the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The chaos-leg storm used by the fleet bench: every transport
    /// fault at rates high enough to hit most streams within a few
    /// hundred batches, low enough that streams still make progress.
    pub fn storm(seed: u64) -> Self {
        Self::new(seed)
            .with(NetFault::Stall { rate: 0.01, ms: 30 })
            .with(NetFault::PartialWrite { rate: 0.05 })
            .with(NetFault::Reorder { rate: 0.04 })
            .with(NetFault::Duplicate { rate: 0.05 })
            .with(NetFault::Disconnect { rate: 0.02 })
            .with(NetFault::ReconnectStorm {
                rate: 0.005,
                burst: 4,
            })
    }

    /// The deterministic actions for one `(connection, batch)` send.
    /// A pure function of the plan — no state, no draw order.
    pub fn actions(&self, conn: u64, batch: u64) -> NetActions {
        let mut a = NetActions::default();
        let hit = |tag: u64, rate: f64| unit(self.seed, SALT_NET, tag, conn, batch) < rate;
        for f in &self.faults {
            match *f {
                NetFault::Stall { rate, ms } => {
                    if hit(TAG_STALL, rate) {
                        a.stall_ms = a.stall_ms.max(ms);
                    }
                }
                NetFault::PartialWrite { rate } => {
                    if hit(TAG_PARTIAL, rate) {
                        a.partial_write = true;
                    }
                }
                NetFault::Reorder { rate } => {
                    if hit(TAG_REORDER, rate) {
                        a.reorder_with_next = true;
                    }
                }
                NetFault::Duplicate { rate } => {
                    if hit(TAG_DUPLICATE, rate) {
                        a.duplicate = true;
                    }
                }
                NetFault::Disconnect { rate } => {
                    if hit(TAG_DISCONNECT, rate) {
                        a.disconnect_mid_batch = true;
                    }
                }
                NetFault::ReconnectStorm { rate, burst } => {
                    if hit(TAG_STORM, rate) {
                        a.reconnect_burst = a.reconnect_burst.max(burst);
                    }
                }
            }
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_always_clean() {
        let plan = NetFaultPlan::new(7);
        assert!(plan.is_empty());
        for conn in 0..10 {
            for batch in 0..100 {
                assert!(plan.actions(conn, batch).is_clean());
            }
        }
    }

    #[test]
    fn actions_are_deterministic() {
        let plan = NetFaultPlan::storm(42);
        for conn in 0..5 {
            for batch in 0..200 {
                assert_eq!(plan.actions(conn, batch), plan.actions(conn, batch));
            }
        }
    }

    #[test]
    fn rate_one_always_fires_rate_zero_never() {
        let always = NetFaultPlan::new(1).with(NetFault::Duplicate { rate: 1.0 });
        let never = NetFaultPlan::new(1).with(NetFault::Duplicate { rate: 0.0 });
        for batch in 0..100 {
            assert!(always.actions(0, batch).duplicate);
            assert!(!never.actions(0, batch).duplicate);
        }
    }

    #[test]
    fn connections_draw_independently() {
        let plan = NetFaultPlan::new(9).with(NetFault::Disconnect { rate: 0.5 });
        let a: Vec<bool> = (0..64)
            .map(|b| plan.actions(1, b).disconnect_mid_batch)
            .collect();
        let b: Vec<bool> = (0..64)
            .map(|b| plan.actions(2, b).disconnect_mid_batch)
            .collect();
        assert_ne!(a, b, "two connections should not share a fault mask");
    }

    #[test]
    fn rates_land_near_nominal() {
        let plan = NetFaultPlan::new(3).with(NetFault::Reorder { rate: 0.2 });
        let hits = (0..5000)
            .filter(|&b| plan.actions(0, b).reorder_with_next)
            .count();
        let rate = hits as f64 / 5000.0;
        assert!((rate - 0.2).abs() < 0.03, "observed rate {rate}");
    }

    #[test]
    fn faults_compose_on_one_batch() {
        let plan = NetFaultPlan::new(5)
            .with(NetFault::Stall { rate: 1.0, ms: 10 })
            .with(NetFault::Duplicate { rate: 1.0 });
        let a = plan.actions(0, 0);
        assert_eq!(a.stall_ms, 10);
        assert!(a.duplicate);
        assert!(!a.is_clean());
    }

    #[test]
    fn storm_touches_every_fault_kind_eventually() {
        let plan = NetFaultPlan::storm(11);
        let mut seen = NetActions::default();
        for conn in 0..32 {
            for batch in 0..512 {
                let a = plan.actions(conn, batch);
                seen.stall_ms = seen.stall_ms.max(a.stall_ms);
                seen.partial_write |= a.partial_write;
                seen.reorder_with_next |= a.reorder_with_next;
                seen.duplicate |= a.duplicate;
                seen.disconnect_mid_batch |= a.disconnect_mid_batch;
                seen.reconnect_burst = seen.reconnect_burst.max(a.reconnect_burst);
            }
        }
        assert!(seen.stall_ms > 0);
        assert!(seen.partial_write);
        assert!(seen.reorder_with_next);
        assert!(seen.duplicate);
        assert!(seen.disconnect_mid_batch);
        assert!(seen.reconnect_burst > 0);
    }
}
