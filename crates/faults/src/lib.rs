//! Seeded, composable sensor-fault injection for robustness evaluation.
//!
//! Real IMUs drop samples, emit NaN bursts after bus glitches, freeze an
//! axis, clip at the ADC rails, spike, drift in noise, and occasionally
//! lose a whole sensor. Curated datasets contain none of that, so a
//! detector tuned on them can degrade sharply in deployment (*Watch
//! Your Step*, Aderinola et al.). This crate makes those artifacts
//! reproducible:
//!
//! * [`Fault`] — the taxonomy: [`Fault::Dropout`], [`Fault::NanBurst`],
//!   [`Fault::StuckAxis`], [`Fault::Saturation`], [`Fault::Spike`],
//!   [`Fault::Noise`] and [`Fault::Outage`], each with intensity knobs;
//! * [`FaultPlan`] — a seeded composition of faults that corrupts a
//!   [`Trial`] ([`FaultPlan::corrupt_trial`]) or a live sample stream
//!   ([`FaultPlan::stream`]). All randomness is a pure hash of
//!   `(seed, fault, trial, sample)`, so every run reproduces exactly
//!   and corruption at a lower [`FaultPlan::scaled`] intensity is a
//!   *subset* of the corruption at a higher one — degradation curves
//!   swept over intensity are meaningfully monotone;
//! * [`runner`] — streams a faulted trial through a hardened
//!   [`StreamingDetector`], mapping dropped samples onto
//!   [`StreamingDetector::push_missing`];
//! * [`net`] — the transport-level counterpart ([`NetFaultPlan`]):
//!   stalls, partial writes, reorder/duplicate delivery, mid-batch
//!   disconnects and reconnect storms, acted out by the fleet bench's
//!   chaos load generator.
//!
//! [`Trial`]: prefall_imu::trial::Trial
//! [`StreamingDetector`]: prefall_core::detector::StreamingDetector
//! [`StreamingDetector::push_missing`]: prefall_core::detector::StreamingDetector::push_missing
//!
//! # Example
//!
//! ```
//! use prefall_faults::{Fault, FaultPlan, SampleEvent};
//! use prefall_imu::dataset::Dataset;
//!
//! let ds = Dataset::combined_scaled(0, 1, 7).unwrap();
//! let trial = &ds.trials()[0];
//! let plan = FaultPlan::new(7)
//!     .with(Fault::Dropout { rate: 0.05 })
//!     .with(Fault::NanBurst { rate: 0.01, len: 5 });
//! let events: Vec<SampleEvent> = plan.stream(trial).collect();
//! assert_eq!(events.len(), trial.len());
//! // Same plan, same trial → the exact same corruption.
//! let again: Vec<SampleEvent> = plan.stream(trial).collect();
//! assert_eq!(format!("{events:?}"), format!("{again:?}"));
//! ```

#![deny(missing_docs)]

pub mod net;
pub mod plan;
pub mod runner;
pub mod stream;

pub use net::{NetActions, NetFault, NetFaultPlan};
pub use plan::{Fault, FaultPlan, Sensor};
pub use runner::run_on_faulted_trial;
pub use stream::{FaultStream, SampleEvent};
