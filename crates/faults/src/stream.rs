//! Streaming fault application: one [`SampleEvent`] per 100 Hz grid tick.

use crate::plan::{gaussian, key, mix64, unit, Fault, FaultPlan};
use prefall_imu::trial::Trial;

/// What the (possibly faulty) sensor bus delivered at one grid tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SampleEvent {
    /// A sample arrived (its values may still be corrupted).
    Sample {
        /// Accelerometer reading in g.
        accel: [f32; 3],
        /// Gyroscope reading in rad/s.
        gyro: [f32; 3],
    },
    /// The grid tick passed with no sample (dropout).
    Dropped,
}

/// Iterator over a trial's raw accel/gyro samples with a
/// [`FaultPlan`] applied. Yields exactly [`Trial::len`] events.
///
/// Faults apply in plan-composition order, except that any
/// [`Fault::Dropout`] is evaluated first: a dropped tick yields
/// [`SampleEvent::Dropped`] and no value-level fault runs for it.
pub struct FaultStream<'a> {
    plan: &'a FaultPlan,
    trial: &'a Trial,
    salt: u64,
    i: usize,
    n: usize,
}

impl<'a> FaultStream<'a> {
    pub(crate) fn new(plan: &'a FaultPlan, trial: &'a Trial) -> Self {
        let salt = trial_salt(trial);
        Self {
            plan,
            trial,
            salt,
            i: 0,
            n: trial.len(),
        }
    }

    fn event_at(&self, i: usize) -> SampleEvent {
        let seed = self.plan.seed();
        let salt = self.salt;
        let su = i as u64;

        // Dropout wins: a tick that never arrives cannot carry values.
        for (f, fault) in self.plan.faults().iter().enumerate() {
            if let Fault::Dropout { rate } = fault {
                if unit(seed, salt, f as u64, 0, su) < *rate {
                    return SampleEvent::Dropped;
                }
            }
        }

        let ch = self.trial.channels();
        let mut raw = [0.0f32; 6];
        for (k, r) in raw.iter_mut().enumerate() {
            *r = ch[k][i];
        }

        for (f, fault) in self.plan.faults().iter().enumerate() {
            let fu = f as u64;
            match *fault {
                Fault::Dropout { .. } => {}
                Fault::Noise {
                    accel_sigma,
                    gyro_sigma,
                } => {
                    for (k, r) in raw.iter_mut().enumerate() {
                        let sigma = if k < 3 { accel_sigma } else { gyro_sigma };
                        if sigma > 0.0 {
                            *r += sigma * gaussian(seed, salt, fu, 1 + k as u64, su) as f32;
                        }
                    }
                }
                Fault::Spike { rate, magnitude } => {
                    if unit(seed, salt, fu, 0, su) < rate {
                        let h = key(seed, salt, fu, 7, su);
                        let axis = (h % 6) as usize;
                        let sign = if h & 0x40 == 0 { 1.0 } else { -1.0 };
                        raw[axis] += sign * magnitude;
                    }
                }
                Fault::StuckAxis {
                    sensor,
                    axis,
                    start,
                    len,
                } => {
                    let onset = frac_index(start, self.n);
                    if i >= onset && i < onset.saturating_add(len) {
                        let k = sensor.axes().start + axis.min(2);
                        raw[k] = ch[k][onset.min(self.n - 1)];
                    }
                }
                Fault::Saturation { accel_g, gyro_rads } => {
                    for (k, r) in raw.iter_mut().enumerate() {
                        let limit = if k < 3 { accel_g } else { gyro_rads };
                        *r = r.clamp(-limit, limit);
                    }
                }
                Fault::Outage {
                    sensor,
                    start,
                    duration,
                } => {
                    let onset = frac_index(start, self.n);
                    let end = frac_index(start + duration, self.n);
                    if i >= onset && i < end {
                        for k in sensor.axes() {
                            raw[k] = 0.0;
                        }
                    }
                }
                Fault::NanBurst { rate, len } => {
                    let window = len.max(1);
                    let from = i.saturating_sub(window - 1);
                    for j in from..=i {
                        let ju = j as u64;
                        if unit(seed, salt, fu, 0, ju) < rate {
                            let h = key(seed, salt, fu, 8, ju);
                            let poison = match h % 3 {
                                0 => f32::NAN,
                                1 => f32::INFINITY,
                                _ => f32::NEG_INFINITY,
                            };
                            raw.fill(poison);
                            break;
                        }
                    }
                }
            }
        }

        SampleEvent::Sample {
            accel: [raw[0], raw[1], raw[2]],
            gyro: [raw[3], raw[4], raw[5]],
        }
    }
}

impl Iterator for FaultStream<'_> {
    type Item = SampleEvent;

    fn next(&mut self) -> Option<SampleEvent> {
        if self.i >= self.n {
            return None;
        }
        let ev = self.event_at(self.i);
        self.i += 1;
        Some(ev)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.n - self.i;
        (left, Some(left))
    }
}

impl ExactSizeIterator for FaultStream<'_> {}

/// Per-trial salt so distinct trials draw independent corruption even
/// under the same plan.
fn trial_salt(trial: &Trial) -> u64 {
    mix64(
        mix64(trial.subject.0 as u64)
            ^ mix64(0x7A5C_u64 ^ trial.task.get() as u64)
            ^ mix64(0xC3D2_u64 ^ trial.trial_index as u64),
    )
}

fn frac_index(frac: f64, n: usize) -> usize {
    ((frac.clamp(0.0, 1.0) * n as f64) as usize).min(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Sensor;
    use prefall_imu::dataset::Dataset;

    fn trials() -> Vec<Trial> {
        Dataset::combined_scaled(1, 2, 11)
            .unwrap()
            .trials()
            .to_vec()
    }

    #[test]
    fn clean_plan_reproduces_the_trial() {
        let trial = &trials()[0];
        let plan = FaultPlan::new(5);
        let ch = trial.channels();
        for (i, ev) in plan.stream(trial).enumerate() {
            match ev {
                SampleEvent::Sample { accel, gyro } => {
                    assert_eq!(accel, [ch[0][i], ch[1][i], ch[2][i]]);
                    assert_eq!(gyro, [ch[3][i], ch[4][i], ch[5][i]]);
                }
                SampleEvent::Dropped => panic!("clean plan dropped sample {i}"),
            }
        }
    }

    #[test]
    fn dropout_rate_is_roughly_honoured_and_deterministic() {
        let trial = &trials()[0];
        let plan = FaultPlan::new(7).with(Fault::Dropout { rate: 0.2 });
        let dropped = |p: &FaultPlan| {
            p.stream(trial)
                .filter(|e| matches!(e, SampleEvent::Dropped))
                .count()
        };
        let d = dropped(&plan);
        let frac = d as f64 / trial.len() as f64;
        assert!((frac - 0.2).abs() < 0.08, "drop fraction {frac}");
        assert_eq!(d, dropped(&plan), "same plan, same drops");
    }

    #[test]
    fn scaled_dropout_drops_a_subset() {
        let trial = &trials()[0];
        let full = FaultPlan::new(3).with(Fault::Dropout { rate: 0.3 });
        let half = full.scaled(0.5);
        let drops = |p: &FaultPlan| -> Vec<usize> {
            p.stream(trial)
                .enumerate()
                .filter(|(_, e)| matches!(e, SampleEvent::Dropped))
                .map(|(i, _)| i)
                .collect()
        };
        let lo = drops(&half);
        let hi = drops(&full);
        assert!(!lo.is_empty() && lo.len() < hi.len());
        for i in &lo {
            assert!(hi.contains(i), "tick {i} dropped at 0.5 but not 1.0");
        }
    }

    #[test]
    fn nan_burst_poisons_whole_samples_for_len_ticks() {
        let trial = &trials()[0];
        let plan = FaultPlan::new(9).with(Fault::NanBurst { rate: 0.02, len: 5 });
        let events: Vec<SampleEvent> = plan.stream(trial).collect();
        let bad: Vec<usize> = events
            .iter()
            .enumerate()
            .filter(|(_, e)| match e {
                SampleEvent::Sample { accel, gyro } => {
                    accel.iter().chain(gyro.iter()).any(|v| !v.is_finite())
                }
                SampleEvent::Dropped => false,
            })
            .map(|(i, _)| i)
            .collect();
        assert!(!bad.is_empty(), "expected at least one burst");
        // Bursts come in runs: every poisoned tick has a poisoned
        // neighbour (len 5 ≫ 1).
        for &i in &bad {
            assert!(
                bad.contains(&(i + 1)) || i > 0 && bad.contains(&(i - 1)),
                "isolated poisoned tick {i}"
            );
        }
    }

    #[test]
    fn outage_zeroes_only_the_dead_sensor() {
        let trial = &trials()[0];
        let plan = FaultPlan::new(2).with(Fault::Outage {
            sensor: Sensor::Gyro,
            start: 0.25,
            duration: 0.5,
        });
        let n = trial.len();
        let mid = n / 2;
        match plan.stream(trial).nth(mid).unwrap() {
            SampleEvent::Sample { accel, gyro } => {
                assert_eq!(gyro, [0.0; 3]);
                assert_ne!(accel, [0.0; 3], "accel untouched by gyro outage");
            }
            SampleEvent::Dropped => panic!("no dropout fault composed"),
        }
    }

    #[test]
    fn saturation_clamps_to_the_rails() {
        let trial = &trials()[0];
        let plan = FaultPlan::new(2).with(Fault::Saturation {
            accel_g: 0.5,
            gyro_rads: 0.25,
        });
        for ev in plan.stream(trial) {
            if let SampleEvent::Sample { accel, gyro } = ev {
                for v in accel {
                    assert!(v.abs() <= 0.5);
                }
                for v in gyro {
                    assert!(v.abs() <= 0.25);
                }
            }
        }
    }

    #[test]
    fn stuck_axis_freezes_one_axis() {
        let trial = &trials()[0];
        let n = trial.len();
        let plan = FaultPlan::new(2).with(Fault::StuckAxis {
            sensor: Sensor::Accel,
            axis: 2,
            start: 0.1,
            len: n,
        });
        let onset = (0.1 * n as f64) as usize;
        let frozen = trial.channels()[2][onset];
        let events: Vec<SampleEvent> = plan.stream(trial).collect();
        for (i, ev) in events.iter().enumerate().skip(onset) {
            if let SampleEvent::Sample { accel, .. } = ev {
                assert_eq!(accel[2], frozen, "axis moved at tick {i}");
            }
        }
    }

    #[test]
    fn different_trials_corrupt_differently() {
        let ts = trials();
        let plan = FaultPlan::new(7).with(Fault::Dropout { rate: 0.2 });
        let sig = |t: &Trial| -> Vec<bool> {
            plan.stream(t)
                .take(200)
                .map(|e| matches!(e, SampleEvent::Dropped))
                .collect()
        };
        assert_ne!(sig(&ts[0]), sig(&ts[1]), "salt should differ per trial");
    }

    #[test]
    fn corrupt_trial_keeps_shape_and_labels() {
        let trial = trials()
            .into_iter()
            .find(|t| t.is_fall())
            .expect("dataset contains falls");
        let plan = FaultPlan::dropout_nan(7, 0.05, 0.01, 5);
        let bad = plan.corrupt_trial(&trial);
        assert_eq!(bad.len(), trial.len());
        assert_eq!(bad.fall_start(), trial.fall_start());
        assert_eq!(bad.impact(), trial.impact());
        assert_eq!(bad.subject, trial.subject);
        let n_nan = bad.channels()[0].iter().filter(|v| !v.is_finite()).count();
        assert!(n_nan > 0, "NaN burst should reach the stored channels");
    }
}
