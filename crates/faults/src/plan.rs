//! The fault taxonomy and the seeded, composable [`FaultPlan`].

use crate::stream::FaultStream;
use prefall_imu::trial::Trial;

/// A physical sensor a fault can target (the Euler channels are derived
/// on-device, so faults only ever corrupt the raw accel/gyro stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sensor {
    /// The tri-axial accelerometer (g).
    Accel,
    /// The tri-axial gyroscope (rad/s).
    Gyro,
}

impl Sensor {
    /// The raw-axis indices (0..6 over `[ax, ay, az, gx, gy, gz]`)
    /// belonging to this sensor.
    pub fn axes(self) -> std::ops::Range<usize> {
        match self {
            Sensor::Accel => 0..3,
            Sensor::Gyro => 3..6,
        }
    }
}

/// One fault process, with its intensity knobs.
///
/// Rates are per-sample probabilities at 100 Hz; positions are
/// fractions of the trial length so the same plan stays meaningful
/// across trials of different durations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Each grid tick is independently lost with probability `rate`
    /// (radio dropouts, bus contention). A dropped tick yields
    /// [`SampleEvent::Dropped`](crate::SampleEvent::Dropped).
    Dropout {
        /// Per-sample drop probability in `[0, 1]`.
        rate: f64,
    },
    /// Bus-glitch bursts: with probability `rate` a burst starts at a
    /// sample and the next `len` samples read NaN / ±Inf on every axis.
    NanBurst {
        /// Per-sample burst-start probability in `[0, 1]`.
        rate: f64,
        /// Burst length in samples.
        len: usize,
    },
    /// One axis freezes at the value it held when the fault engaged —
    /// the classic stuck-at register fault.
    StuckAxis {
        /// Sensor whose axis freezes.
        sensor: Sensor,
        /// Axis within the sensor (0, 1 or 2).
        axis: usize,
        /// Fault onset as a fraction of the trial length in `[0, 1]`.
        start: f64,
        /// Stuck duration in samples.
        len: usize,
    },
    /// ADC rail clipping: values are clamped to ±limit, silently
    /// flattening the impact transients the detector keys on.
    Saturation {
        /// Accelerometer rail in g.
        accel_g: f32,
        /// Gyroscope rail in rad/s.
        gyro_rads: f32,
    },
    /// Isolated single-sample glitches of ±`magnitude` added to one
    /// (deterministically chosen) axis.
    Spike {
        /// Per-sample glitch probability in `[0, 1]`.
        rate: f64,
        /// Glitch amplitude in sensor units (g or rad/s, by axis).
        magnitude: f32,
    },
    /// Additive white Gaussian noise on every raw axis.
    Noise {
        /// Accelerometer noise σ in g.
        accel_sigma: f32,
        /// Gyroscope noise σ in rad/s.
        gyro_sigma: f32,
    },
    /// A whole sensor goes dark and reads exactly zero on all axes — a
    /// dead channel, distinguishable from rest by its missing noise
    /// floor.
    Outage {
        /// Sensor that dies.
        sensor: Sensor,
        /// Outage onset as a fraction of the trial length in `[0, 1]`.
        start: f64,
        /// Outage duration as a fraction of the trial length in `[0, 1]`.
        duration: f64,
    },
}

impl Fault {
    /// Scales this fault's severity by `intensity`; returns `None` when
    /// the scaled fault is a no-op (so `scaled(0.0)` plans are clean).
    ///
    /// Rates, noise amplitudes and durations scale linearly; the
    /// saturation rails *tighten* as `limit / intensity` so severity is
    /// monotone in `intensity` there too.
    fn scaled(&self, intensity: f64) -> Option<Fault> {
        if intensity <= 0.0 {
            return None;
        }
        let k = intensity;
        Some(match *self {
            Fault::Dropout { rate } => Fault::Dropout { rate: rate * k },
            Fault::NanBurst { rate, len } => Fault::NanBurst {
                rate: rate * k,
                len,
            },
            Fault::StuckAxis {
                sensor,
                axis,
                start,
                len,
            } => Fault::StuckAxis {
                sensor,
                axis,
                start,
                len: (len as f64 * k).round() as usize,
            },
            Fault::Saturation { accel_g, gyro_rads } => Fault::Saturation {
                accel_g: accel_g / k as f32,
                gyro_rads: gyro_rads / k as f32,
            },
            Fault::Spike { rate, magnitude } => Fault::Spike {
                rate: rate * k,
                magnitude,
            },
            Fault::Noise {
                accel_sigma,
                gyro_sigma,
            } => Fault::Noise {
                accel_sigma: accel_sigma * k as f32,
                gyro_sigma: gyro_sigma * k as f32,
            },
            Fault::Outage {
                sensor,
                start,
                duration,
            } => Fault::Outage {
                sensor,
                start,
                duration: duration * k,
            },
        })
    }
}

/// A seeded composition of faults.
///
/// Determinism is structural, not sequential: every random decision is
/// a pure hash of `(seed, fault index, trial identity, sample index)`,
/// so corruption does not depend on evaluation order, two streams over
/// the same trial agree exactly, and a fault with a scaled-down rate
/// corrupts a *subset* of the samples the full-rate fault corrupts.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (corrupts nothing) with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
        }
    }

    /// Appends a fault (builder style).
    #[must_use]
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// The seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The composed faults, in application order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// `true` when the plan corrupts nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The ISSUE acceptance preset: sample dropout plus NaN bursts.
    pub fn dropout_nan(seed: u64, dropout_rate: f64, burst_rate: f64, burst_len: usize) -> Self {
        Self::new(seed)
            .with(Fault::Dropout { rate: dropout_rate })
            .with(Fault::NanBurst {
                rate: burst_rate,
                len: burst_len,
            })
    }

    /// Every fault type at a moderate baseline severity — the plan the
    /// robustness sweep scales from 0 (clean) to 1 (all of the below).
    pub fn kitchen_sink(seed: u64) -> Self {
        Self::new(seed)
            .with(Fault::Noise {
                accel_sigma: 0.05,
                gyro_sigma: 0.05,
            })
            .with(Fault::Spike {
                rate: 0.005,
                magnitude: 4.0,
            })
            .with(Fault::StuckAxis {
                sensor: Sensor::Gyro,
                axis: 1,
                start: 0.3,
                len: 80,
            })
            .with(Fault::Saturation {
                accel_g: 6.0,
                gyro_rads: 12.0,
            })
            .with(Fault::Outage {
                sensor: Sensor::Gyro,
                start: 0.55,
                duration: 0.15,
            })
            .with(Fault::NanBurst {
                rate: 0.004,
                len: 4,
            })
            .with(Fault::Dropout { rate: 0.05 })
    }

    /// A copy of the plan with every fault scaled by `intensity`
    /// (0 = clean, 1 = as composed; values above 1 amplify).
    ///
    /// The seed is preserved, so sample-level fault decisions nest
    /// across intensities: anything corrupted at intensity `a` is also
    /// corrupted at intensity `b ≥ a`.
    #[must_use]
    pub fn scaled(&self, intensity: f64) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            faults: self
                .faults
                .iter()
                .filter_map(|f| f.scaled(intensity))
                .collect(),
        }
    }

    /// Streams the trial's raw accel/gyro samples through the plan,
    /// yielding one [`SampleEvent`](crate::SampleEvent) per grid tick.
    pub fn stream<'a>(&'a self, trial: &'a Trial) -> FaultStream<'a> {
        FaultStream::new(self, trial)
    }

    /// Builds a corrupted copy of a trial on the fixed 100 Hz grid:
    /// dropped ticks repeat the previous delivered sample (the hold
    /// artifact a naïve logger records), corrupted values land in the
    /// accel/gyro channels verbatim, and the Euler channels are
    /// recomputed by the firmware's own sensor fusion — so a NaN burst
    /// poisons the fused angles exactly as it would on-device.
    ///
    /// Labels (`fall_start`, `impact`) and identity are preserved.
    pub fn corrupt_trial(&self, trial: &Trial) -> Trial {
        let n = trial.len();
        let mut raw: [Vec<f32>; 6] = Default::default();
        for c in &mut raw {
            c.reserve(n);
        }
        let mut last = [0.0f32; 6];
        for (i, ev) in self.stream(trial).enumerate() {
            match ev {
                crate::SampleEvent::Sample { accel, gyro } => {
                    last = [accel[0], accel[1], accel[2], gyro[0], gyro[1], gyro[2]];
                }
                crate::SampleEvent::Dropped => {
                    if i == 0 {
                        // Nothing delivered yet: hold the clean first
                        // sample so the grid starts defined.
                        let ch = trial.channels();
                        for (k, l) in last.iter_mut().enumerate() {
                            *l = ch[k][0];
                        }
                    }
                }
            }
            for (k, c) in raw.iter_mut().enumerate() {
                c.push(last[k]);
            }
        }
        let [ax, ay, az, gx, gy, gz] = raw;
        let euler = trial.channels()[6..9].to_vec();
        let mut channels = vec![ax, ay, az, gx, gy, gz];
        channels.extend(euler);
        let mut corrupted = Trial::from_channels(
            trial.subject,
            trial.task,
            trial.trial_index,
            trial.source,
            channels,
            trial.fall_start(),
            trial.impact(),
        )
        .expect("corrupted trial keeps the original shape and labels");
        corrupted.recompute_euler();
        corrupted
    }
}

// ---------------------------------------------------------------------
// Deterministic per-sample randomness: SplitMix64-style finalisers over
// a structured key. No state, no draw order, no `rand` dependency.
// ---------------------------------------------------------------------

pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A 64-bit hash of the full decision key.
pub(crate) fn key(seed: u64, salt: u64, fault: u64, lane: u64, sample: u64) -> u64 {
    mix64(mix64(mix64(mix64(seed ^ salt) ^ fault) ^ lane) ^ sample)
}

/// Uniform draw in `[0, 1)` for a decision key.
pub(crate) fn unit(seed: u64, salt: u64, fault: u64, lane: u64, sample: u64) -> f64 {
    (key(seed, salt, fault, lane, sample) >> 11) as f64 / (1u64 << 53) as f64
}

/// Standard-normal draw for a decision key (Box–Muller, cosine half).
pub(crate) fn gaussian(seed: u64, salt: u64, fault: u64, lane: u64, sample: u64) -> f64 {
    let u1 = unit(seed, salt, fault, lane, sample).max(1e-300);
    let u2 = unit(seed, salt, fault, lane ^ 0x5bd1_e995, sample);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_to_zero_empties_the_plan() {
        let plan = FaultPlan::kitchen_sink(3);
        assert!(!plan.is_empty());
        assert!(plan.scaled(0.0).is_empty());
        assert_eq!(plan.scaled(1.0).faults().len(), plan.faults().len());
    }

    #[test]
    fn scaling_halves_rates_and_tightens_rails() {
        let plan = FaultPlan::new(1)
            .with(Fault::Dropout { rate: 0.1 })
            .with(Fault::Saturation {
                accel_g: 8.0,
                gyro_rads: 16.0,
            });
        let half = plan.scaled(0.5);
        match half.faults()[0] {
            Fault::Dropout { rate } => assert!((rate - 0.05).abs() < 1e-12),
            ref f => panic!("unexpected {f:?}"),
        }
        match half.faults()[1] {
            Fault::Saturation { accel_g, gyro_rads } => {
                assert!(
                    (accel_g - 16.0).abs() < 1e-6,
                    "rails widen at low intensity"
                );
                assert!((gyro_rads - 32.0).abs() < 1e-6);
            }
            ref f => panic!("unexpected {f:?}"),
        }
    }

    #[test]
    fn hash_draws_are_uniform_ish_and_keyed() {
        let n = 20_000;
        let mean: f64 = (0..n).map(|i| unit(9, 0, 0, 0, i)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert_ne!(key(1, 0, 0, 0, 5), key(2, 0, 0, 0, 5), "seed matters");
        assert_ne!(key(1, 0, 0, 0, 5), key(1, 0, 1, 0, 5), "fault lane matters");
        assert_eq!(key(1, 2, 3, 4, 5), key(1, 2, 3, 4, 5), "pure function");
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|i| gaussian(4, 0, 0, 0, i)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
