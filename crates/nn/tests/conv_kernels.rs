//! Property tests: the optimised conv kernels are **exactly**
//! bit-identical to the naive reference over random shapes, weights and
//! inputs.
//!
//! No ULP tolerance is needed anywhere in this suite: the blocked and
//! fused kernels only interleave *independent* accumulators and never
//! reassociate a single output's sum, so every output is required to
//! match under `f32::to_bits`. (Had a kernel reassociated — e.g. a
//! horizontal-add SIMD reduction — the affected comparisons would have
//! to document a ULP bound instead; none does.)

use prefall_nn::kernels::{
    conv1d_blocked, conv1d_reference, dense_forward, fused_conv_relu_maxpool, maxpool_forward,
};
use prefall_nn::layers::{Conv1d, Layer};
use proptest::prelude::*;

fn gen_values(len: usize, seed: u64) -> Vec<f32> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 4000) as f32 / 1000.0 - 2.0
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocked conv == naive conv, bit for bit, over random shapes that
    /// exercise every combination of time/filter block tails.
    #[test]
    fn blocked_conv_is_bit_identical_to_reference(
        time in 1usize..14,
        in_ch in 1usize..7,
        filters in 1usize..10,
        kernel in 1usize..6,
        seed in 0u64..1000,
    ) {
        let kernel = kernel.min(time);
        let t_out = time - kernel + 1;
        let input = gen_values(time * in_ch, seed);
        let w = gen_values(filters * kernel * in_ch, seed ^ 0xBEEF);
        let b = gen_values(filters, seed ^ 0xCAFE);
        let mut reference = vec![0.0f32; t_out * filters];
        let mut blocked = vec![0.0f32; t_out * filters];
        conv1d_reference(&input, &w, &b, time, in_ch, filters, kernel, &mut reference);
        conv1d_blocked(&input, &w, &b, time, in_ch, filters, kernel, &mut blocked);
        prop_assert_eq!(bits(&reference), bits(&blocked));
    }

    /// Fused conv+ReLU+maxpool == the three ops composed from the
    /// reference kernels, bit for bit.
    #[test]
    fn fused_kernel_is_bit_identical_to_composition(
        time in 2usize..16,
        in_ch in 1usize..6,
        filters in 1usize..9,
        kernel in 1usize..5,
        pool in 1usize..5,
        seed in 0u64..1000,
    ) {
        let kernel = kernel.min(time);
        let t_out = time - kernel + 1;
        let pool = pool.min(t_out);
        let p_out = t_out / pool;
        let input = gen_values(time * in_ch, seed);
        let w = gen_values(filters * kernel * in_ch, seed ^ 0x1234);
        let b = gen_values(filters, seed ^ 0x5678);

        let mut conv = vec![0.0f32; t_out * filters];
        conv1d_reference(&input, &w, &b, time, in_ch, filters, kernel, &mut conv);
        let relu: Vec<f32> = conv.iter().map(|&v| v.max(0.0)).collect();
        let mut pooled = vec![0.0f32; p_out * filters];
        maxpool_forward(&relu, filters, pool, &mut pooled);

        let mut fused = vec![0.0f32; p_out * filters];
        fused_conv_relu_maxpool(&input, &w, &b, time, in_ch, filters, kernel, pool, &mut fused);
        prop_assert_eq!(bits(&pooled), bits(&fused));
    }

    /// `Conv1d::forward` (which dispatches to the blocked kernel)
    /// agrees bit for bit with the raw reference kernel on the layer's
    /// own weights — the layer-level view of the same guarantee.
    #[test]
    fn conv_layer_forward_is_bit_identical_to_reference_kernel(
        time in 2usize..12,
        in_ch in 1usize..5,
        filters in 1usize..8,
        kernel in 1usize..4,
        seed in 0u64..500,
    ) {
        let kernel = kernel.min(time);
        let t_out = time - kernel + 1;
        let mut layer = Conv1d::new(0, time, in_ch, filters, kernel).unwrap();
        let mut rng = prefall_nn::init::InitRng::new(seed);
        layer.init_weights(&mut rng);
        let input = gen_values(time * in_ch, seed ^ 0xABCD);
        let got = layer.forward(&input);

        // `visit_params` yields weights then bias, in that order.
        let mut params: Vec<Vec<f32>> = Vec::new();
        layer.visit_params(&mut |p| params.push(p.w.clone()));
        let (w, b) = (params[0].clone(), params[1].clone());
        let mut want = vec![0.0f32; t_out * filters];
        conv1d_reference(&input, &w, &b, time, in_ch, filters, kernel, &mut want);
        prop_assert_eq!(bits(&got), bits(&want));
    }

    /// The buffered dense kernel matches the naive per-output dot
    /// product, bit for bit.
    #[test]
    fn dense_kernel_is_bit_identical_to_naive(
        in_len in 1usize..24,
        out_len in 1usize..14,
        seed in 0u64..1000,
    ) {
        let input = gen_values(in_len, seed);
        let w = gen_values(out_len * in_len, seed ^ 0x9999);
        let b = gen_values(out_len, seed ^ 0x7777);
        let mut got = vec![0.0f32; out_len];
        dense_forward(&input, &w, &b, &mut got);
        let want: Vec<f32> = (0..out_len)
            .map(|o| {
                let mut acc = 0.0f32;
                for j in 0..in_len {
                    acc += w[o * in_len + j] * input[j];
                }
                b[o] + acc
            })
            .collect();
        prop_assert_eq!(bits(&got), bits(&want));
    }
}
