//! Crate-local property tests: whole-network gradient checks and
//! quantization invariants across random shapes.

use prefall_nn::loss::WeightedBce;
use prefall_nn::network::Network;
use prefall_nn::quant::QuantizedNetwork;
use prefall_nn::serialize::{load_weights, save_weights};
use proptest::prelude::*;

fn gen_input(len: usize, seed: u64) -> Vec<f32> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 2000) as f32 / 1000.0 - 1.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// End-to-end gradient check of a random small MLP: perturbing any
    /// parameter changes the loss as the analytic gradient predicts.
    #[test]
    fn whole_network_gradient_check(
        in_len in 2usize..6,
        hidden in 1usize..6,
        seed in 0u64..500,
    ) {
        let mut net = Network::builder(vec![in_len])
            .dense(hidden).unwrap()
            .relu()
            .dense(1).unwrap()
            .build(seed);
        let x = gen_input(in_len, seed ^ 0xF00D);
        let y = if seed % 2 == 0 { 1.0 } else { 0.0 };
        let loss = WeightedBce::new(2.0, 0.5);

        net.zero_grads();
        let logit = net.forward(&x)[0];
        let dl = loss.dloss_dlogit(logit, y);
        let _ = net.backward(&[dl]);

        // Collect analytic grads.
        let mut grads: Vec<Vec<f32>> = Vec::new();
        net.visit_params(&mut |p| grads.push(p.g.clone()));

        // Check a handful of parameters by finite differences.
        let eps = 1e-2f32;
        let n_blocks = grads.len();
        #[allow(clippy::needless_range_loop)]
        for bi in 0..n_blocks {
            let wi = 0; // first weight of each block
            let perturb = |net: &mut Network, delta: f32| {
                let mut k = 0;
                net.visit_params(&mut |p| {
                    if k == bi && !p.w.is_empty() {
                        p.w[wi] += delta;
                    }
                    k += 1;
                });
            };
            perturb(&mut net, eps);
            let lp = loss.loss(net.forward(&x)[0], y);
            perturb(&mut net, -2.0 * eps);
            let lm = loss.loss(net.forward(&x)[0], y);
            perturb(&mut net, eps);
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads[bi][wi];
            prop_assert!(
                (num - ana).abs() <= 0.05 * (1.0 + num.abs()),
                "block {bi}: numeric {num} vs analytic {ana}"
            );
        }
    }

    /// Weight serialisation round-trips across random architectures.
    #[test]
    fn serialization_roundtrip(
        in_len in 1usize..8,
        h1 in 1usize..8,
        seed in 0u64..1000,
    ) {
        let build = |s: u64| {
            Network::builder(vec![in_len])
                .dense(h1).unwrap()
                .relu()
                .dense(1).unwrap()
                .build(s)
        };
        let mut a = build(seed);
        let blob = save_weights(&mut a);
        let mut b = build(seed ^ 0xDEAD);
        load_weights(&mut b, &blob).unwrap();
        let x = gen_input(in_len, seed);
        prop_assert_eq!(a.forward(&x), b.forward(&x));
    }

    /// Quantized inference tracks float inference within a few quanta
    /// for in-calibration-range inputs, across random dense networks.
    #[test]
    fn quantization_error_bounded(
        in_len in 2usize..10,
        hidden in 1usize..12,
        seed in 0u64..300,
    ) {
        let mut net = Network::builder(vec![in_len])
            .dense(hidden).unwrap()
            .relu()
            .dense(1).unwrap()
            .build(seed);
        let calib: Vec<Vec<f32>> = (0..48).map(|k| gen_input(in_len, seed ^ (k + 1))).collect();
        let q = QuantizedNetwork::from_network(&mut net, &calib).unwrap();
        for x in calib.iter().take(16) {
            let fl = net.forward(x)[0];
            let ql = q.forward_logit(x);
            prop_assert!((fl - ql).abs() < 0.25, "float {fl} vs int8 {ql}");
        }
    }

    /// Training a single step with zero learning-rate-like gradient
    /// scale leaves outputs unchanged (scale_grads(0) sanity).
    #[test]
    fn zero_scaled_gradients_do_not_move_weights(seed in 0u64..200) {
        let mut net = Network::builder(vec![4]).dense(3).unwrap().dense(1).unwrap().build(seed);
        let x = gen_input(4, seed);
        let before = net.forward(&x);
        net.zero_grads();
        let _ = net.forward(&x);
        let _ = net.backward(&[1.0]);
        net.scale_grads(0.0);
        let mut opt = prefall_nn::optim::Optimizer::sgd(0.1);
        opt.begin_step();
        net.visit_params(&mut |p| opt.step(p));
        prop_assert_eq!(net.forward(&x), before);
    }
}
