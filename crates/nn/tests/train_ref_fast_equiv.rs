//! The factored fast training path must be bit-identical to the
//! reference path: same trained weights, same loss history, same
//! predictions. The perf bench's speedup claim rests on this — it
//! compares a reference-kernel leg against a fast-kernel leg and
//! refuses to report a speedup unless every result cell matches
//! bit-for-bit. This test lives in its own integration binary (own
//! process) because it toggles the process-wide kernel switch.

use prefall_nn::kernels::set_reference_kernels;
use prefall_nn::loss::WeightedBce;
use prefall_nn::network::Network;
use prefall_nn::optim::OptimizerKind;
use prefall_nn::train::{predict_proba, train, DataRef, TrainConfig};

fn wave_data(n: usize, width: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<f32>) {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s % 2000) as f32 / 1000.0 - 1.0
    };
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        let x: Vec<f32> = (0..width).map(|_| next()).collect();
        let y = if x.iter().sum::<f32>() > 0.0 {
            1.0
        } else {
            0.0
        };
        xs.push(x);
        ys.push(y);
    }
    (xs, ys)
}

/// A scaled-down ProposedCnn: three channel-split conv branches feeding
/// a dense head. Exercises the aux (conv) slot path, the rank-1 dense
/// path, and the fused workspace inference.
fn cnn(width_time: usize) -> Network {
    let branch = |sel: Vec<usize>| {
        (
            sel,
            Network::builder(vec![width_time, 3])
                .conv1d(6, 3)
                .unwrap()
                .relu()
                .maxpool(2)
                .unwrap(),
        )
    };
    Network::builder(vec![width_time, 9])
        .split(vec![
            branch(vec![0, 1, 2]),
            branch(vec![3, 4, 5]),
            branch(vec![6, 7, 8]),
        ])
        .unwrap()
        .dense(16)
        .unwrap()
        .relu()
        .dense(8)
        .unwrap()
        .relu()
        .dense(1)
        .unwrap()
        .build(0x5EED)
}

fn mlp(width: usize) -> Network {
    Network::builder(vec![width])
        .dense(24)
        .unwrap()
        .relu()
        .dense(12)
        .unwrap()
        .relu()
        .dense(1)
        .unwrap()
        .build(7)
}

fn weight_bits(net: &mut Network) -> Vec<u32> {
    let mut bits = Vec::new();
    net.visit_params(&mut |p| bits.extend(p.w.iter().map(|w| w.to_bits())));
    bits
}

fn run(mut net: Network, xs: &[Vec<f32>], ys: &[f32], reference: bool) -> (Vec<u32>, Vec<u32>) {
    set_reference_kernels(reference);
    let cfg = TrainConfig {
        epochs: 4,
        batch_size: 8,
        learning_rate: 2e-3,
        optimizer: OptimizerKind::Adam,
        patience: Some(20),
        seed: 0x5EED,
    };
    let n_val = xs.len() / 4;
    let report = train(
        &mut net,
        DataRef::new(&xs[n_val..], &ys[n_val..]),
        Some(DataRef::new(&xs[..n_val], &ys[..n_val])),
        WeightedBce::balanced(
            ys.iter().filter(|&&y| y > 0.5).count().max(1),
            ys.iter().filter(|&&y| y <= 0.5).count().max(1),
        ),
        &cfg,
    )
    .expect("training succeeds");
    let mut history_bits: Vec<u32> = Vec::new();
    for e in &report.history {
        history_bits.push(e.train_loss.to_bits());
        history_bits.push(e.val_loss.to_bits());
    }
    let probs: Vec<u32> = predict_proba(&mut net, xs)
        .iter()
        .map(|p| p.to_bits())
        .collect();
    set_reference_kernels(false);
    let mut all = weight_bits(&mut net);
    all.extend(&probs);
    (all, history_bits)
}

#[test]
fn cnn_training_is_bit_identical_across_kernel_modes() {
    let (xs, ys) = wave_data(96, 14 * 9, 21);
    let (ref_bits, ref_hist) = run(cnn(14), &xs, &ys, true);
    let (fast_bits, fast_hist) = run(cnn(14), &xs, &ys, false);
    assert_eq!(ref_hist, fast_hist, "loss history diverged");
    assert_eq!(ref_bits, fast_bits, "weights or predictions diverged");
}

#[test]
fn mlp_training_is_bit_identical_across_kernel_modes() {
    let (xs, ys) = wave_data(120, 20, 33);
    let (ref_bits, ref_hist) = run(mlp(20), &xs, &ys, true);
    let (fast_bits, fast_hist) = run(mlp(20), &xs, &ys, false);
    assert_eq!(ref_hist, fast_hist, "loss history diverged");
    assert_eq!(ref_bits, fast_bits, "weights or predictions diverged");
}
