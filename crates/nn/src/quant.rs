//! Post-training 8-bit integer quantization (§III-D).
//!
//! The scheme mirrors what STM32Cube.AI / TFLite-Micro execute on the
//! target microcontroller:
//!
//! * **activations** — per-tensor affine int8: `real = scale · (q − zp)`,
//!   ranges calibrated on representative data;
//! * **weights** — per-output-channel symmetric int8 (`zp = 0`);
//! * **biases** — int32 at scale `s_in · s_w[ch]`;
//! * **arithmetic** — i32 accumulators, fixed-point requantization
//!   (`M = m0·2⁻³¹·2⁻ⁿ` with `m0 ∈ [2³⁰, 2³¹)`), ReLU fused into the
//!   output clamp;
//! * the final sigmoid runs in float on the single dequantized logit
//!   (exactly one transcendental per inference, as on the MCU).

use crate::layers::{Conv1d, Dense, Layer, MaxPool1d, Relu, Sigmoid, SplitConcat};
use crate::network::Network;
use crate::NnError;
use serde::{Deserialize, Serialize};

/// Affine int8 quantization parameters for one activation tensor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActQuant {
    /// Real value represented per quantum.
    pub scale: f32,
    /// The int8 code representing real 0.
    pub zero_point: i32,
}

impl ActQuant {
    /// Builds parameters covering `[min, max]` (the range is widened to
    /// include zero, as required for zero-padding correctness).
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or either is non-finite.
    pub fn from_range(min: f32, max: f32) -> Self {
        assert!(
            min.is_finite() && max.is_finite() && min <= max,
            "bad range"
        );
        let min = min.min(0.0);
        let max = max.max(0.0);
        let span = (max - min).max(1e-6);
        let scale = span / 255.0;
        let zero_point = (-128.0 - min / scale).round().clamp(-128.0, 127.0) as i32;
        Self { scale, zero_point }
    }

    /// Quantizes one real value.
    pub fn quantize(&self, x: f32) -> i8 {
        ((x / self.scale).round() as i32 + self.zero_point).clamp(-128, 127) as i8
    }

    /// Dequantizes one code.
    pub fn dequantize(&self, q: i8) -> f32 {
        (i32::from(q) - self.zero_point) as f32 * self.scale
    }

    /// Quantizes a slice.
    pub fn quantize_slice(&self, xs: &[f32]) -> Vec<i8> {
        xs.iter().map(|&x| self.quantize(x)).collect()
    }
}

/// Decomposes a positive real multiplier `m` into `(m0, shift)` with
/// `m = m0 · 2⁻³¹ · 2⁻ˢʰⁱᶠᵗ` and `m0 ∈ [2³⁰, 2³¹)`.
///
/// # Panics
///
/// Panics unless `m` is positive and finite.
pub fn quantize_multiplier(m: f64) -> (i32, i32) {
    assert!(m > 0.0 && m.is_finite(), "multiplier must be positive");
    let mut shift = 0i32;
    let mut frac = m;
    while frac < 0.5 {
        frac *= 2.0;
        shift += 1;
    }
    while frac >= 1.0 {
        frac /= 2.0;
        shift -= 1;
    }
    let mut m0 = (frac * f64::from(1u32 << 31)).round() as i64;
    if m0 == 1i64 << 31 {
        m0 /= 2;
        shift -= 1;
    }
    (m0 as i32, shift)
}

/// Applies the fixed-point multiplier to an i32 accumulator
/// (rounding-to-nearest, matching the TFLite reference kernels closely
/// enough for bit-stable behaviour in this crate).
#[inline]
pub fn apply_multiplier(acc: i32, m0: i32, shift: i32) -> i32 {
    let total = 31 + shift;
    debug_assert!(total >= 1, "multiplier shift underflow");
    let prod = i64::from(acc) * i64::from(m0);
    let round = 1i64 << (total - 1);
    ((prod + round) >> total) as i32
}

/// A quantized dense layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QDense {
    in_len: usize,
    out_len: usize,
    w: Vec<i8>,
    bias: Vec<i32>,
    mult: Vec<(i32, i32)>,
    input_q: ActQuant,
    output_q: ActQuant,
    relu: bool,
}

impl QDense {
    fn forward(&self, x: &[i8]) -> Vec<i8> {
        let zp_in = self.input_q.zero_point;
        let mut out = Vec::with_capacity(self.out_len);
        for o in 0..self.out_len {
            let row = &self.w[o * self.in_len..(o + 1) * self.in_len];
            let mut acc = self.bias[o];
            for (w, &xq) in row.iter().zip(x) {
                acc += i32::from(*w) * (i32::from(xq) - zp_in);
            }
            let (m0, shift) = self.mult[o];
            let y = apply_multiplier(acc, m0, shift) + self.output_q.zero_point;
            let lo = if self.relu {
                self.output_q.zero_point.max(-128)
            } else {
                -128
            };
            out.push(y.clamp(lo, 127) as i8);
        }
        out
    }
}

/// A quantized 1-D convolution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QConv1d {
    time: usize,
    in_ch: usize,
    filters: usize,
    kernel: usize,
    w: Vec<i8>,
    bias: Vec<i32>,
    mult: Vec<(i32, i32)>,
    input_q: ActQuant,
    output_q: ActQuant,
    relu: bool,
}

impl QConv1d {
    fn out_time(&self) -> usize {
        self.time - self.kernel + 1
    }

    fn forward(&self, x: &[i8]) -> Vec<i8> {
        let (c, k, f_n) = (self.in_ch, self.kernel, self.filters);
        let zp_in = self.input_q.zero_point;
        let t_out = self.out_time();
        let mut out = Vec::with_capacity(t_out * f_n);
        for t in 0..t_out {
            let window = &x[t * c..(t + k) * c];
            for f in 0..f_n {
                let wf = &self.w[f * k * c..(f + 1) * k * c];
                let mut acc = self.bias[f];
                for (w, &xq) in wf.iter().zip(window) {
                    acc += i32::from(*w) * (i32::from(xq) - zp_in);
                }
                let (m0, shift) = self.mult[f];
                let y = apply_multiplier(acc, m0, shift) + self.output_q.zero_point;
                let lo = if self.relu {
                    self.output_q.zero_point.max(-128)
                } else {
                    -128
                };
                out.push(y.clamp(lo, 127) as i8);
            }
        }
        out
    }
}

/// A quantized max pool (scale-preserving).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QMaxPool {
    time: usize,
    ch: usize,
    pool: usize,
}

impl QMaxPool {
    fn forward(&self, x: &[i8]) -> Vec<i8> {
        let t_out = self.time / self.pool;
        let mut out = Vec::with_capacity(t_out * self.ch);
        for to in 0..t_out {
            for c in 0..self.ch {
                let mut best = i8::MIN;
                for k in 0..self.pool {
                    best = best.max(x[(to * self.pool + k) * self.ch + c]);
                }
                out.push(best);
            }
        }
        out
    }
}

/// A quantized branch of a split/concat.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct QBranch {
    channels: Vec<usize>,
    layers: Vec<QLayer>,
    /// Requantization from the branch's own output scale to the shared
    /// concat scale.
    mult: (i32, i32),
    branch_zp: i32,
}

/// Quantized split/concat.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QSplitConcat {
    time: usize,
    in_ch: usize,
    branches: Vec<QBranch>,
    output_q: ActQuant,
}

impl QSplitConcat {
    fn forward(&self, x: &[i8]) -> Vec<i8> {
        let mut out = Vec::new();
        for b in &self.branches {
            // Gather channels.
            let mut xb = Vec::with_capacity(self.time * b.channels.len());
            for t in 0..self.time {
                for &c in &b.channels {
                    xb.push(x[t * self.in_ch + c]);
                }
            }
            for layer in &b.layers {
                xb = layer.forward(&xb);
            }
            // Requantize into the shared concat scale.
            for q in xb {
                let centered = i32::from(q) - b.branch_zp;
                let y = apply_multiplier(centered, b.mult.0, b.mult.1) + self.output_q.zero_point;
                out.push(y.clamp(-128, 127) as i8);
            }
        }
        out
    }
}

/// One quantized layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum QLayer {
    /// Quantized dense (ReLU possibly fused).
    Dense(QDense),
    /// Quantized convolution (ReLU possibly fused).
    Conv1d(QConv1d),
    /// Max pooling.
    MaxPool(QMaxPool),
    /// Split/concat with per-branch requantization.
    SplitConcat(QSplitConcat),
}

impl QLayer {
    fn forward(&self, x: &[i8]) -> Vec<i8> {
        match self {
            QLayer::Dense(l) => l.forward(x),
            QLayer::Conv1d(l) => l.forward(x),
            QLayer::MaxPool(l) => l.forward(x),
            QLayer::SplitConcat(l) => l.forward(x),
        }
    }

    fn output_len(&self) -> usize {
        match self {
            QLayer::Dense(l) => l.out_len,
            QLayer::Conv1d(l) => l.out_time() * l.filters,
            QLayer::MaxPool(l) => (l.time / l.pool) * l.ch,
            QLayer::SplitConcat(l) => l
                .branches
                .iter()
                .map(|b| b.layers.last().expect("non-empty branch").output_len())
                .sum(),
        }
    }

    fn weight_bytes(&self) -> usize {
        match self {
            QLayer::Dense(l) => l.w.len() + 4 * l.bias.len(),
            QLayer::Conv1d(l) => l.w.len() + 4 * l.bias.len(),
            QLayer::MaxPool(_) => 0,
            QLayer::SplitConcat(l) => l
                .branches
                .iter()
                .flat_map(|b| b.layers.iter())
                .map(QLayer::weight_bytes)
                .sum(),
        }
    }

    fn metadata_bytes(&self) -> usize {
        // Per-channel multiplier (i32 + i32) + activation params.
        match self {
            QLayer::Dense(l) => 8 * l.mult.len() + 16,
            QLayer::Conv1d(l) => 8 * l.mult.len() + 16,
            QLayer::MaxPool(_) => 8,
            QLayer::SplitConcat(l) => {
                16 + l
                    .branches
                    .iter()
                    .map(|b| 16 + b.layers.iter().map(QLayer::metadata_bytes).sum::<usize>())
                    .sum::<usize>()
            }
        }
    }

    fn macs(&self) -> usize {
        match self {
            QLayer::Dense(l) => l.in_len * l.out_len,
            QLayer::Conv1d(l) => l.out_time() * l.filters * l.kernel * l.in_ch,
            QLayer::MaxPool(_) => 0,
            QLayer::SplitConcat(l) => l
                .branches
                .iter()
                .flat_map(|b| b.layers.iter())
                .map(QLayer::macs)
                .sum(),
        }
    }
}

/// A fully int8 network: quantized input, int8 layers, float sigmoid on
/// the dequantized final logit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantizedNetwork {
    input_len: usize,
    input_q: ActQuant,
    layers: Vec<QLayer>,
    output_q: ActQuant,
}

impl QuantizedNetwork {
    /// Quantizes a trained float network using calibration inputs
    /// (representative, already preprocessed samples).
    ///
    /// Supported layers: `Dense`, `Conv1d`, `MaxPool1d`, `Relu` (fused),
    /// `SplitConcat` (of supported layers) and a trailing `Sigmoid`
    /// (executed in float). The float network is left unchanged apart
    /// from transient forward caches.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidTraining`] for an empty calibration set
    /// and [`NnError::InvalidLayer`] for unsupported layers.
    pub fn from_network(net: &mut Network, calibration: &[Vec<f32>]) -> Result<Self, NnError> {
        if calibration.is_empty() {
            return Err(NnError::InvalidTraining {
                reason: "calibration set is empty".to_string(),
            });
        }
        let input_len = net.input_len();
        if let Some(bad) = calibration.iter().find(|x| x.len() != input_len) {
            return Err(NnError::ShapeMismatch {
                expected: input_len,
                actual: bad.len(),
            });
        }

        let input_q = ActQuant::from_range(range_of(calibration).0, range_of(calibration).1);
        let mut acts: Vec<Vec<f32>> = calibration.to_vec();
        let mut cur_q = input_q;
        let mut qlayers = Vec::new();

        let n = net.layers_mut().len();
        let mut i = 0;
        while i < n {
            // Determine fusion with a following ReLU before borrowing.
            let fuse_relu = i + 1 < n && net.layers()[i + 1].as_any().is::<Relu>();
            let kind_is_sigmoid = net.layers()[i].as_any().is::<Sigmoid>();
            if kind_is_sigmoid {
                if i != n - 1 {
                    return Err(NnError::InvalidLayer {
                        layer: "sigmoid",
                        reason: "only a final sigmoid is supported by the quantizer".to_string(),
                    });
                }
                break; // handled in float by predict()
            }

            let layer = &mut net.layers_mut()[i];
            let (qlayer, new_acts, out_q) =
                quantize_layer(layer.as_mut(), &acts, cur_q, fuse_relu)?;
            qlayers.push(qlayer);
            acts = new_acts;
            cur_q = out_q;
            i += if fuse_relu { 2 } else { 1 };
        }

        Ok(Self {
            input_len,
            input_q,
            layers: qlayers,
            output_q: cur_q,
        })
    }

    /// Runs int8 inference on one float sample and returns the
    /// dequantized logit.
    ///
    /// # Panics
    ///
    /// Panics if the input length mismatches.
    pub fn forward_logit(&self, x: &[f32]) -> f32 {
        assert_eq!(x.len(), self.input_len, "quantized input length");
        let mut q = self.input_q.quantize_slice(x);
        for layer in &self.layers {
            q = layer.forward(&q);
        }
        debug_assert_eq!(q.len(), 1, "binary head expected");
        self.output_q.dequantize(q[0])
    }

    /// Sigmoid probability from int8 inference.
    pub fn predict_proba(&self, x: &[f32]) -> f32 {
        crate::loss::sigmoid(self.forward_logit(x))
    }

    /// Flash bytes consumed by weights and biases.
    pub fn weight_bytes(&self) -> usize {
        self.layers.iter().map(QLayer::weight_bytes).sum()
    }

    /// Flash bytes for quantization metadata (multipliers, zero points).
    pub fn metadata_bytes(&self) -> usize {
        16 + self
            .layers
            .iter()
            .map(QLayer::metadata_bytes)
            .sum::<usize>()
    }

    /// Total model flash footprint (weights + metadata + graph
    /// structure), in bytes. This is the number compared against the
    /// paper's 67.03 KiB.
    pub fn flash_bytes(&self) -> usize {
        // Graph/structure overhead per layer (descriptor, shapes) mirrors
        // the ~100 B/tensor STM32Cube.AI spends.
        let structure = 512 + 128 * self.layers.len();
        self.weight_bytes() + self.metadata_bytes() + structure
    }

    /// Peak activation arena in bytes (the classic two-buffer scheme:
    /// the largest input+output pair alive at once, int8 each).
    pub fn activation_arena_bytes(&self) -> usize {
        let mut peak = 0usize;
        let mut cur = self.input_len;
        for l in &self.layers {
            let out = l.output_len();
            peak = peak.max(cur + out);
            cur = out;
        }
        peak
    }

    /// Total int8 multiply–accumulates per inference.
    pub fn macs(&self) -> usize {
        self.layers.iter().map(QLayer::macs).sum()
    }

    /// The quantized layer stack.
    pub fn layers(&self) -> &[QLayer] {
        &self.layers
    }

    /// The flattened weight/bias blob in flash layout order (int8
    /// weights then little-endian i32 biases, per layer) — what a C
    /// export would place in `.rodata`.
    pub fn weight_blob(&self) -> Vec<u8> {
        fn push_layer(l: &QLayer, out: &mut Vec<u8>) {
            match l {
                QLayer::Dense(d) => {
                    out.extend(d.w.iter().map(|&v| v as u8));
                    for b in &d.bias {
                        out.extend_from_slice(&b.to_le_bytes());
                    }
                }
                QLayer::Conv1d(c) => {
                    out.extend(c.w.iter().map(|&v| v as u8));
                    for b in &c.bias {
                        out.extend_from_slice(&b.to_le_bytes());
                    }
                }
                QLayer::MaxPool(_) => {}
                QLayer::SplitConcat(s) => {
                    for b in &s.branches {
                        for l in &b.layers {
                            push_layer(l, out);
                        }
                    }
                }
            }
        }
        let mut out = Vec::with_capacity(self.weight_bytes());
        for l in &self.layers {
            push_layer(l, &mut out);
        }
        out
    }

    /// Input quantization parameters.
    pub fn input_quant(&self) -> ActQuant {
        self.input_q
    }

    /// Flattened input length.
    pub fn input_len(&self) -> usize {
        self.input_len
    }
}

fn range_of(xs: &[Vec<f32>]) -> (f32, f32) {
    let mut min = f32::MAX;
    let mut max = f32::MIN;
    for v in xs {
        for &x in v {
            min = min.min(x);
            max = max.max(x);
        }
    }
    if min > max {
        (0.0, 0.0)
    } else {
        (min, max)
    }
}

/// Runs a float layer over all activations, optionally applying ReLU.
fn run_float(layer: &mut dyn Layer, acts: &[Vec<f32>], relu: bool) -> Vec<Vec<f32>> {
    acts.iter()
        .map(|x| {
            let mut y = layer.forward(x);
            if relu {
                for v in &mut y {
                    *v = v.max(0.0);
                }
            }
            y
        })
        .collect()
}

type QuantizedPiece = (QLayer, Vec<Vec<f32>>, ActQuant);

fn quantize_layer(
    layer: &mut dyn Layer,
    acts: &[Vec<f32>],
    in_q: ActQuant,
    fuse_relu: bool,
) -> Result<QuantizedPiece, NnError> {
    if let Some(dense) = layer.as_any().downcast_ref::<Dense>() {
        let (in_len, out_len) = (dense.in_len(), dense.out_len());
        let weights = dense.weights().to_vec();
        let biases = dense.biases().to_vec();
        let outs = run_float(layer, acts, fuse_relu);
        let (omin, omax) = range_of(&outs);
        let out_q = ActQuant::from_range(omin, omax);

        let mut wq = vec![0i8; weights.len()];
        let mut bq = vec![0i32; out_len];
        let mut mult = Vec::with_capacity(out_len);
        for o in 0..out_len {
            let row = &weights[o * in_len..(o + 1) * in_len];
            let s_w = per_channel_scale(row);
            for (j, &w) in row.iter().enumerate() {
                wq[o * in_len + j] = (w / s_w).round().clamp(-127.0, 127.0) as i8;
            }
            let s_bias = in_q.scale * s_w;
            bq[o] = (biases[o] / s_bias).round() as i32;
            mult.push(quantize_multiplier(
                f64::from(in_q.scale) * f64::from(s_w) / f64::from(out_q.scale),
            ));
        }
        let q = QDense {
            in_len,
            out_len,
            w: wq,
            bias: bq,
            mult,
            input_q: in_q,
            output_q: out_q,
            relu: fuse_relu,
        };
        return Ok((QLayer::Dense(q), outs, out_q));
    }

    if let Some(conv) = layer.as_any().downcast_ref::<Conv1d>() {
        let (time, in_ch, filters, kernel) = (
            conv.in_time(),
            conv.in_channels(),
            conv.filters(),
            conv.kernel(),
        );
        let weights = conv.weights().to_vec();
        let biases = conv.biases().to_vec();
        let outs = run_float(layer, acts, fuse_relu);
        let (omin, omax) = range_of(&outs);
        let out_q = ActQuant::from_range(omin, omax);

        let kc = kernel * in_ch;
        let mut wq = vec![0i8; weights.len()];
        let mut bq = vec![0i32; filters];
        let mut mult = Vec::with_capacity(filters);
        for f in 0..filters {
            let row = &weights[f * kc..(f + 1) * kc];
            let s_w = per_channel_scale(row);
            for (j, &w) in row.iter().enumerate() {
                wq[f * kc + j] = (w / s_w).round().clamp(-127.0, 127.0) as i8;
            }
            bq[f] = (biases[f] / (in_q.scale * s_w)).round() as i32;
            mult.push(quantize_multiplier(
                f64::from(in_q.scale) * f64::from(s_w) / f64::from(out_q.scale),
            ));
        }
        let q = QConv1d {
            time,
            in_ch,
            filters,
            kernel,
            w: wq,
            bias: bq,
            mult,
            input_q: in_q,
            output_q: out_q,
            relu: fuse_relu,
        };
        return Ok((QLayer::Conv1d(q), outs, out_q));
    }

    if let Some(pool) = layer.as_any().downcast_ref::<MaxPool1d>() {
        let q = QMaxPool {
            time: pool.in_time(),
            ch: pool.channels(),
            pool: pool.pool(),
        };
        let outs = run_float(layer, acts, fuse_relu);
        // Max pooling preserves scale/zero-point.
        return Ok((QLayer::MaxPool(q), outs, in_q));
    }

    if layer.as_any().is::<SplitConcat>() {
        return quantize_split(layer, acts, in_q, fuse_relu);
    }

    Err(NnError::InvalidLayer {
        layer: "quantize",
        reason: format!("layer kind '{}' is not quantizable", layer.kind()),
    })
}

fn quantize_split(
    layer: &mut dyn Layer,
    acts: &[Vec<f32>],
    in_q: ActQuant,
    fuse_relu: bool,
) -> Result<QuantizedPiece, NnError> {
    if fuse_relu {
        return Err(NnError::InvalidLayer {
            layer: "split_concat",
            reason: "relu directly after concat is not supported".to_string(),
        });
    }
    let split = layer
        .as_any_mut()
        .downcast_mut::<SplitConcat>()
        .expect("checked by caller");
    let time = split.in_time();
    let in_ch = split.in_channels();

    // Gather per-branch inputs first (immutably), then process branches.
    let n_branches = split.branches().len();
    let mut branch_inputs: Vec<Vec<Vec<f32>>> = Vec::with_capacity(n_branches);
    for bi in 0..n_branches {
        branch_inputs.push(acts.iter().map(|x| split.gather(x, bi)).collect());
    }

    let mut qbranches = Vec::with_capacity(n_branches);
    let mut branch_outs: Vec<Vec<Vec<f32>>> = Vec::with_capacity(n_branches);
    let mut branch_qs: Vec<ActQuant> = Vec::with_capacity(n_branches);
    for (bi, branch) in split.branches_mut().iter_mut().enumerate() {
        let channels = branch.channels().to_vec();
        let mut bacts = branch_inputs[bi].clone();
        let mut bq = in_q;
        let mut blayers: Vec<QLayer> = Vec::new();
        let layers = branch.layers_mut();
        let m = layers.len();
        let mut j = 0;
        while j < m {
            let fuse = j + 1 < m && layers[j + 1].as_any().is::<Relu>();
            let (ql, outs, oq) = quantize_layer(layers[j].as_mut(), &bacts, bq, fuse)?;
            blayers.push(ql);
            bacts = outs;
            bq = oq;
            j += if fuse { 2 } else { 1 };
        }
        branch_outs.push(bacts);
        branch_qs.push(bq);
        qbranches.push((channels, blayers));
    }

    // Shared concat scale across all branch outputs.
    let mut omin = f32::MAX;
    let mut omax = f32::MIN;
    for bo in &branch_outs {
        let (lo, hi) = range_of(bo);
        omin = omin.min(lo);
        omax = omax.max(hi);
    }
    let out_q = ActQuant::from_range(omin, omax);

    let branches = qbranches
        .into_iter()
        .zip(branch_qs)
        .map(|((channels, layers), bq)| QBranch {
            channels,
            layers,
            mult: quantize_multiplier(f64::from(bq.scale) / f64::from(out_q.scale)),
            branch_zp: bq.zero_point,
        })
        .collect();

    // Float outputs for downstream calibration: concatenation.
    let outs: Vec<Vec<f32>> = (0..acts.len())
        .map(|s| {
            let mut v = Vec::new();
            for bo in &branch_outs {
                v.extend_from_slice(&bo[s]);
            }
            v
        })
        .collect();

    let q = QSplitConcat {
        time,
        in_ch,
        branches,
        output_q: out_q,
    };
    Ok((QLayer::SplitConcat(q), outs, out_q))
}

/// Symmetric per-channel weight scale: `max |w| / 127`.
fn per_channel_scale(row: &[f32]) -> f32 {
    let max_abs = row.iter().fold(0.0f32, |a, &w| a.max(w.abs()));
    (max_abs / 127.0).max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;

    fn calib(n: usize, len: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 2000) as f32 / 1000.0 - 1.0
        };
        (0..n).map(|_| (0..len).map(|_| next()).collect()).collect()
    }

    #[test]
    fn act_quant_roundtrips_within_half_scale() {
        let q = ActQuant::from_range(-2.0, 6.0);
        for &x in &[-2.0f32, -1.0, 0.0, 0.001, 3.0, 6.0] {
            let back = q.dequantize(q.quantize(x));
            assert!((back - x).abs() <= q.scale * 0.51, "{x} -> {back}");
        }
        // Zero is exactly representable.
        assert_eq!(q.dequantize(q.quantize(0.0)), 0.0);
    }

    #[test]
    fn act_quant_clamps_outliers() {
        let q = ActQuant::from_range(0.0, 1.0);
        assert_eq!(q.quantize(100.0), 127);
        assert_eq!(q.quantize(-100.0), -128);
    }

    #[test]
    fn multiplier_decomposition_reconstructs() {
        for &m in &[0.5f64, 0.001, 0.9999, 0.25, 1.7, 3.3e-5] {
            let (m0, shift) = quantize_multiplier(m);
            let back = f64::from(m0) / f64::from(1u32 << 31) / 2f64.powi(shift);
            assert!((back - m).abs() < 1e-6 * m, "{m} -> {back}");
            assert!(m0 >= 1 << 30 && i64::from(m0) < 1i64 << 31);
        }
    }

    #[test]
    fn apply_multiplier_scales_accumulator() {
        let (m0, shift) = quantize_multiplier(0.25);
        assert_eq!(apply_multiplier(100, m0, shift), 25);
        assert_eq!(apply_multiplier(-100, m0, shift), -25);
        assert_eq!(apply_multiplier(0, m0, shift), 0);
    }

    #[test]
    fn quantized_dense_matches_float_closely() {
        let mut net = Network::builder(vec![16])
            .dense(8)
            .unwrap()
            .relu()
            .dense(1)
            .unwrap()
            .build(5);
        let data = calib(64, 16, 3);
        let q = QuantizedNetwork::from_network(&mut net, &data).unwrap();
        for x in &data {
            let fl = net.forward(x)[0];
            let ql = q.forward_logit(x);
            assert!((fl - ql).abs() < 0.15, "float {fl} vs quant {ql}");
        }
    }

    #[test]
    fn quantized_cnn_classification_agrees_with_float() {
        // The paper's structure in miniature.
        let branch = |sel: Vec<usize>| {
            (
                sel,
                Network::builder(vec![10, 3])
                    .conv1d(4, 3)
                    .unwrap()
                    .relu()
                    .maxpool(2)
                    .unwrap(),
            )
        };
        let mut net = Network::builder(vec![10, 9])
            .split(vec![
                branch(vec![0, 1, 2]),
                branch(vec![3, 4, 5]),
                branch(vec![6, 7, 8]),
            ])
            .unwrap()
            .dense(16)
            .unwrap()
            .relu()
            .dense(1)
            .unwrap()
            .build(11);
        let data = calib(128, 90, 7);
        let q = QuantizedNetwork::from_network(&mut net, &data).unwrap();
        let mut agree = 0;
        for x in &data {
            let fl = crate::loss::sigmoid(net.forward(x)[0]);
            let qp = q.predict_proba(x);
            assert!((fl - qp).abs() < 0.15, "prob {fl} vs {qp}");
            if (fl > 0.5) == (qp > 0.5) {
                agree += 1;
            }
        }
        assert!(agree >= 124, "agreement {agree}/128");
    }

    #[test]
    fn footprint_accounting_is_consistent() {
        let mut net = Network::builder(vec![16])
            .dense(8)
            .unwrap()
            .relu()
            .dense(1)
            .unwrap()
            .build(5);
        let data = calib(16, 16, 3);
        let q = QuantizedNetwork::from_network(&mut net, &data).unwrap();
        // Weights: 16×8 + 8×1 int8 + (8+1) i32 biases.
        assert_eq!(q.weight_bytes(), 16 * 8 + 8 + 4 * 9);
        assert!(q.flash_bytes() > q.weight_bytes());
        assert!(q.activation_arena_bytes() >= 16 + 8);
        assert_eq!(q.macs(), net.macs());
    }

    #[test]
    fn rejects_unquantizable_and_bad_inputs() {
        let mut lstm_net = Network::builder(vec![4, 2])
            .lstm(3)
            .unwrap()
            .dense(1)
            .unwrap()
            .build(1);
        let data = calib(4, 8, 5);
        assert!(QuantizedNetwork::from_network(&mut lstm_net, &data).is_err());

        let mut dense_net = Network::builder(vec![8]).dense(1).unwrap().build(1);
        assert!(QuantizedNetwork::from_network(&mut dense_net, &[]).is_err());
        let bad = vec![vec![0.0; 5]];
        assert!(QuantizedNetwork::from_network(&mut dense_net, &bad).is_err());
    }

    #[test]
    fn final_sigmoid_is_allowed_and_applied_in_float() {
        let mut net = Network::builder(vec![4])
            .dense(1)
            .unwrap()
            .sigmoid()
            .build(3);
        let data = calib(16, 4, 9);
        let q = QuantizedNetwork::from_network(&mut net, &data).unwrap();
        let p = q.predict_proba(&data[0]);
        assert!((0.0..=1.0).contains(&p));
    }
}
