//! Weight initialisation.
//!
//! Glorot (Xavier) uniform for sigmoid/tanh-facing layers and He uniform
//! for ReLU-facing layers, driven by a small deterministic PRNG so every
//! training run is reproducible from a seed.

/// A tiny deterministic PRNG (xorshift64*) for weight initialisation.
///
/// Kept separate from the data-generation RNG so model init and dataset
/// noise never entangle.
#[derive(Debug, Clone)]
pub struct InitRng {
    state: u64,
}

impl InitRng {
    /// Creates a generator from a seed (0 is remapped internally).
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed | 0x9E37_79B9_0000_0001,
        }
    }

    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f32` in `[-1, 1)`.
    pub fn uniform_sym(&mut self) -> f32 {
        let v = (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32; // [0,1)
        2.0 * v - 1.0
    }

    /// Uniform in `[-limit, limit)`.
    pub fn uniform(&mut self, limit: f32) -> f32 {
        self.uniform_sym() * limit
    }
}

/// Glorot/Xavier uniform initialisation: `limit = sqrt(6 / (fan_in + fan_out))`.
pub fn glorot_uniform(rng: &mut InitRng, fan_in: usize, fan_out: usize, n: usize) -> Vec<f32> {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    (0..n).map(|_| rng.uniform(limit)).collect()
}

/// He uniform initialisation: `limit = sqrt(6 / fan_in)` — preferred in
/// front of ReLU activations.
pub fn he_uniform(rng: &mut InitRng, fan_in: usize, n: usize) -> Vec<f32> {
    let limit = (6.0 / fan_in as f32).sqrt();
    (0..n).map(|_| rng.uniform(limit)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = InitRng::new(3);
        let mut b = InitRng::new(3);
        for _ in 0..64 {
            assert_eq!(a.uniform_sym(), b.uniform_sym());
        }
        let mut c = InitRng::new(4);
        assert_ne!(a.uniform_sym(), c.uniform_sym());
    }

    #[test]
    fn glorot_respects_limit_and_varies() {
        let mut rng = InitRng::new(1);
        let w = glorot_uniform(&mut rng, 100, 50, 1000);
        let limit = (6.0f32 / 150.0).sqrt();
        assert!(w.iter().all(|x| x.abs() <= limit));
        let mean: f32 = w.iter().sum::<f32>() / 1000.0;
        assert!(mean.abs() < 0.02, "mean {mean}");
        let distinct: std::collections::BTreeSet<i32> =
            w.iter().map(|x| (x * 1e6) as i32).collect();
        assert!(distinct.len() > 900);
    }

    #[test]
    fn he_limit_larger_than_glorot_for_same_fan_in() {
        let mut r1 = InitRng::new(1);
        let mut r2 = InitRng::new(1);
        let g = glorot_uniform(&mut r1, 64, 64, 500);
        let h = he_uniform(&mut r2, 64, 500);
        let max_g = g.iter().fold(0.0f32, |a, x| a.max(x.abs()));
        let max_h = h.iter().fold(0.0f32, |a, x| a.max(x.abs()));
        assert!(max_h > max_g);
    }

    #[test]
    fn zero_seed_works() {
        let mut rng = InitRng::new(0);
        let v: Vec<f32> = (0..10).map(|_| rng.uniform_sym()).collect();
        assert!(v.iter().any(|x| *x != 0.0));
    }
}
