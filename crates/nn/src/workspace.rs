//! Allocation-free scalar inference over reusable scratch buffers.
//!
//! [`Network::forward`] allocates a fresh activation vector per layer —
//! fine for training, wasteful on the streaming hot path where the
//! detector classifies a window every hop. [`Workspace`] owns a small
//! set of ping-pong buffers whose capacity grows to the network's
//! widest activation on the first call and is reused afterwards, so a
//! steady-state classification performs **zero** heap allocations
//! (`tests/noop_overhead.rs` proves this with a counting allocator).
//!
//! [`Network::infer_scalar`] walks the layer chain as an interpreter,
//! peephole-fusing `Conv1d → Relu → MaxPool1d` triples (both at the top
//! level and inside [`SplitConcat`] branches) into the single
//! [`kernels::fused_conv_relu_maxpool`] kernel. Every step is
//! bit-identical to the layer it replaces — the fused and blocked
//! kernels preserve the naive accumulation order exactly — so incident
//! replay and the traced forward see the same bits either way.
//!
//! Architectures the interpreter does not cover (LSTM, ConvLSTM, nested
//! splits, multi-output heads) return `None`; callers fall back to the
//! allocating [`Network::forward`].

use crate::kernels;
use crate::layers::{Conv1d, Dense, Layer, MaxPool1d, Relu, Sigmoid, SplitConcat};
use crate::network::{BranchStat, Network};
use std::sync::OnceLock;

/// Interned trace span names for the forward-pass timeline. Initialised
/// on the first *armed* span (via `trace_span!`'s armed check), so the
/// disarmed hot path never touches the interner and the armed
/// steady-state path performs zero allocations per span. Only the
/// whole-pass `nn.infer` span records in coarse armed mode; per-kernel
/// spans need `prefall_trace::set_detail(true)` — inside a ~30 µs
/// forward pass the extra events would otherwise blow the ≤ 3 % armed
/// overhead budget.
struct TraceNames {
    infer: prefall_trace::NameId,
    split: prefall_trace::NameId,
    fused: prefall_trace::NameId,
    dense: prefall_trace::NameId,
    relu: prefall_trace::NameId,
    sigmoid: prefall_trace::NameId,
    maxpool: prefall_trace::NameId,
    conv: prefall_trace::NameId,
}

fn trace_names() -> &'static TraceNames {
    static NAMES: OnceLock<TraceNames> = OnceLock::new();
    NAMES.get_or_init(|| TraceNames {
        infer: prefall_trace::intern("nn.infer"),
        split: prefall_trace::intern("nn.split"),
        fused: prefall_trace::intern("nn.fused_conv_relu_pool"),
        dense: prefall_trace::intern("nn.dense"),
        relu: prefall_trace::intern("nn.relu"),
        sigmoid: prefall_trace::intern("nn.sigmoid"),
        maxpool: prefall_trace::intern("nn.maxpool"),
        conv: prefall_trace::intern("nn.conv"),
    })
}

/// Reusable scratch buffers for [`Network::infer_scalar`].
///
/// One workspace serves any number of networks; buffers grow to the
/// largest activation seen and keep their capacity. Not `Sync` — give
/// each thread its own.
#[derive(Debug, Default, Clone)]
pub struct Workspace {
    buf_a: Vec<f32>,
    buf_b: Vec<f32>,
    gather: Vec<f32>,
    branch_a: Vec<f32>,
    branch_b: Vec<f32>,
}

impl Workspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-grows every buffer to hold `len` values, so the first
    /// inference is allocation-free too.
    pub fn reserve(&mut self, len: usize) {
        for buf in [
            &mut self.buf_a,
            &mut self.buf_b,
            &mut self.gather,
            &mut self.branch_a,
            &mut self.branch_b,
        ] {
            if buf.capacity() < len {
                buf.reserve(len - buf.len());
            }
        }
    }
}

/// Applies one supported layer (or a fused triple) from `rest`, reading
/// `cur` and writing `nxt`. Returns how many layers were consumed, or
/// `None` when `rest[0]` is not supported by the interpreter.
fn step(rest: &[Box<dyn Layer>], cur: &[f32], nxt: &mut Vec<f32>) -> Option<usize> {
    // Peephole: Conv1d → Relu → MaxPool1d collapses into the fused
    // kernel (bit-identical to running the three layers in sequence).
    if rest.len() >= 3 {
        if let (Some(conv), Some(_), Some(pool)) = (
            rest[0].as_any().downcast_ref::<Conv1d>(),
            rest[1].as_any().downcast_ref::<Relu>(),
            rest[2].as_any().downcast_ref::<MaxPool1d>(),
        ) {
            if pool.channels() == conv.filters()
                && pool.in_time() == conv.out_time()
                && rest[1].input_len() == conv.output_len()
            {
                let _span = prefall_trace::trace_detail_span!(trace_names().fused);
                nxt.resize(rest[2].output_len(), 0.0);
                // A current cached pack keeps the hot path
                // allocation-free; a stale/absent one falls back to the
                // packing wrapper (bit-identical, allocates the pack).
                if let Some(packed) = conv.fresh_pack() {
                    kernels::fused_conv_relu_maxpool_packed(
                        cur,
                        conv.weights(),
                        packed,
                        conv.biases(),
                        conv.in_time(),
                        conv.in_channels(),
                        conv.filters(),
                        conv.kernel(),
                        pool.pool(),
                        nxt,
                    );
                } else {
                    kernels::fused_conv_relu_maxpool(
                        cur,
                        conv.weights(),
                        conv.biases(),
                        conv.in_time(),
                        conv.in_channels(),
                        conv.filters(),
                        conv.kernel(),
                        pool.pool(),
                        nxt,
                    );
                }
                return Some(3);
            }
        }
    }
    let layer = &rest[0];
    if let Some(d) = layer.as_any().downcast_ref::<Dense>() {
        let _span = prefall_trace::trace_detail_span!(trace_names().dense);
        nxt.resize(d.out_len(), 0.0);
        if let Some(packed) = d.fresh_pack() {
            kernels::dense_forward_packed(cur, d.weights(), packed, d.biases(), nxt);
        } else {
            kernels::dense_forward(cur, d.weights(), d.biases(), nxt);
        }
        return Some(1);
    }
    if layer.as_any().downcast_ref::<Relu>().is_some() {
        let _span = prefall_trace::trace_detail_span!(trace_names().relu);
        nxt.clear();
        nxt.extend(cur.iter().map(|&x| x.max(0.0)));
        return Some(1);
    }
    if layer.as_any().downcast_ref::<Sigmoid>().is_some() {
        let _span = prefall_trace::trace_detail_span!(trace_names().sigmoid);
        nxt.clear();
        nxt.extend(cur.iter().map(|&x| crate::layers::scalar_sigmoid(x)));
        return Some(1);
    }
    if let Some(p) = layer.as_any().downcast_ref::<MaxPool1d>() {
        let _span = prefall_trace::trace_detail_span!(trace_names().maxpool);
        nxt.resize(p.output_len(), 0.0);
        kernels::maxpool_forward(cur, p.channels(), p.pool(), nxt);
        return Some(1);
    }
    if let Some(conv) = layer.as_any().downcast_ref::<Conv1d>() {
        let _span = prefall_trace::trace_detail_span!(trace_names().conv);
        nxt.resize(conv.output_len(), 0.0);
        if kernels::reference_kernels() {
            kernels::conv1d_reference(
                cur,
                conv.weights(),
                conv.biases(),
                conv.in_time(),
                conv.in_channels(),
                conv.filters(),
                conv.kernel(),
                nxt,
            );
        } else {
            kernels::conv1d_blocked(
                cur,
                conv.weights(),
                conv.biases(),
                conv.in_time(),
                conv.in_channels(),
                conv.filters(),
                conv.kernel(),
                nxt,
            );
        }
        return Some(1);
    }
    None
}

/// Runs a branch layer chain over ping-pong buffers with the input in
/// `a`. Returns `Some(true)` when the result lands in `a`,
/// `Some(false)` for `b`, `None` on an unsupported layer.
fn run_chain(layers: &[Box<dyn Layer>], a: &mut Vec<f32>, b: &mut Vec<f32>) -> Option<bool> {
    let mut in_a = true;
    let mut i = 0;
    while i < layers.len() {
        let consumed = if in_a {
            step(&layers[i..], a, b)?
        } else {
            step(&layers[i..], b, a)?
        };
        i += consumed;
        in_a = !in_a;
    }
    Some(in_a)
}

/// Gathers the selected channels of `input` for one branch into a
/// reusable buffer — mirrors [`SplitConcat::gather`] without
/// allocating.
fn gather_into(split: &SplitConcat, input: &[f32], branch: usize, out: &mut Vec<f32>) {
    out.clear();
    let sel = split.branches()[branch].channels();
    let c = split.in_channels();
    for t in 0..split.in_time() {
        let row = &input[t * c..(t + 1) * c];
        for &ch in sel {
            out.push(row[ch]);
        }
    }
}

impl Network {
    /// Single-output inference through the workspace interpreter:
    /// bit-identical to [`Network::forward`] but immutable (no layer
    /// caches touched) and allocation-free once the workspace has
    /// warmed up.
    ///
    /// Returns `None` when the architecture contains a layer the
    /// interpreter does not support (LSTM, ConvLSTM, nested splits) or
    /// the output is not a single scalar — callers fall back to
    /// [`Network::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` does not match the input shape.
    pub fn infer_scalar(&self, input: &[f32], ws: &mut Workspace) -> Option<f32> {
        self.infer_impl(input, ws, None)
    }

    /// [`Network::infer_scalar`] that additionally taps the first
    /// [`SplitConcat`]'s per-branch outputs, exactly as
    /// [`Network::forward_traced_into`] does. `stats` is cleared first
    /// and reuses its capacity.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` does not match the input shape.
    pub fn infer_scalar_traced(
        &self,
        input: &[f32],
        ws: &mut Workspace,
        stats: &mut Vec<BranchStat>,
    ) -> Option<f32> {
        stats.clear();
        self.infer_impl(input, ws, Some(stats))
    }

    fn infer_impl(
        &self,
        input: &[f32],
        ws: &mut Workspace,
        mut stats: Option<&mut Vec<BranchStat>>,
    ) -> Option<f32> {
        if self.output_len() != 1 {
            return None;
        }
        assert_eq!(input.len(), self.input_len(), "network input length");
        let _infer_span = prefall_trace::trace_span!(trace_names().infer);
        let layers = self.layers();
        let Workspace {
            buf_a,
            buf_b,
            gather,
            branch_a,
            branch_b,
        } = ws;
        buf_a.clear();
        buf_a.extend_from_slice(input);
        let mut in_a = true;
        let mut i = 0;
        while i < layers.len() {
            if let Some(split) = layers[i].as_any().downcast_ref::<SplitConcat>() {
                let (cur, nxt) = if in_a {
                    (&*buf_a, &mut *buf_b)
                } else {
                    (&*buf_b, &mut *buf_a)
                };
                let _split_span = prefall_trace::trace_detail_span!(trace_names().split);
                nxt.clear();
                let tap = stats.as_deref().is_some_and(|s| s.is_empty());
                for (bi, branch) in split.branches().iter().enumerate() {
                    gather_into(split, cur, bi, gather);
                    branch_a.clear();
                    branch_a.extend_from_slice(gather);
                    let res_in_a = run_chain(branch.layers(), branch_a, branch_b)?;
                    let out = if res_in_a { &*branch_a } else { &*branch_b };
                    if tap {
                        if let Some(s) = stats.as_deref_mut() {
                            s.push(BranchStat::from_slice(out));
                        }
                    }
                    nxt.extend_from_slice(out);
                }
                in_a = !in_a;
                i += 1;
                continue;
            }
            let consumed = if in_a {
                step(&layers[i..], buf_a, buf_b)?
            } else {
                step(&layers[i..], buf_b, buf_a)?
            };
            i += consumed;
            in_a = !in_a;
        }
        let out = if in_a { &*buf_a } else { &*buf_b };
        debug_assert_eq!(out.len(), 1);
        Some(out[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cnn_like() -> Network {
        let branch = |sel: Vec<usize>| {
            (
                sel,
                Network::builder(vec![10, 3])
                    .conv1d(5, 3)
                    .unwrap()
                    .relu()
                    .maxpool(2)
                    .unwrap(),
            )
        };
        Network::builder(vec![10, 9])
            .split(vec![
                branch(vec![0, 1, 2]),
                branch(vec![3, 4, 5]),
                branch(vec![6, 7, 8]),
            ])
            .unwrap()
            .dense(16)
            .unwrap()
            .relu()
            .dense(1)
            .unwrap()
            .build(42)
    }

    fn wave(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.37).sin() * 1.5).collect()
    }

    #[test]
    fn infer_scalar_is_bit_identical_to_forward() {
        let mut net = cnn_like();
        let x = wave(net.input_len());
        let want = net.forward(&x)[0];
        let mut ws = Workspace::new();
        let got = net.infer_scalar(&x, &mut ws).expect("supported");
        assert_eq!(want.to_bits(), got.to_bits());
        // And under the reference-kernel switch.
        kernels::set_reference_kernels(true);
        let got_ref = net.infer_scalar(&x, &mut ws).expect("supported");
        kernels::set_reference_kernels(false);
        assert_eq!(want.to_bits(), got_ref.to_bits());
    }

    #[test]
    fn infer_scalar_traced_matches_forward_traced() {
        let mut net = cnn_like();
        let x = wave(net.input_len());
        let (out, want_stats) = net.forward_traced(&x);
        let mut ws = Workspace::new();
        let mut stats = Vec::new();
        let got = net
            .infer_scalar_traced(&x, &mut ws, &mut stats)
            .expect("supported");
        assert_eq!(out[0].to_bits(), got.to_bits());
        assert_eq!(stats.len(), want_stats.len());
        for (a, b) in stats.iter().zip(&want_stats) {
            assert_eq!(a.l2.to_bits(), b.l2.to_bits());
            assert_eq!(a.mean_abs.to_bits(), b.mean_abs.to_bits());
            assert_eq!(a.peak.to_bits(), b.peak.to_bits());
            assert_eq!(a.output_len, b.output_len);
        }
    }

    #[test]
    fn plain_stacks_work_without_fusion() {
        // MLP: dense/relu/dense/sigmoid.
        let mut mlp = Network::builder(vec![12])
            .dense(7)
            .unwrap()
            .relu()
            .dense(1)
            .unwrap()
            .sigmoid()
            .build(3);
        let x = wave(12);
        let want = mlp.forward(&x)[0];
        let mut ws = Workspace::new();
        let got = mlp.infer_scalar(&x, &mut ws).expect("supported");
        assert_eq!(want.to_bits(), got.to_bits());

        // Sequential conv stack without a split, including a lone
        // maxpool not preceded by relu (fusion must not fire).
        let mut cnn = Network::builder(vec![12, 2])
            .conv1d(4, 3)
            .unwrap()
            .maxpool(2)
            .unwrap()
            .conv1d(3, 2)
            .unwrap()
            .relu()
            .maxpool(2)
            .unwrap()
            .dense(1)
            .unwrap()
            .build(9);
        let x = wave(24);
        let want = cnn.forward(&x)[0];
        let got = cnn.infer_scalar(&x, &mut ws).expect("supported");
        assert_eq!(want.to_bits(), got.to_bits());
    }

    #[test]
    fn armed_inference_decomposes_into_layer_spans() {
        let net = cnn_like();
        let x = wave(net.input_len());
        let mut ws = Workspace::new();
        let _ = prefall_trace::drain(); // isolate from other tests
        prefall_trace::arm(4096);
        prefall_trace::set_detail(true); // per-kernel spans are opt-in
        let _ = net.infer_scalar(&x, &mut ws).expect("supported");
        prefall_trace::disarm();
        let attr = prefall_trace::drain().attribution();
        // cnn_like: split(3 × fused conv/relu/pool) → dense → relu → dense.
        assert!(attr.total("nn.infer").count >= 1);
        assert!(attr.total("nn.split").count >= 1);
        assert!(attr.total("nn.fused_conv_relu_pool").count >= 3);
        assert!(attr.total("nn.dense").count >= 2);
        // Layer time nests inside the infer span.
        let infer = attr.total("nn.infer");
        assert!(infer.self_ns <= infer.total_ns);
    }

    #[test]
    fn unsupported_architectures_return_none() {
        let mut lstm = Network::builder(vec![8, 3])
            .lstm(4)
            .unwrap()
            .dense(1)
            .unwrap()
            .build(1);
        let x = wave(24);
        let mut ws = Workspace::new();
        assert!(lstm.infer_scalar(&x, &mut ws).is_none());
        // Fallback still works.
        assert_eq!(lstm.forward(&x).len(), 1);

        // Multi-output head.
        let two = Network::builder(vec![4]).dense(2).unwrap().build(1);
        assert!(two.infer_scalar(&[0.0; 4], &mut ws).is_none());
    }
}
