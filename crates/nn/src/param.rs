//! Trainable parameter storage.
//!
//! Every layer owns its parameters as [`Param`] blocks: the weights, the
//! gradient accumulator, and two optimizer-state slots (momentum /
//! first-and-second Adam moments). Optimizers and the serializer walk a
//! network's parameters through [`crate::network::Network::visit_params`].

/// One block of trainable parameters (e.g. a layer's weight matrix or
/// bias vector) together with its gradient and optimizer state.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Stable name for serialization, e.g. `"dense0.w"`.
    pub name: String,
    /// The parameter values.
    pub w: Vec<f32>,
    /// Gradient accumulator (same length as `w`).
    pub g: Vec<f32>,
    /// Optimizer slot 1 (momentum / Adam m), lazily sized.
    pub s1: Vec<f32>,
    /// Optimizer slot 2 (Adam v), lazily sized.
    pub s2: Vec<f32>,
}

impl Param {
    /// Creates a parameter block from initial values.
    pub fn new(name: impl Into<String>, w: Vec<f32>) -> Self {
        let g = vec![0.0; w.len()];
        Self {
            name: name.into(),
            w,
            g,
            s1: Vec::new(),
            s2: Vec::new(),
        }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// `true` for an empty block.
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// Zeroes the gradient accumulator.
    pub fn zero_grad(&mut self) {
        for g in &mut self.g {
            *g = 0.0;
        }
    }

    /// Scales accumulated gradients (e.g. by `1/batch_size`).
    pub fn scale_grad(&mut self, k: f32) {
        for g in &mut self.g {
            *g *= k;
        }
    }

    /// Ensures the optimizer slots are allocated.
    pub fn ensure_state(&mut self) {
        if self.s1.len() != self.w.len() {
            self.s1 = vec![0.0; self.w.len()];
        }
        if self.s2.len() != self.w.len() {
            self.s2 = vec![0.0; self.w.len()];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grads() {
        let p = Param::new("w", vec![1.0, 2.0]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.g, vec![0.0, 0.0]);
        assert!(p.s1.is_empty());
    }

    #[test]
    fn zero_and_scale_grad() {
        let mut p = Param::new("w", vec![1.0; 3]);
        p.g = vec![2.0, 4.0, 6.0];
        p.scale_grad(0.5);
        assert_eq!(p.g, vec![1.0, 2.0, 3.0]);
        p.zero_grad();
        assert_eq!(p.g, vec![0.0; 3]);
    }

    #[test]
    fn ensure_state_sizes_slots() {
        let mut p = Param::new("w", vec![0.0; 5]);
        p.ensure_state();
        assert_eq!(p.s1.len(), 5);
        assert_eq!(p.s2.len(), 5);
    }
}
