//! Weight (de)serialisation to a compact binary blob.
//!
//! Format (little-endian):
//!
//! ```text
//! magic "PFNN" | u32 version | u32 n_blocks |
//!   per block: u32 name_len | name bytes | u32 len | f32 × len
//! ```

use crate::network::Network;
use crate::NnError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"PFNN";
const VERSION: u32 = 1;

/// Serialises a network's parameters.
pub fn save_weights(net: &mut Network) -> Bytes {
    let mut blocks: Vec<(String, Vec<f32>)> = Vec::new();
    net.visit_params(&mut |p| blocks.push((p.name.clone(), p.w.clone())));

    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(blocks.len() as u32);
    for (name, w) in blocks {
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name.as_bytes());
        buf.put_u32_le(w.len() as u32);
        for v in w {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Loads parameters saved by [`save_weights`] into a structurally
/// identical network.
///
/// # Errors
///
/// Returns [`NnError::WeightMismatch`] on a malformed blob or any
/// name/size disagreement with the target network.
pub fn load_weights(net: &mut Network, blob: &[u8]) -> Result<(), NnError> {
    let mut buf = blob;
    let fail = |reason: &str| NnError::WeightMismatch {
        reason: reason.to_string(),
    };
    if buf.remaining() < 12 || &buf[..4] != MAGIC {
        return Err(fail("bad magic"));
    }
    buf.advance(4);
    if buf.get_u32_le() != VERSION {
        return Err(fail("unsupported version"));
    }
    let n_blocks = buf.get_u32_le() as usize;

    let mut blocks: Vec<(String, Vec<f32>)> = Vec::with_capacity(n_blocks);
    for _ in 0..n_blocks {
        if buf.remaining() < 4 {
            return Err(fail("truncated blob"));
        }
        let name_len = buf.get_u32_le() as usize;
        if buf.remaining() < name_len + 4 {
            return Err(fail("truncated name"));
        }
        let name =
            String::from_utf8(buf[..name_len].to_vec()).map_err(|_| fail("name is not utf-8"))?;
        buf.advance(name_len);
        let len = buf.get_u32_le() as usize;
        if buf.remaining() < len * 4 {
            return Err(fail("truncated weights"));
        }
        let mut w = Vec::with_capacity(len);
        for _ in 0..len {
            w.push(buf.get_f32_le());
        }
        blocks.push((name, w));
    }

    // Apply, verifying structure.
    let mut i = 0;
    let mut error: Option<NnError> = None;
    net.visit_params(&mut |p| {
        if error.is_some() {
            return;
        }
        match blocks.get(i) {
            Some((name, w)) if *name == p.name && w.len() == p.w.len() => {
                p.w.copy_from_slice(w);
            }
            Some((name, w)) => {
                error = Some(NnError::WeightMismatch {
                    reason: format!(
                        "block {i}: expected {} × {}, blob has {name} × {}",
                        p.name,
                        p.w.len(),
                        w.len()
                    ),
                });
            }
            None => {
                error = Some(NnError::WeightMismatch {
                    reason: format!("blob has too few blocks (network wants > {i})"),
                });
            }
        }
        i += 1;
    });
    if let Some(e) = error {
        return Err(e);
    }
    if i != blocks.len() {
        return Err(fail("blob has extra blocks"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;

    fn make_net(seed: u64) -> Network {
        Network::builder(vec![6])
            .dense(4)
            .unwrap()
            .relu()
            .dense(1)
            .unwrap()
            .build(seed)
    }

    #[test]
    fn roundtrip_preserves_behaviour() {
        let mut a = make_net(1);
        let blob = save_weights(&mut a);
        let mut b = make_net(999); // different init
        load_weights(&mut b, &blob).unwrap();
        let x = vec![0.3; 6];
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn rejects_corrupt_blobs() {
        let mut net = make_net(1);
        assert!(load_weights(&mut net, b"nope").is_err());
        let blob = save_weights(&mut net);
        let mut truncated = blob.to_vec();
        truncated.truncate(blob.len() - 5);
        assert!(load_weights(&mut net, &truncated).is_err());
        let mut bad_magic = blob.to_vec();
        bad_magic[0] = b'X';
        assert!(load_weights(&mut net, &bad_magic).is_err());
    }

    #[test]
    fn rejects_structural_mismatch() {
        let mut a = make_net(1);
        let blob = save_weights(&mut a);
        let mut different = Network::builder(vec![6]).dense(5).unwrap().build(1);
        assert!(load_weights(&mut different, &blob).is_err());
    }

    #[test]
    fn blob_size_is_reasonable() {
        let mut net = make_net(1);
        let blob = save_weights(&mut net);
        // 4 blocks (2 dense × w+b), parameters 6*4+4+4*1+1 = 33 floats.
        let float_bytes = 33 * 4;
        assert!(blob.len() >= float_bytes);
        assert!(blob.len() < float_bytes + 200, "blob {} bytes", blob.len());
    }
}
