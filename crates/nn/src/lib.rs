//! A from-scratch neural-network stack for the pre-impact fall-detection
//! reproduction.
//!
//! The paper builds its models in TensorFlow/Keras and deploys through
//! 8-bit post-training quantization. This crate reimplements the needed
//! subset natively:
//!
//! * [`layers`] — `Dense`, `Conv1d`, `MaxPool1d`, `Relu`, `Flatten`, the
//!   3-way [`layers::SplitConcat`] used by the paper's branch
//!   architecture, plus `Lstm` and `ConvLstm` for the baselines.
//! * [`network`] — sequential composition with shape checking at build
//!   time, single-sample forward/backward (mini-batching lives in
//!   [`train`]).
//! * [`loss`] — weighted binary cross-entropy on logits (class weights +
//!   output-bias initialisation are how the paper fights the ~3 % class
//!   imbalance).
//! * [`optim`] — SGD with momentum and Adam.
//! * [`train`] — mini-batch training with shuffling, validation-loss
//!   early stopping (patience, restore-best), epoch history.
//! * [`quant`] — TFLite-style int8 post-training quantization with
//!   per-channel symmetric weights, per-tensor affine activations and
//!   i32 accumulators, plus flash/RAM footprint accounting.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), prefall_nn::NnError> {
//! let mut net = prefall_nn::network::Network::builder(vec![4])
//!     .dense(8)?
//!     .relu()
//!     .dense(1)?
//!     .build(7);
//! let out = net.forward(&[0.1, -0.2, 0.3, 0.4]);
//! assert_eq!(out.len(), 1);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod init;
pub mod kernels;
pub mod layers;
pub mod loss;
pub mod network;
pub mod optim;
pub mod param;
pub mod quant;
pub mod serialize;
pub mod train;
pub mod workspace;

mod error;

pub use error::NnError;
