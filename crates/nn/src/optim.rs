//! Optimizers: SGD with momentum and Adam.

use crate::param::Param;
use serde::{Deserialize, Serialize};

/// Which optimizer a training run uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Stochastic gradient descent with momentum.
    Sgd {
        /// Momentum coefficient (0 disables momentum).
        momentum: f32,
    },
    /// Adam with the standard defaults `β₁ = 0.9`, `β₂ = 0.999`.
    Adam,
}

/// An optimizer instance holding hyper-parameters and the step counter.
///
/// Per-parameter state (momentum / moments) lives inside each
/// [`Param`]'s `s1`/`s2` slots, so one optimizer can drive any network.
#[derive(Debug, Clone)]
pub struct Optimizer {
    kind: OptimizerKind,
    lr: f32,
    t: u64,
}

impl Optimizer {
    /// Creates an optimizer.
    ///
    /// # Panics
    ///
    /// Panics unless `lr` is positive and finite.
    pub fn new(kind: OptimizerKind, lr: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        Self { kind, lr, t: 0 }
    }

    /// Adam with the given learning rate.
    pub fn adam(lr: f32) -> Self {
        Self::new(OptimizerKind::Adam, lr)
    }

    /// SGD with momentum 0.9.
    pub fn sgd(lr: f32) -> Self {
        Self::new(OptimizerKind::Sgd { momentum: 0.9 }, lr)
    }

    /// The learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Advances the global step counter; call once per mini-batch before
    /// stepping parameters.
    pub fn begin_step(&mut self) {
        self.t += 1;
    }

    /// Applies one update to a parameter block using its accumulated
    /// gradient. The gradient is left untouched (zero it per batch).
    pub fn step(&self, p: &mut Param) {
        match self.kind {
            OptimizerKind::Sgd { momentum } => {
                if momentum == 0.0 {
                    for (w, &g) in p.w.iter_mut().zip(&p.g) {
                        *w -= self.lr * g;
                    }
                } else {
                    p.ensure_state();
                    // Lockstep iterators instead of indexing: no bounds
                    // checks, so the loop auto-vectorises. Every element
                    // computes the exact same scalar expression — the
                    // update is bit-identical to the indexed loop.
                    for ((w, &g), s1) in p.w.iter_mut().zip(&p.g).zip(&mut p.s1) {
                        *s1 = momentum * *s1 + g;
                        *w -= self.lr * *s1;
                    }
                }
            }
            OptimizerKind::Adam => {
                p.ensure_state();
                let (b1, b2, eps) = (0.9f32, 0.999f32, 1e-8f32);
                let t = self.t.max(1) as i32;
                let bc1 = 1.0 - b1.powi(t);
                let bc2 = 1.0 - b2.powi(t);
                // Lockstep iterators (see the SGD arm): elementwise and
                // bit-identical, but free of bounds checks so the
                // sqrt/div chain vectorises.
                for (((w, &g), s1), s2) in p.w.iter_mut().zip(&p.g).zip(&mut p.s1).zip(&mut p.s2) {
                    *s1 = b1 * *s1 + (1.0 - b1) * g;
                    *s2 = b2 * *s2 + (1.0 - b2) * g * g;
                    let m_hat = *s1 / bc1;
                    let v_hat = *s2 / bc2;
                    *w -= self.lr * m_hat / (v_hat.sqrt() + eps);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_descent(mut opt: Optimizer, steps: usize) -> f32 {
        // Minimise f(w) = (w - 3)², starting from 0.
        let mut p = Param::new("w", vec![0.0]);
        for _ in 0..steps {
            p.zero_grad();
            p.g[0] = 2.0 * (p.w[0] - 3.0);
            opt.begin_step();
            opt.step(&mut p);
        }
        p.w[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = quadratic_descent(
            Optimizer::new(OptimizerKind::Sgd { momentum: 0.0 }, 0.1),
            100,
        );
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let w = quadratic_descent(Optimizer::sgd(0.02), 200);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = quadratic_descent(Optimizer::adam(0.1), 500);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_first_step_size_is_lr() {
        // With bias correction, Adam's first step ≈ lr regardless of
        // gradient magnitude.
        let mut opt = Optimizer::adam(0.01);
        let mut p = Param::new("w", vec![0.0]);
        p.g[0] = 1234.0;
        opt.begin_step();
        opt.step(&mut p);
        assert!((p.w[0] + 0.01).abs() < 1e-4, "step {}", p.w[0]);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_bad_lr() {
        let _ = Optimizer::adam(0.0);
    }

    #[test]
    fn zero_gradient_is_fixed_point_for_sgd() {
        let mut opt = Optimizer::new(OptimizerKind::Sgd { momentum: 0.0 }, 0.1);
        let mut p = Param::new("w", vec![5.0]);
        opt.begin_step();
        opt.step(&mut p);
        assert_eq!(p.w[0], 5.0);
    }
}
