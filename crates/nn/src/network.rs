//! Sequential network composition with build-time shape checking.

use crate::init::InitRng;
use crate::layers::{
    Branch, Conv1d, ConvLstm, Dense, Layer, Lstm, MaxPool1d, Relu, Sigmoid, SplitConcat,
};
use crate::param::Param;
use crate::NnError;

/// Per-branch activation statistics from one forward pass through the
/// modality split ([`SplitConcat`]): the flight-recorder tap that lets
/// a trigger decision be attributed to the accel / gyro / Euler branch
/// that drove it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchStat {
    /// Flattened output length of the branch.
    pub output_len: u32,
    /// L2 norm of the branch's output activations.
    pub l2: f32,
    /// Mean absolute activation.
    pub mean_abs: f32,
    /// Largest absolute activation.
    pub peak: f32,
}

impl BranchStat {
    pub(crate) fn from_slice(xs: &[f32]) -> Self {
        let mut sq = 0.0f32;
        let mut abs = 0.0f32;
        let mut peak = 0.0f32;
        for &v in xs {
            sq += v * v;
            abs += v.abs();
            peak = peak.max(v.abs());
        }
        Self {
            output_len: xs.len() as u32,
            l2: sq.sqrt(),
            mean_abs: if xs.is_empty() {
                0.0
            } else {
                abs / xs.len() as f32
            },
            peak,
        }
    }

    /// Attribution shares (`l2_i / Σ l2`) for a set of branch stats.
    /// All-zero activations yield uniform shares.
    pub fn shares(stats: &[BranchStat]) -> Vec<f32> {
        let total: f32 = stats.iter().map(|s| s.l2).sum();
        if total > 0.0 {
            stats.iter().map(|s| s.l2 / total).collect()
        } else {
            vec![1.0 / stats.len().max(1) as f32; stats.len()]
        }
    }
}

/// A feed-forward network: a chain of layers whose shapes were validated
/// at build time.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), prefall_nn::NnError> {
/// use prefall_nn::network::Network;
///
/// // The paper's MLP baseline on a 20×9 segment.
/// let mut mlp = Network::builder(vec![20, 9])
///     .dense(64)?
///     .relu()
///     .dense(32)?
///     .relu()
///     .dense(1)?
///     .build(42);
/// let logit = mlp.forward(&vec![0.0; 180]);
/// assert_eq!(logit.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
    input_shape: Vec<usize>,
    seed: u64,
}

impl Network {
    /// Starts building a network for inputs of the given shape
    /// (`[features]` for flat inputs, `[time, channels]` for segments).
    pub fn builder(input_shape: Vec<usize>) -> NetworkBuilder {
        NetworkBuilder {
            shape: input_shape.clone(),
            input_shape,
            layers: Vec::new(),
            next_index: 0,
        }
    }

    /// Input shape the network was built for.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Flattened input length.
    pub fn input_len(&self) -> usize {
        self.input_shape.iter().product()
    }

    /// Flattened output length.
    pub fn output_len(&self) -> usize {
        self.layers
            .last()
            .map_or(self.input_len(), |l| l.output_len())
    }

    /// The seed the weights were initialised from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The layer chain.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable layer chain (used by the quantizer's calibration pass).
    pub(crate) fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Pre-builds the interleaved dense and conv weight packs —
    /// including inside [`SplitConcat`](crate::layers::SplitConcat)
    /// branches — so the immutable
    /// [`Network::infer_scalar`](crate::workspace) path can use the
    /// packed kernels without allocating. Call after the weights settle
    /// (post-training, or before an evaluation sweep); without it
    /// inference falls back to the unpacked — still bit-identical —
    /// kernels, which repack (and allocate) per call on the fused conv
    /// path.
    pub fn prepare_inference(&mut self) {
        fn prep(layers: &mut [Box<dyn Layer>]) {
            for layer in layers {
                if let Some(d) = layer.as_any_mut().downcast_mut::<crate::layers::Dense>() {
                    d.ensure_packed();
                } else if let Some(c) = layer.as_any_mut().downcast_mut::<crate::layers::Conv1d>() {
                    c.ensure_packed();
                } else if let Some(s) = layer
                    .as_any_mut()
                    .downcast_mut::<crate::layers::SplitConcat>()
                {
                    for branch in s.branches_mut() {
                        prep(branch.layers_mut());
                    }
                }
            }
        }
        prep(&mut self.layers);
    }

    /// Forward pass for one sample.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` does not match the input shape.
    pub fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.input_len(), "network input length");
        let mut x = input.to_vec();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Forward pass that additionally taps the first [`SplitConcat`]
    /// layer's per-branch outputs, returning one [`BranchStat`] per
    /// branch (empty for architectures without a modality split).
    ///
    /// The output is **bit-identical** to [`Network::forward`]: the
    /// trace only reads the intermediate activation buffer, it never
    /// re-orders or re-associates any arithmetic. Incident replay
    /// relies on this.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` does not match the input shape.
    pub fn forward_traced(&mut self, input: &[f32]) -> (Vec<f32>, Vec<BranchStat>) {
        let mut stats = Vec::new();
        let out = self.forward_traced_into(input, &mut stats);
        (out, stats)
    }

    /// [`Network::forward_traced`] writing the branch statistics into a
    /// caller-owned buffer (cleared first), so a streaming caller can
    /// reuse its capacity and stay allocation-free per window.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` does not match the input shape.
    pub fn forward_traced_into(&mut self, input: &[f32], stats: &mut Vec<BranchStat>) -> Vec<f32> {
        assert_eq!(input.len(), self.input_len(), "network input length");
        let mut x = input.to_vec();
        stats.clear();
        for layer in &mut self.layers {
            x = layer.forward(&x);
            if stats.is_empty() {
                if let Some(split) = layer.as_any().downcast_ref::<SplitConcat>() {
                    let mut offset = 0;
                    for b in split.branches() {
                        let len = b.output_len();
                        stats.push(BranchStat::from_slice(&x[offset..offset + len]));
                        offset += len;
                    }
                }
            }
        }
        x
    }

    /// Backward pass from an output gradient; accumulates parameter
    /// gradients and returns the input gradient.
    ///
    /// # Panics
    ///
    /// Panics if the gradient length mismatches or `forward` was not
    /// called first.
    pub fn backward(&mut self, grad_out: &[f32]) -> Vec<f32> {
        let mut g = grad_out.to_vec();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Visits every trainable parameter.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Zeroes all gradient accumulators.
    pub fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Scales all accumulated gradients (e.g. by `1/batch`).
    pub fn scale_grads(&mut self, k: f32) {
        self.visit_params(&mut |p| p.scale_grad(k));
    }

    /// Total number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Total forward multiply–accumulates (drives the MCU latency model).
    pub fn macs(&self) -> usize {
        self.layers.iter().map(|l| l.macs()).sum()
    }

    /// Sets the bias of the final layer (which must be a [`Dense`]) —
    /// the paper's output-bias initialisation `b = log(p/(1−p))`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] when the last layer is not
    /// dense or the bias length mismatches.
    pub fn set_output_bias(&mut self, bias: &[f32]) -> Result<(), NnError> {
        let last = self.layers.last_mut().ok_or(NnError::InvalidLayer {
            layer: "output",
            reason: "network has no layers".to_string(),
        })?;
        let out_len = last.output_len();
        if bias.len() != out_len {
            return Err(NnError::InvalidLayer {
                layer: "output",
                reason: format!("bias length {} != output length {out_len}", bias.len()),
            });
        }
        // Walk params to find the last dense bias by name suffix.
        let mut found = false;
        last.visit_params(&mut |p| {
            if p.name.ends_with(".b") && p.w.len() == bias.len() {
                p.w.copy_from_slice(bias);
                found = true;
            }
        });
        if found {
            Ok(())
        } else {
            Err(NnError::InvalidLayer {
                layer: "output",
                reason: "final layer has no bias parameter".to_string(),
            })
        }
    }

    /// Snapshots every parameter value (for early-stopping restore).
    pub fn snapshot(&mut self) -> Vec<Vec<f32>> {
        let mut out = Vec::new();
        self.visit_params(&mut |p| out.push(p.w.clone()));
        out
    }

    /// Restores parameter values from a snapshot taken on the same
    /// network.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot does not match the parameter structure.
    pub fn restore(&mut self, snapshot: &[Vec<f32>]) {
        let mut i = 0;
        self.visit_params(&mut |p| {
            assert!(i < snapshot.len(), "snapshot too short");
            assert_eq!(snapshot[i].len(), p.w.len(), "snapshot block size");
            p.w.copy_from_slice(&snapshot[i]);
            i += 1;
        });
        assert_eq!(i, snapshot.len(), "snapshot too long");
    }
}

/// Builder for [`Network`], tracking the running activation shape.
#[derive(Debug)]
pub struct NetworkBuilder {
    /// Running shape: `[len]` or `[time, channels]`.
    shape: Vec<usize>,
    input_shape: Vec<usize>,
    layers: Vec<Box<dyn Layer>>,
    next_index: usize,
}

impl NetworkBuilder {
    fn flat_len(&self) -> usize {
        self.shape.iter().product()
    }

    fn seq_dims(&self, layer: &'static str) -> Result<(usize, usize), NnError> {
        match self.shape[..] {
            [t, c] => Ok((t, c)),
            _ => Err(NnError::InvalidLayer {
                layer,
                reason: format!("requires a [time, channels] input, found {:?}", self.shape),
            }),
        }
    }

    fn bump(&mut self) -> usize {
        let i = self.next_index;
        self.next_index += 1;
        i
    }

    /// Appends a dense layer with `out` units (flattens the input).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] when `out == 0`.
    pub fn dense(mut self, out: usize) -> Result<Self, NnError> {
        if out == 0 {
            return Err(NnError::InvalidLayer {
                layer: "dense",
                reason: "output width must be positive".to_string(),
            });
        }
        let idx = self.bump();
        let layer = Dense::new(idx, self.flat_len(), out);
        self.layers.push(Box::new(layer));
        self.shape = vec![out];
        Ok(self)
    }

    /// Appends a ReLU activation.
    pub fn relu(mut self) -> Self {
        let len = self.flat_len();
        self.layers.push(Box::new(Relu::new(len)));
        self
    }

    /// Appends a sigmoid activation.
    pub fn sigmoid(mut self) -> Self {
        let len = self.flat_len();
        self.layers.push(Box::new(Sigmoid::new(len)));
        self
    }

    /// Appends a 1-D convolution over time.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] when the running shape is not
    /// `[time, channels]` or the kernel exceeds the window.
    pub fn conv1d(mut self, filters: usize, kernel: usize) -> Result<Self, NnError> {
        let (t, c) = self.seq_dims("conv1d")?;
        if kernel == 0 || kernel > t || filters == 0 {
            return Err(NnError::InvalidLayer {
                layer: "conv1d",
                reason: format!("filters {filters}, kernel {kernel} invalid for time {t}"),
            });
        }
        let idx = self.bump();
        let layer = Conv1d::new(idx, t, c, filters, kernel)?;
        self.shape = vec![layer.out_time(), filters];
        self.layers.push(Box::new(layer));
        Ok(self)
    }

    /// Appends max pooling over time.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] for a non-sequence shape or a
    /// pool width that exceeds the remaining time steps.
    pub fn maxpool(mut self, pool: usize) -> Result<Self, NnError> {
        let (t, c) = self.seq_dims("maxpool1d")?;
        if pool == 0 || pool > t {
            return Err(NnError::InvalidLayer {
                layer: "maxpool1d",
                reason: format!("pool {pool} invalid for time {t}"),
            });
        }
        let layer = MaxPool1d::new(t, c, pool);
        self.shape = vec![layer.out_time(), c];
        self.layers.push(Box::new(layer));
        Ok(self)
    }

    /// Appends an LSTM returning the last hidden state.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] for a non-sequence input.
    pub fn lstm(mut self, hidden: usize) -> Result<Self, NnError> {
        let (t, c) = self.seq_dims("lstm")?;
        if hidden == 0 {
            return Err(NnError::InvalidLayer {
                layer: "lstm",
                reason: "hidden size must be positive".to_string(),
            });
        }
        let idx = self.bump();
        self.layers.push(Box::new(Lstm::new(idx, t, c, hidden)));
        self.shape = vec![hidden];
        Ok(self)
    }

    /// Appends a ConvLSTM returning the flattened last hidden state.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] for a non-sequence input or an
    /// even kernel.
    pub fn conv_lstm(mut self, filters: usize, kernel: usize) -> Result<Self, NnError> {
        let (t, c) = self.seq_dims("convlstm")?;
        if filters == 0 || kernel.is_multiple_of(2) {
            return Err(NnError::InvalidLayer {
                layer: "convlstm",
                reason: format!("filters {filters}, kernel {kernel} (kernel must be odd)"),
            });
        }
        let idx = self.bump();
        self.layers
            .push(Box::new(ConvLstm::new(idx, t, c, filters, kernel)));
        self.shape = vec![c * filters];
        Ok(self)
    }

    /// Appends the paper's modality split: each `(channels, branch)` pair
    /// routes those input channels through the branch sub-network built
    /// from its own [`NetworkBuilder`] (whose input shape must be
    /// `[time, channels.len()]`).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] on any shape inconsistency.
    pub fn split(mut self, branches: Vec<(Vec<usize>, NetworkBuilder)>) -> Result<Self, NnError> {
        let (t, c) = self.seq_dims("split_concat")?;
        let mut built = Vec::with_capacity(branches.len());
        for (i, (sel, bb)) in branches.into_iter().enumerate() {
            if sel.iter().any(|&ch| ch >= c) {
                return Err(NnError::InvalidLayer {
                    layer: "split_concat",
                    reason: format!("branch {i} selects channel out of range (C = {c})"),
                });
            }
            if bb.input_shape != vec![t, sel.len()] {
                return Err(NnError::InvalidLayer {
                    layer: "split_concat",
                    reason: format!(
                        "branch {i} was built for input {:?}, selection provides [{t}, {}]",
                        bb.input_shape,
                        sel.len()
                    ),
                });
            }
            if bb.layers.is_empty() {
                return Err(NnError::InvalidLayer {
                    layer: "split_concat",
                    reason: format!("branch {i} has no layers"),
                });
            }
            // Namespace branch parameter names so parallel branches built
            // from independent builders stay distinct.
            let mut layers = bb.layers;
            for layer in &mut layers {
                layer.visit_params(&mut |p| p.name = format!("b{i}.{}", p.name));
            }
            built.push(Branch::new(sel, layers));
        }
        let layer = SplitConcat::new(t, c, built);
        self.shape = vec![layer.output_len()];
        self.layers.push(Box::new(layer));
        self.next_index += 100; // keep later param names distinct from branch names
        Ok(self)
    }

    /// Finalises the network, initialising all weights from `seed`.
    pub fn build(self, seed: u64) -> Network {
        let mut net = Network {
            layers: self.layers,
            input_shape: self.input_shape,
            seed,
        };
        let mut rng = InitRng::new(seed);
        for layer in &mut net.layers {
            layer.init_weights(&mut rng);
        }
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cnn() -> Network {
        let branch = |sel: Vec<usize>| {
            (
                sel,
                Network::builder(vec![8, 2])
                    .conv1d(3, 3)
                    .unwrap()
                    .relu()
                    .maxpool(2)
                    .unwrap(),
            )
        };
        Network::builder(vec![8, 4])
            .split(vec![branch(vec![0, 1]), branch(vec![2, 3])])
            .unwrap()
            .dense(8)
            .unwrap()
            .relu()
            .dense(1)
            .unwrap()
            .build(5)
    }

    #[test]
    fn builder_tracks_shapes() {
        let net = tiny_cnn();
        assert_eq!(net.input_len(), 32);
        assert_eq!(net.output_len(), 1);
        assert!(net.param_count() > 0);
        assert!(net.macs() > 0);
    }

    #[test]
    fn forward_traced_is_bit_identical_and_reports_branches() {
        let mut net = tiny_cnn();
        let x: Vec<f32> = (0..32).map(|i| (i as f32 * 0.17).sin()).collect();
        let plain = net.forward(&x);
        let (traced, stats) = net.forward_traced(&x);
        assert_eq!(plain, traced, "trace must not perturb the forward pass");
        assert_eq!(stats.len(), 2, "one stat per branch");
        for s in &stats {
            assert!(s.l2 >= 0.0 && s.peak >= 0.0 && s.mean_abs >= 0.0);
            assert!(s.output_len > 0);
        }
        let shares = BranchStat::shares(&stats);
        assert!((shares.iter().sum::<f32>() - 1.0).abs() < 1e-6);

        // An architecture without a split traces nothing.
        let mut mlp = Network::builder(vec![6]).dense(3).unwrap().build(1);
        let (_, stats) = mlp.forward_traced(&[0.1; 6]);
        assert!(stats.is_empty());
    }

    #[test]
    fn forward_backward_roundtrip() {
        let mut net = tiny_cnn();
        let x: Vec<f32> = (0..32).map(|i| (i as f32 * 0.2).sin()).collect();
        let y = net.forward(&x);
        assert_eq!(y.len(), 1);
        let gx = net.backward(&[1.0]);
        assert_eq!(gx.len(), 32);
        assert!(gx.iter().any(|&g| g != 0.0));
    }

    #[test]
    fn builder_rejects_bad_configs() {
        assert!(
            Network::builder(vec![10]).conv1d(4, 3).is_err(),
            "conv on flat"
        );
        assert!(
            Network::builder(vec![4, 2]).conv1d(4, 9).is_err(),
            "kernel too long"
        );
        assert!(
            Network::builder(vec![4, 2]).maxpool(5).is_err(),
            "pool too long"
        );
        assert!(Network::builder(vec![10]).dense(0).is_err(), "zero dense");
        assert!(Network::builder(vec![4, 2]).lstm(0).is_err(), "zero hidden");
        assert!(
            Network::builder(vec![4, 2]).conv_lstm(2, 2).is_err(),
            "even kernel"
        );
        // Branch built for the wrong shape.
        let b = Network::builder(vec![4, 3]).dense(2).unwrap();
        assert!(Network::builder(vec![4, 2])
            .split(vec![(vec![0], b)])
            .is_err());
    }

    #[test]
    fn same_seed_same_weights_different_seed_differs() {
        let mut a = Network::builder(vec![6]).dense(4).unwrap().build(9);
        let mut b = Network::builder(vec![6]).dense(4).unwrap().build(9);
        let mut c = Network::builder(vec![6]).dense(4).unwrap().build(10);
        let x = vec![0.5; 6];
        assert_eq!(a.forward(&x), b.forward(&x));
        assert_ne!(a.forward(&x), c.forward(&x));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut net = tiny_cnn();
        let x: Vec<f32> = (0..32).map(|i| i as f32 * 0.1).collect();
        let before = net.forward(&x);
        let snap = net.snapshot();
        // Perturb weights.
        net.visit_params(&mut |p| {
            for w in &mut p.w {
                *w += 0.5;
            }
        });
        assert_ne!(net.forward(&x), before);
        net.restore(&snap);
        assert_eq!(net.forward(&x), before);
    }

    #[test]
    fn set_output_bias_applies() {
        let mut net = Network::builder(vec![4]).dense(1).unwrap().build(1);
        net.set_output_bias(&[-3.3]).unwrap();
        let y = net.forward(&[0.0; 4]);
        assert!((y[0] + 3.3).abs() < 1e-6);
        assert!(net.set_output_bias(&[0.0, 1.0]).is_err());
    }

    #[test]
    fn zero_and_scale_grads() {
        let mut net = Network::builder(vec![3]).dense(2).unwrap().build(2);
        let _ = net.forward(&[1.0, 2.0, 3.0]);
        let _ = net.backward(&[1.0, 1.0]);
        let mut total: f32 = 0.0;
        net.visit_params(&mut |p| total += p.g.iter().map(|g| g.abs()).sum::<f32>());
        assert!(total > 0.0);
        net.scale_grads(0.0);
        let mut total2: f32 = 0.0;
        net.visit_params(&mut |p| total2 += p.g.iter().map(|g| g.abs()).sum::<f32>());
        assert_eq!(total2, 0.0);
    }

    #[test]
    fn param_names_are_unique() {
        let mut net = tiny_cnn();
        let mut names = Vec::new();
        net.visit_params(&mut |p| names.push(p.name.clone()));
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate param names: {names:?}");
    }
}
