//! Mini-batch training with early stopping.
//!
//! Mirrors the paper's §III-C: up to 200 epochs, early stopping on
//! validation loss with patience 20, restoring the best epoch's weights;
//! class weights and output-bias initialisation handle the imbalance.

use crate::kernels;
use crate::layers::Dense;
use crate::loss::WeightedBce;
use crate::network::Network;
use crate::optim::{Optimizer, OptimizerKind};
use crate::workspace::Workspace;
use crate::NnError;
use prefall_par::Pool;
use prefall_telemetry::{NoopRecorder, Recorder, Span, Value};
use serde::{Deserialize, Serialize};
use std::sync::{Mutex, MutexGuard};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Maximum epochs (paper: 200).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Optimizer.
    pub optimizer: OptimizerKind,
    /// Early-stopping patience in epochs (paper: 20); `None` disables
    /// early stopping.
    pub patience: Option<usize>,
    /// Shuffle seed (shuffling order is deterministic given this).
    pub seed: u64,
}

impl TrainConfig {
    /// The paper's configuration, with a scaled-down epoch budget
    /// suitable for CPU runs (`epochs` replaces the paper's 200).
    pub fn paper(epochs: usize) -> Self {
        Self {
            epochs,
            batch_size: 32,
            learning_rate: 1e-3,
            optimizer: OptimizerKind::Adam,
            patience: Some(20),
            seed: 0x5EED,
        }
    }
}

/// Per-epoch statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean weighted training loss.
    pub train_loss: f32,
    /// Mean weighted validation loss (`NaN`-free; equals train loss when
    /// no validation set was given).
    pub val_loss: f32,
}

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Number of epochs actually run.
    pub epochs_run: usize,
    /// Epoch whose weights the network ended with.
    pub best_epoch: usize,
    /// Whether early stopping fired.
    pub early_stopped: bool,
    /// Loss history.
    pub history: Vec<EpochStats>,
}

/// A borrowed training set: row-major samples and binary labels.
#[derive(Debug, Clone, Copy)]
pub struct DataRef<'a> {
    /// Samples, each of the network's input length.
    pub x: &'a [Vec<f32>],
    /// Labels in `{0.0, 1.0}`, same length as `x`.
    pub y: &'a [f32],
}

impl<'a> DataRef<'a> {
    /// Creates a data reference.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` lengths differ.
    pub fn new(x: &'a [Vec<f32>], y: &'a [f32]) -> Self {
        assert_eq!(x.len(), y.len(), "samples and labels must pair up");
        Self { x, y }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

/// One top-level [`Dense`] layer's segment of a factored gradient slot.
struct DenseSeg {
    /// Index into [`Network::layers`].
    layer: usize,
    out_len: usize,
    in_len: usize,
    /// Offset of the cached `grad_out` (`out_len` floats).
    go_off: usize,
    /// Offset of the cached input (`in_len` floats).
    x_off: usize,
    /// Offset of the input-finiteness flag (1.0 = finite).
    flag_off: usize,
}

/// Layout of a per-sample gradient slot on the factored fast path:
/// non-dense ("aux") gradients stored flat in layer order, followed by
/// each top-level dense layer's `(grad_out, input, finite)` factors.
/// For the paper's CNN this shrinks a slot from ~65 k floats (dominated
/// by dense weight matrices) to ~2.6 k.
struct FastLayout {
    aux_len: usize,
    dense: Vec<DenseSeg>,
    slot_len: usize,
}

impl FastLayout {
    fn of(net: &mut Network) -> Self {
        let mut aux_len = 0usize;
        let mut dims = Vec::new();
        for (li, layer) in net.layers_mut().iter_mut().enumerate() {
            if let Some(d) = layer.as_any().downcast_ref::<Dense>() {
                dims.push((li, d.out_len(), d.in_len()));
            } else {
                layer.visit_params(&mut |p| aux_len += p.g.len());
            }
        }
        let mut off = aux_len;
        let dense = dims
            .into_iter()
            .map(|(layer, out_len, in_len)| {
                let go_off = off;
                let x_off = go_off + out_len;
                let flag_off = x_off + in_len;
                off = flag_off + 1;
                DenseSeg {
                    layer,
                    out_len,
                    in_len,
                    go_off,
                    x_off,
                    flag_off,
                }
            })
            .collect();
        FastLayout {
            aux_len,
            dense,
            slot_len: off,
        }
    }
}

/// Zeroes every gradient except top-level dense ones — in factored mode
/// the dense grads of a replica are never written, so they stay at
/// their initial zero and need no per-sample sweep.
fn zero_aux_grads(net: &mut Network) {
    for layer in net.layers_mut() {
        if layer.as_any().downcast_ref::<Dense>().is_some() {
            continue;
        }
        layer.visit_params(&mut |p| p.g.iter_mut().for_each(|g| *g = 0.0));
    }
}

/// Copies a replica's per-sample gradient into `slot` using the
/// factored layout: aux grads flat, dense grads as rank-1 factors.
fn export_fast_slot(replica: &mut Network, layout: &FastLayout, slot: &mut [f32]) {
    let mut off = 0usize;
    let mut di = 0usize;
    for (li, layer) in replica.layers_mut().iter_mut().enumerate() {
        if di < layout.dense.len() && layout.dense[di].layer == li {
            let seg = &layout.dense[di];
            let d = layer
                .as_any()
                .downcast_ref::<Dense>()
                .expect("layout marks a dense layer");
            let (go, x) = d.rank1_grad();
            slot[seg.go_off..seg.go_off + seg.out_len].copy_from_slice(go);
            slot[seg.x_off..seg.x_off + seg.in_len].copy_from_slice(x);
            slot[seg.flag_off] = if x.iter().all(|v| v.is_finite()) {
                1.0
            } else {
                0.0
            };
            di += 1;
        } else {
            layer.visit_params(&mut |p| {
                slot[off..off + p.g.len()].copy_from_slice(&p.g);
                off += p.g.len();
            });
        }
    }
    debug_assert_eq!(off, layout.aux_len);
}

/// Folds a batch of factored slots into the master network's grads, in
/// sample (slice) order per gradient element — bit-identical to folding
/// the flat per-sample slots one at a time.
fn fold_fast_slots(net: &mut Network, layout: &FastLayout, slots: &[&[f32]]) {
    let mut off = 0usize;
    let mut di = 0usize;
    for (li, layer) in net.layers_mut().iter_mut().enumerate() {
        if di < layout.dense.len() && layout.dense[di].layer == li {
            let seg = &layout.dense[di];
            let contribs: Vec<(&[f32], &[f32], bool)> = slots
                .iter()
                .map(|s| {
                    (
                        &s[seg.go_off..seg.go_off + seg.out_len],
                        &s[seg.x_off..seg.x_off + seg.in_len],
                        s[seg.flag_off] != 0.0,
                    )
                })
                .collect();
            layer
                .as_any_mut()
                .downcast_mut::<Dense>()
                .expect("layout marks a dense layer")
                .fold_rank1_batch(&contribs);
            di += 1;
        } else {
            layer.visit_params(&mut |p| {
                let n = p.g.len();
                for slot in slots {
                    for (g, v) in p.g.iter_mut().zip(&slot[off..off + n]) {
                        *g += v;
                    }
                }
                off += n;
            });
        }
    }
    debug_assert_eq!(off, layout.aux_len);
}

/// A worker-side copy of the master network plus the master weight
/// version it last synced to. Replicas sync lazily: a stale replica
/// copies the master's flat weights the moment a worker borrows it, so
/// replicas that sat idle for a batch (common when task coarsening puts
/// a whole batch on one worker) never pay the broadcast.
struct Replica {
    net: Network,
    synced_to: u64,
}

/// Borrows a replica network for one sample: sweep for any free one
/// starting at the calling thread's home replica, fall back to blocking
/// on it. The home replica is keyed by scheduler worker identity (the
/// helping caller thread gets slot 0, workers get 1..), so each thread
/// keeps reusing one replica's memory instead of cycling through all of
/// them — that keeps the replica's weights and caches hot and means an
/// idle replica is never synced. Which replica serves a sample is
/// irrelevant to the result — all replicas sync to the same master
/// weights and are zeroed before use.
fn lock_replica(replicas: &[Mutex<Replica>]) -> MutexGuard<'_, Replica> {
    let home = prefall_par::worker_index().map_or(0, |i| i + 1) % replicas.len();
    for k in 0..replicas.len() {
        if let Ok(g) = replicas[(home + k) % replicas.len()].try_lock() {
            return g;
        }
    }
    replicas[home].lock().expect("replica poisoned")
}

/// Brings a stale replica up to the master weight version by copying the
/// flattened master weights in. No-op when already current.
fn sync_replica(replica: &mut Replica, flat_w: &[f32], version: u64) {
    if replica.synced_to == version {
        return;
    }
    let mut off = 0usize;
    replica.net.visit_params(&mut |p| {
        let n = p.w.len();
        p.w.copy_from_slice(&flat_w[off..off + n]);
        off += n;
    });
    replica.synced_to = version;
}

/// A tiny deterministic shuffler (xorshift) for epoch ordering.
fn shuffle_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut s = seed | 1;
    for i in (1..n).rev() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let j = (s % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    idx
}

/// Trains a network in place.
///
/// Returns the epoch history; on completion the network holds the
/// best-validation-loss weights (when early stopping is enabled) or the
/// final weights otherwise.
///
/// # Errors
///
/// Returns [`NnError::InvalidTraining`] for an empty training set, zero
/// batch size or zero epochs, and [`NnError::ShapeMismatch`] when sample
/// lengths do not match the network input.
pub fn train(
    net: &mut Network,
    train_data: DataRef<'_>,
    val_data: Option<DataRef<'_>>,
    loss: WeightedBce,
    config: &TrainConfig,
) -> Result<TrainReport, NnError> {
    train_recorded(net, train_data, val_data, loss, config, &NoopRecorder)
}

/// [`train`] with telemetry: per-epoch `train.epoch` events (loss,
/// validation loss), `train.epoch_seconds` timings, a `train.epochs`
/// counter, the `train.learning_rate` / `train.params` gauges, and a
/// `train.early_stop` event when patience fires.
///
/// # Errors
///
/// Same as [`train`].
pub fn train_recorded(
    net: &mut Network,
    train_data: DataRef<'_>,
    val_data: Option<DataRef<'_>>,
    loss: WeightedBce,
    config: &TrainConfig,
    rec: &dyn Recorder,
) -> Result<TrainReport, NnError> {
    if train_data.is_empty() {
        return Err(NnError::InvalidTraining {
            reason: "training set is empty".to_string(),
        });
    }
    if config.batch_size == 0 || config.epochs == 0 {
        return Err(NnError::InvalidTraining {
            reason: "batch size and epochs must be positive".to_string(),
        });
    }
    let in_len = net.input_len();
    if let Some(bad) = train_data.x.iter().find(|s| s.len() != in_len) {
        return Err(NnError::ShapeMismatch {
            expected: in_len,
            actual: bad.len(),
        });
    }
    if net.output_len() != 1 {
        return Err(NnError::InvalidTraining {
            reason: format!(
                "binary training expects a single logit output, network has {}",
                net.output_len()
            ),
        });
    }

    if rec.enabled() {
        rec.gauge_set("train.learning_rate", f64::from(config.learning_rate));
        rec.gauge_set("train.params", net.param_count() as f64);
    }

    // Parallel mini-batch gradient accumulation. The slot machinery is
    // used at every thread count: each sample's gradient lands in its
    // own per-sample slot and the slots are folded into the master
    // network in sample order, so the trained weights are identical no
    // matter how many workers ran (`PREFALL_THREADS=1,2,8` agree
    // bit-for-bit).
    let pool = Pool::from_env();
    let mut flat_params = 0usize;
    net.visit_params(&mut |p| flat_params += p.w.len());
    // The factored fast path skips materialising dense weight gradients
    // per sample; it is bit-identical to the flat reference fold and
    // only disabled together with the reference kernels.
    let fast = !kernels::reference_kernels();
    let layout = fast.then(|| FastLayout::of(net));
    let slot_len = layout.as_ref().map_or(flat_params, |l| l.slot_len);
    let max_batch = config.batch_size.min(train_data.len());
    let replica_count = pool.threads().min(max_batch).max(1);
    let replicas: Vec<Mutex<Replica>> = (0..replica_count)
        .map(|_| {
            let mut r = net.clone();
            if fast {
                for layer in r.layers_mut() {
                    if let Some(d) = layer.as_any_mut().downcast_mut::<Dense>() {
                        d.set_fast_grad(true);
                    }
                }
            }
            Mutex::new(Replica {
                net: r,
                synced_to: 0,
            })
        })
        .collect();
    let grad_slots: Vec<Mutex<Vec<f32>>> = (0..max_batch)
        .map(|_| Mutex::new(vec![0.0f32; slot_len]))
        .collect();
    let mut flat_w = vec![0.0f32; flat_params];
    let mut version = 0u64;
    if rec.enabled() {
        rec.gauge_set("train.threads", pool.threads() as f64);
    }

    let mut optimizer = Optimizer::new(config.optimizer, config.learning_rate);
    let mut history = Vec::with_capacity(config.epochs);
    let mut best_val = f32::INFINITY;
    let mut best_epoch = 0;
    let mut best_snapshot: Option<Vec<Vec<f32>>> = None;
    let mut since_best = 0usize;
    let mut early_stopped = false;

    for epoch in 0..config.epochs {
        let _epoch_span = Span::enter(rec, "train.epoch_seconds");
        let order = shuffle_indices(train_data.len(), config.seed ^ (epoch as u64) << 17);
        let mut epoch_loss = 0.0f64;

        for batch in order.chunks(config.batch_size) {
            // Fan the batch's forward/backward passes out over the
            // pool; each chunk borrows a replica network once (keyed to
            // the worker running it, so the same weight arrays stay hot
            // in that worker's cache) and every sample in the chunk
            // reuses it as its arena, writing the per-sample gradient
            // into that sample's slot.
            let losses = pool.map_init(
                batch,
                || {
                    let mut replica = lock_replica(&replicas);
                    sync_replica(&mut replica, &flat_w, version);
                    replica
                },
                |replica, bi, &si| {
                    let replica = &mut replica.net;
                    match &layout {
                        Some(_) => zero_aux_grads(replica),
                        None => replica.zero_grads(),
                    }
                    let logit = replica.forward(&train_data.x[si])[0];
                    let y = train_data.y[si];
                    let dl = loss.dloss_dlogit(logit, y);
                    let _ = replica.backward(&[dl]);
                    let mut slot = grad_slots[bi].lock().expect("grad slot poisoned");
                    match &layout {
                        Some(l) => export_fast_slot(replica, l, &mut slot),
                        None => {
                            let mut off = 0usize;
                            replica.visit_params(&mut |p| {
                                let n = p.g.len();
                                slot[off..off + n].copy_from_slice(&p.g);
                                off += n;
                            });
                        }
                    }
                    f64::from(loss.loss(logit, y))
                },
            );
            // Fold losses and gradients in sample order, exactly as the
            // serial loop would have visited them.
            for l in losses {
                epoch_loss += l;
            }
            net.zero_grads();
            let guards: Vec<MutexGuard<'_, Vec<f32>>> = grad_slots
                .iter()
                .take(batch.len())
                .map(|s| s.lock().expect("grad slot poisoned"))
                .collect();
            match &layout {
                Some(l) => {
                    let views: Vec<&[f32]> = guards.iter().map(|g| g.as_slice()).collect();
                    fold_fast_slots(net, l, &views);
                }
                None => {
                    for slot in &guards {
                        let mut off = 0usize;
                        net.visit_params(&mut |p| {
                            let n = p.g.len();
                            for (g, s) in p.g.iter_mut().zip(&slot[off..off + n]) {
                                *g += s;
                            }
                            off += n;
                        });
                    }
                }
            }
            drop(guards);
            net.scale_grads(1.0 / batch.len() as f32);
            optimizer.begin_step();
            net.visit_params(&mut |p| optimizer.step(p));
            // Publish the stepped weights: flatten once and bump the
            // version. Replicas pick the new weights up lazily the next
            // time a worker borrows them (`sync_replica`), so idle
            // replicas cost nothing per batch.
            let mut off = 0usize;
            net.visit_params(&mut |p| {
                let n = p.w.len();
                flat_w[off..off + n].copy_from_slice(&p.w);
                off += n;
            });
            version += 1;
        }
        let train_loss = (epoch_loss / train_data.len() as f64) as f32;

        let val_loss = match val_data {
            Some(v) if !v.is_empty() => evaluate_loss(net, v, loss),
            _ => train_loss,
        };
        history.push(EpochStats {
            epoch,
            train_loss,
            val_loss,
        });
        if rec.enabled() {
            rec.counter_add("train.epochs", 1);
            rec.event(
                "train.epoch",
                &[
                    ("epoch", Value::from(epoch)),
                    ("train_loss", Value::from(train_loss)),
                    ("val_loss", Value::from(val_loss)),
                ],
            );
        }

        if val_loss < best_val {
            best_val = val_loss;
            best_epoch = epoch;
            since_best = 0;
            if config.patience.is_some() {
                best_snapshot = Some(net.snapshot());
            }
        } else {
            since_best += 1;
            if let Some(patience) = config.patience {
                if since_best >= patience {
                    early_stopped = true;
                    if rec.enabled() {
                        rec.event(
                            "train.early_stop",
                            &[
                                ("epoch", Value::from(epoch)),
                                ("best_epoch", Value::from(best_epoch)),
                                ("best_val_loss", Value::from(best_val)),
                            ],
                        );
                    }
                    break;
                }
            }
        }
    }

    if let Some(snap) = best_snapshot {
        net.restore(&snap);
    }
    pool.publish(rec);

    Ok(TrainReport {
        epochs_run: history.len(),
        best_epoch,
        early_stopped,
        history,
    })
}

/// One logit: the workspace interpreter when fast kernels are allowed
/// and the architecture supports it, the allocating forward otherwise.
/// Bit-identical either way.
fn logit_of(net: &mut Network, x: &[f32], ws: &mut Workspace, fast: bool) -> f32 {
    let ws_logit = if fast { net.infer_scalar(x, ws) } else { None };
    ws_logit.unwrap_or_else(|| net.forward(x)[0])
}

/// Mean weighted loss of a network over a dataset (no gradients).
pub fn evaluate_loss(net: &mut Network, data: DataRef<'_>, loss: WeightedBce) -> f32 {
    if data.is_empty() {
        return 0.0;
    }
    let fast = !kernels::reference_kernels();
    if fast {
        // One pack rebuild up front so every sample in the sweep hits
        // the packed dense kernel (bit-identical either way).
        net.prepare_inference();
    }
    let mut ws = Workspace::new();
    let mut total = 0.0f64;
    for (x, &y) in data.x.iter().zip(data.y) {
        let logit = logit_of(net, x, &mut ws, fast);
        total += f64::from(loss.loss(logit, y));
    }
    (total / data.len() as f64) as f32
}

/// Sigmoid probabilities of a network over a dataset.
pub fn predict_proba(net: &mut Network, xs: &[Vec<f32>]) -> Vec<f32> {
    let fast = !kernels::reference_kernels();
    if fast {
        net.prepare_inference();
    }
    let mut ws = Workspace::new();
    xs.iter()
        .map(|x| crate::loss::sigmoid(logit_of(net, x, &mut ws, fast)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;

    /// A linearly separable toy problem: y = 1 iff x0 + x1 > 0.
    fn toy_data(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<f32>) {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 2000) as f32 / 1000.0 - 1.0
        };
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let a = next();
            let b = next();
            xs.push(vec![a, b]);
            ys.push(if a + b > 0.0 { 1.0 } else { 0.0 });
        }
        (xs, ys)
    }

    fn accuracy(net: &mut Network, xs: &[Vec<f32>], ys: &[f32]) -> f64 {
        let p = predict_proba(net, xs);
        let correct = p
            .iter()
            .zip(ys)
            .filter(|(&p, &y)| (p > 0.5) == (y > 0.5))
            .count();
        correct as f64 / ys.len() as f64
    }

    #[test]
    fn learns_linearly_separable_problem() {
        let (xs, ys) = toy_data(400, 3);
        let mut net = Network::builder(vec![2])
            .dense(8)
            .unwrap()
            .relu()
            .dense(1)
            .unwrap()
            .build(7);
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 16,
            learning_rate: 0.01,
            optimizer: OptimizerKind::Adam,
            patience: None,
            seed: 1,
        };
        let report = train(
            &mut net,
            DataRef::new(&xs, &ys),
            None,
            WeightedBce::unweighted(),
            &cfg,
        )
        .unwrap();
        assert_eq!(report.epochs_run, 30);
        let acc = accuracy(&mut net, &xs, &ys);
        assert!(acc > 0.95, "accuracy {acc}");
        // Loss decreased substantially.
        assert!(report.history.last().unwrap().train_loss < 0.5 * report.history[0].train_loss);
    }

    #[test]
    fn early_stopping_restores_best_weights() {
        let (xs, ys) = toy_data(200, 5);
        let (vx, vy) = toy_data(80, 11);
        let mut net = Network::builder(vec![2])
            .dense(4)
            .unwrap()
            .relu()
            .dense(1)
            .unwrap()
            .build(3);
        let cfg = TrainConfig {
            epochs: 200,
            // Huge LR to force divergence after initial progress.
            learning_rate: 0.5,
            batch_size: 8,
            optimizer: OptimizerKind::Adam,
            patience: Some(5),
            seed: 2,
        };
        let report = train(
            &mut net,
            DataRef::new(&xs, &ys),
            Some(DataRef::new(&vx, &vy)),
            WeightedBce::unweighted(),
            &cfg,
        )
        .unwrap();
        assert!(report.epochs_run <= 200);
        // The network's final weights correspond to the best epoch.
        let best = report
            .history
            .iter()
            .map(|e| e.val_loss)
            .fold(f32::INFINITY, f32::min);
        let final_loss = evaluate_loss(&mut net, DataRef::new(&vx, &vy), WeightedBce::unweighted());
        assert!(
            (final_loss - best).abs() < 1e-4,
            "final {final_loss} vs best {best}"
        );
    }

    #[test]
    fn class_weights_shift_decision_toward_minority() {
        // 95/5 imbalance: unweighted training predicts mostly negative;
        // balanced weights should recover much better positive recall.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut s = 17u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 1000) as f32 / 1000.0
        };
        for i in 0..400 {
            if i % 20 == 0 {
                // Minority positives live slightly above the boundary.
                xs.push(vec![0.55 + 0.3 * next(), next()]);
                ys.push(1.0);
            } else {
                xs.push(vec![0.45 * next(), next()]);
                ys.push(0.0);
            }
        }
        let n_pos = ys.iter().filter(|&&y| y > 0.5).count();
        let n_neg = ys.len() - n_pos;

        let run = |loss: WeightedBce| {
            let mut net = Network::builder(vec![2])
                .dense(8)
                .unwrap()
                .relu()
                .dense(1)
                .unwrap()
                .build(9);
            let cfg = TrainConfig {
                epochs: 25,
                batch_size: 16,
                learning_rate: 0.01,
                optimizer: OptimizerKind::Adam,
                patience: None,
                seed: 3,
            };
            train(&mut net, DataRef::new(&xs, &ys), None, loss, &cfg).unwrap();
            // Positive recall.
            let p = predict_proba(&mut net, &xs);
            let tp = p
                .iter()
                .zip(&ys)
                .filter(|(&p, &y)| y > 0.5 && p > 0.5)
                .count();
            tp as f64 / n_pos as f64
        };

        let recall_weighted = run(WeightedBce::balanced(n_pos, n_neg));
        assert!(recall_weighted > 0.8, "weighted recall {recall_weighted}");
    }

    #[test]
    fn rejects_bad_configs() {
        let (xs, ys) = toy_data(10, 1);
        let mut net = Network::builder(vec![2]).dense(1).unwrap().build(1);
        let mut cfg = TrainConfig::paper(1);
        cfg.batch_size = 0;
        assert!(train(
            &mut net,
            DataRef::new(&xs, &ys),
            None,
            WeightedBce::unweighted(),
            &cfg
        )
        .is_err());

        let empty_x: Vec<Vec<f32>> = Vec::new();
        let empty_y: Vec<f32> = Vec::new();
        assert!(train(
            &mut net,
            DataRef::new(&empty_x, &empty_y),
            None,
            WeightedBce::unweighted(),
            &TrainConfig::paper(1)
        )
        .is_err());

        // Wrong sample width.
        let bad_x = vec![vec![0.0; 3]];
        let bad_y = vec![0.0];
        assert!(matches!(
            train(
                &mut net,
                DataRef::new(&bad_x, &bad_y),
                None,
                WeightedBce::unweighted(),
                &TrainConfig::paper(1)
            ),
            Err(NnError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn training_is_deterministic() {
        let (xs, ys) = toy_data(100, 9);
        let cfg = TrainConfig::paper(5);
        let run = || {
            let mut net = Network::builder(vec![2])
                .dense(4)
                .unwrap()
                .relu()
                .dense(1)
                .unwrap()
                .build(11);
            train(
                &mut net,
                DataRef::new(&xs, &ys),
                None,
                WeightedBce::unweighted(),
                &cfg,
            )
            .unwrap()
            .history
            .last()
            .unwrap()
            .train_loss
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn trained_weights_are_identical_for_any_thread_count() {
        let (xs, ys) = toy_data(64, 21);
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 8,
            learning_rate: 0.01,
            optimizer: OptimizerKind::Adam,
            patience: None,
            seed: 4,
        };
        let run = |threads: usize| {
            std::env::set_var(prefall_par::THREADS_ENV, threads.to_string());
            let mut net = Network::builder(vec![2])
                .dense(6)
                .unwrap()
                .relu()
                .dense(1)
                .unwrap()
                .build(13);
            train(
                &mut net,
                DataRef::new(&xs, &ys),
                None,
                WeightedBce::unweighted(),
                &cfg,
            )
            .unwrap();
            std::env::remove_var(prefall_par::THREADS_ENV);
            let mut bits = Vec::new();
            net.visit_params(&mut |p| bits.extend(p.w.iter().map(|w| w.to_bits())));
            bits
        };
        let w1 = run(1);
        assert_eq!(w1, run(2), "2 threads diverged from 1");
        assert_eq!(w1, run(8), "8 threads diverged from 1");
    }

    #[test]
    fn shuffle_is_permutation_and_varies_by_seed() {
        let a = shuffle_indices(100, 1);
        let b = shuffle_indices(100, 2);
        assert_ne!(a, b);
        let mut sa = a.clone();
        sa.sort_unstable();
        assert_eq!(sa, (0..100).collect::<Vec<_>>());
    }
}
