//! Hand-tuned inference kernels, bit-compatible with the layer
//! implementations they accelerate.
//!
//! Every kernel here preserves the **per-output accumulation order** of
//! the naive layer code: each output starts from its bias and adds
//! `w[j] * x[j]` for `j` ascending, ReLU is `x.max(0.0)`, and max-pool
//! compares candidates in tap order starting from `f32::NEG_INFINITY`.
//! Register blocking only interleaves *independent* accumulators, so no
//! float operation is reassociated and every kernel is exactly
//! `f32::to_bits`-identical to its reference — the blackbox replay
//! suite and `forward_traced_into` rely on this, and the proptests in
//! `crates/nn/tests/conv_kernels.rs` assert it over random shapes.
//!
//! The [`set_reference_kernels`] switch forces the naive reference
//! paths; the `perf` bench binary uses it to time the seed
//! implementation against the blocked/fused one without rebuilding.

use std::sync::atomic::{AtomicBool, Ordering};

/// When `true`, [`Conv1d::forward`](crate::layers::Conv1d) and the
/// workspace inference path fall back to the naive reference kernels.
static REFERENCE_KERNELS: AtomicBool = AtomicBool::new(false);

/// Forces (or releases) the naive reference kernels process-wide.
/// Outputs are bit-identical either way; only speed changes.
pub fn set_reference_kernels(on: bool) {
    REFERENCE_KERNELS.store(on, Ordering::Relaxed);
}

/// Whether the naive reference kernels are currently forced.
pub fn reference_kernels() -> bool {
    REFERENCE_KERNELS.load(Ordering::Relaxed)
}

fn check_conv_dims(
    input: &[f32],
    weights: &[f32],
    biases: &[f32],
    time: usize,
    in_ch: usize,
    filters: usize,
    kernel: usize,
) -> usize {
    assert!(kernel >= 1 && kernel <= time, "conv kernel/time mismatch");
    let t_out = time - kernel + 1;
    assert_eq!(input.len(), time * in_ch, "conv input length");
    assert_eq!(
        weights.len(),
        filters * kernel * in_ch,
        "conv weight length"
    );
    assert_eq!(biases.len(), filters, "conv bias length");
    t_out
}

/// The naive triple loop — the reference every other conv kernel is
/// validated against. Output layout `[T_out × F]`.
#[allow(clippy::too_many_arguments)]
pub fn conv1d_reference(
    input: &[f32],
    weights: &[f32],
    biases: &[f32],
    time: usize,
    in_ch: usize,
    filters: usize,
    kernel: usize,
    out: &mut [f32],
) {
    let t_out = check_conv_dims(input, weights, biases, time, in_ch, filters, kernel);
    assert_eq!(out.len(), t_out * filters, "conv output length");
    let (c, k) = (in_ch, kernel);
    for t in 0..t_out {
        let window = &input[t * c..(t + k) * c];
        for f in 0..filters {
            let wf = &weights[f * k * c..(f + 1) * k * c];
            let mut acc = biases[f];
            for (wv, xv) in wf.iter().zip(window) {
                acc += wv * xv;
            }
            out[t * filters + f] = acc;
        }
    }
}

/// Repacks a conv (or any `[F × taps]` row-major) weight tensor into
/// the filter-interleaved layout the blocked kernels consume: groups of
/// eight filters, tap-major within the group (`packed[j·8 + l]` = tap
/// `j` of the group's filter `l`). Remainder filters (`F % 8`) are not
/// packed — the kernels read them from the raw weights. One pass over
/// `F·K·C` floats; layers cache the result against a weight revision so
/// steady-state inference never repacks (or allocates).
pub fn pack_conv_weights(weights: &[f32], in_ch: usize, filters: usize, kernel: usize) -> Vec<f32> {
    let kc = kernel * in_ch;
    const G: usize = 8;
    let groups = filters / G;
    assert!(weights.len() >= filters * kc, "conv weight length");
    let mut packed = vec![0.0f32; groups * kc * G];
    for g in 0..groups {
        let dst = &mut packed[g * kc * G..(g + 1) * kc * G];
        for l in 0..G {
            let src = &weights[(g * G + l) * kc..(g * G + l + 1) * kc];
            for (j, &w) in src.iter().enumerate() {
                dst[j * G + l] = w;
            }
        }
    }
    packed
}

/// Register-blocked conv over the implicit im2col matrix, with the
/// weights repacked filter-interleaved per call.
///
/// Because the input is time-major, the K·C patch for output step `t`
/// is the contiguous slice `input[t·C .. t·C + K·C]` — im2col needs no
/// materialisation. The weight tensor is first transposed into groups
/// of eight filters with tap-major layout (`packed[j·8 + l]` = tap `j`
/// of filter `l`), one pass over `F·K·C` floats. That turns the hot
/// loop's weight access into contiguous eight-lane loads with the
/// input value broadcast across lanes, which the compiler vectorises
/// as elementwise multiply-then-add. Each lane is one filter's own
/// accumulator summing `j` in ascending order, and Rust never fuses
/// multiply-add, so every output's rounding sequence is exactly the
/// reference chain.
///
/// Bit-identical to [`conv1d_reference`].
#[allow(clippy::too_many_arguments)]
pub fn conv1d_blocked(
    input: &[f32],
    weights: &[f32],
    biases: &[f32],
    time: usize,
    in_ch: usize,
    filters: usize,
    kernel: usize,
    out: &mut [f32],
) {
    let t_out = check_conv_dims(input, weights, biases, time, in_ch, filters, kernel);
    assert_eq!(out.len(), t_out * filters, "conv output length");
    let c = in_ch;
    let kc = kernel * c;
    const G: usize = 8;
    let groups = filters / G;
    let packed = pack_conv_weights(weights, in_ch, filters, kernel);
    let mut t = 0;
    while t + 2 <= t_out {
        let x0 = &input[t * c..t * c + kc];
        let x1 = &input[(t + 1) * c..(t + 1) * c + kc];
        for g in 0..groups {
            let w = &packed[g * kc * G..(g + 1) * kc * G];
            let f = g * G;
            let mut a0 = [0.0f32; G];
            let mut a1 = [0.0f32; G];
            a0.copy_from_slice(&biases[f..f + G]);
            a1.copy_from_slice(&biases[f..f + G]);
            for j in 0..kc {
                let wj = &w[j * G..(j + 1) * G];
                let (v0, v1) = (x0[j], x1[j]);
                for l in 0..G {
                    a0[l] += wj[l] * v0;
                    a1[l] += wj[l] * v1;
                }
            }
            out[t * filters + f..t * filters + f + G].copy_from_slice(&a0);
            out[(t + 1) * filters + f..(t + 1) * filters + f + G].copy_from_slice(&a1);
        }
        for f in groups * G..filters {
            let wf = &weights[f * kc..(f + 1) * kc];
            let mut a0 = biases[f];
            let mut a1 = a0;
            for j in 0..kc {
                a0 += wf[j] * x0[j];
                a1 += wf[j] * x1[j];
            }
            out[t * filters + f] = a0;
            out[(t + 1) * filters + f] = a1;
        }
        t += 2;
    }
    if t < t_out {
        let x0 = &input[t * c..t * c + kc];
        for g in 0..groups {
            let w = &packed[g * kc * G..(g + 1) * kc * G];
            let f = g * G;
            let mut a0 = [0.0f32; G];
            a0.copy_from_slice(&biases[f..f + G]);
            for j in 0..kc {
                let wj = &w[j * G..(j + 1) * G];
                let v0 = x0[j];
                for l in 0..G {
                    a0[l] += wj[l] * v0;
                }
            }
            out[t * filters + f..t * filters + f + G].copy_from_slice(&a0);
        }
        for f in groups * G..filters {
            let wf = &weights[f * kc..(f + 1) * kc];
            let mut acc = biases[f];
            for j in 0..kc {
                acc += wf[j] * x0[j];
            }
            out[t * filters + f] = acc;
        }
    }
}

/// Fused conv + bias + ReLU + max-pool inference kernel: the pooled
/// activation is produced without materialising the conv or ReLU
/// planes. Output layout `[(T_out / pool) × F]` — conv steps past the
/// last full pool window are skipped, exactly as the pool layer drops
/// them.
///
/// Uses the same filter-interleaved weight packing as
/// [`conv1d_blocked`], so the convolution inner loop vectorises as
/// eight-lane multiply-then-add; ReLU and the pool max are applied
/// per lane in the reference tap order.
///
/// Bit-identical to `Conv1d → Relu → MaxPool1d` applied in sequence.
#[allow(clippy::too_many_arguments)]
pub fn fused_conv_relu_maxpool(
    input: &[f32],
    weights: &[f32],
    biases: &[f32],
    time: usize,
    in_ch: usize,
    filters: usize,
    kernel: usize,
    pool: usize,
    out: &mut [f32],
) {
    let packed = pack_conv_weights(weights, in_ch, filters, kernel);
    fused_conv_relu_maxpool_packed(
        input, weights, &packed, biases, time, in_ch, filters, kernel, pool, out,
    );
}

/// [`fused_conv_relu_maxpool`] against a caller-provided
/// [`pack_conv_weights`] pack — the allocation-free form the streaming
/// workspace path uses with the layer's cached pack. `weights` is still
/// read for the `F % 8` remainder filters.
///
/// Bit-identical to the allocating wrapper (same loops, same pack).
#[allow(clippy::too_many_arguments)]
pub fn fused_conv_relu_maxpool_packed(
    input: &[f32],
    weights: &[f32],
    packed: &[f32],
    biases: &[f32],
    time: usize,
    in_ch: usize,
    filters: usize,
    kernel: usize,
    pool: usize,
    out: &mut [f32],
) {
    let t_out = check_conv_dims(input, weights, biases, time, in_ch, filters, kernel);
    assert!(pool >= 1 && pool <= t_out, "pool width out of range");
    let p_out = t_out / pool;
    assert_eq!(out.len(), p_out * filters, "fused output length");
    let c = in_ch;
    let kc = kernel * c;
    const G: usize = 8;
    let groups = filters / G;
    assert_eq!(packed.len(), groups * kc * G, "conv pack length");
    for po in 0..p_out {
        for g in 0..groups {
            let w = &packed[g * kc * G..(g + 1) * kc * G];
            let f = g * G;
            let mut best = [f32::NEG_INFINITY; G];
            for s in 0..pool {
                let t = po * pool + s;
                let x = &input[t * c..t * c + kc];
                let mut a = [0.0f32; G];
                a.copy_from_slice(&biases[f..f + G]);
                for j in 0..kc {
                    let wj = &w[j * G..(j + 1) * G];
                    let v = x[j];
                    for l in 0..G {
                        a[l] += wj[l] * v;
                    }
                }
                for l in 0..G {
                    let r = a[l].max(0.0);
                    if r > best[l] {
                        best[l] = r;
                    }
                }
            }
            out[po * filters + f..po * filters + f + G].copy_from_slice(&best);
        }
        for f in groups * G..filters {
            let wf = &weights[f * kc..(f + 1) * kc];
            let mut best = f32::NEG_INFINITY;
            for s in 0..pool {
                let t = po * pool + s;
                let x = &input[t * c..t * c + kc];
                let mut acc = biases[f];
                for j in 0..kc {
                    acc += wf[j] * x[j];
                }
                let r = acc.max(0.0);
                if r > best {
                    best = r;
                }
            }
            out[po * filters + f] = best;
        }
    }
}

/// Dense (fully connected) inference into a caller-provided buffer,
/// eight output rows at a time (falling to four, then one, on the
/// tail). Each output is `bias[o] + Σ w[o][j]·x[j]` with `j` ascending —
/// the accumulators are independent, so the blocking hides FMA latency
/// without reassociating any sum, and the result is bit-identical to
/// `Dense::forward`.
pub fn dense_forward(input: &[f32], weights: &[f32], biases: &[f32], out: &mut [f32]) {
    let in_len = input.len();
    let out_len = out.len();
    assert_eq!(weights.len(), in_len * out_len, "dense weight length");
    assert_eq!(biases.len(), out_len, "dense bias length");
    let mut o = 0;
    while o + 8 <= out_len {
        let w0 = &weights[o * in_len..(o + 1) * in_len];
        let w1 = &weights[(o + 1) * in_len..(o + 2) * in_len];
        let w2 = &weights[(o + 2) * in_len..(o + 3) * in_len];
        let w3 = &weights[(o + 3) * in_len..(o + 4) * in_len];
        let w4 = &weights[(o + 4) * in_len..(o + 5) * in_len];
        let w5 = &weights[(o + 5) * in_len..(o + 6) * in_len];
        let w6 = &weights[(o + 6) * in_len..(o + 7) * in_len];
        let w7 = &weights[(o + 7) * in_len..(o + 8) * in_len];
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        let (mut a4, mut a5, mut a6, mut a7) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for (j, &v) in input.iter().enumerate() {
            a0 += w0[j] * v;
            a1 += w1[j] * v;
            a2 += w2[j] * v;
            a3 += w3[j] * v;
            a4 += w4[j] * v;
            a5 += w5[j] * v;
            a6 += w6[j] * v;
            a7 += w7[j] * v;
        }
        out[o] = biases[o] + a0;
        out[o + 1] = biases[o + 1] + a1;
        out[o + 2] = biases[o + 2] + a2;
        out[o + 3] = biases[o + 3] + a3;
        out[o + 4] = biases[o + 4] + a4;
        out[o + 5] = biases[o + 5] + a5;
        out[o + 6] = biases[o + 6] + a6;
        out[o + 7] = biases[o + 7] + a7;
        o += 8;
    }
    while o + 4 <= out_len {
        let w0 = &weights[o * in_len..(o + 1) * in_len];
        let w1 = &weights[(o + 1) * in_len..(o + 2) * in_len];
        let w2 = &weights[(o + 2) * in_len..(o + 3) * in_len];
        let w3 = &weights[(o + 3) * in_len..(o + 4) * in_len];
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for (j, &v) in input.iter().enumerate() {
            a0 += w0[j] * v;
            a1 += w1[j] * v;
            a2 += w2[j] * v;
            a3 += w3[j] * v;
        }
        out[o] = biases[o] + a0;
        out[o + 1] = biases[o + 1] + a1;
        out[o + 2] = biases[o + 2] + a2;
        out[o + 3] = biases[o + 3] + a3;
        o += 4;
    }
    while o < out_len {
        let row = &weights[o * in_len..(o + 1) * in_len];
        let mut acc = 0.0f32;
        for (wv, xv) in row.iter().zip(input) {
            acc += wv * xv;
        }
        out[o] = biases[o] + acc;
        o += 1;
    }
}

/// Transposes a row-major `[out × in]` dense weight matrix into
/// eight-output-interleaved groups (`packed[g·in·8 + j·8 + l]` = column
/// `j` of output `g·8 + l`) for [`dense_forward_packed`]. Outputs past
/// the last full group of eight are not packed; the packed kernel reads
/// them from the row-major matrix. Packing costs one pass over the
/// matrix — the same work as a single mat-vec — so it only pays when
/// the pack is reused across many forward calls (the [`crate::layers::Dense`]
/// layer caches it against a weight revision counter).
pub fn pack_dense_weights(weights: &[f32], in_len: usize, out_len: usize) -> Vec<f32> {
    assert_eq!(weights.len(), in_len * out_len, "dense weight length");
    const G: usize = 8;
    let groups = out_len / G;
    let mut packed = vec![0.0f32; groups * in_len * G];
    for g in 0..groups {
        let dst = &mut packed[g * in_len * G..(g + 1) * in_len * G];
        for l in 0..G {
            let src = &weights[(g * G + l) * in_len..(g * G + l + 1) * in_len];
            for (j, &w) in src.iter().enumerate() {
                dst[j * G + l] = w;
            }
        }
    }
    packed
}

/// [`dense_forward`] over a weight pack built by [`pack_dense_weights`].
/// The interleaved layout turns the weight access into contiguous
/// eight-lane loads with the input value broadcast, which vectorises as
/// elementwise multiply-then-add; each lane is still one output's own
/// accumulator summing `j` ascending from `0.0` with the bias added
/// last, so the bits match [`dense_forward`] exactly.
pub fn dense_forward_packed(
    input: &[f32],
    weights: &[f32],
    packed: &[f32],
    biases: &[f32],
    out: &mut [f32],
) {
    let in_len = input.len();
    let out_len = out.len();
    assert_eq!(weights.len(), in_len * out_len, "dense weight length");
    assert_eq!(biases.len(), out_len, "dense bias length");
    const G: usize = 8;
    let groups = out_len / G;
    assert_eq!(packed.len(), groups * in_len * G, "dense pack length");
    for g in 0..groups {
        let w = &packed[g * in_len * G..(g + 1) * in_len * G];
        let o = g * G;
        let mut a = [0.0f32; G];
        for (j, &v) in input.iter().enumerate() {
            let wj = &w[j * G..(j + 1) * G];
            for l in 0..G {
                a[l] += wj[l] * v;
            }
        }
        for l in 0..G {
            out[o + l] = biases[o + l] + a[l];
        }
    }
    for o in groups * G..out_len {
        let row = &weights[o * in_len..(o + 1) * in_len];
        let mut acc = 0.0f32;
        for (wv, xv) in row.iter().zip(input) {
            acc += wv * xv;
        }
        out[o] = biases[o] + acc;
    }
}

/// Standalone max-pool into a caller-provided buffer. Bit-identical to
/// `MaxPool1d::forward` (same `>` comparisons in tap order).
pub fn maxpool_forward(input: &[f32], ch: usize, pool: usize, out: &mut [f32]) {
    assert!(ch > 0 && pool > 0, "pool dims must be positive");
    let t_out = out.len() / ch;
    assert_eq!(out.len(), t_out * ch, "pool output length");
    assert!(input.len() >= t_out * pool * ch, "pool input too short");
    for to in 0..t_out {
        for c in 0..ch {
            let mut best = f32::NEG_INFINITY;
            for k in 0..pool {
                let v = input[(to * pool + k) * ch + c];
                if v > best {
                    best = v;
                }
            }
            out[to * ch + c] = best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(n: usize, seed: u64) -> Vec<f32> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s >> 40) as f32 / (1u64 << 23) as f32) * 4.0 - 2.0
            })
            .collect()
    }

    #[test]
    fn blocked_matches_reference_bitwise_on_odd_shapes() {
        // Shapes chosen to hit every block tail: odd t_out, filters not
        // divisible by 4.
        for (time, c, f, k) in [(7, 3, 5, 2), (9, 1, 4, 3), (4, 2, 7, 4), (5, 6, 1, 5)] {
            let input = pseudo(time * c, 11);
            let w = pseudo(f * k * c, 22);
            let b = pseudo(f, 33);
            let t_out = time - k + 1;
            let mut reference = vec![0.0f32; t_out * f];
            let mut blocked = vec![0.0f32; t_out * f];
            conv1d_reference(&input, &w, &b, time, c, f, k, &mut reference);
            conv1d_blocked(&input, &w, &b, time, c, f, k, &mut blocked);
            let rb: Vec<u32> = reference.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = blocked.iter().map(|v| v.to_bits()).collect();
            assert_eq!(rb, bb, "shape ({time},{c},{f},{k})");
        }
    }

    #[test]
    fn fused_matches_conv_relu_pool_composition_bitwise() {
        let (time, c, f, k, pool) = (10, 3, 6, 3, 2);
        let input = pseudo(time * c, 7);
        let w = pseudo(f * k * c, 8);
        let b = pseudo(f, 9);
        let t_out = time - k + 1;
        let mut conv = vec![0.0f32; t_out * f];
        conv1d_reference(&input, &w, &b, time, c, f, k, &mut conv);
        let relu: Vec<f32> = conv.iter().map(|&v| v.max(0.0)).collect();
        let p_out = t_out / pool;
        let mut pooled = vec![0.0f32; p_out * f];
        maxpool_forward(&relu, f, pool, &mut pooled);
        let mut fused = vec![0.0f32; p_out * f];
        fused_conv_relu_maxpool(&input, &w, &b, time, c, f, k, pool, &mut fused);
        let want: Vec<u32> = pooled.iter().map(|v| v.to_bits()).collect();
        let got: Vec<u32> = fused.iter().map(|v| v.to_bits()).collect();
        assert_eq!(want, got);
    }

    #[test]
    fn reference_mode_switch_round_trips() {
        assert!(!reference_kernels());
        set_reference_kernels(true);
        assert!(reference_kernels());
        set_reference_kernels(false);
        assert!(!reference_kernels());
    }
}
