//! Hand-tuned inference kernels, bit-compatible with the layer
//! implementations they accelerate.
//!
//! Every kernel here preserves the **per-output accumulation order** of
//! the naive layer code: each output starts from its bias and adds
//! `w[j] * x[j]` for `j` ascending, ReLU is `x.max(0.0)`, and max-pool
//! compares candidates in tap order starting from `f32::NEG_INFINITY`.
//! Register blocking only interleaves *independent* accumulators, so no
//! float operation is reassociated and every kernel is exactly
//! `f32::to_bits`-identical to its reference — the blackbox replay
//! suite and `forward_traced_into` rely on this, and the proptests in
//! `crates/nn/tests/conv_kernels.rs` assert it over random shapes.
//!
//! The [`set_reference_kernels`] switch forces the naive reference
//! paths; the `perf` bench binary uses it to time the seed
//! implementation against the blocked/fused one without rebuilding.

use std::sync::atomic::{AtomicBool, Ordering};

/// When `true`, [`Conv1d::forward`](crate::layers::Conv1d) and the
/// workspace inference path fall back to the naive reference kernels.
static REFERENCE_KERNELS: AtomicBool = AtomicBool::new(false);

/// Forces (or releases) the naive reference kernels process-wide.
/// Outputs are bit-identical either way; only speed changes.
pub fn set_reference_kernels(on: bool) {
    REFERENCE_KERNELS.store(on, Ordering::Relaxed);
}

/// Whether the naive reference kernels are currently forced.
pub fn reference_kernels() -> bool {
    REFERENCE_KERNELS.load(Ordering::Relaxed)
}

fn check_conv_dims(
    input: &[f32],
    weights: &[f32],
    biases: &[f32],
    time: usize,
    in_ch: usize,
    filters: usize,
    kernel: usize,
) -> usize {
    assert!(kernel >= 1 && kernel <= time, "conv kernel/time mismatch");
    let t_out = time - kernel + 1;
    assert_eq!(input.len(), time * in_ch, "conv input length");
    assert_eq!(
        weights.len(),
        filters * kernel * in_ch,
        "conv weight length"
    );
    assert_eq!(biases.len(), filters, "conv bias length");
    t_out
}

/// The naive triple loop — the reference every other conv kernel is
/// validated against. Output layout `[T_out × F]`.
#[allow(clippy::too_many_arguments)]
pub fn conv1d_reference(
    input: &[f32],
    weights: &[f32],
    biases: &[f32],
    time: usize,
    in_ch: usize,
    filters: usize,
    kernel: usize,
    out: &mut [f32],
) {
    let t_out = check_conv_dims(input, weights, biases, time, in_ch, filters, kernel);
    assert_eq!(out.len(), t_out * filters, "conv output length");
    let (c, k) = (in_ch, kernel);
    for t in 0..t_out {
        let window = &input[t * c..(t + k) * c];
        for f in 0..filters {
            let wf = &weights[f * k * c..(f + 1) * k * c];
            let mut acc = biases[f];
            for (wv, xv) in wf.iter().zip(window) {
                acc += wv * xv;
            }
            out[t * filters + f] = acc;
        }
    }
}

/// Register-blocked conv over the implicit im2col matrix.
///
/// Because the input is time-major, the K·C patch for output step `t`
/// is the contiguous slice `input[t·C .. t·C + K·C]` — im2col needs no
/// materialisation. The kernel processes two time rows × four filters
/// per iteration with eight independent accumulators (each still
/// summing `j` in ascending order), which shares every weight load
/// across rows and every input load across filters.
///
/// Bit-identical to [`conv1d_reference`].
#[allow(clippy::too_many_arguments)]
pub fn conv1d_blocked(
    input: &[f32],
    weights: &[f32],
    biases: &[f32],
    time: usize,
    in_ch: usize,
    filters: usize,
    kernel: usize,
    out: &mut [f32],
) {
    let t_out = check_conv_dims(input, weights, biases, time, in_ch, filters, kernel);
    assert_eq!(out.len(), t_out * filters, "conv output length");
    let c = in_ch;
    let kc = kernel * c;
    let mut t = 0;
    while t + 2 <= t_out {
        let x0 = &input[t * c..t * c + kc];
        let x1 = &input[(t + 1) * c..(t + 1) * c + kc];
        let mut f = 0;
        while f + 4 <= filters {
            let w0 = &weights[f * kc..(f + 1) * kc];
            let w1 = &weights[(f + 1) * kc..(f + 2) * kc];
            let w2 = &weights[(f + 2) * kc..(f + 3) * kc];
            let w3 = &weights[(f + 3) * kc..(f + 4) * kc];
            let (mut a00, mut a01, mut a02, mut a03) =
                (biases[f], biases[f + 1], biases[f + 2], biases[f + 3]);
            let (mut a10, mut a11, mut a12, mut a13) = (a00, a01, a02, a03);
            for j in 0..kc {
                let (v0, v1) = (x0[j], x1[j]);
                a00 += w0[j] * v0;
                a10 += w0[j] * v1;
                a01 += w1[j] * v0;
                a11 += w1[j] * v1;
                a02 += w2[j] * v0;
                a12 += w2[j] * v1;
                a03 += w3[j] * v0;
                a13 += w3[j] * v1;
            }
            out[t * filters + f] = a00;
            out[t * filters + f + 1] = a01;
            out[t * filters + f + 2] = a02;
            out[t * filters + f + 3] = a03;
            out[(t + 1) * filters + f] = a10;
            out[(t + 1) * filters + f + 1] = a11;
            out[(t + 1) * filters + f + 2] = a12;
            out[(t + 1) * filters + f + 3] = a13;
            f += 4;
        }
        while f < filters {
            let wf = &weights[f * kc..(f + 1) * kc];
            let mut a0 = biases[f];
            let mut a1 = a0;
            for j in 0..kc {
                a0 += wf[j] * x0[j];
                a1 += wf[j] * x1[j];
            }
            out[t * filters + f] = a0;
            out[(t + 1) * filters + f] = a1;
            f += 1;
        }
        t += 2;
    }
    if t < t_out {
        let x0 = &input[t * c..t * c + kc];
        let mut f = 0;
        while f + 4 <= filters {
            let w0 = &weights[f * kc..(f + 1) * kc];
            let w1 = &weights[(f + 1) * kc..(f + 2) * kc];
            let w2 = &weights[(f + 2) * kc..(f + 3) * kc];
            let w3 = &weights[(f + 3) * kc..(f + 4) * kc];
            let (mut a0, mut a1, mut a2, mut a3) =
                (biases[f], biases[f + 1], biases[f + 2], biases[f + 3]);
            for j in 0..kc {
                let v = x0[j];
                a0 += w0[j] * v;
                a1 += w1[j] * v;
                a2 += w2[j] * v;
                a3 += w3[j] * v;
            }
            out[t * filters + f] = a0;
            out[t * filters + f + 1] = a1;
            out[t * filters + f + 2] = a2;
            out[t * filters + f + 3] = a3;
            f += 4;
        }
        while f < filters {
            let wf = &weights[f * kc..(f + 1) * kc];
            let mut acc = biases[f];
            for j in 0..kc {
                acc += wf[j] * x0[j];
            }
            out[t * filters + f] = acc;
            f += 1;
        }
    }
}

/// Fused conv + bias + ReLU + max-pool inference kernel: the pooled
/// activation is produced without materialising the conv or ReLU
/// planes. Output layout `[(T_out / pool) × F]` — conv steps past the
/// last full pool window are skipped, exactly as the pool layer drops
/// them.
///
/// Bit-identical to `Conv1d → Relu → MaxPool1d` applied in sequence.
#[allow(clippy::too_many_arguments)]
pub fn fused_conv_relu_maxpool(
    input: &[f32],
    weights: &[f32],
    biases: &[f32],
    time: usize,
    in_ch: usize,
    filters: usize,
    kernel: usize,
    pool: usize,
    out: &mut [f32],
) {
    let t_out = check_conv_dims(input, weights, biases, time, in_ch, filters, kernel);
    assert!(pool >= 1 && pool <= t_out, "pool width out of range");
    let p_out = t_out / pool;
    assert_eq!(out.len(), p_out * filters, "fused output length");
    let c = in_ch;
    let kc = kernel * c;
    for po in 0..p_out {
        let mut f = 0;
        while f + 4 <= filters {
            let w0 = &weights[f * kc..(f + 1) * kc];
            let w1 = &weights[(f + 1) * kc..(f + 2) * kc];
            let w2 = &weights[(f + 2) * kc..(f + 3) * kc];
            let w3 = &weights[(f + 3) * kc..(f + 4) * kc];
            let (mut b0, mut b1, mut b2, mut b3) = (
                f32::NEG_INFINITY,
                f32::NEG_INFINITY,
                f32::NEG_INFINITY,
                f32::NEG_INFINITY,
            );
            for s in 0..pool {
                let t = po * pool + s;
                let x = &input[t * c..t * c + kc];
                let (mut a0, mut a1, mut a2, mut a3) =
                    (biases[f], biases[f + 1], biases[f + 2], biases[f + 3]);
                for j in 0..kc {
                    let v = x[j];
                    a0 += w0[j] * v;
                    a1 += w1[j] * v;
                    a2 += w2[j] * v;
                    a3 += w3[j] * v;
                }
                let (r0, r1, r2, r3) = (a0.max(0.0), a1.max(0.0), a2.max(0.0), a3.max(0.0));
                if r0 > b0 {
                    b0 = r0;
                }
                if r1 > b1 {
                    b1 = r1;
                }
                if r2 > b2 {
                    b2 = r2;
                }
                if r3 > b3 {
                    b3 = r3;
                }
            }
            out[po * filters + f] = b0;
            out[po * filters + f + 1] = b1;
            out[po * filters + f + 2] = b2;
            out[po * filters + f + 3] = b3;
            f += 4;
        }
        while f < filters {
            let wf = &weights[f * kc..(f + 1) * kc];
            let mut best = f32::NEG_INFINITY;
            for s in 0..pool {
                let t = po * pool + s;
                let x = &input[t * c..t * c + kc];
                let mut acc = biases[f];
                for j in 0..kc {
                    acc += wf[j] * x[j];
                }
                let r = acc.max(0.0);
                if r > best {
                    best = r;
                }
            }
            out[po * filters + f] = best;
            f += 1;
        }
    }
}

/// Dense (fully connected) inference into a caller-provided buffer,
/// four output rows at a time. Each output is `bias[o] + Σ w[o][j]·x[j]`
/// with `j` ascending — bit-identical to `Dense::forward`.
pub fn dense_forward(input: &[f32], weights: &[f32], biases: &[f32], out: &mut [f32]) {
    let in_len = input.len();
    let out_len = out.len();
    assert_eq!(weights.len(), in_len * out_len, "dense weight length");
    assert_eq!(biases.len(), out_len, "dense bias length");
    let mut o = 0;
    while o + 4 <= out_len {
        let w0 = &weights[o * in_len..(o + 1) * in_len];
        let w1 = &weights[(o + 1) * in_len..(o + 2) * in_len];
        let w2 = &weights[(o + 2) * in_len..(o + 3) * in_len];
        let w3 = &weights[(o + 3) * in_len..(o + 4) * in_len];
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for (j, &v) in input.iter().enumerate() {
            a0 += w0[j] * v;
            a1 += w1[j] * v;
            a2 += w2[j] * v;
            a3 += w3[j] * v;
        }
        out[o] = biases[o] + a0;
        out[o + 1] = biases[o + 1] + a1;
        out[o + 2] = biases[o + 2] + a2;
        out[o + 3] = biases[o + 3] + a3;
        o += 4;
    }
    while o < out_len {
        let row = &weights[o * in_len..(o + 1) * in_len];
        let mut acc = 0.0f32;
        for (wv, xv) in row.iter().zip(input) {
            acc += wv * xv;
        }
        out[o] = biases[o] + acc;
        o += 1;
    }
}

/// Standalone max-pool into a caller-provided buffer. Bit-identical to
/// `MaxPool1d::forward` (same `>` comparisons in tap order).
pub fn maxpool_forward(input: &[f32], ch: usize, pool: usize, out: &mut [f32]) {
    assert!(ch > 0 && pool > 0, "pool dims must be positive");
    let t_out = out.len() / ch;
    assert_eq!(out.len(), t_out * ch, "pool output length");
    assert!(input.len() >= t_out * pool * ch, "pool input too short");
    for to in 0..t_out {
        for c in 0..ch {
            let mut best = f32::NEG_INFINITY;
            for k in 0..pool {
                let v = input[(to * pool + k) * ch + c];
                if v > best {
                    best = v;
                }
            }
            out[to * ch + c] = best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(n: usize, seed: u64) -> Vec<f32> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s >> 40) as f32 / (1u64 << 23) as f32) * 4.0 - 2.0
            })
            .collect()
    }

    #[test]
    fn blocked_matches_reference_bitwise_on_odd_shapes() {
        // Shapes chosen to hit every block tail: odd t_out, filters not
        // divisible by 4.
        for (time, c, f, k) in [(7, 3, 5, 2), (9, 1, 4, 3), (4, 2, 7, 4), (5, 6, 1, 5)] {
            let input = pseudo(time * c, 11);
            let w = pseudo(f * k * c, 22);
            let b = pseudo(f, 33);
            let t_out = time - k + 1;
            let mut reference = vec![0.0f32; t_out * f];
            let mut blocked = vec![0.0f32; t_out * f];
            conv1d_reference(&input, &w, &b, time, c, f, k, &mut reference);
            conv1d_blocked(&input, &w, &b, time, c, f, k, &mut blocked);
            let rb: Vec<u32> = reference.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = blocked.iter().map(|v| v.to_bits()).collect();
            assert_eq!(rb, bb, "shape ({time},{c},{f},{k})");
        }
    }

    #[test]
    fn fused_matches_conv_relu_pool_composition_bitwise() {
        let (time, c, f, k, pool) = (10, 3, 6, 3, 2);
        let input = pseudo(time * c, 7);
        let w = pseudo(f * k * c, 8);
        let b = pseudo(f, 9);
        let t_out = time - k + 1;
        let mut conv = vec![0.0f32; t_out * f];
        conv1d_reference(&input, &w, &b, time, c, f, k, &mut conv);
        let relu: Vec<f32> = conv.iter().map(|&v| v.max(0.0)).collect();
        let p_out = t_out / pool;
        let mut pooled = vec![0.0f32; p_out * f];
        maxpool_forward(&relu, f, pool, &mut pooled);
        let mut fused = vec![0.0f32; p_out * f];
        fused_conv_relu_maxpool(&input, &w, &b, time, c, f, k, pool, &mut fused);
        let want: Vec<u32> = pooled.iter().map(|v| v.to_bits()).collect();
        let got: Vec<u32> = fused.iter().map(|v| v.to_bits()).collect();
        assert_eq!(want, got);
    }

    #[test]
    fn reference_mode_switch_round_trips() {
        assert!(!reference_kernels());
        set_reference_kernels(true);
        assert!(reference_kernels());
        set_reference_kernels(false);
        assert!(!reference_kernels());
    }
}
