use std::error::Error;
use std::fmt;

/// Errors produced while building or running networks.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NnError {
    /// A layer configuration is invalid for its input shape.
    InvalidLayer {
        /// The layer kind being configured.
        layer: &'static str,
        /// Why the configuration is unusable.
        reason: String,
    },
    /// An input's length does not match the network's expected shape.
    ShapeMismatch {
        /// Expected flattened length.
        expected: usize,
        /// Provided flattened length.
        actual: usize,
    },
    /// A serialized weight blob does not match the network.
    WeightMismatch {
        /// Why loading failed.
        reason: String,
    },
    /// Training was configured with an empty dataset or invalid
    /// hyper-parameters.
    InvalidTraining {
        /// Why the configuration is unusable.
        reason: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::InvalidLayer { layer, reason } => {
                write!(f, "invalid {layer} layer: {reason}")
            }
            NnError::ShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "shape mismatch: expected {expected} values, got {actual}"
                )
            }
            NnError::WeightMismatch { reason } => write!(f, "weight blob mismatch: {reason}"),
            NnError::InvalidTraining { reason } => {
                write!(f, "invalid training configuration: {reason}")
            }
        }
    }
}

impl Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_and_displays() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
        let e = NnError::ShapeMismatch {
            expected: 360,
            actual: 90,
        };
        assert!(e.to_string().contains("360"));
        assert!(e.to_string().contains("90"));
    }
}
