//! Weighted binary cross-entropy on logits, plus the paper's imbalance
//! countermeasures (class weights, output-bias initialisation).

/// Numerically stable `log(1 + e^x)`.
fn softplus(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        0.0
    } else {
        x.exp().ln_1p()
    }
}

/// The logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Binary cross-entropy computed from logits with per-class weights.
///
/// The paper trains with "different weights" per class to counter the
/// ~3 % fall-segment share. With weights `(1, 1)` this is plain BCE.
///
/// # Example
///
/// ```
/// use prefall_nn::loss::WeightedBce;
///
/// let loss = WeightedBce::balanced(30, 970); // 3% positives
/// assert!(loss.pos_weight() > loss.neg_weight());
/// let l = loss.loss(0.0, 1.0);
/// assert!(l > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedBce {
    pos_weight: f32,
    neg_weight: f32,
}

impl WeightedBce {
    /// Unweighted BCE.
    pub fn unweighted() -> Self {
        Self {
            pos_weight: 1.0,
            neg_weight: 1.0,
        }
    }

    /// Explicit weights.
    ///
    /// # Panics
    ///
    /// Panics unless both weights are positive and finite.
    pub fn new(pos_weight: f32, neg_weight: f32) -> Self {
        assert!(
            pos_weight > 0.0 && pos_weight.is_finite(),
            "positive-class weight must be positive"
        );
        assert!(
            neg_weight > 0.0 && neg_weight.is_finite(),
            "negative-class weight must be positive"
        );
        Self {
            pos_weight,
            neg_weight,
        }
    }

    /// "Balanced" weights from class counts:
    /// `w_c = total / (2 · n_c)` — each class contributes half the total
    /// loss mass regardless of imbalance.
    ///
    /// # Panics
    ///
    /// Panics when either count is zero.
    pub fn balanced(n_pos: usize, n_neg: usize) -> Self {
        assert!(n_pos > 0 && n_neg > 0, "both classes must be represented");
        let total = (n_pos + n_neg) as f32;
        Self::new(total / (2.0 * n_pos as f32), total / (2.0 * n_neg as f32))
    }

    /// Weight applied to positive (falling) samples.
    pub fn pos_weight(&self) -> f32 {
        self.pos_weight
    }

    /// Weight applied to negative (ADL) samples.
    pub fn neg_weight(&self) -> f32 {
        self.neg_weight
    }

    /// The weight for a target `y ∈ {0, 1}`.
    fn weight(&self, y: f32) -> f32 {
        if y >= 0.5 {
            self.pos_weight
        } else {
            self.neg_weight
        }
    }

    /// Loss for one (logit, target) pair; stable for large |logit|.
    pub fn loss(&self, logit: f32, y: f32) -> f32 {
        // BCE(z, y) = max(z,0) − z·y + log(1 + e^{−|z|})
        self.weight(y) * (logit.max(0.0) - logit * y + softplus(-logit.abs()))
    }

    /// `d loss / d logit` for one pair: `w · (σ(z) − y)`.
    pub fn dloss_dlogit(&self, logit: f32, y: f32) -> f32 {
        self.weight(y) * (sigmoid(logit) - y)
    }

    /// Mean loss over a slice of logits/targets.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or the slices are empty.
    pub fn mean_loss(&self, logits: &[f32], ys: &[f32]) -> f32 {
        assert_eq!(logits.len(), ys.len(), "length mismatch");
        assert!(!logits.is_empty(), "empty batch");
        logits
            .iter()
            .zip(ys)
            .map(|(&z, &y)| self.loss(z, y))
            .sum::<f32>()
            / logits.len() as f32
    }
}

/// The paper's output-bias initialisation (Eq. 1):
/// `b = log(p / (1 − p))` where `p` is the positive-class prior (Eq. 2).
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
pub fn initial_output_bias(p_positive: f64) -> f32 {
    assert!(
        p_positive > 0.0 && p_positive < 1.0,
        "class prior must be in (0, 1)"
    );
    (p_positive / (1.0 - p_positive)).ln() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bce_matches_reference_values() {
        let l = WeightedBce::unweighted();
        // z = 0 → σ = 0.5 → loss = ln 2 for either class.
        assert!((l.loss(0.0, 1.0) - std::f32::consts::LN_2).abs() < 1e-6);
        assert!((l.loss(0.0, 0.0) - std::f32::consts::LN_2).abs() < 1e-6);
        // Confident correct prediction → near-zero loss.
        assert!(l.loss(10.0, 1.0) < 1e-3);
        assert!(l.loss(-10.0, 0.0) < 1e-3);
        // Confident wrong prediction → large loss ≈ |z|.
        assert!((l.loss(-10.0, 1.0) - 10.0).abs() < 1e-3);
    }

    #[test]
    fn loss_is_stable_for_extreme_logits() {
        let l = WeightedBce::unweighted();
        for &z in &[-1e4f32, -100.0, 100.0, 1e4] {
            assert!(l.loss(z, 1.0).is_finite());
            assert!(l.loss(z, 0.0).is_finite());
            assert!(l.dloss_dlogit(z, 1.0).is_finite());
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let l = WeightedBce::new(3.0, 0.5);
        for &z in &[-2.0f32, -0.5, 0.0, 0.7, 2.5] {
            for &y in &[0.0f32, 1.0] {
                let eps = 1e-3;
                let num = (l.loss(z + eps, y) - l.loss(z - eps, y)) / (2.0 * eps);
                let ana = l.dloss_dlogit(z, y);
                assert!((num - ana).abs() < 1e-3, "z={z} y={y}: {num} vs {ana}");
            }
        }
    }

    #[test]
    fn balanced_weights_equalise_class_mass() {
        let l = WeightedBce::balanced(10, 990);
        // Total positive mass = total negative mass.
        let pos_mass = l.pos_weight() * 10.0;
        let neg_mass = l.neg_weight() * 990.0;
        assert!((pos_mass - neg_mass).abs() < 1e-3);
    }

    #[test]
    fn initial_bias_matches_prior() {
        // p = 0.5 → b = 0; p = 0.036 (the paper's fall share) → b ≈ −3.29.
        assert!(initial_output_bias(0.5).abs() < 1e-7);
        let b = initial_output_bias(0.036);
        assert!((f64::from(b) - (-3.287)).abs() < 0.01, "b = {b}");
        // σ(b) recovers the prior.
        assert!((f64::from(sigmoid(b)) - 0.036).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "class prior")]
    fn initial_bias_rejects_degenerate_prior() {
        let _ = initial_output_bias(0.0);
    }

    #[test]
    fn mean_loss_averages() {
        let l = WeightedBce::unweighted();
        let m = l.mean_loss(&[0.0, 0.0], &[1.0, 0.0]);
        assert!((m - std::f32::consts::LN_2).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn balanced_rejects_empty_class() {
        let _ = WeightedBce::balanced(0, 10);
    }
}
