//! Network layers with manual forward/backward passes.
//!
//! All activations are flat `&[f32]` buffers; sequence data `[T × C]` is
//! stored row-major (time-major). Shapes are fixed at construction time,
//! so the hot path carries no shape objects. Every layer caches what its
//! backward pass needs during `forward`.

mod activation;
mod conv;
mod convlstm;
mod dense;
mod lstm;
mod pool;
mod split;

pub(crate) use activation::sigmoid as scalar_sigmoid;
pub use activation::{Relu, Sigmoid};
pub use conv::Conv1d;
pub use convlstm::ConvLstm;
pub use dense::Dense;
pub use lstm::Lstm;
pub use pool::MaxPool1d;
pub use split::{Branch, SplitConcat};

use crate::init::InitRng;
use crate::param::Param;

/// A differentiable layer.
///
/// The contract: `backward` must be called at most once after each
/// `forward`, with a gradient of length [`Layer::output_len`]; it
/// accumulates parameter gradients and returns the gradient w.r.t. the
/// layer input.
///
/// `Send + Sync` is part of the contract: layers are plain data (no
/// interior mutability), so a `&Network` can be shared across threads
/// — fleet serving classifies thousands of sessions against one set of
/// weights through the `&self` scalar-inference path.
pub trait Layer: std::fmt::Debug + Send + Sync {
    /// Short kind name (`"dense"`, `"conv1d"`, …).
    fn kind(&self) -> &'static str;

    /// Flattened input length.
    fn input_len(&self) -> usize;

    /// Flattened output length.
    fn output_len(&self) -> usize;

    /// Forward pass for one sample.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.input_len()`.
    fn forward(&mut self, input: &[f32]) -> Vec<f32>;

    /// Backward pass: accumulates parameter gradients, returns the
    /// gradient w.r.t. the input.
    ///
    /// # Panics
    ///
    /// Panics if `grad_out.len() != self.output_len()` or `forward` was
    /// never called.
    fn backward(&mut self, grad_out: &[f32]) -> Vec<f32>;

    /// Initialises the layer's weights from the given RNG.
    fn init_weights(&mut self, rng: &mut InitRng) {
        let _ = rng;
    }

    /// Visits every trainable parameter block.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        let _ = f;
    }

    /// Number of trainable scalars.
    fn param_count(&self) -> usize {
        0
    }

    /// Multiply–accumulate operations in one forward pass (drives the
    /// MCU latency model).
    fn macs(&self) -> usize {
        0
    }

    /// Dynamic-typing hook for the quantizer.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable dynamic-typing hook for the quantizer's calibration pass.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Deep-copies the layer behind the trait object. Enables
    /// `Network: Clone`, which the parallel trainer uses to give each
    /// worker its own forward/backward caches.
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Numerical gradient checking helper shared by the layer tests.
#[cfg(test)]
pub(crate) mod gradcheck {
    use super::Layer;

    /// Checks `d(sum(alpha * output)) / d(input)` and parameter
    /// gradients against central finite differences.
    pub fn check_layer(layer: &mut dyn Layer, input: &[f32], tol: f32) {
        let out_len = layer.output_len();
        // Random-ish but deterministic upstream gradient.
        let alpha: Vec<f32> = (0..out_len)
            .map(|i| ((i * 2654435761) % 1000) as f32 / 500.0 - 1.0)
            .collect();

        // Analytic gradients.
        layer.visit_params(&mut |p| p.zero_grad());
        let _ = layer.forward(input);
        let grad_in = layer.backward(&alpha);

        let eps = 1e-3f32;
        let loss = |layer: &mut dyn Layer, x: &[f32]| -> f32 {
            layer
                .forward(x)
                .iter()
                .zip(&alpha)
                .map(|(o, a)| o * a)
                .sum()
        };

        // Input gradient.
        let mut x = input.to_vec();
        for i in 0..x.len() {
            let orig = x[i];
            x[i] = orig + eps;
            let lp = loss(layer, &x);
            x[i] = orig - eps;
            let lm = loss(layer, &x);
            x[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grad_in[i]).abs() <= tol * (1.0 + num.abs()),
                "input grad [{i}]: numeric {num} vs analytic {}",
                grad_in[i]
            );
        }

        // Parameter gradients. Collect analytic copies first.
        let mut analytic: Vec<(String, Vec<f32>)> = Vec::new();
        layer.visit_params(&mut |p| analytic.push((p.name.clone(), p.g.clone())));
        for (pi, (name, ga)) in analytic.iter().enumerate() {
            #[allow(clippy::needless_range_loop)]
            for wi in 0..ga.len() {
                // Perturb parameter wi of block pi.
                let set = |layer: &mut dyn Layer, delta: f32| {
                    let mut k = 0;
                    layer.visit_params(&mut |p| {
                        if k == pi {
                            p.w[wi] += delta;
                        }
                        k += 1;
                    });
                };
                set(layer, eps);
                let lp = loss(layer, input);
                set(layer, -2.0 * eps);
                let lm = loss(layer, input);
                set(layer, eps);
                let num = (lp - lm) / (2.0 * eps);
                assert!(
                    (num - ga[wi]).abs() <= tol * (1.0 + num.abs()),
                    "param {name}[{wi}]: numeric {num} vs analytic {}",
                    ga[wi]
                );
            }
        }
    }
}
