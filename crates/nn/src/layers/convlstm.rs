//! Convolutional LSTM (the ConvLSTM2D baseline of the paper, with the
//! degenerate 1×C spatial grid that IMU windows give it).
//!
//! At each time step the 9-channel snapshot is treated as a 1-D spatial
//! signal of length `S = C`; gate pre-activations are 1-D convolutions
//! (same padding) over that axis, of both the input (1 channel) and the
//! previous hidden state (`F` channels). The final hidden state
//! `[S × F]` is flattened as the layer output — mirroring how Keras'
//! `ConvLSTM2D` is applied to inertial windows in the papers the
//! baseline follows.

use super::activation::sigmoid;
use super::Layer;
use crate::init::{glorot_uniform, InitRng};
use crate::param::Param;

/// A convolutional LSTM over a `[T × S]` sequence (spatial length `S`,
/// one input channel), with `F` filters and odd kernel `K`.
#[derive(Debug, Clone)]
pub struct ConvLstm {
    time: usize,
    /// Spatial length (the 9 sensor channels).
    space: usize,
    filters: usize,
    kernel: usize,
    /// Input-conv weights `[4 × F × K]` (1 input channel).
    wx: Param,
    /// Recurrent-conv weights `[4 × F × K × F]`.
    wh: Param,
    /// Gate biases `[4 × F]`.
    b: Param,
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    xs: Vec<f32>,
    /// Activated gates per step `[T × 4 × S × F]`.
    gates: Vec<f32>,
    /// Cell states `[T × S × F]`.
    cs: Vec<f32>,
    /// tanh(c) `[T × S × F]`.
    tanh_cs: Vec<f32>,
    /// Hidden states `[T × S × F]`.
    hs: Vec<f32>,
}

impl ConvLstm {
    /// Creates a ConvLSTM layer with zeroed weights.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is even or any dimension is zero.
    pub fn new(index: usize, time: usize, space: usize, filters: usize, kernel: usize) -> Self {
        assert!(
            time > 0 && space > 0 && filters > 0 && kernel > 0,
            "convlstm dimensions must be positive"
        );
        assert!(
            kernel % 2 == 1,
            "convlstm kernel must be odd (same padding)"
        );
        Self {
            time,
            space,
            filters,
            kernel,
            wx: Param::new(
                format!("convlstm{index}.wx"),
                vec![0.0; 4 * filters * kernel],
            ),
            wh: Param::new(
                format!("convlstm{index}.wh"),
                vec![0.0; 4 * filters * kernel * filters],
            ),
            b: Param::new(format!("convlstm{index}.b"), vec![0.0; 4 * filters]),
            cache: None,
        }
    }

    /// Number of filters.
    pub fn filters(&self) -> usize {
        self.filters
    }

    fn state_len(&self) -> usize {
        self.space * self.filters
    }
}

impl Layer for ConvLstm {
    fn kind(&self) -> &'static str {
        "convlstm"
    }

    fn input_len(&self) -> usize {
        self.time * self.space
    }

    fn output_len(&self) -> usize {
        self.state_len()
    }

    fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.input_len(), "convlstm input length");
        let (t_n, s_n, f_n, k_n) = (self.time, self.space, self.filters, self.kernel);
        let pad = k_n / 2;
        let sl = self.state_len();

        let mut gates = vec![0.0f32; t_n * 4 * sl];
        let mut cs = vec![0.0f32; t_n * sl];
        let mut tanh_cs = vec![0.0f32; t_n * sl];
        let mut hs = vec![0.0f32; t_n * sl];

        let mut h_prev = vec![0.0f32; sl];
        let mut c_prev = vec![0.0f32; sl];

        for t in 0..t_n {
            let x = &input[t * s_n..(t + 1) * s_n];
            let zg = &mut gates[t * 4 * sl..(t + 1) * 4 * sl];
            // Pre-activations: z[gate][s][f].
            for gate in 0..4 {
                for s in 0..s_n {
                    for f in 0..f_n {
                        let mut acc = self.b.w[gate * f_n + f];
                        for k in 0..k_n {
                            let sp = s + k;
                            if sp < pad || sp - pad >= s_n {
                                continue;
                            }
                            let sp = sp - pad;
                            acc += self.wx.w[(gate * f_n + f) * k_n + k] * x[sp];
                            let whb = ((gate * f_n + f) * k_n + k) * f_n;
                            let hrow = &h_prev[sp * f_n..(sp + 1) * f_n];
                            for (fp, hv) in hrow.iter().enumerate() {
                                acc += self.wh.w[whb + fp] * hv;
                            }
                        }
                        zg[gate * sl + s * f_n + f] = acc;
                    }
                }
            }
            // Nonlinearities + state update.
            for j in 0..sl {
                let i_g = sigmoid(zg[j]);
                let f_g = sigmoid(zg[sl + j]);
                let g_g = zg[2 * sl + j].tanh();
                let o_g = sigmoid(zg[3 * sl + j]);
                zg[j] = i_g;
                zg[sl + j] = f_g;
                zg[2 * sl + j] = g_g;
                zg[3 * sl + j] = o_g;
                let c = f_g * c_prev[j] + i_g * g_g;
                let tc = c.tanh();
                cs[t * sl + j] = c;
                tanh_cs[t * sl + j] = tc;
                hs[t * sl + j] = o_g * tc;
            }
            h_prev.copy_from_slice(&hs[t * sl..(t + 1) * sl]);
            c_prev.copy_from_slice(&cs[t * sl..(t + 1) * sl]);
        }

        let out = h_prev.clone();
        self.cache = Some(Cache {
            xs: input.to_vec(),
            gates,
            cs,
            tanh_cs,
            hs,
        });
        out
    }

    fn backward(&mut self, grad_out: &[f32]) -> Vec<f32> {
        assert_eq!(grad_out.len(), self.output_len(), "convlstm grad length");
        let cache = self.cache.as_ref().expect("forward not called");
        let (t_n, s_n, f_n, k_n) = (self.time, self.space, self.filters, self.kernel);
        let pad = k_n / 2;
        let sl = self.state_len();

        let mut grad_in = vec![0.0f32; t_n * s_n];
        let mut dh = grad_out.to_vec();
        let mut dc = vec![0.0f32; sl];
        let mut dz = vec![0.0f32; 4 * sl];

        for t in (0..t_n).rev() {
            let gates = &cache.gates[t * 4 * sl..(t + 1) * 4 * sl];
            let tanh_c = &cache.tanh_cs[t * sl..(t + 1) * sl];
            for j in 0..sl {
                let i_g = gates[j];
                let f_g = gates[sl + j];
                let g_g = gates[2 * sl + j];
                let o_g = gates[3 * sl + j];
                let tc = tanh_c[j];
                let do_g = dh[j] * tc;
                let dc_j = dc[j] + dh[j] * o_g * (1.0 - tc * tc);
                let cp = if t == 0 {
                    0.0
                } else {
                    cache.cs[(t - 1) * sl + j]
                };
                let di = dc_j * g_g;
                let dg = dc_j * i_g;
                let df = dc_j * cp;
                dc[j] = dc_j * f_g;
                dz[j] = di * i_g * (1.0 - i_g);
                dz[sl + j] = df * f_g * (1.0 - f_g);
                dz[2 * sl + j] = dg * (1.0 - g_g * g_g);
                dz[3 * sl + j] = do_g * o_g * (1.0 - o_g);
            }

            let x = &cache.xs[t * s_n..(t + 1) * s_n];
            let h_prev: &[f32] = if t == 0 {
                &[]
            } else {
                &cache.hs[(t - 1) * sl..t * sl]
            };
            let dx = &mut grad_in[t * s_n..(t + 1) * s_n];
            let mut dh_prev = vec![0.0f32; sl];

            for gate in 0..4 {
                for s in 0..s_n {
                    for f in 0..f_n {
                        let dzj = dz[gate * sl + s * f_n + f];
                        if dzj == 0.0 {
                            continue;
                        }
                        self.b.g[gate * f_n + f] += dzj;
                        for k in 0..k_n {
                            let sp = s + k;
                            if sp < pad || sp - pad >= s_n {
                                continue;
                            }
                            let sp = sp - pad;
                            let wx_idx = (gate * f_n + f) * k_n + k;
                            self.wx.g[wx_idx] += dzj * x[sp];
                            dx[sp] += dzj * self.wx.w[wx_idx];
                            if t > 0 {
                                let whb = ((gate * f_n + f) * k_n + k) * f_n;
                                for fp in 0..f_n {
                                    self.wh.g[whb + fp] += dzj * h_prev[sp * f_n + fp];
                                    dh_prev[sp * f_n + fp] += dzj * self.wh.w[whb + fp];
                                }
                            }
                        }
                    }
                }
            }
            dh = dh_prev;
        }

        grad_in
    }

    fn init_weights(&mut self, rng: &mut InitRng) {
        let fan_x = self.kernel;
        let fan_h = self.kernel * self.filters;
        self.wx.w = glorot_uniform(rng, fan_x, self.filters, 4 * self.filters * self.kernel);
        self.wh.w = glorot_uniform(
            rng,
            fan_h,
            self.filters,
            4 * self.filters * self.kernel * self.filters,
        );
        self.b.w = vec![0.0; 4 * self.filters];
        for f in self.filters..2 * self.filters {
            self.b.w[f] = 1.0; // forget bias
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.wx);
        f(&mut self.wh);
        f(&mut self.b);
    }

    fn param_count(&self) -> usize {
        self.wx.len() + self.wh.len() + self.b.len()
    }

    fn macs(&self) -> usize {
        // Per step, per gate, per spatial position, per filter: K input
        // MACs + K·F recurrent MACs.
        self.time * 4 * self.space * self.filters * (self.kernel + self.kernel * self.filters)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::check_layer;

    #[test]
    fn shapes_and_counts() {
        let l = ConvLstm::new(0, 40, 9, 8, 3);
        assert_eq!(l.input_len(), 360);
        assert_eq!(l.output_len(), 72);
        assert_eq!(l.param_count(), 4 * 8 * 3 + 4 * 8 * 3 * 8 + 4 * 8);
        assert!(l.macs() > 0);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn rejects_even_kernel() {
        let _ = ConvLstm::new(0, 4, 9, 4, 2);
    }

    #[test]
    fn zero_weights_zero_output() {
        let mut l = ConvLstm::new(0, 3, 5, 2, 3);
        let out = l.forward(&[0.5; 15]);
        assert!(out.iter().all(|v| v.abs() < 1e-7));
    }

    #[test]
    fn gradient_check_small() {
        let mut l = ConvLstm::new(0, 3, 4, 2, 3);
        l.init_weights(&mut InitRng::new(13));
        let input: Vec<f32> = (0..12).map(|i| (i as f32 * 0.5).sin() * 0.7).collect();
        check_layer(&mut l, &input, 4e-2);
    }

    #[test]
    fn output_depends_on_temporal_order() {
        let mut l = ConvLstm::new(0, 4, 3, 2, 3);
        l.init_weights(&mut InitRng::new(21));
        let seq: Vec<f32> = (0..12).map(|i| i as f32 * 0.2).collect();
        let rev: Vec<f32> = seq.chunks(3).rev().flatten().copied().collect();
        let a = l.forward(&seq);
        let b = l.forward(&rev);
        let diff: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-4);
    }

    #[test]
    fn hidden_state_bounded() {
        let mut l = ConvLstm::new(0, 8, 5, 3, 3);
        l.init_weights(&mut InitRng::new(17));
        let input: Vec<f32> = (0..40).map(|i| i as f32).collect();
        let out = l.forward(&input);
        assert!(out.iter().all(|v| v.abs() <= 1.0));
    }
}
