//! Max pooling over the time axis.

use super::Layer;
use crate::param::Param;

/// Max pooling over time: input `[T × C]`, output `[⌊T/p⌋ × C]`,
/// non-overlapping windows of `p` steps per channel.
#[derive(Debug, Clone)]
pub struct MaxPool1d {
    time: usize,
    ch: usize,
    pool: usize,
    argmax: Vec<usize>,
}

impl MaxPool1d {
    /// Creates a pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if `pool == 0`, `pool > time`, or any dimension is zero.
    pub fn new(time: usize, ch: usize, pool: usize) -> Self {
        assert!(
            time > 0 && ch > 0 && pool > 0,
            "maxpool dimensions must be positive"
        );
        assert!(pool <= time, "pool {pool} exceeds time {time}");
        Self {
            time,
            ch,
            pool,
            argmax: Vec::new(),
        }
    }

    /// Output length along time.
    pub fn out_time(&self) -> usize {
        self.time / self.pool
    }

    /// Pool width.
    pub fn pool(&self) -> usize {
        self.pool
    }

    /// Channels.
    pub fn channels(&self) -> usize {
        self.ch
    }

    /// Input time steps.
    pub fn in_time(&self) -> usize {
        self.time
    }
}

impl Layer for MaxPool1d {
    fn kind(&self) -> &'static str {
        "maxpool1d"
    }

    fn input_len(&self) -> usize {
        self.time * self.ch
    }

    fn output_len(&self) -> usize {
        self.out_time() * self.ch
    }

    fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.input_len(), "maxpool input length");
        let t_out = self.out_time();
        let mut out = vec![0.0f32; t_out * self.ch];
        self.argmax = vec![0; t_out * self.ch];
        for to in 0..t_out {
            for c in 0..self.ch {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0;
                for k in 0..self.pool {
                    let idx = (to * self.pool + k) * self.ch + c;
                    if input[idx] > best {
                        best = input[idx];
                        best_idx = idx;
                    }
                }
                out[to * self.ch + c] = best;
                self.argmax[to * self.ch + c] = best_idx;
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &[f32]) -> Vec<f32> {
        assert_eq!(grad_out.len(), self.output_len(), "maxpool grad length");
        assert!(!self.argmax.is_empty(), "forward not called");
        let mut grad_in = vec![0.0f32; self.input_len()];
        for (o, &go) in grad_out.iter().enumerate() {
            grad_in[self.argmax[o]] += go;
        }
        grad_in
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_picks_maximum_per_channel() {
        let mut p = MaxPool1d::new(4, 2, 2);
        let input = vec![
            1.0, -5.0, // t=0
            3.0, -1.0, // t=1
            2.0, 0.0, // t=2
            0.0, -2.0, // t=3
        ];
        let out = p.forward(&input);
        assert_eq!(out, vec![3.0, -1.0, 2.0, 0.0]);
    }

    #[test]
    fn backward_routes_gradient_to_argmax() {
        let mut p = MaxPool1d::new(4, 1, 2);
        let _ = p.forward(&[1.0, 3.0, 5.0, 2.0]);
        let gi = p.backward(&[1.0, 2.0]);
        assert_eq!(gi, vec![0.0, 1.0, 2.0, 0.0]);
    }

    #[test]
    fn odd_length_drops_trailing_samples() {
        let mut p = MaxPool1d::new(5, 1, 2);
        assert_eq!(p.out_time(), 2);
        let out = p.forward(&[1.0, 2.0, 3.0, 4.0, 99.0]);
        assert_eq!(out, vec![2.0, 4.0]); // sample 4 ignored
    }

    #[test]
    fn no_params_no_macs() {
        let p = MaxPool1d::new(4, 2, 2);
        assert_eq!(p.param_count(), 0);
        assert_eq!(p.macs(), 0);
        assert_eq!(p.kind(), "maxpool1d");
    }

    #[test]
    #[should_panic(expected = "pool")]
    fn rejects_pool_larger_than_time() {
        let _ = MaxPool1d::new(2, 1, 3);
    }
}
