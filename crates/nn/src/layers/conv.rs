//! 1-D convolution over the time axis.

use super::Layer;
use crate::init::{he_uniform, InitRng};
use crate::kernels;
use crate::param::Param;
use crate::NnError;

/// A 1-D convolution over time: input `[T × C]` (time-major), output
/// `[(T − K + 1) × F]`, valid padding, stride 1.
///
/// Weights are stored `[F × K × C]`.
#[derive(Debug, Clone)]
pub struct Conv1d {
    time: usize,
    in_ch: usize,
    filters: usize,
    kernel: usize,
    w: Param,
    b: Param,
    input_cache: Vec<f32>,
    packed: Vec<f32>,
    packed_rev: u64,
    rev: u64,
}

impl Conv1d {
    /// Creates a convolution layer with zeroed weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] when any dimension is zero or
    /// `kernel > time`.
    pub fn new(
        index: usize,
        time: usize,
        in_ch: usize,
        filters: usize,
        kernel: usize,
    ) -> Result<Self, NnError> {
        if time == 0 || in_ch == 0 || filters == 0 || kernel == 0 {
            return Err(NnError::InvalidLayer {
                layer: "conv1d",
                reason: format!(
                    "dimensions must be positive \
                     (time {time}, channels {in_ch}, filters {filters}, kernel {kernel})"
                ),
            });
        }
        if kernel > time {
            return Err(NnError::InvalidLayer {
                layer: "conv1d",
                reason: format!("kernel {kernel} exceeds time {time}"),
            });
        }
        Ok(Self {
            time,
            in_ch,
            filters,
            kernel,
            w: Param::new(
                format!("conv{index}.w"),
                vec![0.0; filters * kernel * in_ch],
            ),
            b: Param::new(format!("conv{index}.b"), vec![0.0; filters]),
            input_cache: Vec::new(),
            packed: Vec::new(),
            packed_rev: 0,
            rev: 1,
        })
    }

    /// Output length along time.
    pub fn out_time(&self) -> usize {
        self.time - self.kernel + 1
    }

    /// Number of filters (output channels).
    pub fn filters(&self) -> usize {
        self.filters
    }

    /// Kernel width.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Input channels.
    pub fn in_channels(&self) -> usize {
        self.in_ch
    }

    /// Input time steps.
    pub fn in_time(&self) -> usize {
        self.time
    }

    /// The weight tensor `[F × K × C]`.
    pub fn weights(&self) -> &[f32] {
        &self.w.w
    }

    /// The per-filter biases.
    pub fn biases(&self) -> &[f32] {
        &self.b.w
    }

    /// Rebuilds the filter-interleaved weight pack if the weights have
    /// changed since the last build (or were never packed). Layers with
    /// fewer than eight filters gain nothing from packing and stay
    /// unpacked.
    pub fn ensure_packed(&mut self) {
        if self.filters >= 8 && self.packed_rev != self.rev {
            self.packed =
                kernels::pack_conv_weights(&self.w.w, self.in_ch, self.filters, self.kernel);
            self.packed_rev = self.rev;
        }
    }

    /// The cached weight pack, if it is current for the present
    /// weights — `None` means the caller must use an unpacked kernel
    /// (or call [`Conv1d::ensure_packed`] first).
    pub fn fresh_pack(&self) -> Option<&[f32]> {
        (self.filters >= 8 && self.packed_rev == self.rev).then_some(&self.packed[..])
    }
}

impl Layer for Conv1d {
    fn kind(&self) -> &'static str {
        "conv1d"
    }

    fn input_len(&self) -> usize {
        self.time * self.in_ch
    }

    fn output_len(&self) -> usize {
        self.out_time() * self.filters
    }

    fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.input_len(), "conv1d input length");
        self.input_cache.clear();
        self.input_cache.extend_from_slice(input);
        let mut out = vec![0.0f32; self.out_time() * self.filters];
        // Both kernels are bit-identical; the switch only exists so the
        // perf bench can time the naive path.
        if kernels::reference_kernels() {
            kernels::conv1d_reference(
                input,
                &self.w.w,
                &self.b.w,
                self.time,
                self.in_ch,
                self.filters,
                self.kernel,
                &mut out,
            );
        } else {
            kernels::conv1d_blocked(
                input,
                &self.w.w,
                &self.b.w,
                self.time,
                self.in_ch,
                self.filters,
                self.kernel,
                &mut out,
            );
        }
        out
    }

    fn backward(&mut self, grad_out: &[f32]) -> Vec<f32> {
        assert_eq!(grad_out.len(), self.output_len(), "conv1d grad length");
        assert!(!self.input_cache.is_empty(), "forward not called");
        let (c, k, f_n) = (self.in_ch, self.kernel, self.filters);
        let t_out = self.out_time();
        let mut grad_in = vec![0.0f32; self.input_len()];
        if !kernels::reference_kernels() {
            // Slice-zipped variant of the reference loop below: same
            // (t, f, j) visit order and per-element expressions, so the
            // accumulation chains — and therefore the bits — match. The
            // zips just drop the per-access bounds checks.
            for t in 0..t_out {
                let base = t * c;
                let xs = &self.input_cache[base..base + k * c];
                let gi = &mut grad_in[base..base + k * c];
                for f in 0..f_n {
                    let go = grad_out[t * f_n + f];
                    if go == 0.0 {
                        continue;
                    }
                    self.b.g[f] += go;
                    let wf = &self.w.w[f * k * c..(f + 1) * k * c];
                    let gf = &mut self.w.g[f * k * c..(f + 1) * k * c];
                    for (((gf_v, &wv), &xv), gi_v) in
                        gf.iter_mut().zip(wf).zip(xs).zip(gi.iter_mut())
                    {
                        *gf_v += go * xv;
                        *gi_v += go * wv;
                    }
                }
            }
            return grad_in;
        }
        for t in 0..t_out {
            let base = t * c;
            for f in 0..f_n {
                let go = grad_out[t * f_n + f];
                if go == 0.0 {
                    continue;
                }
                self.b.g[f] += go;
                let wf = &self.w.w[f * k * c..(f + 1) * k * c];
                let gf = &mut self.w.g[f * k * c..(f + 1) * k * c];
                for j in 0..k * c {
                    gf[j] += go * self.input_cache[base + j];
                    grad_in[base + j] += go * wf[j];
                }
            }
        }
        grad_in
    }

    fn init_weights(&mut self, rng: &mut InitRng) {
        let fan_in = self.kernel * self.in_ch;
        self.w.w = he_uniform(rng, fan_in, self.filters * fan_in);
        self.b.w = vec![0.0; self.filters];
        self.rev += 1;
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
        // The visitor held `&mut` to the weights; assume they changed.
        self.rev += 1;
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn macs(&self) -> usize {
        self.out_time() * self.filters * self.kernel * self.in_ch
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::check_layer;

    #[test]
    fn identity_kernel_shifts_channels() {
        // One filter picking channel 0 at kernel tap 0.
        let mut conv = Conv1d::new(0, 4, 2, 1, 2).unwrap();
        conv.w.w = vec![1.0, 0.0, 0.0, 0.0]; // [f=0][k=0][c=0]=1
        let input = vec![
            1.0, 10.0, // t=0
            2.0, 20.0, // t=1
            3.0, 30.0, // t=2
            4.0, 40.0, // t=3
        ];
        let out = conv.forward(&input);
        assert_eq!(out, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn averaging_kernel() {
        let mut conv = Conv1d::new(0, 3, 1, 1, 3).unwrap();
        conv.w.w = vec![1.0 / 3.0; 3];
        conv.b.w = vec![1.0];
        let out = conv.forward(&[3.0, 6.0, 9.0]);
        assert!((out[0] - 7.0).abs() < 1e-6);
    }

    #[test]
    fn shapes_and_counts_match_paper_branch() {
        // The paper's 400 ms branch: 40×3 input, 16 filters, kernel 5.
        let conv = Conv1d::new(0, 40, 3, 16, 5).unwrap();
        assert_eq!(conv.input_len(), 120);
        assert_eq!(conv.out_time(), 36);
        assert_eq!(conv.output_len(), 576);
        assert_eq!(conv.param_count(), 16 * 5 * 3 + 16);
        assert_eq!(conv.macs(), 36 * 16 * 15);
    }

    #[test]
    fn gradient_check() {
        let mut conv = Conv1d::new(0, 6, 2, 3, 3).unwrap();
        conv.init_weights(&mut InitRng::new(5));
        let input: Vec<f32> = (0..12).map(|i| (i as f32 * 0.7).sin()).collect();
        check_layer(&mut conv, &input, 2e-2);
    }

    #[test]
    fn rejects_bad_dimensions_with_errors() {
        let err = Conv1d::new(0, 3, 1, 1, 5).unwrap_err();
        assert!(
            matches!(&err, NnError::InvalidLayer { layer, reason }
                if *layer == "conv1d" && reason.contains("kernel 5 exceeds time 3")),
            "unexpected error: {err}"
        );
        for (time, in_ch, filters, kernel) in
            [(0, 1, 1, 1), (3, 0, 1, 1), (3, 1, 0, 1), (3, 1, 1, 0)]
        {
            let err = Conv1d::new(0, time, in_ch, filters, kernel).unwrap_err();
            assert!(
                matches!(&err, NnError::InvalidLayer { reason, .. }
                    if reason.contains("positive")),
                "unexpected error: {err}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "conv1d input length")]
    fn rejects_wrong_input_len() {
        let mut conv = Conv1d::new(0, 4, 2, 1, 2).unwrap();
        let _ = conv.forward(&[0.0; 7]);
    }
}
