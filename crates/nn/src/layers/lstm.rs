//! Long short-term memory layer (baseline model substrate).

use super::activation::sigmoid;
use super::Layer;
use crate::init::{glorot_uniform, InitRng};
use crate::param::Param;

/// An LSTM over a `[T × C]` sequence, returning the final hidden state
/// `[H]`.
///
/// Gate order in all stacked buffers: input `i`, forget `f`, candidate
/// `g`, output `o`. The forget-gate bias is initialised to 1, the usual
/// trick that stabilises early training.
#[derive(Debug, Clone)]
pub struct Lstm {
    time: usize,
    in_ch: usize,
    hidden: usize,
    /// Input weights `[4H × C]`.
    wx: Param,
    /// Recurrent weights `[4H × H]`.
    wh: Param,
    /// Gate biases `[4H]`.
    b: Param,
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    xs: Vec<f32>,
    /// Per step: gates after nonlinearity `[T × 4H]`.
    gates: Vec<f32>,
    /// Cell states `[T × H]`.
    cs: Vec<f32>,
    /// tanh(c) per step `[T × H]`.
    tanh_cs: Vec<f32>,
    /// Hidden states `[T × H]`.
    hs: Vec<f32>,
}

impl Lstm {
    /// Creates an LSTM layer with zeroed weights.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(index: usize, time: usize, in_ch: usize, hidden: usize) -> Self {
        assert!(
            time > 0 && in_ch > 0 && hidden > 0,
            "lstm dimensions must be positive"
        );
        Self {
            time,
            in_ch,
            hidden,
            wx: Param::new(format!("lstm{index}.wx"), vec![0.0; 4 * hidden * in_ch]),
            wh: Param::new(format!("lstm{index}.wh"), vec![0.0; 4 * hidden * hidden]),
            b: Param::new(format!("lstm{index}.b"), vec![0.0; 4 * hidden]),
            cache: None,
        }
    }

    /// Hidden size.
    pub fn hidden(&self) -> usize {
        self.hidden
    }
}

impl Layer for Lstm {
    fn kind(&self) -> &'static str {
        "lstm"
    }

    fn input_len(&self) -> usize {
        self.time * self.in_ch
    }

    fn output_len(&self) -> usize {
        self.hidden
    }

    fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.input_len(), "lstm input length");
        let (t_n, c_n, h_n) = (self.time, self.in_ch, self.hidden);
        let mut gates = vec![0.0f32; t_n * 4 * h_n];
        let mut cs = vec![0.0f32; t_n * h_n];
        let mut tanh_cs = vec![0.0f32; t_n * h_n];
        let mut hs = vec![0.0f32; t_n * h_n];

        let mut h_prev = vec![0.0f32; h_n];
        let mut c_prev = vec![0.0f32; h_n];

        for t in 0..t_n {
            let x = &input[t * c_n..(t + 1) * c_n];
            let z = &mut gates[t * 4 * h_n..(t + 1) * 4 * h_n];
            // z = Wx·x + Wh·h_prev + b
            for (j, zj) in z.iter_mut().enumerate() {
                let mut acc = self.b.w[j];
                let wx_row = &self.wx.w[j * c_n..(j + 1) * c_n];
                for (w, xv) in wx_row.iter().zip(x) {
                    acc += w * xv;
                }
                let wh_row = &self.wh.w[j * h_n..(j + 1) * h_n];
                for (w, hv) in wh_row.iter().zip(&h_prev) {
                    acc += w * hv;
                }
                *zj = acc;
            }
            // Nonlinearities in place, then state update.
            for k in 0..h_n {
                let i_g = sigmoid(z[k]);
                let f_g = sigmoid(z[h_n + k]);
                let g_g = z[2 * h_n + k].tanh();
                let o_g = sigmoid(z[3 * h_n + k]);
                z[k] = i_g;
                z[h_n + k] = f_g;
                z[2 * h_n + k] = g_g;
                z[3 * h_n + k] = o_g;
                let c = f_g * c_prev[k] + i_g * g_g;
                let tc = c.tanh();
                cs[t * h_n + k] = c;
                tanh_cs[t * h_n + k] = tc;
                hs[t * h_n + k] = o_g * tc;
            }
            h_prev.copy_from_slice(&hs[t * h_n..(t + 1) * h_n]);
            c_prev.copy_from_slice(&cs[t * h_n..(t + 1) * h_n]);
        }

        let out = h_prev.clone();
        self.cache = Some(Cache {
            xs: input.to_vec(),
            gates,
            cs,
            tanh_cs,
            hs,
        });
        out
    }

    fn backward(&mut self, grad_out: &[f32]) -> Vec<f32> {
        assert_eq!(grad_out.len(), self.hidden, "lstm grad length");
        let cache = self.cache.as_ref().expect("forward not called");
        let (t_n, c_n, h_n) = (self.time, self.in_ch, self.hidden);

        let mut grad_in = vec![0.0f32; t_n * c_n];
        let mut dh = grad_out.to_vec();
        let mut dc = vec![0.0f32; h_n];
        let mut dz = vec![0.0f32; 4 * h_n];

        for t in (0..t_n).rev() {
            let gates = &cache.gates[t * 4 * h_n..(t + 1) * 4 * h_n];
            let tanh_c = &cache.tanh_cs[t * h_n..(t + 1) * h_n];
            let c_prev: &[f32] = if t == 0 {
                &[]
            } else {
                &cache.cs[(t - 1) * h_n..t * h_n]
            };
            let h_prev: &[f32] = if t == 0 {
                &[]
            } else {
                &cache.hs[(t - 1) * h_n..t * h_n]
            };

            for k in 0..h_n {
                let i_g = gates[k];
                let f_g = gates[h_n + k];
                let g_g = gates[2 * h_n + k];
                let o_g = gates[3 * h_n + k];
                let tc = tanh_c[k];
                let do_g = dh[k] * tc;
                let dc_k = dc[k] + dh[k] * o_g * (1.0 - tc * tc);
                let di = dc_k * g_g;
                let dg = dc_k * i_g;
                let cp = if t == 0 { 0.0 } else { c_prev[k] };
                let df = dc_k * cp;
                dc[k] = dc_k * f_g;
                dz[k] = di * i_g * (1.0 - i_g);
                dz[h_n + k] = df * f_g * (1.0 - f_g);
                dz[2 * h_n + k] = dg * (1.0 - g_g * g_g);
                dz[3 * h_n + k] = do_g * o_g * (1.0 - o_g);
            }

            // Parameter gradients and downstream gradients.
            let x = &cache.xs[t * c_n..(t + 1) * c_n];
            let dx = &mut grad_in[t * c_n..(t + 1) * c_n];
            let mut dh_prev = vec![0.0f32; h_n];
            for (j, &dzj) in dz.iter().enumerate() {
                if dzj == 0.0 {
                    continue;
                }
                self.b.g[j] += dzj;
                let gx = &mut self.wx.g[j * c_n..(j + 1) * c_n];
                let wx_row = &self.wx.w[j * c_n..(j + 1) * c_n];
                for i in 0..c_n {
                    gx[i] += dzj * x[i];
                    dx[i] += dzj * wx_row[i];
                }
                if t > 0 {
                    let gh = &mut self.wh.g[j * h_n..(j + 1) * h_n];
                    let wh_row = &self.wh.w[j * h_n..(j + 1) * h_n];
                    for k in 0..h_n {
                        gh[k] += dzj * h_prev[k];
                        dh_prev[k] += dzj * wh_row[k];
                    }
                }
            }
            dh = dh_prev;
        }

        grad_in
    }

    fn init_weights(&mut self, rng: &mut InitRng) {
        self.wx.w = glorot_uniform(rng, self.in_ch, self.hidden, 4 * self.hidden * self.in_ch);
        self.wh.w = glorot_uniform(rng, self.hidden, self.hidden, 4 * self.hidden * self.hidden);
        self.b.w = vec![0.0; 4 * self.hidden];
        // Forget-gate bias = 1.
        for k in self.hidden..2 * self.hidden {
            self.b.w[k] = 1.0;
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.wx);
        f(&mut self.wh);
        f(&mut self.b);
    }

    fn param_count(&self) -> usize {
        self.wx.len() + self.wh.len() + self.b.len()
    }

    fn macs(&self) -> usize {
        self.time * 4 * self.hidden * (self.in_ch + self.hidden)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::check_layer;

    #[test]
    fn output_shape_and_counts() {
        let l = Lstm::new(0, 40, 9, 32);
        assert_eq!(l.input_len(), 360);
        assert_eq!(l.output_len(), 32);
        assert_eq!(l.param_count(), 4 * 32 * 9 + 4 * 32 * 32 + 4 * 32);
        assert!(l.macs() > 0);
    }

    #[test]
    fn zero_weights_give_zero_output() {
        let mut l = Lstm::new(0, 3, 2, 4);
        let out = l.forward(&[1.0; 6]);
        // o-gate = σ(0) = 0.5, c = 0.5·tanh(0) = 0 → h = 0.
        assert!(out.iter().all(|&v| v.abs() < 1e-7));
    }

    #[test]
    fn forget_bias_initialised_to_one() {
        let mut l = Lstm::new(0, 3, 2, 4);
        l.init_weights(&mut InitRng::new(1));
        for k in 4..8 {
            assert_eq!(l.b.w[k], 1.0);
        }
        assert_eq!(l.b.w[0], 0.0);
    }

    #[test]
    fn gradient_check_small() {
        let mut l = Lstm::new(0, 4, 3, 3);
        l.init_weights(&mut InitRng::new(7));
        let input: Vec<f32> = (0..12).map(|i| (i as f32 * 0.35).sin() * 0.8).collect();
        check_layer(&mut l, &input, 3e-2);
    }

    #[test]
    fn responds_to_temporal_order() {
        let mut l = Lstm::new(0, 4, 1, 4);
        l.init_weights(&mut InitRng::new(3));
        let fwd = l.forward(&[1.0, 2.0, 3.0, 4.0]);
        let rev = l.forward(&[4.0, 3.0, 2.0, 1.0]);
        let diff: f32 = fwd.iter().zip(&rev).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-4, "LSTM output should depend on order");
    }

    #[test]
    fn bounded_output() {
        let mut l = Lstm::new(0, 10, 2, 6);
        l.init_weights(&mut InitRng::new(11));
        let input: Vec<f32> = (0..20).map(|i| (i as f32) * 10.0).collect();
        let out = l.forward(&input);
        // h = o·tanh(c) ∈ (−1, 1).
        assert!(out.iter().all(|v| v.abs() <= 1.0));
    }
}
