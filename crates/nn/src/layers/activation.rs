//! Element-wise activation layers.

use super::Layer;

/// Rectified linear unit: `y = max(0, x)`.
#[derive(Debug, Clone)]
pub struct Relu {
    len: usize,
    mask: Vec<bool>,
}

impl Relu {
    /// Creates a ReLU over `len` values.
    pub fn new(len: usize) -> Self {
        Self {
            len,
            mask: Vec::new(),
        }
    }
}

impl Layer for Relu {
    fn kind(&self) -> &'static str {
        "relu"
    }

    fn input_len(&self) -> usize {
        self.len
    }

    fn output_len(&self) -> usize {
        self.len
    }

    fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.len, "relu input length");
        self.mask.clear();
        self.mask.extend(input.iter().map(|&x| x > 0.0));
        input.iter().map(|&x| x.max(0.0)).collect()
    }

    fn backward(&mut self, grad_out: &[f32]) -> Vec<f32> {
        assert_eq!(grad_out.len(), self.len, "relu grad length");
        assert_eq!(self.mask.len(), self.len, "forward not called");
        grad_out
            .iter()
            .zip(&self.mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Logistic sigmoid: `y = 1 / (1 + e^{-x})`.
///
/// Training uses the numerically stabler logits loss
/// ([`crate::loss::WeightedBce`]), so networks built for training end in
/// a bare dense layer; `Sigmoid` exists for inference-style networks and
/// for the quantizer's final activation.
#[derive(Debug, Clone)]
pub struct Sigmoid {
    len: usize,
    output_cache: Vec<f32>,
}

impl Sigmoid {
    /// Creates a sigmoid over `len` values.
    pub fn new(len: usize) -> Self {
        Self {
            len,
            output_cache: Vec::new(),
        }
    }
}

/// The scalar sigmoid function.
pub(crate) fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

impl Layer for Sigmoid {
    fn kind(&self) -> &'static str {
        "sigmoid"
    }

    fn input_len(&self) -> usize {
        self.len
    }

    fn output_len(&self) -> usize {
        self.len
    }

    fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.len, "sigmoid input length");
        let out: Vec<f32> = input.iter().map(|&x| sigmoid(x)).collect();
        self.output_cache = out.clone();
        out
    }

    fn backward(&mut self, grad_out: &[f32]) -> Vec<f32> {
        assert_eq!(grad_out.len(), self.len, "sigmoid grad length");
        assert_eq!(self.output_cache.len(), self.len, "forward not called");
        grad_out
            .iter()
            .zip(&self.output_cache)
            .map(|(&g, &y)| g * y * (1.0 - y))
            .collect()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut r = Relu::new(4);
        let y = r.forward(&[-1.0, 0.0, 2.0, -3.0]);
        assert_eq!(y, vec![0.0, 0.0, 2.0, 0.0]);
        let g = r.backward(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(g, vec![0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn sigmoid_known_values() {
        let mut s = Sigmoid::new(3);
        let y = s.forward(&[0.0, 100.0, -100.0]);
        assert!((y[0] - 0.5).abs() < 1e-7);
        assert!((y[1] - 1.0).abs() < 1e-7);
        assert!(y[2].abs() < 1e-7);
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sigmoid_gradient_peaks_at_zero() {
        let mut s = Sigmoid::new(2);
        let _ = s.forward(&[0.0, 4.0]);
        let g = s.backward(&[1.0, 1.0]);
        assert!((g[0] - 0.25).abs() < 1e-6);
        assert!(g[1] < g[0]);
    }

    #[test]
    fn sigmoid_gradient_check_numeric() {
        let mut s = Sigmoid::new(1);
        for &x in &[-2.0f32, -0.3, 0.0, 0.9, 3.0] {
            let _ = s.forward(&[x]);
            let g = s.backward(&[1.0])[0];
            let eps = 1e-3;
            let num = (sigmoid(x + eps) - sigmoid(x - eps)) / (2.0 * eps);
            assert!((g - num).abs() < 1e-4, "x={x}: {g} vs {num}");
        }
    }

    #[test]
    fn activations_have_no_params() {
        let r = Relu::new(4);
        let s = Sigmoid::new(4);
        assert_eq!(r.param_count(), 0);
        assert_eq!(s.param_count(), 0);
    }
}
