//! The paper's modality-split architecture: route channel subsets into
//! parallel branch sub-networks and concatenate their outputs.
//!
//! The proposed CNN "splits the input matrix into three matrices, each
//! with dimension n × 3" (accelerometer / gyroscope / Euler), runs each
//! through Conv1D + MaxPool, and concatenates before the dense trunk.

use super::Layer;
use crate::init::InitRng;
use crate::param::Param;

/// One branch of a [`SplitConcat`]: a channel selection plus a stack of
/// layers applied to the gathered `[T × |channels|]` sub-matrix.
#[derive(Debug, Clone)]
pub struct Branch {
    channels: Vec<usize>,
    layers: Vec<Box<dyn Layer>>,
}

impl Branch {
    /// Creates a branch over the given input-channel indices.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is empty or `layers` is empty, or if the
    /// layer chain's shapes do not line up.
    pub fn new(channels: Vec<usize>, layers: Vec<Box<dyn Layer>>) -> Self {
        assert!(!channels.is_empty(), "branch needs at least one channel");
        assert!(!layers.is_empty(), "branch needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].output_len(),
                pair[1].input_len(),
                "branch layer shapes do not chain"
            );
        }
        Self { channels, layers }
    }

    /// The input-channel indices this branch consumes.
    pub fn channels(&self) -> &[usize] {
        &self.channels
    }

    /// The branch's layer stack.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable layer stack (quantizer calibration).
    pub(crate) fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Flattened output length of the branch.
    pub fn output_len(&self) -> usize {
        self.layers.last().expect("non-empty").output_len()
    }

    fn input_len(&self) -> usize {
        self.layers.first().expect("non-empty").input_len()
    }
}

/// Splits `[T × C]` input into channel groups, runs one sub-network per
/// group, and concatenates the flattened outputs.
#[derive(Debug, Clone)]
pub struct SplitConcat {
    time: usize,
    in_ch: usize,
    branches: Vec<Branch>,
}

impl SplitConcat {
    /// Creates the split/concat layer.
    ///
    /// # Panics
    ///
    /// Panics if any branch references a channel `>= in_ch`, or a
    /// branch's first layer does not expect `time × |channels|` inputs.
    pub fn new(time: usize, in_ch: usize, branches: Vec<Branch>) -> Self {
        assert!(!branches.is_empty(), "split needs at least one branch");
        for (i, b) in branches.iter().enumerate() {
            assert!(
                b.channels.iter().all(|&c| c < in_ch),
                "branch {i} references channel out of range"
            );
            assert_eq!(
                b.input_len(),
                time * b.channels.len(),
                "branch {i} first layer expects {} values, selection provides {}",
                b.input_len(),
                time * b.channels.len()
            );
        }
        Self {
            time,
            in_ch,
            branches,
        }
    }

    /// The branches.
    pub fn branches(&self) -> &[Branch] {
        &self.branches
    }

    /// Mutable branches (quantizer calibration).
    pub(crate) fn branches_mut(&mut self) -> &mut [Branch] {
        &mut self.branches
    }

    /// Input time steps.
    pub fn in_time(&self) -> usize {
        self.time
    }

    /// Input channels.
    pub fn in_channels(&self) -> usize {
        self.in_ch
    }

    /// Gathers the selected channels of a `[T × C]` input into a dense
    /// `[T × |sel|]` buffer.
    pub fn gather(&self, input: &[f32], branch: usize) -> Vec<f32> {
        let sel = &self.branches[branch].channels;
        let mut out = Vec::with_capacity(self.time * sel.len());
        for t in 0..self.time {
            let row = &input[t * self.in_ch..(t + 1) * self.in_ch];
            for &c in sel {
                out.push(row[c]);
            }
        }
        out
    }
}

impl Layer for SplitConcat {
    fn kind(&self) -> &'static str {
        "split_concat"
    }

    fn input_len(&self) -> usize {
        self.time * self.in_ch
    }

    fn output_len(&self) -> usize {
        self.branches.iter().map(Branch::output_len).sum()
    }

    fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.input_len(), "split input length");
        let mut out = Vec::with_capacity(self.output_len());
        for bi in 0..self.branches.len() {
            let mut x = self.gather(input, bi);
            for layer in &mut self.branches[bi].layers {
                x = layer.forward(&x);
            }
            out.extend_from_slice(&x);
        }
        out
    }

    fn backward(&mut self, grad_out: &[f32]) -> Vec<f32> {
        assert_eq!(grad_out.len(), self.output_len(), "split grad length");
        let mut grad_in = vec![0.0f32; self.input_len()];
        let mut offset = 0;
        for branch in &mut self.branches {
            let blen = branch.output_len();
            let mut g = grad_out[offset..offset + blen].to_vec();
            offset += blen;
            for layer in branch.layers.iter_mut().rev() {
                g = layer.backward(&g);
            }
            // Scatter the branch input gradient back onto the selected
            // channels (accumulating, in case channels are shared).
            let sel = &branch.channels;
            for t in 0..self.time {
                for (j, &c) in sel.iter().enumerate() {
                    grad_in[t * self.in_ch + c] += g[t * sel.len() + j];
                }
            }
        }
        grad_in
    }

    fn init_weights(&mut self, rng: &mut InitRng) {
        for b in &mut self.branches {
            for layer in &mut b.layers {
                layer.init_weights(rng);
            }
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for b in &mut self.branches {
            for layer in &mut b.layers {
                layer.visit_params(f);
            }
        }
    }

    fn param_count(&self) -> usize {
        self.branches
            .iter()
            .flat_map(|b| b.layers.iter())
            .map(|l| l.param_count())
            .sum()
    }

    fn macs(&self) -> usize {
        self.branches
            .iter()
            .flat_map(|b| b.layers.iter())
            .map(|l| l.macs())
            .sum()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::check_layer;
    use crate::layers::{Conv1d, Dense, MaxPool1d, Relu};

    fn two_branch() -> SplitConcat {
        // Input [4 × 3]; branch A takes channels 0,1 through a dense
        // layer; branch B takes channel 2 through conv+pool.
        let mut d = Dense::new(0, 8, 3);
        d.init_weights(&mut InitRng::new(1));
        let mut c = Conv1d::new(1, 4, 1, 2, 2).unwrap();
        c.init_weights(&mut InitRng::new(2));
        let p = MaxPool1d::new(3, 2, 3);
        SplitConcat::new(
            4,
            3,
            vec![
                Branch::new(vec![0, 1], vec![Box::new(d)]),
                Branch::new(
                    vec![2],
                    vec![Box::new(c), Box::new(Relu::new(6)), Box::new(p)],
                ),
            ],
        )
    }

    #[test]
    fn shapes() {
        let s = two_branch();
        assert_eq!(s.input_len(), 12);
        assert_eq!(s.output_len(), 3 + 2);
        assert!(s.param_count() > 0);
    }

    #[test]
    fn gather_selects_channels() {
        let s = two_branch();
        let input: Vec<f32> = (0..12).map(|i| i as f32).collect();
        // Channel layout per row: [c0, c1, c2].
        assert_eq!(
            s.gather(&input, 0),
            vec![0.0, 1.0, 3.0, 4.0, 6.0, 7.0, 9.0, 10.0]
        );
        assert_eq!(s.gather(&input, 1), vec![2.0, 5.0, 8.0, 11.0]);
    }

    #[test]
    fn forward_concatenates_branch_outputs() {
        let mut s = two_branch();
        let input: Vec<f32> = (0..12).map(|i| (i as f32 * 0.3).sin()).collect();
        let out = s.forward(&input);
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn gradient_check() {
        let mut s = two_branch();
        let input: Vec<f32> = (0..12).map(|i| (i as f32 * 0.4).cos()).collect();
        check_layer(&mut s, &input, 3e-2);
    }

    #[test]
    fn paper_three_branch_architecture_shapes() {
        // n = 40 (400 ms), three n×3 branches, Conv1D(16, k=5) + MaxPool(2).
        let mk_branch = |idx: usize, sel: Vec<usize>| {
            let conv = Conv1d::new(idx, 40, 3, 16, 5).unwrap();
            let relu = Relu::new(36 * 16);
            let pool = MaxPool1d::new(36, 16, 2);
            Branch::new(
                sel,
                vec![
                    Box::new(conv) as Box<dyn Layer>,
                    Box::new(relu),
                    Box::new(pool),
                ],
            )
        };
        let s = SplitConcat::new(
            40,
            9,
            vec![
                mk_branch(0, vec![0, 1, 2]),
                mk_branch(1, vec![3, 4, 5]),
                mk_branch(2, vec![6, 7, 8]),
            ],
        );
        assert_eq!(s.output_len(), 3 * 18 * 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_channel_out_of_range() {
        let d = Dense::new(0, 4, 1);
        let _ = SplitConcat::new(4, 3, vec![Branch::new(vec![3], vec![Box::new(d)])]);
    }

    #[test]
    #[should_panic(expected = "expects")]
    fn rejects_mismatched_branch_input() {
        let d = Dense::new(0, 5, 1);
        let _ = SplitConcat::new(4, 3, vec![Branch::new(vec![0], vec![Box::new(d)])]);
    }
}
