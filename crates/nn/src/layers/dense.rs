//! Fully connected layer.

use super::Layer;
use crate::init::{he_uniform, InitRng};
use crate::param::Param;

/// A fully connected (dense) layer: `y = W·x + b`.
///
/// Weights are stored row-major `[out × in]`.
#[derive(Debug, Clone)]
pub struct Dense {
    in_len: usize,
    out_len: usize,
    w: Param,
    b: Param,
    input_cache: Vec<f32>,
}

impl Dense {
    /// Creates a dense layer with zeroed weights (call
    /// [`Layer::init_weights`] or load weights before use).
    ///
    /// `index` namespaces the parameter names (`dense<index>.w`).
    pub fn new(index: usize, in_len: usize, out_len: usize) -> Self {
        Self {
            in_len,
            out_len,
            w: Param::new(format!("dense{index}.w"), vec![0.0; in_len * out_len]),
            b: Param::new(format!("dense{index}.b"), vec![0.0; out_len]),
            input_cache: Vec::new(),
        }
    }

    /// Immutable view of the weight matrix (row-major `[out × in]`).
    pub fn weights(&self) -> &[f32] {
        &self.w.w
    }

    /// Immutable view of the bias vector.
    pub fn biases(&self) -> &[f32] {
        &self.b.w
    }

    /// Overwrites the bias vector (used for the paper's output-bias
    /// initialisation `b = log(p/(1-p))`).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != out_len`.
    pub fn set_biases(&mut self, b: &[f32]) {
        assert_eq!(b.len(), self.out_len, "bias length mismatch");
        self.b.w.copy_from_slice(b);
    }

    /// Input width.
    pub fn in_len(&self) -> usize {
        self.in_len
    }

    /// Output width.
    pub fn out_len(&self) -> usize {
        self.out_len
    }
}

impl Layer for Dense {
    fn kind(&self) -> &'static str {
        "dense"
    }

    fn input_len(&self) -> usize {
        self.in_len
    }

    fn output_len(&self) -> usize {
        self.out_len
    }

    fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.in_len, "dense input length");
        self.input_cache = input.to_vec();
        let mut out = self.b.w.clone();
        for (o, out_v) in out.iter_mut().enumerate() {
            let row = &self.w.w[o * self.in_len..(o + 1) * self.in_len];
            let mut acc = 0.0f32;
            for (wv, xv) in row.iter().zip(input) {
                acc += wv * xv;
            }
            *out_v += acc;
        }
        out
    }

    fn backward(&mut self, grad_out: &[f32]) -> Vec<f32> {
        assert_eq!(grad_out.len(), self.out_len, "dense grad length");
        assert_eq!(self.input_cache.len(), self.in_len, "forward not called");
        let mut grad_in = vec![0.0f32; self.in_len];
        for (o, &go) in grad_out.iter().enumerate() {
            self.b.g[o] += go;
            let row_w = &self.w.w[o * self.in_len..(o + 1) * self.in_len];
            let row_g = &mut self.w.g[o * self.in_len..(o + 1) * self.in_len];
            for i in 0..self.in_len {
                row_g[i] += go * self.input_cache[i];
                grad_in[i] += go * row_w[i];
            }
        }
        grad_in
    }

    fn init_weights(&mut self, rng: &mut InitRng) {
        self.w.w = he_uniform(rng, self.in_len, self.in_len * self.out_len);
        self.b.w = vec![0.0; self.out_len];
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn macs(&self) -> usize {
        self.in_len * self.out_len
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::check_layer;

    #[test]
    fn forward_matches_manual_computation() {
        let mut d = Dense::new(0, 3, 2);
        d.w.w = vec![1.0, 2.0, 3.0, -1.0, 0.5, 0.0];
        d.b.w = vec![0.1, -0.2];
        let y = d.forward(&[1.0, 1.0, 2.0]);
        assert!((y[0] - (0.1 + 1.0 + 2.0 + 6.0)).abs() < 1e-6);
        assert!((y[1] - (-0.2 - 1.0 + 0.5)).abs() < 1e-6);
    }

    #[test]
    fn gradient_check() {
        let mut d = Dense::new(0, 5, 4);
        let mut rng = InitRng::new(3);
        d.init_weights(&mut rng);
        let input: Vec<f32> = (0..5).map(|i| 0.3 * i as f32 - 0.7).collect();
        check_layer(&mut d, &input, 2e-2);
    }

    #[test]
    fn metadata() {
        let d = Dense::new(1, 10, 4);
        assert_eq!(d.kind(), "dense");
        assert_eq!(d.param_count(), 44);
        assert_eq!(d.macs(), 40);
        assert_eq!(d.input_len(), 10);
        assert_eq!(d.output_len(), 4);
    }

    #[test]
    fn set_biases_applies() {
        let mut d = Dense::new(0, 2, 1);
        d.set_biases(&[-3.17]);
        let y = d.forward(&[0.0, 0.0]);
        assert!((y[0] + 3.17).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "bias length")]
    fn set_biases_rejects_wrong_len() {
        let mut d = Dense::new(0, 2, 1);
        d.set_biases(&[0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "dense input length")]
    fn forward_rejects_wrong_len() {
        let mut d = Dense::new(0, 2, 1);
        let _ = d.forward(&[0.0; 3]);
    }

    #[test]
    fn init_is_seed_deterministic() {
        let mut a = Dense::new(0, 8, 8);
        let mut b = Dense::new(0, 8, 8);
        a.init_weights(&mut InitRng::new(9));
        b.init_weights(&mut InitRng::new(9));
        assert_eq!(a.w.w, b.w.w);
    }
}
