//! Fully connected layer.

use super::Layer;
use crate::init::{he_uniform, InitRng};
use crate::kernels;
use crate::param::Param;

/// A fully connected (dense) layer: `y = W·x + b`.
///
/// Weights are stored row-major `[out × in]`.
///
/// The weight gradient of one sample is the outer product
/// `grad_out ⊗ input` — a rank-1 matrix the trainer never needs
/// materialised per sample. In *factored-gradient* mode
/// ([`Dense::set_fast_grad`]) `backward` therefore skips every `w.g` /
/// `b.g` write and instead caches `grad_out`; the trainer reads the
/// `(grad_out, input)` pair via [`Dense::rank1_grad`] and folds whole
/// batches at once through [`Dense::fold_rank1_batch`], which
/// reconstructs exactly the per-element accumulation chains the naive
/// per-sample fold would have produced.
#[derive(Debug, Clone)]
pub struct Dense {
    in_len: usize,
    out_len: usize,
    w: Param,
    b: Param,
    input_cache: Vec<f32>,
    /// Factored-gradient mode: `backward` caches `grad_out` instead of
    /// accumulating `w.g`/`b.g`.
    fast_grad: bool,
    /// `grad_out` of the most recent `backward` in factored mode.
    last_go: Vec<f32>,
    /// Interleaved weight pack (see [`kernels::pack_dense_weights`]),
    /// valid while `packed_rev == rev`.
    packed: Vec<f32>,
    /// Weight revision the pack was built from.
    packed_rev: u64,
    /// Bumped whenever the weights may have changed (`visit_params`,
    /// `init_weights`). Weight mutation must go through those paths for
    /// the pack cache to stay coherent.
    rev: u64,
}

impl Dense {
    /// Creates a dense layer with zeroed weights (call
    /// [`Layer::init_weights`] or load weights before use).
    ///
    /// `index` namespaces the parameter names (`dense<index>.w`).
    pub fn new(index: usize, in_len: usize, out_len: usize) -> Self {
        Self {
            in_len,
            out_len,
            w: Param::new(format!("dense{index}.w"), vec![0.0; in_len * out_len]),
            b: Param::new(format!("dense{index}.b"), vec![0.0; out_len]),
            input_cache: Vec::new(),
            fast_grad: false,
            last_go: Vec::new(),
            packed: Vec::new(),
            packed_rev: 0,
            rev: 1,
        }
    }

    /// Rebuilds the interleaved weight pack if the weights changed
    /// since the last build; a no-op when the pack is already fresh.
    /// Only layers with at least one full group of eight outputs pack.
    pub fn ensure_packed(&mut self) {
        if self.out_len >= 8 && self.packed_rev != self.rev {
            self.packed = kernels::pack_dense_weights(&self.w.w, self.in_len, self.out_len);
            self.packed_rev = self.rev;
        }
    }

    /// The interleaved weight pack, if it is up to date with the
    /// current weights. The immutable workspace inference path uses
    /// this when a prior forward (or
    /// [`crate::network::Network::prepare_inference`]) already paid for
    /// the pack; `None` means fall back to the unpacked kernel.
    pub fn fresh_pack(&self) -> Option<&[f32]> {
        (self.out_len >= 8 && self.packed_rev == self.rev).then_some(&self.packed[..])
    }

    /// Immutable view of the weight matrix (row-major `[out × in]`).
    pub fn weights(&self) -> &[f32] {
        &self.w.w
    }

    /// Immutable view of the bias vector.
    pub fn biases(&self) -> &[f32] {
        &self.b.w
    }

    /// Overwrites the bias vector (used for the paper's output-bias
    /// initialisation `b = log(p/(1-p))`).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != out_len`.
    pub fn set_biases(&mut self, b: &[f32]) {
        assert_eq!(b.len(), self.out_len, "bias length mismatch");
        self.b.w.copy_from_slice(b);
    }

    /// Input width.
    pub fn in_len(&self) -> usize {
        self.in_len
    }

    /// Output width.
    pub fn out_len(&self) -> usize {
        self.out_len
    }

    /// Switches factored-gradient mode on or off (see the type docs).
    pub fn set_fast_grad(&mut self, on: bool) {
        self.fast_grad = on;
    }

    /// The `(grad_out, input)` factors of the last sample's weight
    /// gradient, valid after a factored-mode `backward`.
    pub fn rank1_grad(&self) -> (&[f32], &[f32]) {
        (&self.last_go, &self.input_cache)
    }

    /// Accumulates a batch of factored gradients into `w.g` / `b.g`.
    ///
    /// Each contribution is `(grad_out, input, input_finite)`. The loop
    /// runs param-major for locality, but every gradient *element* still
    /// sees its per-sample terms in slice order — the same chains as
    /// folding per-sample dense gradients one sample at a time, so the
    /// result is bit-identical to the reference fold. Rows with
    /// `grad_out[o] == 0.0` are skipped: their terms are `±0.0 · x`,
    /// which cannot move a running sum (the sum can never be `-0.0`) —
    /// unless `x` is non-finite, which is what the flag guards.
    pub fn fold_rank1_batch(&mut self, contribs: &[(&[f32], &[f32], bool)]) {
        for (go, _, _) in contribs {
            for (bg, &g) in self.b.g.iter_mut().zip(*go) {
                *bg += g;
            }
        }
        for o in 0..self.out_len {
            let row = &mut self.w.g[o * self.in_len..(o + 1) * self.in_len];
            for (go, x, finite) in contribs {
                let g = go[o];
                if g == 0.0 && *finite {
                    continue;
                }
                for (rv, &xv) in row.iter_mut().zip(*x) {
                    *rv += g * xv;
                }
            }
        }
    }
}

impl Layer for Dense {
    fn kind(&self) -> &'static str {
        "dense"
    }

    fn input_len(&self) -> usize {
        self.in_len
    }

    fn output_len(&self) -> usize {
        self.out_len
    }

    fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.in_len, "dense input length");
        self.input_cache.clear();
        self.input_cache.extend_from_slice(input);
        let mut out = self.b.w.clone();
        if kernels::reference_kernels() {
            for (o, out_v) in out.iter_mut().enumerate() {
                let row = &self.w.w[o * self.in_len..(o + 1) * self.in_len];
                let mut acc = 0.0f32;
                for (wv, xv) in row.iter().zip(input) {
                    acc += wv * xv;
                }
                *out_v += acc;
            }
        } else if self.out_len >= 8 {
            // Interleaved-pack kernel, bit-identical to the loop above
            // (each output's accumulator still sums `j` ascending from
            // 0.0). The pack is cached across calls and rebuilt only
            // when the weights change, so its cost amortises over a
            // whole batch of forwards.
            self.ensure_packed();
            kernels::dense_forward_packed(input, &self.w.w, &self.packed, &self.b.w, &mut out);
        } else {
            // Register-blocked, bit-identical to the loop above.
            kernels::dense_forward(input, &self.w.w, &self.b.w, &mut out);
        }
        out
    }

    fn backward(&mut self, grad_out: &[f32]) -> Vec<f32> {
        assert_eq!(grad_out.len(), self.out_len, "dense grad length");
        assert_eq!(self.input_cache.len(), self.in_len, "forward not called");
        let mut grad_in = vec![0.0f32; self.in_len];
        if self.fast_grad {
            // Factored mode: cache grad_out for the trainer's rank-1
            // fold instead of materialising the outer product, and skip
            // zero rows of the input gradient (their `±0·w` terms
            // cannot change a running sum that is never `-0.0`).
            self.last_go.clear();
            self.last_go.extend_from_slice(grad_out);
            for (o, &go) in grad_out.iter().enumerate() {
                if go == 0.0 {
                    continue;
                }
                let row_w = &self.w.w[o * self.in_len..(o + 1) * self.in_len];
                for (gi, &wv) in grad_in.iter_mut().zip(row_w) {
                    *gi += go * wv;
                }
            }
            return grad_in;
        }
        for (o, &go) in grad_out.iter().enumerate() {
            self.b.g[o] += go;
            let row_w = &self.w.w[o * self.in_len..(o + 1) * self.in_len];
            let row_g = &mut self.w.g[o * self.in_len..(o + 1) * self.in_len];
            for i in 0..self.in_len {
                row_g[i] += go * self.input_cache[i];
                grad_in[i] += go * row_w[i];
            }
        }
        grad_in
    }

    fn init_weights(&mut self, rng: &mut InitRng) {
        self.w.w = he_uniform(rng, self.in_len, self.in_len * self.out_len);
        self.b.w = vec![0.0; self.out_len];
        self.rev += 1;
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
        // The visitor held `&mut` to the weights; assume they changed.
        self.rev += 1;
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn macs(&self) -> usize {
        self.in_len * self.out_len
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::check_layer;

    #[test]
    fn forward_matches_manual_computation() {
        let mut d = Dense::new(0, 3, 2);
        d.w.w = vec![1.0, 2.0, 3.0, -1.0, 0.5, 0.0];
        d.b.w = vec![0.1, -0.2];
        let y = d.forward(&[1.0, 1.0, 2.0]);
        assert!((y[0] - (0.1 + 1.0 + 2.0 + 6.0)).abs() < 1e-6);
        assert!((y[1] - (-0.2 - 1.0 + 0.5)).abs() < 1e-6);
    }

    #[test]
    fn gradient_check() {
        let mut d = Dense::new(0, 5, 4);
        let mut rng = InitRng::new(3);
        d.init_weights(&mut rng);
        let input: Vec<f32> = (0..5).map(|i| 0.3 * i as f32 - 0.7).collect();
        check_layer(&mut d, &input, 2e-2);
    }

    #[test]
    fn metadata() {
        let d = Dense::new(1, 10, 4);
        assert_eq!(d.kind(), "dense");
        assert_eq!(d.param_count(), 44);
        assert_eq!(d.macs(), 40);
        assert_eq!(d.input_len(), 10);
        assert_eq!(d.output_len(), 4);
    }

    #[test]
    fn set_biases_applies() {
        let mut d = Dense::new(0, 2, 1);
        d.set_biases(&[-3.17]);
        let y = d.forward(&[0.0, 0.0]);
        assert!((y[0] + 3.17).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "bias length")]
    fn set_biases_rejects_wrong_len() {
        let mut d = Dense::new(0, 2, 1);
        d.set_biases(&[0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "dense input length")]
    fn forward_rejects_wrong_len() {
        let mut d = Dense::new(0, 2, 1);
        let _ = d.forward(&[0.0; 3]);
    }

    #[test]
    fn init_is_seed_deterministic() {
        let mut a = Dense::new(0, 8, 8);
        let mut b = Dense::new(0, 8, 8);
        a.init_weights(&mut InitRng::new(9));
        b.init_weights(&mut InitRng::new(9));
        assert_eq!(a.w.w, b.w.w);
    }
}
