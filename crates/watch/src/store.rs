//! The ring-buffer time-series store: one fixed-capacity series per
//! telemetry metric, fed by [`TsStore::sample`] from a live
//! [`Registry`] via the allocation-free visitor API.
//!
//! Counters and histograms are stored **cumulatively** — each tick
//! appends the current running total — and rates / windowed quantiles
//! are derived at query time from the difference between the newest
//! point and the baseline point in force at the window start. This
//! keeps the write path trivial (copy a few floats) and makes every
//! windowed answer exact with respect to what was sampled.
//!
//! After a series' rings exist (first tick that sees the metric), a
//! sampling tick performs **zero heap allocations** — asserted by the
//! workspace's `noop_overhead` counting-allocator test.

use crate::ring::PointRing;
use prefall_telemetry::{Histogram, Registry, RegistryVisitor};
use std::collections::BTreeMap;

/// Store sizing and cadence.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreConfig {
    /// Seconds between samples (the background daemon's tick period,
    /// and the spacing manual [`crate::Watch::tick_at`] callers should
    /// roughly honour).
    pub resolution_s: f64,
    /// How far back queries can reach. Ring capacity is
    /// `retention_s / resolution_s` points per series.
    pub retention_s: f64,
    /// Hard cap on distinct series (labelled metrics can fan out);
    /// metrics beyond the cap are counted in
    /// [`TsStore::dropped_series`] and skipped.
    pub max_series: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            resolution_s: 1.0,
            retention_s: 600.0,
            max_series: 512,
        }
    }
}

impl StoreConfig {
    /// Points each ring holds.
    pub fn capacity(&self) -> usize {
        ((self.retention_s / self.resolution_s).ceil() as usize).max(2)
    }
}

/// What kind of telemetry metric a series mirrors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    Counter,
    Gauge,
    Histogram,
}

impl SeriesKind {
    pub fn as_str(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
            SeriesKind::Histogram => "histogram",
        }
    }
}

/// A histogram mirrored as parallel cumulative rings: observation
/// count, sum, and one ring per bucket, sharing one timestamp ring so
/// a windowed bucket delta is two index lookups per bucket.
#[derive(Debug)]
pub(crate) struct HistSeries {
    bounds: Box<[f64]>,
    /// `(t, cumulative count)` — also the shared time index.
    count: PointRing,
    sum: PointRing,
    /// Cumulative per-bucket counts, `bounds.len() + 1` rings.
    buckets: Vec<PointRing>,
}

impl HistSeries {
    fn new(bounds: &[f64], cap: usize) -> Self {
        Self {
            bounds: bounds.to_vec().into_boxed_slice(),
            count: PointRing::new(cap),
            sum: PointRing::new(cap),
            buckets: (0..=bounds.len()).map(|_| PointRing::new(cap)).collect(),
        }
    }

    fn push(&mut self, t: f64, hist: &Histogram) {
        self.count.push(t, hist.count() as f64);
        self.sum.push(t, hist.sum());
        for (ring, &c) in self.buckets.iter_mut().zip(hist.counts()) {
            ring.push(t, c as f64);
        }
    }

    /// Observations landing inside the window `[now - window_s, now]`
    /// (exclusive of whatever the baseline sample had already seen).
    pub(crate) fn window_count(&self, now: f64, window_s: f64) -> Option<f64> {
        let (base, end) = self.count.window_indices(now, window_s)?;
        let (_, v_end) = self.count.get(end)?;
        let (_, v_base) = self.count.get(base)?;
        Some((v_end - v_base).max(0.0))
    }

    /// Interpolated quantile of the observations inside the window,
    /// derived from per-bucket deltas. Two passes over the bucket
    /// rings, no allocation. Assumes non-negative observations (true
    /// of every latency / lead-time / rate layout in this repo): the
    /// first bucket's lower edge is 0 and the overflow bucket's upper
    /// edge is taken as the last bound (tail values clamp there).
    pub(crate) fn window_quantile(&self, q: f64, now: f64, window_s: f64) -> Option<f64> {
        // All rings share the timestamp sequence, so one index pair
        // bounds every bucket's delta.
        let (base, end) = self.count.window_indices(now, window_s)?;
        let delta = |ring: &PointRing| -> f64 {
            let v_end = ring.get(end).map(|(_, v)| v).unwrap_or(0.0);
            let v_base = ring.get(base).map(|(_, v)| v).unwrap_or(0.0);
            (v_end - v_base).max(0.0)
        };
        let mut total = 0.0;
        for ring in &self.buckets {
            total += delta(ring);
        }
        if total <= 0.0 {
            return None;
        }
        let target = q.clamp(0.0, 1.0) * total;
        let mut cum = 0.0;
        for (i, ring) in self.buckets.iter().enumerate() {
            let d = delta(ring);
            if d <= 0.0 {
                continue;
            }
            let next = cum + d;
            if next >= target {
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    // Overflow bucket: no upper bound exists; clamp to
                    // the last bound so the answer stays finite.
                    self.bounds[self.bounds.len() - 1]
                };
                let frac = ((target - cum) / d).clamp(0.0, 1.0);
                return Some(lo + (hi - lo) * frac);
            }
            cum = next;
        }
        Some(self.bounds[self.bounds.len() - 1])
    }
}

#[derive(Debug)]
pub(crate) enum SeriesData {
    Counter(PointRing),
    Gauge(PointRing),
    Hist(HistSeries),
}

impl SeriesData {
    pub(crate) fn kind(&self) -> SeriesKind {
        match self {
            SeriesData::Counter(_) => SeriesKind::Counter,
            SeriesData::Gauge(_) => SeriesKind::Gauge,
            SeriesData::Hist(_) => SeriesKind::Histogram,
        }
    }
}

/// The in-process TSDB: named series over fixed-capacity rings.
#[derive(Debug)]
pub struct TsStore {
    cfg: StoreConfig,
    series: BTreeMap<String, SeriesData>,
    dropped: u64,
}

impl TsStore {
    pub fn new(cfg: StoreConfig) -> Self {
        Self {
            cfg,
            series: BTreeMap::new(),
            dropped: 0,
        }
    }

    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// Distinct series currently held.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Metrics skipped because [`StoreConfig::max_series`] was reached.
    pub fn dropped_series(&self) -> u64 {
        self.dropped
    }

    /// Samples every live metric of `registry` at time `now` (seconds,
    /// on whatever clock the caller drives — wall for the daemon,
    /// virtual for deterministic replays). Allocation-free for every
    /// series that already has rings.
    pub fn sample(&mut self, registry: &Registry, now: f64) {
        let mut visitor = SampleVisitor { store: self, now };
        registry.visit(&mut visitor);
    }

    fn room_for_new_series(&mut self) -> bool {
        if self.series.len() >= self.cfg.max_series {
            self.dropped += 1;
            return false;
        }
        true
    }

    pub(crate) fn get(&self, name: &str) -> Option<&SeriesData> {
        self.series.get(name)
    }

    /// `(name, kind, points held)` for every series.
    pub fn series_names(&self) -> Vec<(String, SeriesKind, usize)> {
        self.series
            .iter()
            .map(|(name, data)| {
                let n = match data {
                    SeriesData::Counter(r) | SeriesData::Gauge(r) => r.len(),
                    SeriesData::Hist(h) => h.count.len(),
                };
                (name.clone(), data.kind(), n)
            })
            .collect()
    }

    /// Raw points of a counter or gauge series inside the window
    /// (histograms expose their cumulative observation count).
    pub fn points(&self, name: &str, now: f64, window_s: f64) -> Option<Vec<(f64, f64)>> {
        let ring = match self.get(name)? {
            SeriesData::Counter(r) | SeriesData::Gauge(r) => r,
            SeriesData::Hist(h) => &h.count,
        };
        let since = now - window_s;
        Some(ring.iter().filter(|&(t, _)| t >= since).collect())
    }

    /// Windowed rate of a counter, in events per second: the increase
    /// between the baseline point (in force at `now - window_s`) and
    /// the newest point, divided by the time between them. `None` for
    /// unknown / non-counter series or fewer than two points.
    pub fn rate_per_s(&self, name: &str, now: f64, window_s: f64) -> Option<f64> {
        let SeriesData::Counter(ring) = self.get(name)? else {
            return None;
        };
        let (base, end) = ring.window_indices(now, window_s)?;
        let (t1, v1) = ring.get(end)?;
        let (t0, v0) = ring.get(base)?;
        if t1 <= t0 {
            return None;
        }
        Some(((v1 - v0).max(0.0)) / (t1 - t0))
    }

    /// Windowed increase of a counter (events inside the window).
    pub fn increase(&self, name: &str, now: f64, window_s: f64) -> Option<f64> {
        let SeriesData::Counter(ring) = self.get(name)? else {
            return None;
        };
        let (base, end) = ring.window_indices(now, window_s)?;
        let (_, v1) = ring.get(end)?;
        let (_, v0) = ring.get(base)?;
        Some((v1 - v0).max(0.0))
    }

    /// Latest value of a gauge series.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name)? {
            SeriesData::Gauge(ring) => ring.latest().map(|(_, v)| v),
            _ => None,
        }
    }

    /// Windowed mean of a gauge series: the average of the sampled
    /// points with `t >= now - window_s`. Unlike counters there is no
    /// cumulative baseline to difference, so the mean weights each
    /// retained sample equally. `None` for unknown / non-gauge series
    /// or when the window holds no points.
    pub fn gauge_mean(&self, name: &str, now: f64, window_s: f64) -> Option<f64> {
        let SeriesData::Gauge(ring) = self.get(name)? else {
            return None;
        };
        let since = now - window_s;
        let mut sum = 0.0;
        let mut n = 0u64;
        for (t, v) in ring.iter() {
            if t >= since {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Windowed interpolated quantile of a histogram series.
    pub fn quantile(&self, name: &str, q: f64, now: f64, window_s: f64) -> Option<f64> {
        match self.get(name)? {
            SeriesData::Hist(h) => h.window_quantile(q, now, window_s),
            _ => None,
        }
    }

    /// Observations a histogram recorded inside the window.
    pub fn window_count(&self, name: &str, now: f64, window_s: f64) -> Option<f64> {
        match self.get(name)? {
            SeriesData::Hist(h) => h.window_count(now, window_s),
            _ => None,
        }
    }
}

struct SampleVisitor<'a> {
    store: &'a mut TsStore,
    now: f64,
}

impl RegistryVisitor for SampleVisitor<'_> {
    fn counter(&mut self, name: &str, value: u64) {
        if let Some(SeriesData::Counter(ring)) = self.store.series.get_mut(name) {
            ring.push(self.now, value as f64);
            return;
        }
        if self.store.series.contains_key(name) || !self.store.room_for_new_series() {
            return;
        }
        let mut ring = PointRing::new(self.store.cfg.capacity());
        ring.push(self.now, value as f64);
        self.store
            .series
            .insert(name.to_string(), SeriesData::Counter(ring));
    }

    fn gauge(&mut self, name: &str, value: f64) {
        if let Some(SeriesData::Gauge(ring)) = self.store.series.get_mut(name) {
            ring.push(self.now, value);
            return;
        }
        if self.store.series.contains_key(name) || !self.store.room_for_new_series() {
            return;
        }
        let mut ring = PointRing::new(self.store.cfg.capacity());
        ring.push(self.now, value);
        self.store
            .series
            .insert(name.to_string(), SeriesData::Gauge(ring));
    }

    fn histogram(&mut self, name: &str, hist: &Histogram) {
        if let Some(SeriesData::Hist(series)) = self.store.series.get_mut(name) {
            if series.bounds.as_ref() == hist.bounds() {
                series.push(self.now, hist);
                return;
            }
            // Layout changed under us (should not happen to a live
            // histogram): restart the series with the new layout.
            let mut fresh = HistSeries::new(hist.bounds(), self.store.cfg.capacity());
            fresh.push(self.now, hist);
            self.store
                .series
                .insert(name.to_string(), SeriesData::Hist(fresh));
            return;
        }
        if self.store.series.contains_key(name) || !self.store.room_for_new_series() {
            return;
        }
        let mut series = HistSeries::new(hist.bounds(), self.store.cfg.capacity());
        series.push(self.now, hist);
        self.store
            .series
            .insert(name.to_string(), SeriesData::Hist(series));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefall_telemetry::Recorder;

    fn store_with(resolution_s: f64, retention_s: f64) -> TsStore {
        TsStore::new(StoreConfig {
            resolution_s,
            retention_s,
            max_series: 64,
        })
    }

    #[test]
    fn windowed_counter_rate_matches_hand_computed_values() {
        let reg = Registry::new();
        let mut store = store_with(1.0, 60.0);
        // detector.windows grows by exactly 5 per second for 10 s.
        for t in 0..=10u64 {
            if t > 0 {
                reg.counter_add("detector.windows", 5);
            }
            store.sample(&reg, t as f64);
        }
        // Window [5, 10]: baseline (5, 25), latest (10, 50) →
        // (50-25)/(10-5) = 5 events/s.
        let r = store.rate_per_s("detector.windows", 10.0, 5.0).unwrap();
        assert!((r - 5.0).abs() < 1e-12, "rate {r}");
        // Full history: (50-0)/10 = 5/s as well.
        let r = store.rate_per_s("detector.windows", 10.0, 100.0).unwrap();
        assert!((r - 5.0).abs() < 1e-12);
        // Increase over the last 3 s: 15 events.
        let inc = store.increase("detector.windows", 10.0, 3.0).unwrap();
        assert!((inc - 15.0).abs() < 1e-12, "increase {inc}");
    }

    #[test]
    fn burst_rate_is_localised_to_its_window() {
        let reg = Registry::new();
        let mut store = store_with(1.0, 120.0);
        // Quiet for 30 s, a burst of 12 false activations in [30, 40],
        // quiet again until t=60. A zero-delta add materialises the
        // counter so the series exists from t=0.
        reg.counter_add("detector.false_activations", 0);
        for t in 0..=60u64 {
            if (31..=40).contains(&t) {
                reg.counter_add("detector.false_activations", 1);
            }
            if t == 35 {
                reg.counter_add("detector.false_activations", 2);
            }
            store.sample(&reg, t as f64);
        }
        // Hand-computed: total = 12. Window [50,60] saw nothing.
        assert_eq!(
            store.increase("detector.false_activations", 60.0, 10.0),
            Some(0.0)
        );
        // Window [30, 60] holds all 12 → 0.4/s → 1440/h.
        let r = store
            .rate_per_s("detector.false_activations", 60.0, 30.0)
            .unwrap();
        assert!((r - 12.0 / 30.0).abs() < 1e-12, "rate {r}");
        // Window [25, 40] at now=40 holds all 12 → 12/15 per s.
        let r = store
            .rate_per_s("detector.false_activations", 40.0, 15.0)
            .unwrap();
        assert!((r - 12.0 / 15.0).abs() < 1e-12, "rate {r}");
    }

    #[test]
    fn gauge_series_keeps_last_value_and_points() {
        let reg = Registry::new();
        let mut store = store_with(1.0, 10.0);
        for t in 0..5u64 {
            reg.gauge_set("par.queue_depth", t as f64 * 2.0);
            store.sample(&reg, t as f64);
        }
        assert_eq!(store.gauge("par.queue_depth"), Some(8.0));
        let pts = store.points("par.queue_depth", 4.0, 2.0).unwrap();
        assert_eq!(pts, vec![(2.0, 4.0), (3.0, 6.0), (4.0, 8.0)]);
    }

    #[test]
    fn windowed_histogram_quantile_sees_only_window_observations() {
        let reg = Registry::new();
        reg.register_histogram("detector.push_sample_seconds", vec![1e-5, 1e-4, 1e-3, 1e-2]);
        let mut store = store_with(1.0, 120.0);
        // 40 fast observations (~5 µs bucket) before t=10, then 20 slow
        // (~5 ms bucket) during [10, 30].
        for t in 0..=30u64 {
            if t < 10 {
                for _ in 0..4 {
                    reg.observe("detector.push_sample_seconds", 5e-6);
                }
            } else if t < 30 {
                reg.observe("detector.push_sample_seconds", 5e-3);
            }
            store.sample(&reg, t as f64);
        }
        // Window [10, 30] holds only slow observations: p99 lands in
        // the (1e-3, 1e-2] bucket.
        let p99 = store
            .quantile("detector.push_sample_seconds", 0.99, 30.0, 20.0)
            .unwrap();
        assert!(p99 > 1e-3 && p99 <= 1e-2, "p99 {p99}");
        // Full history: fast observations dominate (40 fast vs 20 slow)
        // → p50 in the first bucket.
        let p50 = store
            .quantile("detector.push_sample_seconds", 0.5, 30.0, 1000.0)
            .unwrap();
        assert!(p50 <= 1e-5, "p50 {p50}");
        // 19, not 20: the baseline sample at t=10 had already absorbed
        // that second's slow observation.
        let n = store
            .window_count("detector.push_sample_seconds", 30.0, 20.0)
            .unwrap();
        assert!((n - 19.0).abs() < 1e-12, "count {n}");
    }

    #[test]
    fn gauge_mean_averages_only_the_window() {
        let reg = Registry::new();
        let mut store = store_with(1.0, 60.0);
        // 0,2,4,...,18 over t=0..10.
        for t in 0..10u64 {
            reg.gauge_set("drift.input_psi", t as f64 * 2.0);
            store.sample(&reg, t as f64);
        }
        // Window [6, 9]: points 12, 14, 16, 18 → mean 15.
        let m = store.gauge_mean("drift.input_psi", 9.0, 3.0).unwrap();
        assert!((m - 15.0).abs() < 1e-12, "mean {m}");
        // Whole history: mean of 0..=18 step 2 = 9.
        let m = store.gauge_mean("drift.input_psi", 9.0, 100.0).unwrap();
        assert!((m - 9.0).abs() < 1e-12, "mean {m}");
        // Empty window and non-gauge series give no data.
        assert!(store.gauge_mean("drift.input_psi", 100.0, 1.0).is_none());
        reg.counter_add("a", 1);
        store.sample(&reg, 10.0);
        assert!(store.gauge_mean("a", 10.0, 100.0).is_none());
    }

    #[test]
    fn retention_caps_memory_and_series_cap_drops_extras() {
        let reg = Registry::new();
        let mut store = TsStore::new(StoreConfig {
            resolution_s: 1.0,
            retention_s: 5.0,
            max_series: 2,
        });
        reg.counter_add("a", 1);
        reg.counter_add("b", 1);
        reg.counter_add("c", 1);
        for t in 0..100u64 {
            store.sample(&reg, t as f64);
        }
        assert_eq!(store.series_count(), 2);
        assert!(store.dropped_series() > 0);
        let pts = store.points("a", 99.0, 1e9).unwrap();
        assert!(pts.len() <= store.config().capacity());
    }
}
