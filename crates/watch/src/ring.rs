//! Fixed-capacity `(timestamp, value)` rings — the storage primitive
//! behind every series in the store.
//!
//! All memory is allocated at construction; `push` overwrites the
//! oldest point once full, so a series occupies a constant footprint
//! for the life of the process and the sampling tick never touches the
//! heap.

/// A fixed-capacity ring of `(t, v)` points, oldest evicted first.
#[derive(Debug, Clone)]
pub struct PointRing {
    ts: Box<[f64]>,
    vs: Box<[f64]>,
    /// Next write slot.
    head: usize,
    len: usize,
}

impl PointRing {
    /// A ring holding at most `cap` points (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            ts: vec![0.0; cap].into_boxed_slice(),
            vs: vec![0.0; cap].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.ts.len()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a point, evicting the oldest when full. Never allocates.
    pub fn push(&mut self, t: f64, v: f64) {
        self.ts[self.head] = t;
        self.vs[self.head] = v;
        self.head = (self.head + 1) % self.capacity();
        self.len = (self.len + 1).min(self.capacity());
    }

    /// The `i`-th point in time order (0 = oldest).
    pub fn get(&self, i: usize) -> Option<(f64, f64)> {
        if i >= self.len {
            return None;
        }
        let cap = self.capacity();
        let start = (self.head + cap - self.len) % cap;
        let slot = (start + i) % cap;
        Some((self.ts[slot], self.vs[slot]))
    }

    /// The most recent point.
    pub fn latest(&self) -> Option<(f64, f64)> {
        self.get(self.len.wrapping_sub(1))
    }

    /// Points oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        (0..self.len).map(move |i| self.get(i).expect("index in range"))
    }

    /// Index (time order) of the newest point with `t <= at`, i.e. the
    /// value in force at time `at`. `None` when every held point is
    /// newer.
    pub fn index_at_or_before(&self, at: f64) -> Option<usize> {
        // Rings are small (hundreds of points); a linear scan from the
        // newest end is cache-friendly and allocation-free.
        (0..self.len).rev().find(|&i| {
            let (t, _) = self.get(i).expect("index in range");
            t <= at
        })
    }

    /// The baseline point for a window query ending `now`: the newest
    /// point at or before `now - window`, falling back to the oldest
    /// held point when the window reaches past retention.
    pub fn baseline(&self, now: f64, window_s: f64) -> Option<(f64, f64)> {
        if self.is_empty() {
            return None;
        }
        let idx = self.index_at_or_before(now - window_s).unwrap_or(0);
        self.get(idx)
    }

    /// The index pair `(baseline, end)` bounding the window
    /// `[now - window_s, now]`: `end` is the newest point at or before
    /// `now`, `baseline` the newest at or before the window start
    /// (falling back to the oldest held point). `None` when no held
    /// point is old enough to serve as the end.
    pub fn window_indices(&self, now: f64, window_s: f64) -> Option<(usize, usize)> {
        let end = self.index_at_or_before(now)?;
        let base = self
            .index_at_or_before(now - window_s)
            .unwrap_or(0)
            .min(end);
        Some((base, end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_evicts_oldest_beyond_capacity() {
        let mut r = PointRing::new(3);
        for i in 0..5 {
            r.push(i as f64, (i * 10) as f64);
        }
        assert_eq!(r.len(), 3);
        let pts: Vec<_> = r.iter().collect();
        assert_eq!(pts, vec![(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]);
        assert_eq!(r.latest(), Some((4.0, 40.0)));
    }

    #[test]
    fn baseline_picks_value_in_force_at_window_start() {
        let mut r = PointRing::new(8);
        for i in 0..6 {
            r.push(i as f64, i as f64);
        }
        // Window [2, 5]: baseline is the point at t=2 exactly.
        assert_eq!(r.baseline(5.0, 3.0), Some((2.0, 2.0)));
        // Window start between samples: the newest point before it.
        assert_eq!(r.baseline(5.0, 2.5), Some((2.0, 2.0)));
        // Window reaching past retention: oldest held point.
        assert_eq!(r.baseline(5.0, 100.0), Some((0.0, 0.0)));
        assert_eq!(PointRing::new(4).baseline(5.0, 1.0), None);
    }
}
