//! Declarative SLOs evaluated as multi-window burn rates over the
//! [`TsStore`](crate::store::TsStore).
//!
//! Each SLO names an objective (a ceiling or floor over a derived
//! signal) and two windows. The **burn rate** is how many times over
//! budget the signal currently is (1.0 = exactly at the objective).
//! An SLO fires only when *both* the long and the short window burn at
//! or above the threshold — the long window proves the breach is
//! sustained, the short window proves it is still happening — and
//! resolves only after a refractory hold plus a continuous healthy
//! dwell on the short window. That combination is what keeps a noisy
//! signal from flapping the alert.

use crate::store::TsStore;

/// What an SLO measures, evaluated over a window `[now - w, now]`.
#[derive(Debug, Clone, PartialEq)]
pub enum SloObjective {
    /// Rate of a counter must stay at or below `max` events per
    /// `per_seconds` (e.g. false activations per hour).
    CounterRateCeiling {
        counter: String,
        per_seconds: f64,
        max: f64,
    },
    /// `num / den` (both counter increases over the window) must stay
    /// at or below `max`. Windows where `den` grew by less than
    /// `min_den` yield no data.
    RatioCeiling {
        num: String,
        den: String,
        max: f64,
        min_den: f64,
    },
    /// `num / den` must stay at or above `min` (e.g. detection rate).
    RatioFloor {
        num: String,
        den: String,
        min: f64,
        min_den: f64,
    },
    /// A windowed histogram quantile must stay at or below `max`.
    /// Windows with fewer than `min_count` observations yield no data.
    QuantileCeiling {
        histogram: String,
        q: f64,
        max: f64,
        min_count: f64,
    },
    /// A windowed histogram quantile must stay at or above `min`
    /// (e.g. p10 lead time).
    QuantileFloor {
        histogram: String,
        q: f64,
        min: f64,
        min_count: f64,
    },
    /// The windowed mean of a gauge must stay at or below `max`
    /// (e.g. the `drift.input_psi` score published by the drift
    /// monitor). Windows with no sampled points yield no data.
    GaugeCeiling { gauge: String, max: f64 },
}

impl SloObjective {
    /// The measured signal over `[now - window_s, now]`, or `None`
    /// when the store has no data for it.
    pub fn measure(&self, store: &TsStore, now: f64, window_s: f64) -> Option<f64> {
        match self {
            SloObjective::CounterRateCeiling {
                counter,
                per_seconds,
                ..
            } => store
                .rate_per_s(counter, now, window_s)
                .map(|r| r * per_seconds),
            SloObjective::RatioCeiling {
                num, den, min_den, ..
            }
            | SloObjective::RatioFloor {
                num, den, min_den, ..
            } => {
                let d = store.increase(den, now, window_s)?;
                if d < *min_den {
                    return None;
                }
                let n = store.increase(num, now, window_s)?;
                Some(n / d)
            }
            SloObjective::QuantileCeiling {
                histogram,
                q,
                min_count,
                ..
            }
            | SloObjective::QuantileFloor {
                histogram,
                q,
                min_count,
                ..
            } => {
                let n = store.window_count(histogram, now, window_s)?;
                if n < *min_count {
                    return None;
                }
                store.quantile(histogram, *q, now, window_s)
            }
            SloObjective::GaugeCeiling { gauge, .. } => store.gauge_mean(gauge, now, window_s),
        }
    }

    /// Burn rate of a measurement: multiples of the allowed budget
    /// consumed (ceilings: value / max; floors: min / value). 1.0 is
    /// exactly on budget, above 1.0 is out of budget.
    pub fn burn(&self, value: f64) -> f64 {
        match self {
            SloObjective::CounterRateCeiling { max, .. }
            | SloObjective::RatioCeiling { max, .. }
            | SloObjective::QuantileCeiling { max, .. }
            | SloObjective::GaugeCeiling { max, .. } => {
                if *max <= 0.0 {
                    if value > 0.0 {
                        f64::INFINITY
                    } else {
                        0.0
                    }
                } else {
                    value / max
                }
            }
            SloObjective::RatioFloor { min, .. } | SloObjective::QuantileFloor { min, .. } => {
                if value <= 0.0 {
                    f64::INFINITY
                } else {
                    min / value
                }
            }
        }
    }

    /// The budget boundary, for display.
    pub fn target(&self) -> f64 {
        match self {
            SloObjective::CounterRateCeiling { max, .. }
            | SloObjective::RatioCeiling { max, .. }
            | SloObjective::QuantileCeiling { max, .. }
            | SloObjective::GaugeCeiling { max, .. } => *max,
            SloObjective::RatioFloor { min, .. } | SloObjective::QuantileFloor { min, .. } => *min,
        }
    }

    pub fn kind(&self) -> &'static str {
        match self {
            SloObjective::CounterRateCeiling { .. } => "counter_rate_ceiling",
            SloObjective::RatioCeiling { .. } => "ratio_ceiling",
            SloObjective::RatioFloor { .. } => "ratio_floor",
            SloObjective::QuantileCeiling { .. } => "quantile_ceiling",
            SloObjective::QuantileFloor { .. } => "quantile_floor",
            SloObjective::GaugeCeiling { .. } => "gauge_ceiling",
        }
    }
}

/// A full SLO declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Stable identifier (`fa_rate`, `lead_time`, ...).
    pub name: String,
    pub objective: SloObjective,
    /// Long evaluation window (seconds) — proves the breach is real.
    pub long_window_s: f64,
    /// Short evaluation window — proves it is still happening.
    pub short_window_s: f64,
    /// Fire when both windows burn at or above this (≥ 1.0).
    pub burn_threshold: f64,
    /// Resolve requires the short-window burn below this (< the fire
    /// threshold — the hysteresis gap).
    pub resolve_threshold: f64,
    /// Minimum seconds an alert stays firing once raised.
    pub refractory_s: f64,
    /// Continuous healthy seconds (short window under the resolve
    /// threshold) required before resolving.
    pub resolve_after_s: f64,
    /// Quality SLOs ask the blackbox for an incident dump when they
    /// fire; plumbing SLOs (latency et al.) only alert.
    pub quality: bool,
}

impl SloSpec {
    /// A spec with the repo's default alerting dynamics: fire at 2×
    /// burn on 300 s / 60 s windows, hold 120 s, resolve after 60 s
    /// continuously under 1× burn.
    pub fn new(name: &str, objective: SloObjective) -> Self {
        Self {
            name: name.to_string(),
            objective,
            long_window_s: 300.0,
            short_window_s: 60.0,
            burn_threshold: 2.0,
            resolve_threshold: 1.0,
            refractory_s: 120.0,
            resolve_after_s: 60.0,
            quality: false,
        }
    }

    pub fn windows(mut self, long_s: f64, short_s: f64) -> Self {
        self.long_window_s = long_s;
        self.short_window_s = short_s;
        self
    }

    pub fn burn(mut self, fire: f64, resolve: f64) -> Self {
        self.burn_threshold = fire;
        self.resolve_threshold = resolve;
        self
    }

    pub fn hold(mut self, refractory_s: f64, resolve_after_s: f64) -> Self {
        self.refractory_s = refractory_s;
        self.resolve_after_s = resolve_after_s;
        self
    }

    pub fn quality(mut self) -> Self {
        self.quality = true;
        self
    }
}

/// Live evaluation state of one SLO.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SloState {
    pub firing: bool,
    /// When the alert was raised (evaluation clock).
    pub fired_at: Option<f64>,
    /// Start of the current continuous healthy stretch while firing.
    pub healthy_since: Option<f64>,
    pub last_value_long: Option<f64>,
    pub last_value_short: Option<f64>,
    pub last_burn_long: Option<f64>,
    pub last_burn_short: Option<f64>,
    /// Lifetime transitions to firing.
    pub times_fired: u64,
}

/// What one evaluation step decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloTransition {
    None,
    Fired,
    Resolved,
}

/// Advances `state` for `spec` against the store at time `now`.
pub fn evaluate(spec: &SloSpec, state: &mut SloState, store: &TsStore, now: f64) -> SloTransition {
    let long = spec.objective.measure(store, now, spec.long_window_s);
    let short = spec.objective.measure(store, now, spec.short_window_s);
    let burn_long = long.map(|v| spec.objective.burn(v));
    let burn_short = short.map(|v| spec.objective.burn(v));
    state.last_value_long = long;
    state.last_value_short = short;
    state.last_burn_long = burn_long;
    state.last_burn_short = burn_short;

    if !state.firing {
        // Missing data never fires an alert.
        let over = matches!(burn_long, Some(b) if b >= spec.burn_threshold)
            && matches!(burn_short, Some(b) if b >= spec.burn_threshold);
        if over {
            state.firing = true;
            state.fired_at = Some(now);
            state.healthy_since = None;
            state.times_fired += 1;
            return SloTransition::Fired;
        }
        return SloTransition::None;
    }

    // Firing: track the healthy dwell on the short window. Missing
    // data counts as healthy — an idle system should resolve.
    let healthy = match burn_short {
        Some(b) => b < spec.resolve_threshold,
        None => true,
    };
    if healthy {
        if state.healthy_since.is_none() {
            state.healthy_since = Some(now);
        }
    } else {
        state.healthy_since = None;
    }
    let past_refractory = state.fired_at.is_none_or(|t| now >= t + spec.refractory_s);
    let dwelled = state
        .healthy_since
        .is_some_and(|t| now - t >= spec.resolve_after_s);
    if past_refractory && dwelled {
        state.firing = false;
        state.fired_at = None;
        state.healthy_since = None;
        return SloTransition::Resolved;
    }
    SloTransition::None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use prefall_telemetry::{Recorder, Registry};

    fn fa_spec() -> SloSpec {
        // ≤ 30 false activations / hour; fire at 2× burn on 60 s / 15 s
        // windows, hold 30 s, resolve after 10 s under 1×.
        SloSpec::new(
            "fa_rate",
            SloObjective::CounterRateCeiling {
                counter: "detector.false_activations".into(),
                per_seconds: 3600.0,
                max: 30.0,
            },
        )
        .windows(60.0, 15.0)
        .burn(2.0, 1.0)
        .hold(30.0, 10.0)
    }

    #[test]
    fn fires_on_sustained_breach_holds_through_refractory_then_resolves() {
        let reg = Registry::new();
        let mut store = TsStore::new(StoreConfig {
            resolution_s: 1.0,
            retention_s: 300.0,
            max_series: 16,
        });
        let spec = fa_spec();
        let mut state = SloState::default();
        let mut fired_at = None;
        let mut resolved_at = None;
        for t in 0..=200u64 {
            // Storm in [40, 80): one false activation per second
            // = 3600/h = 120× the 30/h budget.
            if (40..80).contains(&t) {
                reg.counter_add("detector.false_activations", 1);
            }
            store.sample(&reg, t as f64);
            match evaluate(&spec, &mut state, &store, t as f64) {
                SloTransition::Fired if fired_at.is_none() => fired_at = Some(t),
                SloTransition::Resolved if resolved_at.is_none() => resolved_at = Some(t),
                _ => {}
            }
        }
        let fired = fired_at.expect("storm must fire");
        // Needs the long window's burn ≥ 2× (≈ 1 s of storm already
        // does: 60/h over 60 s) and the short window's too.
        assert!((40..=60).contains(&fired), "fired at {fired}");
        let resolved = resolved_at.expect("must resolve after storm");
        // Can't resolve before refractory (fired+30) nor before the
        // short window drains (80 + 15) plus the 10 s dwell.
        assert!(resolved >= fired + 30, "resolved at {resolved}");
        assert!(resolved >= 90, "resolved at {resolved}");
        assert!(resolved <= 130, "resolved too late: {resolved}");
        assert!(!state.firing);
        assert_eq!(state.times_fired, 1);
    }

    #[test]
    fn short_blip_does_not_fire() {
        let reg = Registry::new();
        let mut store = TsStore::new(StoreConfig {
            resolution_s: 1.0,
            retention_s: 300.0,
            max_series: 16,
        });
        // Long window must also breach: a 2 s blip of 2 events inside a
        // 60 s long window is 120/h → burn 4× ... so use a tighter
        // check: a *single* event. 1 event / 60 s = 60/h = 2× exactly;
        // over the short 15 s window right after, 1/15 s = 240/h fires.
        // To exercise the long-window guard, widen the long window.
        let spec = fa_spec().windows(600.0, 15.0);
        let mut state = SloState::default();
        let mut any_fire = false;
        for t in 0..=300u64 {
            if t == 100 {
                reg.counter_add("detector.false_activations", 1);
            }
            store.sample(&reg, t as f64);
            if evaluate(&spec, &mut state, &store, t as f64) == SloTransition::Fired {
                any_fire = true;
            }
        }
        // 1 event over 300+ s ≈ 12/h < 2×30/h on the long window.
        assert!(!any_fire, "single blip must not fire");
    }

    #[test]
    fn missing_data_never_fires_and_resolves_idle_alerts() {
        let store = TsStore::new(StoreConfig::default());
        let spec = fa_spec();
        let mut state = SloState::default();
        assert_eq!(
            evaluate(&spec, &mut state, &store, 0.0),
            SloTransition::None
        );
        assert!(!state.firing);
        // A firing alert over a now-empty signal resolves after
        // refractory + dwell.
        state.firing = true;
        state.fired_at = Some(0.0);
        state.times_fired = 1;
        let mut resolved = false;
        for t in 1..=60u64 {
            if evaluate(&spec, &mut state, &store, t as f64) == SloTransition::Resolved {
                resolved = true;
            }
        }
        assert!(resolved, "idle alert must resolve");
    }

    #[test]
    fn gauge_ceiling_fires_on_sustained_drift_and_stays_quiet_without_data() {
        let reg = Registry::new();
        let mut store = TsStore::new(StoreConfig {
            resolution_s: 1.0,
            retention_s: 300.0,
            max_series: 16,
        });
        let spec = SloSpec::new(
            "input_drift",
            SloObjective::GaugeCeiling {
                gauge: "drift.input_psi".into(),
                max: 0.25,
            },
        )
        .windows(60.0, 15.0)
        .burn(1.0, 0.8)
        .hold(20.0, 10.0);
        let mut state = SloState::default();

        // No reference committed → the gauge never published → the SLO
        // must never fire on missing data.
        for t in 0..30u64 {
            store.sample(&reg, t as f64);
            assert_eq!(
                evaluate(&spec, &mut state, &store, t as f64),
                SloTransition::None
            );
        }

        // Healthy drift scores, then a sustained breach past 0.25.
        let mut fired_at = None;
        let mut resolved_at = None;
        for t in 30..=300u64 {
            let psi = if (100..180).contains(&t) { 0.6 } else { 0.02 };
            reg.gauge_set("drift.input_psi", psi);
            store.sample(&reg, t as f64);
            match evaluate(&spec, &mut state, &store, t as f64) {
                SloTransition::Fired if fired_at.is_none() => fired_at = Some(t),
                SloTransition::Resolved if resolved_at.is_none() => resolved_at = Some(t),
                _ => {}
            }
        }
        let fired = fired_at.expect("sustained drift must fire");
        // The 60 s long-window mean needs enough 0.6 points to cross
        // 0.25 — roughly 25 s into the breach.
        assert!((100..180).contains(&fired), "fired at {fired}");
        let resolved = resolved_at.expect("must resolve after drift subsides");
        assert!(resolved > 180, "resolved at {resolved}");
        assert_eq!(state.times_fired, 1);
        assert!(!state.firing);
    }

    #[test]
    fn ratio_floor_fires_when_detection_rate_collapses() {
        let reg = Registry::new();
        let mut store = TsStore::new(StoreConfig {
            resolution_s: 1.0,
            retention_s: 300.0,
            max_series: 16,
        });
        let spec = SloSpec::new(
            "detection_rate",
            SloObjective::RatioFloor {
                num: "quality.fall_detected".into(),
                den: "quality.fall_events".into(),
                min: 0.9,
                min_den: 5.0,
            },
        )
        .windows(60.0, 20.0)
        .burn(1.5, 1.0)
        .hold(20.0, 10.0);
        let mut state = SloState::default();
        let mut fired = false;
        for t in 0..=120u64 {
            // One fall event per second; detected until t=60, missed
            // after → detection rate decays toward 0.
            reg.counter_add("quality.fall_events", 1);
            if t < 60 {
                reg.counter_add("quality.fall_detected", 1);
            }
            store.sample(&reg, t as f64);
            if evaluate(&spec, &mut state, &store, t as f64) == SloTransition::Fired {
                fired = true;
            }
        }
        assert!(fired, "collapsed detection rate must fire the floor SLO");
    }
}
