//! Watching the watcher: an in-process time-series store, SLO engine
//! and burn-rate alerting layer over the live detector telemetry.
//!
//! `prefall-telemetry` records what the detector does; `prefall-obsd`
//! serves the current totals. Neither answers the questions an
//! operator actually asks — *is the false-activation rate rising*,
//! *has p99 ingest latency breached its budget*, *did the guard spend
//! the last five minutes degraded* — because those are questions about
//! **windows of history**, not points in time. This crate holds that
//! history, allocation-bounded, and evaluates declarative SLOs over it:
//!
//! * [`store`] — fixed-capacity per-series rings of `(t, value)`
//!   sampled from the shared [`Registry`] on a cadence; counters and
//!   histogram buckets stored cumulatively, rates and windowed
//!   quantiles derived at query time. Zero allocations per tick once
//!   a series' rings exist.
//! * [`slo`] — SLOs as multi-window burn rates with hysteresis and a
//!   refractory hold, so a breach must be sustained to fire and
//!   transient recoveries don't flap the alert.
//! * [`alert`] — a bounded transition log, `watch.alert.*` telemetry
//!   events, and the [`IncidentCapture`] seam through which a quality
//!   SLO breach asks the blackbox flight recorder for a forensic dump.
//!
//! The [`Watch`] handle ties the three together and implements
//! [`prefall_obsd::WatchSource`], so one
//! [`MetricsServer::start_with_watch`] call exposes `/tsdb`, `/slo`
//! and `/alerts` — and flips `/healthz` to 503 while an SLO is firing.
//!
//! # Quickstart
//!
//! ```
//! use prefall_telemetry::{Recorder, Registry};
//! use prefall_watch::{SloObjective, SloSpec, Watch, WatchConfig};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(Registry::new());
//! let mut config = WatchConfig::default();
//! config.slos.push(
//!     SloSpec::new(
//!         "fa_rate",
//!         SloObjective::CounterRateCeiling {
//!             counter: "detector.false_activations".into(),
//!             per_seconds: 3600.0,
//!             max: 30.0,
//!         },
//!     )
//!     .windows(120.0, 30.0)
//!     .quality(),
//! );
//! let watch = Arc::new(Watch::new(Arc::clone(&registry), config));
//! // Deterministic replays drive the clock by hand; production spawns
//! // the daemon instead (`Watch::spawn`).
//! registry.counter_add("detector.windows", 10);
//! watch.tick_at(0.0);
//! watch.tick_at(1.0);
//! assert!(watch.firing().is_empty());
//! ```
//!
//! [`Registry`]: prefall_telemetry::Registry
//! [`MetricsServer::start_with_watch`]: prefall_obsd::MetricsServer::start_with_watch
//! [`IncidentCapture`]: alert::IncidentCapture

pub mod alert;
pub mod ring;
pub mod slo;
pub mod store;

pub use alert::{Alert, AlertLog, IncidentCapture};
pub use ring::PointRing;
pub use slo::{evaluate, SloObjective, SloSpec, SloState, SloTransition};
pub use store::{SeriesKind, StoreConfig, TsStore};

use prefall_telemetry::{JsonValue, Recorder, Registry, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything the watch layer needs to run.
#[derive(Debug, Clone)]
pub struct WatchConfig {
    pub store: StoreConfig,
    /// The SLOs to evaluate each tick.
    pub slos: Vec<SloSpec>,
    /// Alert transitions retained for `/alerts`.
    pub alert_log_cap: usize,
}

impl Default for WatchConfig {
    fn default() -> Self {
        Self {
            store: StoreConfig::default(),
            slos: Vec::new(),
            alert_log_cap: 128,
        }
    }
}

impl WatchConfig {
    /// The repo's production SLO set over the detector pipeline:
    ///
    /// | name | objective |
    /// |---|---|
    /// | `fa_rate` | ≤ 30 false activations / hour (quality) |
    /// | `detection_rate` | ≥ 90 % of fall events detected (quality) |
    /// | `ingest_p99` | p99 `detector.push_sample_seconds` ≤ 5 ms |
    /// | `lead_time_p10` | p10 lead time ≥ 150 ms (quality) |
    /// | `degraded_rate` | ≤ 5 % of guard samples degraded |
    /// | `input_drift` | mean `drift.input_psi` ≤ 0.25 (quality) |
    /// | `score_drift` | mean `drift.score_shift` ≤ 0.15 (quality) |
    pub fn production() -> Self {
        let slos = vec![
            SloSpec::new(
                "fa_rate",
                SloObjective::CounterRateCeiling {
                    counter: "detector.false_activations".into(),
                    per_seconds: 3600.0,
                    max: 30.0,
                },
            )
            .quality(),
            SloSpec::new(
                "detection_rate",
                SloObjective::RatioFloor {
                    num: "quality.fall_detected".into(),
                    den: "quality.fall_events".into(),
                    min: 0.9,
                    min_den: 5.0,
                },
            )
            .quality(),
            SloSpec::new(
                "ingest_p99",
                SloObjective::QuantileCeiling {
                    histogram: "detector.push_sample_seconds".into(),
                    q: 0.99,
                    max: 5e-3,
                    min_count: 100.0,
                },
            ),
            SloSpec::new(
                "lead_time_p10",
                SloObjective::QuantileFloor {
                    histogram: "detector.lead_time_ms".into(),
                    q: 0.10,
                    min: 150.0,
                    min_count: 10.0,
                },
            )
            .quality(),
            SloSpec::new(
                "degraded_rate",
                SloObjective::RatioCeiling {
                    num: "guard.degraded_samples".into(),
                    den: "guard.samples".into(),
                    max: 0.05,
                    min_den: 100.0,
                },
            ),
            // Fleet serving: shedding is an honest degraded mode, but
            // more than 1 % of windows skipping inference means the
            // fleet is under-provisioned, not just riding out a spike.
            SloSpec::new(
                "fleet_shed_rate",
                SloObjective::RatioCeiling {
                    num: "fleet.shed_windows".into(),
                    den: "fleet.windows".into(),
                    max: 0.01,
                    min_den: 100.0,
                },
            ),
            // Per-batch ingest latency: a wearer's batch must clear the
            // sharded pipeline well inside the airbag budget.
            SloSpec::new(
                "fleet_ingest_p99",
                SloObjective::QuantileCeiling {
                    histogram: "fleet.ingest_seconds".into(),
                    q: 0.99,
                    max: 5e-3,
                    min_count: 100.0,
                },
            ),
            // Label-free validity: the drift monitor publishes drift
            // scores of the live input / score distributions against
            // the committed training-set fingerprint. A sustained
            // input PSI past 0.25 (the conventional "major shift"
            // reading) means the model is being asked about a
            // population it was not trained on — a quality breach even
            // though every latency SLO may be green, so firing
            // captures an incident dump. The score section pages on
            // quantile displacement, not PSI: the sliding view holds
            // only a few hundred window scores, and at that sample
            // size a handful of windows landing in reference-empty
            // histogram bins swings PSI by whole points (the floored
            // log ratio dominates), while the 10th–90th percentiles
            // are stable on healthy streams. `drift.score_psi` stays
            // published as an advisory gauge. The gauges only exist
            // once a reference fingerprint is committed; until then
            // these SLOs see no data and stay quiet. Burn 1.0: the
            // ceiling *is* the alarm line.
            SloSpec::new(
                "input_drift",
                SloObjective::GaugeCeiling {
                    gauge: "drift.input_psi".into(),
                    max: 0.25,
                },
            )
            .burn(1.0, 0.8)
            .quality(),
            SloSpec::new(
                "score_drift",
                SloObjective::GaugeCeiling {
                    gauge: "drift.score_shift".into(),
                    max: 0.15,
                },
            )
            .burn(1.0, 0.8)
            .quality(),
        ];
        Self {
            store: StoreConfig::default(),
            slos,
            alert_log_cap: 128,
        }
    }
}

struct WatchInner {
    store: TsStore,
    states: Vec<SloState>,
    log: AlertLog,
    ticks: u64,
    last_tick_at: Option<f64>,
}

/// The live watch: store + SLO engine + alert sink behind one mutex.
///
/// Drive it with [`Watch::tick_at`] (deterministic replays, tests) or
/// hand it to [`Watch::spawn`] for a wall-clock background daemon.
pub struct Watch {
    registry: Arc<Registry>,
    specs: Vec<SloSpec>,
    inner: Mutex<WatchInner>,
    capture: Mutex<Option<Arc<dyn IncidentCapture>>>,
}

impl std::fmt::Debug for Watch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Watch")
            .field("slos", &self.specs.len())
            .finish_non_exhaustive()
    }
}

impl Watch {
    pub fn new(registry: Arc<Registry>, config: WatchConfig) -> Self {
        let states = config.slos.iter().map(|_| SloState::default()).collect();
        Self {
            registry,
            specs: config.slos,
            inner: Mutex::new(WatchInner {
                store: TsStore::new(config.store),
                states,
                log: AlertLog::new(config.alert_log_cap),
                ticks: 0,
                last_tick_at: None,
            }),
            capture: Mutex::new(None),
        }
    }

    /// Attaches the incident-capture sink (the blackbox's flight
    /// handle). Quality SLOs that fire afterwards request a dump.
    pub fn set_incident_capture(&self, capture: Arc<dyn IncidentCapture>) {
        *self.capture.lock().expect("capture poisoned") = Some(capture);
    }

    /// One sampling + evaluation step at time `now` (seconds on the
    /// caller's clock — wall for the daemon, virtual for replays).
    /// Allocation-free once every live series has rings and the
    /// watch's own metrics exist (in practice: after three ticks),
    /// except while an alert transitions.
    pub fn tick_at(&self, now: f64) {
        let mut fired: u64 = 0;
        let mut resolved: u64 = 0;
        {
            let mut inner = self.inner.lock().expect("watch poisoned");
            let inner = &mut *inner;
            inner.store.sample(&self.registry, now);
            inner.ticks += 1;
            inner.last_tick_at = Some(now);
            for (spec, state) in self.specs.iter().zip(inner.states.iter_mut()) {
                let transition = evaluate(spec, state, &inner.store, now);
                if transition == SloTransition::None {
                    continue;
                }
                let is_fire = transition == SloTransition::Fired;
                if is_fire {
                    fired += 1;
                } else {
                    resolved += 1;
                }
                let wants_capture = is_fire && spec.quality;
                let incident_requested = wants_capture && self.request_incident(&spec.name);
                inner.log.push(Alert {
                    id: 0,
                    slo: spec.name.clone(),
                    fired: is_fire,
                    at: now,
                    burn_short: state.last_burn_short,
                    value_short: state.last_value_short,
                    incident_requested,
                });
                self.registry.event(
                    if is_fire {
                        "watch.alert.fired"
                    } else {
                        "watch.alert.resolved"
                    },
                    &[
                        ("slo", Value::Str(&spec.name)),
                        ("at", Value::F64(now)),
                        (
                            "burn_short",
                            Value::F64(state.last_burn_short.unwrap_or(f64::NAN)),
                        ),
                        ("incident", Value::Bool(incident_requested)),
                    ],
                );
            }
            self.registry
                .gauge_set("watch.series", inner.store.series_count() as f64);
            self.registry.gauge_set(
                "watch.slos_firing",
                inner.states.iter().filter(|s| s.firing).count() as f64,
            );
        }
        // Counters bumped outside the inner lock: the registry lock is
        // the only one held at a time either way, but keeping the
        // critical sections disjoint makes the ordering obvious.
        self.registry.counter_add("watch.ticks", 1);
        if fired > 0 {
            self.registry.counter_add("watch.alerts_fired", fired);
        }
        if resolved > 0 {
            self.registry.counter_add("watch.alerts_resolved", resolved);
        }
    }

    fn request_incident(&self, slo: &str) -> bool {
        let capture = self.capture.lock().expect("capture poisoned");
        match capture.as_ref() {
            Some(sink) => sink.capture_incident(slo).is_some(),
            None => false,
        }
    }

    /// Names of the SLOs currently firing.
    pub fn firing(&self) -> Vec<String> {
        let inner = self.inner.lock().expect("watch poisoned");
        self.specs
            .iter()
            .zip(inner.states.iter())
            .filter(|(_, s)| s.firing)
            .map(|(spec, _)| spec.name.clone())
            .collect()
    }

    /// Sampling ticks performed so far.
    pub fn ticks(&self) -> u64 {
        self.inner.lock().expect("watch poisoned").ticks
    }

    /// Runs `f` against the store under the lock (windowed queries in
    /// tests and benches without cloning series out).
    pub fn with_store<T>(&self, f: impl FnOnce(&TsStore) -> T) -> T {
        let inner = self.inner.lock().expect("watch poisoned");
        f(&inner.store)
    }

    /// Lifetime alert transitions `(fired, resolved)`.
    pub fn alert_totals(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("watch poisoned");
        (inner.log.total_fired(), inner.log.total_resolved())
    }

    /// Copies of the retained alert transitions, oldest first.
    pub fn alerts(&self) -> Vec<Alert> {
        let inner = self.inner.lock().expect("watch poisoned");
        inner.log.entries().to_vec()
    }

    /// Spawns the wall-clock sampling daemon: one background thread
    /// ticking every [`StoreConfig::resolution_s`] until the returned
    /// handle is dropped or [`WatchDaemon::shutdown`] runs.
    pub fn spawn(self: &Arc<Self>) -> WatchDaemon {
        let watch = Arc::clone(self);
        let period = Duration::from_secs_f64(
            self.inner
                .lock()
                .expect("watch poisoned")
                .store
                .config()
                .resolution_s
                .max(1e-3),
        );
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("prefall-watch".to_string())
            .spawn(move || {
                let start = Instant::now();
                while !thread_stop.load(Ordering::Relaxed) {
                    watch.tick_at(start.elapsed().as_secs_f64());
                    // Sleep in small slices so shutdown is prompt even
                    // at coarse resolutions.
                    let mut remaining = period;
                    while remaining > Duration::ZERO && !thread_stop.load(Ordering::Relaxed) {
                        let slice = remaining.min(Duration::from_millis(50));
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                }
            })
            .expect("spawn watch daemon");
        WatchDaemon {
            stop,
            handle: Some(handle),
        }
    }
}

/// A running sampling daemon; dropping it stops the thread.
#[derive(Debug)]
pub struct WatchDaemon {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl WatchDaemon {
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for WatchDaemon {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn opt_f64(v: Option<f64>) -> JsonValue {
    match v {
        Some(x) if x.is_finite() => JsonValue::F64(x),
        _ => JsonValue::Null,
    }
}

impl prefall_obsd::WatchSource for Watch {
    fn tsdb_json(&self, series: &str, window_s: Option<f64>) -> Option<JsonValue> {
        let inner = self.inner.lock().expect("watch poisoned");
        let now = inner.last_tick_at.unwrap_or(0.0);
        let window = window_s.unwrap_or(f64::INFINITY);
        let data = inner.store.get(series)?;
        let kind = data.kind();
        let points = inner.store.points(series, now, window)?;
        let mut doc = vec![
            ("series".to_string(), JsonValue::Str(series.to_string())),
            (
                "kind".to_string(),
                JsonValue::Str(kind.as_str().to_string()),
            ),
            ("now".to_string(), JsonValue::F64(now)),
            (
                "points".to_string(),
                JsonValue::Arr(
                    points
                        .iter()
                        .map(|&(t, v)| JsonValue::Arr(vec![JsonValue::F64(t), JsonValue::F64(v)]))
                        .collect(),
                ),
            ),
        ];
        let w = if window.is_finite() { window } else { 1e18 };
        match kind {
            SeriesKind::Counter => {
                doc.push((
                    "rate_per_s".to_string(),
                    opt_f64(inner.store.rate_per_s(series, now, w)),
                ));
                doc.push((
                    "increase".to_string(),
                    opt_f64(inner.store.increase(series, now, w)),
                ));
            }
            SeriesKind::Gauge => {
                doc.push(("last".to_string(), opt_f64(inner.store.gauge(series))));
            }
            SeriesKind::Histogram => {
                doc.push((
                    "count".to_string(),
                    opt_f64(inner.store.window_count(series, now, w)),
                ));
                for (label, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
                    doc.push((
                        label.to_string(),
                        opt_f64(inner.store.quantile(series, q, now, w)),
                    ));
                }
            }
        }
        Some(JsonValue::Obj(doc))
    }

    fn series_json(&self) -> JsonValue {
        let inner = self.inner.lock().expect("watch poisoned");
        JsonValue::Obj(vec![
            (
                "series".to_string(),
                JsonValue::Arr(
                    inner
                        .store
                        .series_names()
                        .into_iter()
                        .map(|(name, kind, points)| {
                            JsonValue::Obj(vec![
                                ("name".to_string(), JsonValue::Str(name)),
                                (
                                    "kind".to_string(),
                                    JsonValue::Str(kind.as_str().to_string()),
                                ),
                                ("points".to_string(), JsonValue::U64(points as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "dropped_series".to_string(),
                JsonValue::U64(inner.store.dropped_series()),
            ),
            ("ticks".to_string(), JsonValue::U64(inner.ticks)),
        ])
    }

    fn slo_json(&self) -> JsonValue {
        let inner = self.inner.lock().expect("watch poisoned");
        JsonValue::Arr(
            self.specs
                .iter()
                .zip(inner.states.iter())
                .map(|(spec, state)| {
                    JsonValue::Obj(vec![
                        ("name".to_string(), JsonValue::Str(spec.name.clone())),
                        (
                            "objective".to_string(),
                            JsonValue::Str(spec.objective.kind().to_string()),
                        ),
                        (
                            "target".to_string(),
                            JsonValue::F64(spec.objective.target()),
                        ),
                        ("quality".to_string(), JsonValue::Bool(spec.quality)),
                        (
                            "long_window_s".to_string(),
                            JsonValue::F64(spec.long_window_s),
                        ),
                        (
                            "short_window_s".to_string(),
                            JsonValue::F64(spec.short_window_s),
                        ),
                        (
                            "burn_threshold".to_string(),
                            JsonValue::F64(spec.burn_threshold),
                        ),
                        ("firing".to_string(), JsonValue::Bool(state.firing)),
                        ("fired_at".to_string(), opt_f64(state.fired_at)),
                        ("value_long".to_string(), opt_f64(state.last_value_long)),
                        ("value_short".to_string(), opt_f64(state.last_value_short)),
                        ("burn_long".to_string(), opt_f64(state.last_burn_long)),
                        ("burn_short".to_string(), opt_f64(state.last_burn_short)),
                        ("times_fired".to_string(), JsonValue::U64(state.times_fired)),
                    ])
                })
                .collect(),
        )
    }

    fn alerts_json(&self) -> JsonValue {
        let inner = self.inner.lock().expect("watch poisoned");
        JsonValue::Obj(vec![
            (
                "alerts".to_string(),
                JsonValue::Arr(
                    inner
                        .log
                        .entries()
                        .iter()
                        .map(|a| {
                            JsonValue::Obj(vec![
                                ("id".to_string(), JsonValue::U64(a.id)),
                                ("slo".to_string(), JsonValue::Str(a.slo.clone())),
                                (
                                    "state".to_string(),
                                    JsonValue::Str(
                                        if a.fired { "fired" } else { "resolved" }.to_string(),
                                    ),
                                ),
                                ("at".to_string(), JsonValue::F64(a.at)),
                                ("burn_short".to_string(), opt_f64(a.burn_short)),
                                ("value_short".to_string(), opt_f64(a.value_short)),
                                (
                                    "incident_requested".to_string(),
                                    JsonValue::Bool(a.incident_requested),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "total_fired".to_string(),
                JsonValue::U64(inner.log.total_fired()),
            ),
            (
                "total_resolved".to_string(),
                JsonValue::U64(inner.log.total_resolved()),
            ),
        ])
    }

    fn firing_slos(&self) -> Vec<String> {
        self.firing()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefall_obsd::WatchSource;

    fn storm_config() -> WatchConfig {
        let mut config = WatchConfig {
            store: StoreConfig {
                resolution_s: 1.0,
                retention_s: 300.0,
                max_series: 64,
            },
            ..WatchConfig::default()
        };
        config.slos.push(
            SloSpec::new(
                "fa_rate",
                SloObjective::CounterRateCeiling {
                    counter: "detector.false_activations".into(),
                    per_seconds: 3600.0,
                    max: 30.0,
                },
            )
            .windows(60.0, 15.0)
            .burn(2.0, 1.0)
            .hold(30.0, 10.0)
            .quality(),
        );
        config
    }

    struct FakeCapture {
        calls: Mutex<Vec<String>>,
    }

    impl IncidentCapture for FakeCapture {
        fn capture_incident(&self, reason: &str) -> Option<String> {
            self.calls.lock().unwrap().push(reason.to_string());
            Some(format!("inc-{reason}"))
        }
    }

    #[test]
    fn storm_fires_captures_incident_and_resolves() {
        let registry = Arc::new(Registry::new());
        let watch = Watch::new(Arc::clone(&registry), storm_config());
        let capture = Arc::new(FakeCapture {
            calls: Mutex::new(Vec::new()),
        });
        watch.set_incident_capture(Arc::clone(&capture) as Arc<dyn IncidentCapture>);
        for t in 0..=200u64 {
            if (40..80).contains(&t) {
                registry.counter_add("detector.false_activations", 1);
            }
            watch.tick_at(t as f64);
        }
        let (fired, resolved) = watch.alert_totals();
        assert_eq!(fired, 1);
        assert_eq!(resolved, 1);
        assert!(watch.firing().is_empty());
        assert_eq!(capture.calls.lock().unwrap().as_slice(), &["fa_rate"]);
        // The transitions surfaced as telemetry events and counters.
        let snap = registry.snapshot();
        assert_eq!(snap.counters.get("watch.alerts_fired"), Some(&1));
        assert_eq!(snap.counters.get("watch.alerts_resolved"), Some(&1));
        assert!(snap.counters.get("watch.ticks").copied().unwrap_or(0) >= 200);
        let events = registry.take_events();
        assert!(events.iter().any(|(n, _)| n == "watch.alert.fired"));
        assert!(events.iter().any(|(n, _)| n == "watch.alert.resolved"));
    }

    #[test]
    fn watch_source_serves_tsdb_slo_and_alert_documents() {
        let registry = Arc::new(Registry::new());
        let watch = Watch::new(Arc::clone(&registry), storm_config());
        for t in 0..10u64 {
            registry.counter_add("detector.windows", 7);
            watch.tick_at(t as f64);
        }
        let doc = watch
            .tsdb_json("detector.windows", Some(5.0))
            .expect("series");
        assert_eq!(doc.get("kind").and_then(|v| v.as_str()), Some("counter"));
        // 7/s counter: windowed rate is exactly 7.
        let rate = doc.get("rate_per_s").and_then(|v| v.as_f64()).unwrap();
        assert!((rate - 7.0).abs() < 1e-9, "rate {rate}");
        assert!(watch.tsdb_json("unknown.metric", None).is_none());

        let catalogue = watch.series_json();
        let names = catalogue.get("series").expect("series list").to_string();
        assert!(names.contains("detector.windows"), "{names}");
        assert!(
            names.contains("watch.series"),
            "watch self-metrics sampled: {names}"
        );

        let slos = watch.slo_json().to_string();
        assert!(slos.contains("\"name\":\"fa_rate\""), "{slos}");
        assert!(slos.contains("\"firing\":false"), "{slos}");
        let alerts = watch.alerts_json();
        assert_eq!(alerts.get("total_fired").and_then(|v| v.as_u64()), Some(0));
    }

    #[test]
    fn daemon_ticks_on_wall_clock() {
        let registry = Arc::new(Registry::new());
        let config = WatchConfig {
            store: StoreConfig {
                resolution_s: 0.01,
                retention_s: 10.0,
                max_series: 32,
            },
            ..WatchConfig::default()
        };
        let watch = Arc::new(Watch::new(Arc::clone(&registry), config));
        let daemon = watch.spawn();
        let deadline = Instant::now() + Duration::from_secs(5);
        while watch.ticks() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        daemon.shutdown();
        assert!(watch.ticks() >= 3, "daemon must tick");
    }
}
