//! The alert sink: a bounded log of fire/resolve transitions, the
//! telemetry events they emit, and the seam through which a quality
//! SLO breach asks the blackbox for an incident dump.

/// One alert transition, as kept in the log.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Monotonic id (1-based, over the watch's lifetime).
    pub id: u64,
    /// SLO name that transitioned.
    pub slo: String,
    /// `true` = fired, `false` = resolved.
    pub fired: bool,
    /// Evaluation-clock time of the transition.
    pub at: f64,
    /// Short-window burn at the transition, when measurable.
    pub burn_short: Option<f64>,
    /// Short-window signal value at the transition, when measurable.
    pub value_short: Option<f64>,
    /// Whether an incident capture was requested (quality SLOs only).
    pub incident_requested: bool,
}

/// Fixed-capacity alert history, oldest evicted first.
#[derive(Debug)]
pub struct AlertLog {
    entries: Vec<Alert>,
    cap: usize,
    next_id: u64,
    total_fired: u64,
    total_resolved: u64,
}

impl AlertLog {
    pub fn new(cap: usize) -> Self {
        Self {
            entries: Vec::with_capacity(cap.max(1)),
            cap: cap.max(1),
            next_id: 1,
            total_fired: 0,
            total_resolved: 0,
        }
    }

    pub fn push(&mut self, mut alert: Alert) -> u64 {
        alert.id = self.next_id;
        self.next_id += 1;
        if alert.fired {
            self.total_fired += 1;
        } else {
            self.total_resolved += 1;
        }
        if self.entries.len() == self.cap {
            self.entries.remove(0);
        }
        self.entries.push(alert);
        self.next_id - 1
    }

    /// Oldest → newest.
    pub fn entries(&self) -> &[Alert] {
        &self.entries
    }

    pub fn total_fired(&self) -> u64 {
        self.total_fired
    }

    pub fn total_resolved(&self) -> u64 {
        self.total_resolved
    }
}

/// How the watch asks for a forensic dump when a quality SLO fires.
/// Implemented by the blackbox's `FlightHandle`; the indirection keeps
/// `prefall-watch` free of a blackbox (and hence core) dependency.
pub trait IncidentCapture: Send + Sync {
    /// Capture an incident dump now. `reason` names the firing SLO.
    /// Returns an incident identifier when a dump was produced.
    fn capture_incident(&self, reason: &str) -> Option<String>;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alert(slo: &str, fired: bool, at: f64) -> Alert {
        Alert {
            id: 0,
            slo: slo.to_string(),
            fired,
            at,
            burn_short: None,
            value_short: None,
            incident_requested: false,
        }
    }

    #[test]
    fn log_keeps_newest_entries_and_counts_transitions() {
        let mut log = AlertLog::new(3);
        for i in 0..5 {
            log.push(alert("fa_rate", i % 2 == 0, i as f64));
        }
        assert_eq!(log.entries().len(), 3);
        assert_eq!(log.entries()[0].id, 3);
        assert_eq!(log.entries()[2].id, 5);
        assert_eq!(log.total_fired(), 3);
        assert_eq!(log.total_resolved(), 2);
    }
}
