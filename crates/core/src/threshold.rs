//! Threshold-based pre-impact detection (the Table I baseline family,
//! after de Sousa et al. \[10\] and Jung et al. \[11\]).
//!
//! These detectors watch the accelerometer magnitude for the free-fall
//! signature — a sustained drop below a threshold (classically ~0.6 g) —
//! optionally combined with a gyro-rate gate. They are far cheaper than
//! any network but trade away precision, which is exactly the trade-off
//! Table I documents.

use prefall_dsp::stats::magnitude_series;
use prefall_imu::channel::Channel;
use prefall_imu::trial::Trial;
use prefall_imu::AIRBAG_INFLATION_SAMPLES;
use serde::{Deserialize, Serialize};

/// Threshold detector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdConfig {
    /// Free-fall threshold on the accelerometer magnitude, in g.
    pub freefall_g: f32,
    /// Minimum consecutive sub-threshold samples before triggering.
    pub min_duration_samples: usize,
    /// Optional additional gate: a minimum peak gyro magnitude (rad/s)
    /// within the free-fall window (0 disables the gate).
    pub gyro_gate_rads: f32,
}

impl Default for ThresholdConfig {
    fn default() -> Self {
        Self {
            freefall_g: 0.60,
            min_duration_samples: 3,
            gyro_gate_rads: 0.0,
        }
    }
}

/// A threshold-based pre-impact fall detector.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ThresholdDetector {
    config: ThresholdConfig,
}

impl ThresholdDetector {
    /// Creates a detector.
    pub fn new(config: ThresholdConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ThresholdConfig {
        &self.config
    }

    /// Returns the sample index of the first trigger over raw magnitude
    /// and gyro-magnitude series, or `None`.
    pub fn first_trigger(&self, accel_mag: &[f32], gyro_mag: &[f32]) -> Option<usize> {
        let mut run = 0usize;
        for i in 0..accel_mag.len() {
            if accel_mag[i] < self.config.freefall_g {
                run += 1;
                if run >= self.config.min_duration_samples {
                    if self.config.gyro_gate_rads > 0.0 {
                        let start = i + 1 - run;
                        let peak = gyro_mag[start..=i].iter().fold(0.0f32, |a, &g| a.max(g));
                        if peak < self.config.gyro_gate_rads {
                            continue;
                        }
                    }
                    return Some(i);
                }
            } else {
                run = 0;
            }
        }
        None
    }

    /// Runs the detector on a trial, returning the trigger index.
    pub fn detect(&self, trial: &Trial) -> Option<usize> {
        let am = magnitude_series(
            trial.channel(Channel::AccelX),
            trial.channel(Channel::AccelY),
            trial.channel(Channel::AccelZ),
        );
        let gm = magnitude_series(
            trial.channel(Channel::GyroX),
            trial.channel(Channel::GyroY),
            trial.channel(Channel::GyroZ),
        );
        self.first_trigger(&am, &gm)
    }
}

/// Event-level evaluation of a threshold detector (Table I context).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ThresholdReport {
    /// Fall trials evaluated.
    pub falls_total: usize,
    /// Falls triggered early enough (before impact − 150 ms).
    pub falls_detected: usize,
    /// ADL trials evaluated.
    pub adls_total: usize,
    /// ADL trials with a (false) trigger.
    pub adls_false_positive: usize,
}

impl ThresholdReport {
    /// Event-level accuracy %.
    pub fn accuracy_pct(&self) -> f64 {
        let correct = self.falls_detected + (self.adls_total - self.adls_false_positive);
        let total = self.falls_total + self.adls_total;
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64 * 100.0
        }
    }

    /// Event-level recall (fall detection rate) %.
    pub fn recall_pct(&self) -> f64 {
        if self.falls_total == 0 {
            0.0
        } else {
            self.falls_detected as f64 / self.falls_total as f64 * 100.0
        }
    }

    /// Event-level precision %.
    pub fn precision_pct(&self) -> f64 {
        let predicted = self.falls_detected + self.adls_false_positive;
        if predicted == 0 {
            0.0
        } else {
            self.falls_detected as f64 / predicted as f64 * 100.0
        }
    }

    /// Event-level F1 %.
    pub fn f1_pct(&self) -> f64 {
        let p = self.precision_pct();
        let r = self.recall_pct();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Evaluates a threshold detector over trials: a fall counts as detected
/// only when the trigger lands in the *usable* window (at least 150 ms
/// before impact); any ADL trigger is a false positive.
pub fn evaluate_threshold(detector: &ThresholdDetector, trials: &[Trial]) -> ThresholdReport {
    let mut report = ThresholdReport::default();
    for trial in trials {
        match (trial.is_fall(), detector.detect(trial)) {
            (true, Some(t)) => {
                report.falls_total += 1;
                let deadline = trial.impact().expect("fall has impact") - AIRBAG_INFLATION_SAMPLES;
                if t < deadline {
                    report.falls_detected += 1;
                }
            }
            (true, None) => report.falls_total += 1,
            (false, Some(_)) => {
                report.adls_total += 1;
                report.adls_false_positive += 1;
            }
            (false, None) => report.adls_total += 1,
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefall_imu::dataset::Dataset;

    #[test]
    fn triggers_on_sustained_freefall_only() {
        let d = ThresholdDetector::default();
        let gyro = vec![0.0f32; 10];
        // A single dip does not trigger.
        let one_dip = vec![1.0, 1.0, 0.3, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        assert_eq!(d.first_trigger(&one_dip, &gyro), None);
        // Three consecutive sub-threshold samples do.
        let fall = vec![1.0, 1.0, 0.4, 0.3, 0.2, 1.0, 1.0, 1.0, 1.0, 1.0];
        assert_eq!(d.first_trigger(&fall, &gyro), Some(4));
    }

    #[test]
    fn gyro_gate_blocks_rotation_free_freefall() {
        let cfg = ThresholdConfig {
            gyro_gate_rads: 1.0,
            ..ThresholdConfig::default()
        };
        let d = ThresholdDetector::new(cfg);
        let mag = vec![1.0, 0.3, 0.3, 0.3, 0.3, 1.0];
        let quiet_gyro = vec![0.1f32; 6];
        let spinning_gyro = vec![0.1, 2.0, 2.0, 2.0, 2.0, 0.1];
        assert_eq!(
            d.first_trigger(&mag, &quiet_gyro),
            None,
            "jump-like event gated out"
        );
        assert!(d.first_trigger(&mag, &spinning_gyro).is_some());
    }

    #[test]
    fn detects_most_synthetic_falls_pre_impact() {
        let ds = Dataset::combined_scaled(0, 2, 31).unwrap();
        let d = ThresholdDetector::default();
        let report = evaluate_threshold(&d, ds.trials());
        assert!(report.falls_total > 30);
        assert!(
            report.recall_pct() > 60.0,
            "threshold recall {:.1}%",
            report.recall_pct()
        );
    }

    #[test]
    fn false_positives_come_from_jumpy_adls() {
        // The threshold detector cannot tell a jump's flight from a
        // fall — the weakness the paper's Table I narrative leans on.
        let ds = Dataset::combined_scaled(0, 3, 37).unwrap();
        let d = ThresholdDetector::default();
        let mut jump_like_fp = 0;
        for t in ds.trials().iter().filter(|t| !t.is_fall()) {
            if d.detect(t).is_some() && matches!(t.task.get(), 4 | 44) {
                jump_like_fp += 1;
            }
        }
        assert!(
            jump_like_fp > 0,
            "expected jump tasks to fool the threshold"
        );
    }

    #[test]
    fn report_math() {
        let r = ThresholdReport {
            falls_total: 10,
            falls_detected: 9,
            adls_total: 90,
            adls_false_positive: 9,
        };
        assert!((r.accuracy_pct() - 90.0).abs() < 1e-9);
        assert!((r.recall_pct() - 90.0).abs() < 1e-9);
        assert!((r.precision_pct() - 50.0).abs() < 1e-9);
        assert!(r.f1_pct() > 60.0);
        assert_eq!(ThresholdReport::default().accuracy_pct(), 0.0);
    }
}
