//! Pre-impact fall detection: the paper's primary contribution.
//!
//! This crate ties the substrates together into the method of
//! *A Lightweight CNN for Real-Time Pre-Impact Fall Detection*
//! (DATE 2025):
//!
//! * [`pipeline`] — §III-A preprocessing: 4th-order Butterworth low-pass
//!   (5 Hz), sliding-window segmentation, per-channel normalisation, and
//!   the **150 ms label policy** (the falling class ends 150 ms before
//!   impact — the airbag inflation budget).
//! * [`augment`] — §III-C data augmentation: time warping and window
//!   warping of falling segments.
//! * [`models`] — §III-B the proposed three-branch lightweight CNN and
//!   the paper's baselines (MLP, LSTM, ConvLSTM2D).
//! * [`metrics`] — segment-level Accuracy/Precision/Recall/F1 (Table III
//!   reports macro-averaged scores).
//! * [`cv`] — §III-C subject-independent k-fold cross-validation with a
//!   held-out validation subject group, class weights and output-bias
//!   initialisation.
//! * [`events`] — §IV-B event-level analysis (Table IV): missed falls
//!   and per-ADL false activations, with the red/green risk grouping.
//! * [`threshold`] — the threshold-based detector family of Table I
//!   (refs \[10\], \[11\]) as a comparison point.
//! * [`tuning`] — ROC/AUC analysis and the event-level FP-minimising
//!   operating-point search (§IV-B).
//! * [`persist`] — save/load trained detector bundles (weights +
//!   normaliser + preprocessing configuration).
//! * [`detector`] — the real-time streaming detector and the airbag
//!   trigger controller (150 ms inflation model).
//! * [`session`] — the fleet split of the detector: a shared immutable
//!   `ModelBundle` plus compact poolable `Session`s with tick-sequenced
//!   ingest and crash-safe checkpointing (used by `prefall-fleet`).
//! * [`tap`] — per-sample observation hooks on the detector's ingest
//!   path (used by the `prefall-blackbox` flight recorder).
//! * [`phases`] — Fig. 1: fall-stage annotation of a trial.
//! * [`experiment`] — reproducible experiment orchestration used by the
//!   benchmark binaries.
//!
//! # Example
//!
//! ```
//! use prefall_core::pipeline::{Pipeline, PipelineConfig};
//! use prefall_imu::dataset::Dataset;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dataset = Dataset::combined_scaled(1, 1, 7)?;
//! let pipeline = Pipeline::new(PipelineConfig::paper_400ms())?;
//! let set = pipeline.segment_set(dataset.trials());
//! assert!(set.x.len() > 100);
//! // A small minority of segments are falling — the imbalance the
//! // paper fights with class weights and augmentation.
//! let positives = set.y.iter().filter(|&&y| y > 0.5).count();
//! assert!(positives > 0 && positives < set.y.len() / 8);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod augment;
pub mod cache;
pub mod cv;
pub mod detector;
pub mod events;
pub mod experiment;
pub mod metrics;
pub mod models;
pub mod monitor;
pub mod persist;
pub mod phases;
pub mod pipeline;
pub mod session;
pub mod tap;
pub mod threshold;
pub mod tuning;

mod error;
mod tracenames;
mod worker;

pub use error::CoreError;
