//! The detector split for fleet serving: a shared immutable
//! [`ModelBundle`] and a compact, poolable [`Session`].
//!
//! A [`StreamingDetector`](crate::detector::StreamingDetector) owns one
//! of each and serves exactly one wearer. A fleet server instead builds
//! one `ModelBundle` (engine weights, normaliser, configuration, filter
//! prototype — everything immutable and identical across wearers),
//! wraps it in an `Arc`, and pools thousands of `Session`s against it:
//! each session is only the per-stream state (ingest guard, IIR filter
//! delay lines, fusion attitude, sliding window, nn scratch
//! [`Workspace`], optional tap). Sessions are `Send`, reset cleanly for
//! recycling without releasing their buffers, and checkpoint/restore
//! bit-exactly so a reconnecting wearer resumes with a warm window.
//!
//! # Shared inference
//!
//! The exclusive single-wearer path classifies through `&mut Engine`
//! (which may fall back to the allocating forward pass for
//! architectures the scalar interpreter cannot run). The shared path
//! classifies through `&Engine` using the allocation-free scalar
//! interpreter only — bit-identical scores for supported
//! architectures, and [`ModelBundle::supports_shared_inference`]
//! reports support up front so a fleet can refuse an LSTM/ConvLSTM
//! bundle at construction instead of rejecting windows at runtime.
//!
//! # Tick grid and out-of-order delivery
//!
//! [`Session::push_at`] ingests a sample at an explicit 100 Hz grid
//! tick. Ticks already consumed are dropped and counted
//! (`guard.ts_regression`) — duplicate and reordered batches become
//! idempotent re-deliveries instead of silently corrupting the
//! gap-bridging math. Ticks ahead of the grid bridge the gap through
//! the existing [`SampleGuard`](crate::detector::SampleGuard) exactly
//! as [`Session::push_missing`] would, with gaps beyond
//! [`GuardConfig::max_gap_fill`](crate::detector::GuardConfig::max_gap_fill)
//! collapsed into one accounting step (same counters, no per-tick tap
//! callbacks) so a reconnect after minutes costs O(1), not O(gap).

use crate::detector::{
    emit_guard_deltas, DetectorConfig, DetectorMode, Engine, GuardConfig, GuardStatus, SampleGuard,
    TrialOutcome,
};
use crate::tap::{DetectorTap, SampleTapCtx, WindowTap};
use crate::CoreError;
use prefall_dsp::biquad::SosFilter;
use prefall_dsp::butterworth::Butterworth;
use prefall_dsp::fusion::{ComplementaryFilter, EulerAngles};
use prefall_dsp::stats::Normalizer;
use prefall_imu::channel::NUM_CHANNELS;
use prefall_imu::trial::{Trial, FUSION_ALPHA};
use prefall_imu::SAMPLE_RATE_HZ;
use prefall_nn::network::BranchStat;
use prefall_nn::workspace::Workspace;
use prefall_telemetry::{Recorder, Span};
use std::collections::VecDeque;
use std::sync::Arc;

/// The immutable, shareable half of a streaming detector: engine
/// weights, fitted normaliser, configuration and the designed filter
/// prototype. One bundle serves any number of [`Session`]s — wrap it
/// in an `Arc` and every session created from it classifies against
/// the same weights without copying them.
#[derive(Debug)]
pub struct ModelBundle {
    pub(crate) engine: Engine,
    pub(crate) normalizer: Normalizer,
    pub(crate) config: DetectorConfig,
    filter_proto: SosFilter,
    scalar_ready: bool,
}

impl ModelBundle {
    /// Builds a bundle from a trained engine and its fitted normaliser.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the engine input does
    /// not match the configured window, or the filter design fails.
    pub fn new(
        engine: impl Into<Engine>,
        normalizer: Normalizer,
        config: DetectorConfig,
    ) -> Result<Self, CoreError> {
        let engine = engine.into();
        let window = config.pipeline.segmentation.window();
        if engine.input_len() != window * NUM_CHANNELS {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "engine expects {} inputs, window provides {}",
                    engine.input_len(),
                    window * NUM_CHANNELS
                ),
            });
        }
        let design = Butterworth::lowpass(
            config.pipeline.filter_order,
            config.pipeline.filter_cutoff_hz,
            SAMPLE_RATE_HZ,
        )?;
        // Probe the allocation-free `&self` interpreter once so fleet
        // construction can refuse unsupported architectures up front.
        let scalar_ready = match &engine {
            Engine::Quantized(_) => true,
            Engine::Float(n) => {
                let mut ws = Workspace::new();
                let probe = vec![0.0f32; n.input_len()];
                n.infer_scalar(&probe, &mut ws).is_some()
            }
        };
        Ok(Self {
            engine,
            normalizer,
            config,
            filter_proto: design.to_filter(),
            scalar_ready,
        })
    }

    /// The detector configuration every session created from this
    /// bundle starts with.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// The shared inference engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The fitted per-channel normaliser.
    pub fn normalizer(&self) -> &Normalizer {
        &self.normalizer
    }

    /// Whether the `&self` shared-inference path supports this
    /// engine's architecture. `false` for the LSTM/ConvLSTM baselines,
    /// whose recurrent layers the allocation-free scalar interpreter
    /// cannot run — such bundles still work behind a
    /// [`StreamingDetector`](crate::detector::StreamingDetector), but
    /// a fleet should reject them at construction.
    pub fn supports_shared_inference(&self) -> bool {
        self.scalar_ready
    }

    /// Creates a fresh, cold session against this bundle.
    pub fn new_session(&self) -> Session {
        let window = self.config.pipeline.segmentation.window();
        Session {
            window_len: window,
            hop: self.config.pipeline.segmentation.hop(),
            threshold: self.config.threshold,
            consecutive: self.config.consecutive,
            filters: (0..NUM_CHANNELS)
                .map(|_| self.filter_proto.clone())
                .collect(),
            fusion: ComplementaryFilter::new(SAMPLE_RATE_HZ, FUSION_ALPHA),
            window: VecDeque::with_capacity(window),
            samples_seen: 0,
            positives_in_a_row: 0,
            guard: SampleGuard::new(self.config.guard),
            rec: prefall_telemetry::noop(),
            tap: None,
            last_trace: Vec::new(),
            published_mode: None,
            ws: Workspace::new(),
            scratch_seg: Vec::with_capacity(window * NUM_CHANNELS),
        }
    }

    pub(crate) fn shared_ctx(&self) -> EngineCtx<'_> {
        EngineCtx {
            engine: EngineRef::Shared(&self.engine),
            normalizer: &self.normalizer,
        }
    }
}

/// How a [`Session`] reaches the engine: exclusively (the
/// single-wearer detector, `&mut` — may use allocating fallbacks) or
/// shared (`&` — fleet serving, scalar interpreter only).
pub(crate) enum EngineRef<'a> {
    Exclusive(&'a mut Engine),
    Shared(&'a Engine),
}

impl EngineRef<'_> {
    fn try_in(&mut self, seg: &[f32], ws: &mut Workspace) -> Option<f32> {
        match self {
            EngineRef::Exclusive(e) => e.try_predict_proba_in(seg, ws),
            EngineRef::Shared(e) => e.try_predict_proba_shared(seg, ws),
        }
    }

    fn try_traced_in(
        &mut self,
        seg: &[f32],
        trace: &mut Vec<BranchStat>,
        ws: &mut Workspace,
    ) -> Option<f32> {
        match self {
            EngineRef::Exclusive(e) => e.try_predict_proba_traced_in(seg, trace, ws),
            EngineRef::Shared(e) => e.try_predict_proba_traced_shared(seg, trace, ws),
        }
    }

    fn raw_in(&mut self, seg: &[f32], ws: &mut Workspace) -> f32 {
        match self {
            EngineRef::Exclusive(e) => e.predict_proba_in(seg, ws),
            // Unsupported architectures cannot be computed without
            // `&mut`; NaN is the honest "no score" on the raw path.
            EngineRef::Shared(e) => e.predict_proba_shared(seg, ws).unwrap_or(f32::NAN),
        }
    }

    fn raw_traced_in(
        &mut self,
        seg: &[f32],
        trace: &mut Vec<BranchStat>,
        ws: &mut Workspace,
    ) -> f32 {
        match self {
            EngineRef::Exclusive(e) => e.predict_proba_traced_in(seg, trace, ws),
            EngineRef::Shared(e) => e
                .predict_proba_traced_shared(seg, trace, ws)
                .unwrap_or(f32::NAN),
        }
    }
}

/// Everything a [`Session`] borrows per push: the engine (exclusive or
/// shared) and the normaliser.
pub(crate) struct EngineCtx<'a> {
    pub(crate) engine: EngineRef<'a>,
    pub(crate) normalizer: &'a Normalizer,
}

/// What happened to one tick pushed via [`Session::push_at`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TickOutcome {
    /// Windows classified by this push (delivered sample plus any
    /// gap-bridged fills), appended to the caller's output in order.
    pub windows: usize,
    /// Window boundaries crossed while load-shedding (cadence
    /// advanced, inference skipped).
    pub shed_windows: usize,
    /// The tick was behind the grid (duplicate or reordered delivery):
    /// dropped and counted in `guard.ts_regression`.
    pub regressed: bool,
}

/// The compact, poolable per-wearer half of a streaming detector.
///
/// Holds every piece of state that differs between wearers — ingest
/// guard, filter delay lines, fusion attitude, sliding window, arming
/// run, nn scratch — and nothing that doesn't. All pushes borrow the
/// model from a [`ModelBundle`]; one bundle in an `Arc` serves every
/// session in a fleet.
///
/// [`Session::reset`] clears streaming state without releasing buffer
/// capacity, so recycling a session through a pool allocates nothing
/// in steady state.
#[derive(Debug)]
pub struct Session {
    window_len: usize,
    hop: usize,
    threshold: f32,
    consecutive: usize,
    filters: Vec<SosFilter>,
    fusion: ComplementaryFilter,
    window: VecDeque<[f32; NUM_CHANNELS]>,
    samples_seen: usize,
    positives_in_a_row: usize,
    guard: SampleGuard,
    rec: Arc<dyn Recorder>,
    tap: Option<Box<dyn DetectorTap>>,
    last_trace: Vec<BranchStat>,
    published_mode: Option<DetectorMode>,
    ws: Workspace,
    scratch_seg: Vec<f32>,
}

impl Session {
    /// Installs a telemetry recorder (see
    /// [`StreamingDetector::set_recorder`](crate::detector::StreamingDetector::set_recorder)).
    pub fn set_recorder(&mut self, rec: Arc<dyn Recorder>) {
        self.rec = rec;
    }

    /// Installs a [`DetectorTap`], replacing any previous one.
    pub fn set_tap(&mut self, tap: Box<dyn DetectorTap>) {
        self.tap = Some(tap);
    }

    /// Removes and returns the installed tap, if any.
    pub fn take_tap(&mut self) -> Option<Box<dyn DetectorTap>> {
        self.tap.take()
    }

    /// Whether a [`DetectorTap`] is currently installed.
    pub fn has_tap(&self) -> bool {
        self.tap.is_some()
    }

    /// Resets all streaming state (filters, fusion, window, guard
    /// stream state, tick grid). Cumulative [`GuardStatus`] counters
    /// survive. No buffer is released: a reset session re-streams
    /// without allocating.
    pub fn reset(&mut self) {
        for f in &mut self.filters {
            f.reset();
        }
        self.fusion.reset();
        self.window.clear();
        self.samples_seen = 0;
        self.positives_in_a_row = 0;
        self.guard.reset_stream();
        self.published_mode = None;
        if let Some(mut tap) = self.tap.take() {
            tap.on_stream_reset();
            self.tap = Some(tap);
        }
    }

    /// Replaces the guard configuration, resetting all guard state
    /// including the cumulative counters.
    pub fn set_guard(&mut self, cfg: GuardConfig) {
        self.guard = SampleGuard::new(cfg);
    }

    /// The currently active degraded modes.
    pub fn mode(&self) -> DetectorMode {
        self.guard.mode
    }

    /// Cumulative guard intervention counters.
    pub fn guard_status(&self) -> GuardStatus {
        self.guard.status
    }

    /// Whether the accelerometer branch currently confirms a fall-like
    /// event (magnitude left the 1 g rest band recently).
    pub fn accel_confirms(&self) -> bool {
        self.guard.anomaly_age as usize <= self.guard.cfg.accel_confirm_window
    }

    /// Whether the trigger condition (N consecutive positive windows)
    /// is currently met, ignoring degraded modes.
    pub fn trigger_armed(&self) -> bool {
        self.positives_in_a_row >= self.consecutive
    }

    /// The policy-aware trigger: armed *and* permitted by the
    /// degraded-trigger policy.
    pub fn trigger_decision(&self) -> bool {
        self.trigger_armed() && self.guard_allows_trigger()
    }

    /// The load-shed trigger decision: with inference shed, this is
    /// the degraded-trigger policy standing alone — a healthy,
    /// non-stale accelerometer whose magnitude recently confirmed a
    /// dynamic event. A fleet under overload degrades to this
    /// accel-confirmed-trigger-only mode instead of dropping the
    /// wearer silently.
    pub fn shed_trigger(&self) -> bool {
        let m = self.guard.mode;
        !m.accel_degraded && !m.stale && self.accel_confirms()
    }

    /// Grid ticks consumed so far (next expected tick for
    /// [`Session::push_at`]).
    pub fn next_tick(&self) -> u64 {
        self.guard.next_tick
    }

    /// Total samples folded into the sliding window (survives
    /// checkpoint/restore; used to verify a warm resume).
    pub fn samples_seen(&self) -> usize {
        self.samples_seen
    }

    /// Notifies an installed [`DetectorTap`] that a trial finished.
    pub fn notify_trial_end(&mut self, trial: &Trial, outcome: &TrialOutcome) {
        if let Some(mut tap) = self.tap.take() {
            tap.on_trial_end(trial, outcome);
            self.tap = Some(tap);
        }
    }

    /// Feeds one raw sample through the shared-inference path.
    /// Equivalent to
    /// [`StreamingDetector::push_sample`](crate::detector::StreamingDetector::push_sample)
    /// but borrowing the model immutably from `bundle`.
    pub fn push_sample(
        &mut self,
        bundle: &ModelBundle,
        accel: [f32; 3],
        gyro: [f32; 3],
    ) -> Option<f32> {
        let mut ctx = bundle.shared_ctx();
        self.push_sample_with(&mut ctx, accel, gyro)
    }

    /// Reports a missing grid tick through the shared-inference path
    /// (see
    /// [`StreamingDetector::push_missing`](crate::detector::StreamingDetector::push_missing)).
    pub fn push_missing(&mut self, bundle: &ModelBundle) -> Option<f32> {
        let mut ctx = bundle.shared_ctx();
        self.push_missing_with(&mut ctx)
    }

    /// Ingests a sample at an explicit grid tick, tolerating
    /// duplicate, reordered and gap delivery (module docs). Window
    /// probabilities — from the delivered sample and any gap-bridging
    /// fills — are appended to `out` in emission order.
    pub fn push_at(
        &mut self,
        bundle: &ModelBundle,
        tick: u64,
        accel: [f32; 3],
        gyro: [f32; 3],
        out: &mut Vec<f32>,
    ) -> TickOutcome {
        let mut ctx = bundle.shared_ctx();
        self.push_at_with(&mut ctx, tick, accel, gyro, Some(out), true)
    }

    /// [`Session::push_at`] under load shedding: guard, filters,
    /// window and cadence advance exactly as normal, but window
    /// boundaries skip inference (counted in
    /// [`TickOutcome::shed_windows`]); pair with
    /// [`Session::shed_trigger`] for the degraded trigger decision.
    pub fn push_at_shed(
        &mut self,
        bundle: &ModelBundle,
        tick: u64,
        accel: [f32; 3],
        gyro: [f32; 3],
    ) -> TickOutcome {
        let mut ctx = bundle.shared_ctx();
        self.push_at_with(&mut ctx, tick, accel, gyro, None, false)
    }

    /// Captures the complete per-stream state for crash-safe resume.
    pub fn checkpoint(&self) -> SessionCheckpoint {
        let mut filters = Vec::with_capacity(self.filters.len());
        for f in &self.filters {
            let mut state = Vec::with_capacity(f.num_sections());
            f.export_state(&mut state);
            filters.push(state);
        }
        let (fusion_angles, fusion_init) = self.fusion.state();
        SessionCheckpoint {
            samples_seen: self.samples_seen as u64,
            positives_in_a_row: self.positives_in_a_row as u64,
            window: self.window.iter().copied().collect(),
            filters,
            fusion_angles,
            fusion_init,
            guard: GuardSnapshot::capture(&self.guard),
        }
    }

    /// Restores state captured by [`Session::checkpoint`]: the next
    /// push continues bit-identically to the session that was
    /// checkpointed. The guard *configuration* is not part of a
    /// checkpoint — the session keeps its own.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the checkpoint's
    /// shape (filter sections, window rows) does not fit this
    /// session's configuration; the session is left unchanged.
    pub fn restore(&mut self, ck: &SessionCheckpoint) -> Result<(), CoreError> {
        if ck.filters.len() != self.filters.len() {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "checkpoint has {} filter channels, session has {}",
                    ck.filters.len(),
                    self.filters.len()
                ),
            });
        }
        for (f, state) in self.filters.iter().zip(&ck.filters) {
            if state.len() != f.num_sections() {
                return Err(CoreError::InvalidConfig {
                    reason: format!(
                        "checkpoint has {} filter sections, session has {}",
                        state.len(),
                        f.num_sections()
                    ),
                });
            }
        }
        if ck.window.len() > self.window_len {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "checkpoint window has {} rows, session window holds {}",
                    ck.window.len(),
                    self.window_len
                ),
            });
        }
        for (f, state) in self.filters.iter_mut().zip(&ck.filters) {
            let ok = f.restore_state(state);
            debug_assert!(ok, "shape checked above");
        }
        self.fusion.restore(ck.fusion_angles, ck.fusion_init);
        self.window.clear();
        self.window.extend(ck.window.iter().copied());
        self.samples_seen = ck.samples_seen as usize;
        self.positives_in_a_row = ck.positives_in_a_row as usize;
        ck.guard.restore_into(&mut self.guard);
        self.published_mode = None;
        self.last_trace.clear();
        Ok(())
    }

    pub(crate) fn push_sample_with(
        &mut self,
        ctx: &mut EngineCtx<'_>,
        accel: [f32; 3],
        gyro: [f32; 3],
    ) -> Option<f32> {
        self.push_tick(ctx, accel, gyro, true).0
    }

    /// One delivered tick: guard (or raw) ingest, then the tap.
    /// Returns `(probability, shed_boundary)`.
    fn push_tick(
        &mut self,
        ctx: &mut EngineCtx<'_>,
        accel: [f32; 3],
        gyro: [f32; 3],
        infer: bool,
    ) -> (Option<f32>, bool) {
        let (prob, shed) = if self.guard.cfg.enabled {
            self.guard.next_tick = self.guard.next_tick.wrapping_add(1);
            self.push_guarded(ctx, accel, gyro, false, infer)
        } else {
            self.push_raw(ctx, accel, gyro, infer)
        };
        self.tap_after(accel, gyro, false, prob);
        (prob, shed)
    }

    pub(crate) fn push_missing_with(&mut self, ctx: &mut EngineCtx<'_>) -> Option<f32> {
        if !self.guard.cfg.enabled {
            // The naive path never learns a tick passed — but a tap
            // still records the event so a replay stays faithful.
            let (accel, gyro) = self.guard.fill_value();
            self.tap_after(accel, gyro, true, None);
            return None;
        }
        self.push_missing_tick(ctx, true).0
    }

    /// One missing tick on the guarded path. Returns
    /// `(probability, shed_boundary)`.
    fn push_missing_tick(&mut self, ctx: &mut EngineCtx<'_>, infer: bool) -> (Option<f32>, bool) {
        let before = self.guard.status;
        self.guard.status.samples += 1;
        self.guard.next_tick = self.guard.next_tick.wrapping_add(1);
        self.guard.gap_run += 1;
        let bridged = self.guard.gap_run <= self.guard.cfg.max_gap_fill;
        if bridged {
            self.guard.status.gaps_filled += 1;
            if self.guard.mode.is_degraded() {
                self.guard.status.degraded_samples += 1;
            }
        } else {
            self.guard.status.gap_lost += 1;
            self.guard.mode.stale = true;
            self.guard.pending_flush = true;
        }
        if self.rec.enabled() {
            let rec = Arc::clone(&self.rec);
            // Emit only this method's own increments; the guarded push
            // below emits its own deltas.
            emit_guard_deltas(rec.as_ref(), &before, &self.guard.status);
            self.publish_mode(rec.as_ref());
        }
        let (accel, gyro) = self.guard.fill_value();
        let (prob, shed) = if bridged {
            self.push_guarded(ctx, accel, gyro, true, infer)
        } else {
            (None, false)
        };
        self.tap_after(accel, gyro, true, prob);
        (prob, shed)
    }

    pub(crate) fn push_at_with(
        &mut self,
        ctx: &mut EngineCtx<'_>,
        tick: u64,
        accel: [f32; 3],
        gyro: [f32; 3],
        mut out: Option<&mut Vec<f32>>,
        infer: bool,
    ) -> TickOutcome {
        let mut res = TickOutcome::default();
        let mut collect = |res: &mut TickOutcome, prob: Option<f32>, shed: bool| {
            if let Some(p) = prob {
                res.windows += 1;
                if let Some(out) = out.as_deref_mut() {
                    out.push(p);
                }
            }
            if shed {
                res.shed_windows += 1;
            }
        };
        if !self.guard.cfg.enabled {
            // The naive path has no grid: ingest in arrival order.
            let (prob, shed) = self.push_tick(ctx, accel, gyro, infer);
            collect(&mut res, prob, shed);
            return res;
        }
        let expected = self.guard.next_tick;
        if tick < expected {
            let before = self.guard.status;
            self.guard.status.ts_regression += 1;
            if self.rec.enabled() {
                let rec = Arc::clone(&self.rec);
                emit_guard_deltas(rec.as_ref(), &before, &self.guard.status);
            }
            res.regressed = true;
            return res;
        }
        if tick > expected {
            // A delivery gap: bridge through the guard exactly as a
            // run of `push_missing` calls would, with the unbridgeable
            // remainder collapsed into one accounting step.
            let mut remaining = tick - expected;
            let max_fill = self.guard.cfg.max_gap_fill as u64;
            while remaining > 0 && (self.guard.gap_run as u64) < max_fill {
                let (prob, shed) = self.push_missing_tick(ctx, infer);
                collect(&mut res, prob, shed);
                remaining -= 1;
            }
            if remaining > 0 {
                let before = self.guard.status;
                self.guard.status.samples += remaining;
                self.guard.status.gap_lost += remaining;
                self.guard.gap_run = self
                    .guard
                    .gap_run
                    .saturating_add(usize::try_from(remaining).unwrap_or(usize::MAX));
                self.guard.mode.stale = true;
                self.guard.pending_flush = true;
                self.guard.next_tick = tick;
                if self.rec.enabled() {
                    let rec = Arc::clone(&self.rec);
                    emit_guard_deltas(rec.as_ref(), &before, &self.guard.status);
                    self.publish_mode(rec.as_ref());
                }
            }
        }
        let (prob, shed) = self.push_tick(ctx, accel, gyro, infer);
        collect(&mut res, prob, shed);
        res
    }

    /// Invokes the installed tap (if any) for one completed ingest
    /// event. Take/put-back keeps the borrow checker happy without an
    /// allocation, and lets the tap live outside the session's own
    /// mutable state.
    fn tap_after(&mut self, accel: [f32; 3], gyro: [f32; 3], missing: bool, prob: Option<f32>) {
        let Some(mut tap) = self.tap.take() else {
            return;
        };
        let window = prob.map(|score| WindowTap {
            score,
            armed: self.trigger_armed(),
            decision: self.trigger_decision(),
            attribution: self.last_trace.as_slice(),
        });
        tap.on_sample(&SampleTapCtx {
            accel,
            gyro,
            missing,
            mode: self.guard.mode,
            guard: self.guard.status,
            window,
        });
        self.tap = Some(tap);
    }

    /// Publishes `detector.mode.*` gauges (0/1) when the mode changed
    /// since the last publish. Static names, no allocation.
    fn publish_mode(&mut self, rec: &dyn Recorder) {
        let m = self.guard.mode;
        if self.published_mode == Some(m) {
            return;
        }
        self.published_mode = Some(m);
        let flag = |b: bool| if b { 1.0 } else { 0.0 };
        rec.gauge_set("detector.mode.accel_degraded", flag(m.accel_degraded));
        rec.gauge_set("detector.mode.gyro_degraded", flag(m.gyro_degraded));
        rec.gauge_set("detector.mode.stale", flag(m.stale));
        rec.gauge_set("detector.mode.degraded", flag(m.is_degraded()));
    }

    /// The hardened ingest path. `synthetic` marks a gap-fill sample,
    /// which skips validation and watchdog updates (its values are the
    /// already-clean hold sample and must not look "stuck"). `infer`
    /// off is load shedding: cadence advances, inference is skipped.
    /// Returns `(probability, shed_boundary)`.
    fn push_guarded(
        &mut self,
        ctx: &mut EngineCtx<'_>,
        accel: [f32; 3],
        gyro: [f32; 3],
        synthetic: bool,
        infer: bool,
    ) -> (Option<f32>, bool) {
        // Cloning the Arc (one atomic bump, no allocation) frees `self`
        // for the mutable streaming state below.
        let rec = Arc::clone(&self.rec);
        let _push_span = Span::enter(rec.as_ref(), "detector.push_sample_seconds");
        let before = self.guard.status;

        if self.guard.pending_flush && !synthetic {
            // Real data after an unbridgeable gap: the window mixes
            // pre- and post-gap time, so drop it and refill.
            self.window.clear();
            self.positives_in_a_row = 0;
            self.guard.pending_flush = false;
            self.guard.gap_run = 0;
            self.guard.mode.stale = false;
            self.guard.status.window_flushes += 1;
        }

        let (accel, gyro) = if synthetic {
            (accel, gyro)
        } else {
            self.guard.sanitize(accel, gyro)
        };

        // Degraded gyro: run fusion accel-only so the Euler channels
        // stay posture-driven instead of integrating garbage.
        let fused_gyro = if self.guard.mode.gyro_degraded {
            [0.0; 3]
        } else {
            gyro
        };
        let euler = self.fusion.update(
            [
                f64::from(accel[0]),
                f64::from(accel[1]),
                f64::from(accel[2]),
            ],
            [
                f64::from(fused_gyro[0]),
                f64::from(fused_gyro[1]),
                f64::from(fused_gyro[2]),
            ],
        );
        let raw = [
            accel[0],
            accel[1],
            accel[2],
            gyro[0],
            gyro[1],
            gyro[2],
            euler.pitch as f32,
            euler.roll as f32,
            euler.yaw as f32,
        ];
        let mut row = [0.0f32; NUM_CHANNELS];
        for (c, (f, &v)) in self.filters.iter_mut().zip(&raw).enumerate() {
            row[c] = f.process(v);
        }

        let w = self.window_len;
        if self.window.len() == w {
            self.window.pop_front();
        }
        self.window.push_back(row);
        self.samples_seen += 1;

        let hop = self.hop;
        let mut shed_boundary = false;
        let prob = if self.window.len() < w || !(self.samples_seen - w).is_multiple_of(hop) {
            None
        } else if !infer {
            // Load shedding: the window boundary passes unclassified.
            // The arming run is frozen — a shed fleet falls back to
            // the accel-confirmed trigger, never to stale scores.
            shed_boundary = true;
            None
        } else {
            // Assemble, normalise, mask degraded channels, classify.
            // The scratch buffer and workspace are taken out of `self`
            // (both takes are allocation-free) so the engine can borrow
            // them alongside the session's own state.
            let mut seg = std::mem::take(&mut self.scratch_seg);
            let mut ws = std::mem::take(&mut self.ws);
            seg.clear();
            for r in &self.window {
                seg.extend_from_slice(r);
            }
            ctx.normalizer.apply_in_place(&mut seg);
            let mode = self.guard.mode;
            if mode.accel_degraded || mode.gyro_degraded {
                let from = if mode.accel_degraded { 0 } else { 3 };
                let to = if mode.gyro_degraded { 6 } else { 3 };
                for r in 0..w {
                    for c in from..to {
                        seg[r * NUM_CHANNELS + c] = 0.0;
                    }
                }
            }
            let p = {
                let _infer_span = Span::enter(rec.as_ref(), "detector.infer_seconds");
                let scored = if self.tap.is_some() {
                    ctx.engine
                        .try_traced_in(&seg, &mut self.last_trace, &mut ws)
                } else {
                    ctx.engine.try_in(&seg, &mut ws)
                };
                match scored {
                    Some(p) => p,
                    None => {
                        self.guard.status.engine_rejects += 1;
                        0.0
                    }
                }
            };
            self.scratch_seg = seg;
            self.ws = ws;
            self.guard.status.windows += 1;
            if mode.is_degraded() {
                self.guard.status.degraded_windows += 1;
            }
            if rec.enabled() {
                rec.counter_add("detector.windows", 1);
            }
            if p >= self.threshold {
                self.positives_in_a_row += 1;
            } else {
                self.positives_in_a_row = 0;
            }
            if self.trigger_armed() && !self.guard_allows_trigger() {
                self.guard.status.suppressed_triggers += 1;
            }
            Some(p)
        };

        if rec.enabled() {
            emit_guard_deltas(rec.as_ref(), &before, &self.guard.status);
            self.publish_mode(rec.as_ref());
        }
        (prob, shed_boundary)
    }

    /// The legacy unhardened ingest, byte-for-byte the pre-guard
    /// behaviour. Returns `(probability, shed_boundary)`.
    fn push_raw(
        &mut self,
        ctx: &mut EngineCtx<'_>,
        accel: [f32; 3],
        gyro: [f32; 3],
        infer: bool,
    ) -> (Option<f32>, bool) {
        // Cloning the Arc (one atomic bump, no allocation) frees `self`
        // for the mutable streaming state below.
        let rec = Arc::clone(&self.rec);
        let _push_span = Span::enter(rec.as_ref(), "detector.push_sample_seconds");
        // On-edge sensor fusion, exactly like the acquisition firmware.
        let euler = self.fusion.update(
            [
                f64::from(accel[0]),
                f64::from(accel[1]),
                f64::from(accel[2]),
            ],
            [f64::from(gyro[0]), f64::from(gyro[1]), f64::from(gyro[2])],
        );
        let raw = [
            accel[0],
            accel[1],
            accel[2],
            gyro[0],
            gyro[1],
            gyro[2],
            euler.pitch as f32,
            euler.roll as f32,
            euler.yaw as f32,
        ];
        let mut row = [0.0f32; NUM_CHANNELS];
        for (c, (f, &v)) in self.filters.iter_mut().zip(&raw).enumerate() {
            row[c] = f.process(v);
        }

        let w = self.window_len;
        if self.window.len() == w {
            self.window.pop_front();
        }
        self.window.push_back(row);
        self.samples_seen += 1;

        let hop = self.hop;
        if self.window.len() < w || !(self.samples_seen - w).is_multiple_of(hop) {
            return (None, false);
        }
        if !infer {
            return (None, true);
        }

        // Assemble, normalise, classify. Scratch reuse as in
        // `push_guarded`: no per-window heap allocation.
        let mut seg = std::mem::take(&mut self.scratch_seg);
        let mut ws = std::mem::take(&mut self.ws);
        seg.clear();
        for r in &self.window {
            seg.extend_from_slice(r);
        }
        ctx.normalizer.apply_in_place(&mut seg);
        let prob = {
            let _infer_span = Span::enter(rec.as_ref(), "detector.infer_seconds");
            if self.tap.is_some() {
                ctx.engine
                    .raw_traced_in(&seg, &mut self.last_trace, &mut ws)
            } else {
                ctx.engine.raw_in(&seg, &mut ws)
            }
        };
        self.scratch_seg = seg;
        self.ws = ws;
        if rec.enabled() {
            rec.counter_add("detector.windows", 1);
        }
        if prob >= self.threshold {
            self.positives_in_a_row += 1;
        } else {
            self.positives_in_a_row = 0;
        }
        (Some(prob), false)
    }

    fn guard_allows_trigger(&self) -> bool {
        if !self.guard.cfg.enabled {
            return true;
        }
        let m = self.guard.mode;
        if !m.is_degraded() {
            return true;
        }
        !m.accel_degraded && !m.stale && self.accel_confirms()
    }
}

/// The guard's per-stream state inside a [`SessionCheckpoint`]
/// (configuration excluded — the restoring session keeps its own).
#[derive(Debug, Clone, PartialEq)]
struct GuardSnapshot {
    last_good: Option<([f32; 3], [f32; 3])>,
    gap_run: u64,
    pending_flush: bool,
    axis_last: [f32; 6],
    axis_run: [u32; 6],
    bad_run: [u32; 2],
    stuck: [bool; 2],
    anomaly_age: u32,
    mode: DetectorMode,
    status: GuardStatus,
    next_tick: u64,
}

impl GuardSnapshot {
    fn capture(g: &SampleGuard) -> Self {
        Self {
            last_good: g.last_good,
            gap_run: g.gap_run as u64,
            pending_flush: g.pending_flush,
            axis_last: g.axis_last,
            axis_run: g.axis_run,
            bad_run: g.bad_run,
            stuck: g.stuck,
            anomaly_age: g.anomaly_age,
            mode: g.mode,
            status: g.status,
            next_tick: g.next_tick,
        }
    }

    fn restore_into(&self, g: &mut SampleGuard) {
        g.last_good = self.last_good;
        g.gap_run = usize::try_from(self.gap_run).unwrap_or(usize::MAX);
        g.pending_flush = self.pending_flush;
        g.axis_last = self.axis_last;
        g.axis_run = self.axis_run;
        g.bad_run = self.bad_run;
        g.stuck = self.stuck;
        g.anomaly_age = self.anomaly_age;
        g.mode = self.mode;
        g.status = self.status;
        g.next_tick = self.next_tick;
    }
}

/// A complete, self-contained snapshot of one [`Session`]'s streaming
/// state: filter delay lines, fusion attitude, window rows, arming
/// run, and the guard's stream state and counters.
///
/// Serialises to a versioned, checksummed byte format
/// ([`SessionCheckpoint::to_bytes`]); a truncated or corrupted blob is
/// refused on load, never half-restored — that is what makes resuming
/// a reconnecting wearer crash-safe.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionCheckpoint {
    samples_seen: u64,
    positives_in_a_row: u64,
    window: Vec<[f32; NUM_CHANNELS]>,
    filters: Vec<Vec<(f64, f64)>>,
    fusion_angles: EulerAngles,
    fusion_init: bool,
    guard: GuardSnapshot,
}

/// `"PFSC"` — prefall session checkpoint.
const CHECKPOINT_MAGIC: u32 = 0x5046_5343;
const CHECKPOINT_VERSION: u16 = 1;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CoreError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let Some(end) = end else {
            return Err(CoreError::InvalidConfig {
                reason: "truncated session checkpoint".to_string(),
            });
        };
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CoreError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, CoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, CoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f32(&mut self) -> Result<f32, CoreError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn f64(&mut self) -> Result<f64, CoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, CoreError> {
        Ok(self.u8()? != 0)
    }
}

impl SessionCheckpoint {
    /// Serialises to the versioned `PFSC` byte format with a trailing
    /// FNV-1a checksum.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(128 + self.window.len() * NUM_CHANNELS * 4);
        b.extend_from_slice(&CHECKPOINT_MAGIC.to_le_bytes());
        b.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        b.extend_from_slice(&(NUM_CHANNELS as u16).to_le_bytes());
        b.extend_from_slice(&self.samples_seen.to_le_bytes());
        b.extend_from_slice(&self.positives_in_a_row.to_le_bytes());

        b.extend_from_slice(
            &u32::try_from(self.window.len())
                .expect("window rows")
                .to_le_bytes(),
        );
        for row in &self.window {
            for v in row {
                b.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }

        b.extend_from_slice(
            &u16::try_from(self.filters.len())
                .expect("channels")
                .to_le_bytes(),
        );
        let sections = self.filters.first().map_or(0, Vec::len);
        b.extend_from_slice(&u16::try_from(sections).expect("sections").to_le_bytes());
        for states in &self.filters {
            debug_assert_eq!(states.len(), sections, "ragged filter cascade");
            for &(s1, s2) in states {
                b.extend_from_slice(&s1.to_bits().to_le_bytes());
                b.extend_from_slice(&s2.to_bits().to_le_bytes());
            }
        }

        for v in [
            self.fusion_angles.pitch,
            self.fusion_angles.roll,
            self.fusion_angles.yaw,
        ] {
            b.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        b.push(u8::from(self.fusion_init));

        let g = &self.guard;
        b.push(u8::from(g.last_good.is_some()));
        let (la, lg) = g.last_good.unwrap_or(([0.0; 3], [0.0; 3]));
        for v in la.iter().chain(lg.iter()) {
            b.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        b.extend_from_slice(&g.gap_run.to_le_bytes());
        b.push(u8::from(g.pending_flush));
        for v in &g.axis_last {
            b.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        for v in &g.axis_run {
            b.extend_from_slice(&v.to_le_bytes());
        }
        for v in &g.bad_run {
            b.extend_from_slice(&v.to_le_bytes());
        }
        for v in &g.stuck {
            b.push(u8::from(*v));
        }
        b.extend_from_slice(&g.anomaly_age.to_le_bytes());
        for v in [g.mode.accel_degraded, g.mode.gyro_degraded, g.mode.stale] {
            b.push(u8::from(v));
        }
        let s = &g.status;
        for v in [
            s.samples,
            s.nonfinite,
            s.clamped,
            s.gaps_filled,
            s.gap_lost,
            s.stuck_events,
            s.degraded_samples,
            s.degraded_windows,
            s.window_flushes,
            s.suppressed_triggers,
            s.engine_rejects,
            s.windows,
            s.ts_regression,
        ] {
            b.extend_from_slice(&v.to_le_bytes());
        }
        b.extend_from_slice(&g.next_tick.to_le_bytes());

        let checksum = fnv1a64(&b);
        b.extend_from_slice(&checksum.to_le_bytes());
        b
    }

    /// Deserialises a checkpoint produced by
    /// [`SessionCheckpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] on a bad magic/version,
    /// truncation, trailing garbage, a checksum mismatch, or an
    /// implausible shape — a damaged checkpoint is refused outright.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CoreError> {
        let bad = |reason: &str| CoreError::InvalidConfig {
            reason: reason.to_string(),
        };
        if bytes.len() < 8 {
            return Err(bad("session checkpoint too short"));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8"));
        if fnv1a64(body) != stored {
            return Err(bad("session checkpoint checksum mismatch"));
        }
        let mut r = ByteReader { buf: body, pos: 0 };
        if r.u32()? != CHECKPOINT_MAGIC {
            return Err(bad("not a session checkpoint (bad magic)"));
        }
        if r.u16()? != CHECKPOINT_VERSION {
            return Err(bad("unsupported session checkpoint version"));
        }
        if r.u16()? != NUM_CHANNELS as u16 {
            return Err(bad("session checkpoint channel count mismatch"));
        }
        let samples_seen = r.u64()?;
        let positives_in_a_row = r.u64()?;

        let rows = r.u32()? as usize;
        // A window longer than ~20 s of samples is not a real config.
        if rows > 4096 {
            return Err(bad("implausible session checkpoint window length"));
        }
        let mut window = Vec::with_capacity(rows);
        for _ in 0..rows {
            let mut row = [0.0f32; NUM_CHANNELS];
            for v in &mut row {
                *v = r.f32()?;
            }
            window.push(row);
        }

        let channels = r.u16()? as usize;
        let sections = r.u16()? as usize;
        if channels > 64 || sections > 64 {
            return Err(bad("implausible session checkpoint filter shape"));
        }
        let mut filters = Vec::with_capacity(channels);
        for _ in 0..channels {
            let mut states = Vec::with_capacity(sections);
            for _ in 0..sections {
                states.push((r.f64()?, r.f64()?));
            }
            filters.push(states);
        }

        let fusion_angles = EulerAngles::new(r.f64()?, r.f64()?, r.f64()?);
        let fusion_init = r.bool()?;

        let has_last_good = r.bool()?;
        let mut la = [0.0f32; 3];
        let mut lg = [0.0f32; 3];
        for v in la.iter_mut().chain(lg.iter_mut()) {
            *v = r.f32()?;
        }
        let gap_run = r.u64()?;
        let pending_flush = r.bool()?;
        let mut axis_last = [0.0f32; 6];
        for v in &mut axis_last {
            *v = r.f32()?;
        }
        let mut axis_run = [0u32; 6];
        for v in &mut axis_run {
            *v = r.u32()?;
        }
        let mut bad_run = [0u32; 2];
        for v in &mut bad_run {
            *v = r.u32()?;
        }
        let stuck = [r.bool()?, r.bool()?];
        let anomaly_age = r.u32()?;
        let mode = DetectorMode {
            accel_degraded: r.bool()?,
            gyro_degraded: r.bool()?,
            stale: r.bool()?,
        };
        let status = GuardStatus {
            samples: r.u64()?,
            nonfinite: r.u64()?,
            clamped: r.u64()?,
            gaps_filled: r.u64()?,
            gap_lost: r.u64()?,
            stuck_events: r.u64()?,
            degraded_samples: r.u64()?,
            degraded_windows: r.u64()?,
            window_flushes: r.u64()?,
            suppressed_triggers: r.u64()?,
            engine_rejects: r.u64()?,
            windows: r.u64()?,
            ts_regression: r.u64()?,
        };
        let next_tick = r.u64()?;
        if r.pos != body.len() {
            return Err(bad("trailing bytes in session checkpoint"));
        }
        Ok(Self {
            samples_seen,
            positives_in_a_row,
            window,
            filters,
            fusion_angles,
            fusion_init,
            guard: GuardSnapshot {
                last_good: has_last_good.then_some((la, lg)),
                gap_run,
                pending_flush,
                axis_last,
                axis_run,
                bad_run,
                stuck,
                anomaly_age,
                mode,
                status,
                next_tick,
            },
        })
    }

    /// Samples folded into the checkpointed window (a quick warmth
    /// check for a resumed wearer).
    pub fn samples_seen(&self) -> u64 {
        self.samples_seen
    }

    /// Rows held in the checkpointed sliding window.
    pub fn window_rows(&self) -> usize {
        self.window.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::StreamingDetector;
    use crate::models::ModelKind;
    use crate::pipeline::PipelineConfig;
    use prefall_dsp::segment::Overlap;

    fn config() -> DetectorConfig {
        DetectorConfig {
            pipeline: PipelineConfig::paper(200.0, Overlap::Half),
            threshold: 0.5,
            consecutive: 1,
            guard: GuardConfig::default(),
        }
    }

    fn bundle() -> ModelBundle {
        let cfg = config();
        let w = cfg.pipeline.segmentation.window();
        let net = ModelKind::ProposedCnn.build(w, 9, 5).unwrap();
        ModelBundle::new(net, Normalizer::identity(9), cfg).unwrap()
    }

    /// A lightly varying, physically plausible sample.
    fn wiggle(i: u64) -> ([f32; 3], [f32; 3]) {
        let t = i as f32 * 0.07;
        (
            [
                0.05 * t.sin(),
                0.04 * (1.3 * t).cos(),
                1.0 + 0.06 * (0.9 * t).sin(),
            ],
            [
                0.2 * (1.1 * t).sin(),
                0.15 * (0.7 * t).cos(),
                0.1 * (1.7 * t).sin(),
            ],
        )
    }

    #[test]
    fn shared_session_matches_serial_detector_bitwise() {
        let b = bundle();
        assert!(b.supports_shared_inference());
        let mut session = b.new_session();
        let cfg = config();
        let w = cfg.pipeline.segmentation.window();
        let net = ModelKind::ProposedCnn.build(w, 9, 5).unwrap();
        let mut serial = StreamingDetector::new(net, Normalizer::identity(9), cfg).unwrap();

        for i in 0..300 {
            let (a, g) = wiggle(i);
            let ps = session.push_sample(&b, a, g);
            let pd = serial.push_sample(a, g);
            assert_eq!(ps.map(f32::to_bits), pd.map(f32::to_bits), "sample {i}");
            assert_eq!(session.trigger_decision(), serial.trigger_decision());
        }
    }

    #[test]
    fn push_at_in_order_matches_push_sample() {
        let b = bundle();
        let mut seq = b.new_session();
        let mut plain = b.new_session();
        let mut out = Vec::new();
        for i in 0..120 {
            let (a, g) = wiggle(i);
            out.clear();
            let res = seq.push_at(&b, i, a, g, &mut out);
            let p = plain.push_sample(&b, a, g);
            assert!(!res.regressed);
            assert_eq!(out.len(), usize::from(p.is_some()));
            if let Some(p) = p {
                assert_eq!(out[0].to_bits(), p.to_bits());
            }
        }
        assert_eq!(seq.next_tick(), 120);
    }

    #[test]
    fn duplicate_and_reordered_ticks_are_dropped_and_counted() {
        let b = bundle();
        let mut s = b.new_session();
        let mut out = Vec::new();
        for i in 0..50 {
            let (a, g) = wiggle(i);
            s.push_at(&b, i, a, g, &mut out);
        }
        let windows_before = s.guard_status().windows;
        let samples_before = s.guard_status().samples;
        // Re-deliver an already-consumed range (duplicate batch).
        for i in 30..40 {
            let (a, g) = wiggle(i);
            let res = s.push_at(&b, i, a, g, &mut out);
            assert!(res.regressed);
            assert_eq!(res.windows, 0);
        }
        let st = s.guard_status();
        assert_eq!(st.ts_regression, 10);
        assert_eq!(st.windows, windows_before, "no window from stale ticks");
        assert_eq!(st.samples, samples_before, "stale ticks not ingested");
        assert_eq!(s.next_tick(), 50, "grid unmoved");
        // The stream continues unharmed.
        let (a, g) = wiggle(50);
        let res = s.push_at(&b, 50, a, g, &mut out);
        assert!(!res.regressed);
    }

    #[test]
    fn tick_gaps_bridge_like_push_missing() {
        let b = bundle();
        let mut seq = b.new_session();
        let mut imp = b.new_session();
        let mut out = Vec::new();
        let mut seq_probs = Vec::new();
        let mut imp_probs = Vec::new();
        for i in 0..60 {
            if (25..30).contains(&i) {
                // Sequenced side: simply never delivers these ticks —
                // the jump at tick 30 bridges them.
                if let Some(p) = imp.push_missing(&b) {
                    imp_probs.push(p.to_bits());
                }
                continue;
            }
            let (a, g) = wiggle(i);
            out.clear();
            seq.push_at(&b, i, a, g, &mut out);
            seq_probs.extend(out.iter().map(|p| p.to_bits()));
            if let Some(p) = imp.push_sample(&b, a, g) {
                imp_probs.push(p.to_bits());
            }
        }
        assert_eq!(seq_probs, imp_probs, "gap bridging must be bit-identical");
        assert_eq!(seq.guard_status().gaps_filled, 5);
        assert_eq!(seq.guard_status().gap_lost, 0);
    }

    #[test]
    fn huge_tick_jump_costs_o1_and_goes_stale() {
        let b = bundle();
        let mut s = b.new_session();
        let mut out = Vec::new();
        for i in 0..30 {
            let (a, g) = wiggle(i);
            s.push_at(&b, i, a, g, &mut out);
        }
        // A reconnect after ~10 minutes of silence: bridging all 60k
        // ticks individually would be O(gap); the collapse is O(1).
        let jump = 60_000u64;
        let (a, g) = wiggle(jump);
        let res = s.push_at(&b, jump, a, g, &mut out);
        assert!(!res.regressed);
        assert_eq!(s.next_tick(), jump + 1);
        let st = s.guard_status();
        let max_fill = GuardConfig::default().max_gap_fill as u64;
        assert_eq!(st.gaps_filled, max_fill);
        assert_eq!(st.gap_lost, jump - 30 - max_fill);
        assert_eq!(st.samples, jump + 1, "every tick accounted for");
        assert_eq!(st.window_flushes, 1, "mixed window flushed on arrival");
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let b = bundle();
        let mut s = b.new_session();
        for i in 0..73 {
            let (a, g) = wiggle(i);
            let _ = s.push_sample(&b, a, g);
        }
        let ck = s.checkpoint();
        let blob = ck.to_bytes();
        let loaded = SessionCheckpoint::from_bytes(&blob).unwrap();
        assert_eq!(ck, loaded, "byte round-trip is lossless");

        let mut resumed = b.new_session();
        resumed.restore(&loaded).unwrap();
        assert_eq!(resumed.samples_seen(), 73);
        for i in 73..200 {
            let (a, g) = wiggle(i);
            let pa = s.push_sample(&b, a, g);
            let pb = resumed.push_sample(&b, a, g);
            assert_eq!(pa.map(f32::to_bits), pb.map(f32::to_bits), "tick {i}");
        }
    }

    #[test]
    fn corrupted_checkpoints_are_refused() {
        let b = bundle();
        let mut s = b.new_session();
        for i in 0..40 {
            let (a, g) = wiggle(i);
            let _ = s.push_sample(&b, a, g);
        }
        let blob = s.checkpoint().to_bytes();
        // Truncation.
        assert!(SessionCheckpoint::from_bytes(&blob[..blob.len() - 3]).is_err());
        // Bit flip in the body.
        let mut flipped = blob.clone();
        flipped[20] ^= 0x40;
        assert!(SessionCheckpoint::from_bytes(&flipped).is_err());
        // Bad magic (checksum recomputed so only the magic is wrong).
        assert!(SessionCheckpoint::from_bytes(&[0u8; 4]).is_err());
        // Empty.
        assert!(SessionCheckpoint::from_bytes(&[]).is_err());
    }

    #[test]
    fn restore_rejects_mismatched_shapes() {
        let big = bundle(); // 200 ms window (20 rows)
        let cfg_small = DetectorConfig {
            pipeline: PipelineConfig::paper(100.0, Overlap::Half),
            ..config()
        };
        let w = cfg_small.pipeline.segmentation.window();
        let net = ModelKind::ProposedCnn.build(w, 9, 5).unwrap();
        let small = ModelBundle::new(net, Normalizer::identity(9), cfg_small).unwrap();

        let mut s = big.new_session();
        for i in 0..40 {
            let (a, g) = wiggle(i);
            let _ = s.push_sample(&big, a, g);
        }
        let ck = s.checkpoint();
        let mut target = small.new_session();
        assert!(target.restore(&ck).is_err(), "20-row window into 10-row");
    }

    #[test]
    fn shedding_freezes_inference_but_keeps_cadence() {
        let b = bundle();
        let mut shed = b.new_session();
        let mut full = b.new_session();
        let mut out = Vec::new();
        let mut shed_windows = 0;
        for i in 0..100 {
            let (a, g) = wiggle(i);
            let res = shed.push_at_shed(&b, i, a, g);
            assert_eq!(res.windows, 0, "shed path never classifies");
            shed_windows += res.shed_windows;
            out.clear();
            full.push_at(&b, i, a, g, &mut out);
        }
        assert_eq!(
            shed_windows,
            full.guard_status().windows as usize,
            "every boundary the full path classified, the shed path counted"
        );
        assert_eq!(shed.guard_status().windows, 0);
        assert!(!shed.trigger_armed(), "no scores, no arming");
        // Guard state still tracks reality: recovery to full service
        // continues seamlessly on the same grid.
        let (a, g) = wiggle(100);
        out.clear();
        let res = shed.push_at(&b, 100, a, g, &mut out);
        assert!(!res.regressed);
        assert_eq!(shed.next_tick(), 101);
    }

    #[test]
    fn reset_retains_buffers_and_restreams() {
        let b = bundle();
        let mut s = b.new_session();
        for i in 0..55 {
            let (a, g) = wiggle(i);
            let _ = s.push_sample(&b, a, g);
        }
        let faults = s.guard_status().faults();
        s.reset();
        assert_eq!(s.next_tick(), 0);
        assert_eq!(s.samples_seen(), 0);
        assert_eq!(s.guard_status().faults(), faults, "counters survive");
        let mut fresh = b.new_session();
        for i in 0..60 {
            let (a, g) = wiggle(i);
            let pa = s.push_sample(&b, a, g);
            let pb = fresh.push_sample(&b, a, g);
            assert_eq!(pa.map(f32::to_bits), pb.map(f32::to_bits));
        }
    }

    #[test]
    fn unsupported_architectures_are_reported() {
        let cfg = config();
        let w = cfg.pipeline.segmentation.window();
        let net = ModelKind::Lstm.build(w, 9, 5).unwrap();
        let b = ModelBundle::new(net, Normalizer::identity(9), cfg).unwrap();
        assert!(
            !b.supports_shared_inference(),
            "recurrent baselines cannot run the shared scalar path"
        );
    }
}
