//! The real-time streaming detector and the airbag trigger controller.
//!
//! This is the deployment-side counterpart of the training pipeline: raw
//! accelerometer/gyroscope samples stream in at 100 Hz; the detector
//! runs the on-edge preprocessing (complementary-filter fusion, causal
//! Butterworth low-pass) sample by sample, and every hop it classifies
//! the trailing window. A positive classification triggers the airbag,
//! which needs 150 ms to reach full extension.

use crate::pipeline::{Pipeline, PipelineConfig};
use crate::CoreError;
use prefall_dsp::biquad::SosFilter;
use prefall_dsp::butterworth::Butterworth;
use prefall_dsp::fusion::ComplementaryFilter;
use prefall_dsp::stats::Normalizer;
use prefall_imu::channel::{Channel, NUM_CHANNELS};
use prefall_imu::trial::{Trial, FUSION_ALPHA};
use prefall_imu::{AIRBAG_INFLATION_SAMPLES, SAMPLE_PERIOD_MS, SAMPLE_RATE_HZ};
use prefall_nn::network::Network;
use prefall_nn::quant::QuantizedNetwork;
use prefall_telemetry::{NoopRecorder, Recorder, Span, Value};
use std::collections::VecDeque;
use std::sync::Arc;

/// Upper bounds (ms) for the `detector.lead_time_ms` histogram: 25 ms
/// bins from 0 to 1 s, bracketing the 150 ms airbag-inflation budget.
pub fn lead_time_bounds_ms() -> Vec<f64> {
    (1..=40).map(|i| f64::from(i) * 25.0).collect()
}

/// Streaming detector configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Preprocessing configuration (window, overlap, filter).
    pub pipeline: PipelineConfig,
    /// Decision threshold on the sigmoid output.
    pub threshold: f32,
    /// Number of consecutive positive windows required to trigger
    /// (1 = trigger on the first positive window).
    pub consecutive: usize,
}

impl DetectorConfig {
    /// The paper's deployed configuration: 400 ms windows, 50 % overlap,
    /// trigger on the first positive window.
    pub fn paper_400ms() -> Self {
        Self {
            pipeline: PipelineConfig::paper_400ms(),
            threshold: 0.5,
            consecutive: 1,
        }
    }
}

/// The inference engine a detector runs: the float training network or
/// the int8 model actually deployed on the microcontroller.
#[derive(Debug)]
pub enum Engine {
    /// Float inference (development/evaluation).
    Float(Network),
    /// int8 inference — what the STM32 firmware executes.
    Quantized(QuantizedNetwork),
}

impl Engine {
    /// Flattened input length expected by the engine.
    pub fn input_len(&self) -> usize {
        match self {
            Engine::Float(n) => n.input_len(),
            Engine::Quantized(q) => q.input_len(),
        }
    }

    /// Sigmoid probability for one preprocessed segment.
    pub fn predict_proba(&mut self, segment: &[f32]) -> f32 {
        match self {
            Engine::Float(n) => prefall_nn::loss::sigmoid(n.forward(segment)[0]),
            Engine::Quantized(q) => q.predict_proba(segment),
        }
    }
}

impl From<Network> for Engine {
    fn from(n: Network) -> Self {
        Engine::Float(n)
    }
}

impl From<QuantizedNetwork> for Engine {
    fn from(q: QuantizedNetwork) -> Self {
        Engine::Quantized(q)
    }
}

/// A streaming pre-impact fall detector wrapping a trained network.
#[derive(Debug)]
pub struct StreamingDetector {
    engine: Engine,
    normalizer: Normalizer,
    config: DetectorConfig,
    filters: Vec<SosFilter>,
    fusion: ComplementaryFilter,
    window: VecDeque<[f32; NUM_CHANNELS]>,
    samples_seen: usize,
    positives_in_a_row: usize,
    rec: Arc<dyn Recorder>,
}

impl StreamingDetector {
    /// Creates a detector from a trained network (or a quantized model
    /// via [`Engine`]'s `From` impls) and its fitted normaliser.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the engine input does
    /// not match the configured window, or the filter design fails.
    pub fn new(
        engine: impl Into<Engine>,
        normalizer: Normalizer,
        config: DetectorConfig,
    ) -> Result<Self, CoreError> {
        let engine = engine.into();
        let window = config.pipeline.segmentation.window();
        if engine.input_len() != window * NUM_CHANNELS {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "engine expects {} inputs, window provides {}",
                    engine.input_len(),
                    window * NUM_CHANNELS
                ),
            });
        }
        let design = Butterworth::lowpass(
            config.pipeline.filter_order,
            config.pipeline.filter_cutoff_hz,
            SAMPLE_RATE_HZ,
        )?;
        Ok(Self {
            engine,
            normalizer,
            config,
            filters: (0..NUM_CHANNELS).map(|_| design.to_filter()).collect(),
            fusion: ComplementaryFilter::new(SAMPLE_RATE_HZ, FUSION_ALPHA),
            window: VecDeque::with_capacity(window),
            samples_seen: 0,
            positives_in_a_row: 0,
            rec: prefall_telemetry::noop(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Installs a telemetry recorder. Every [`StreamingDetector::push_sample`]
    /// lands in the `detector.push_sample_seconds` histogram, each
    /// classified window in `detector.infer_seconds` plus the
    /// `detector.windows` counter. The default is the shared no-op
    /// recorder, which never reads the clock.
    pub fn set_recorder(&mut self, rec: Arc<dyn Recorder>) {
        self.rec = rec;
    }

    /// Resets all streaming state (filters, fusion, window).
    pub fn reset(&mut self) {
        for f in &mut self.filters {
            f.reset();
        }
        self.fusion.reset();
        self.window.clear();
        self.samples_seen = 0;
        self.positives_in_a_row = 0;
    }

    /// Feeds one raw 100 Hz sample (accelerometer in g, gyroscope in
    /// rad/s). Returns the window probability when a full hop completed,
    /// `None` otherwise.
    pub fn push_sample(&mut self, accel: [f32; 3], gyro: [f32; 3]) -> Option<f32> {
        // Cloning the Arc (one atomic bump, no allocation) frees `self`
        // for the mutable streaming state below.
        let rec = Arc::clone(&self.rec);
        let _push_span = Span::enter(rec.as_ref(), "detector.push_sample_seconds");
        // On-edge sensor fusion, exactly like the acquisition firmware.
        let euler = self.fusion.update(
            [
                f64::from(accel[0]),
                f64::from(accel[1]),
                f64::from(accel[2]),
            ],
            [f64::from(gyro[0]), f64::from(gyro[1]), f64::from(gyro[2])],
        );
        let raw = [
            accel[0],
            accel[1],
            accel[2],
            gyro[0],
            gyro[1],
            gyro[2],
            euler.pitch as f32,
            euler.roll as f32,
            euler.yaw as f32,
        ];
        let mut row = [0.0f32; NUM_CHANNELS];
        for (c, (f, &v)) in self.filters.iter_mut().zip(&raw).enumerate() {
            row[c] = f.process(v);
        }

        let w = self.config.pipeline.segmentation.window();
        if self.window.len() == w {
            self.window.pop_front();
        }
        self.window.push_back(row);
        self.samples_seen += 1;

        let hop = self.config.pipeline.segmentation.hop();
        if self.window.len() < w || !(self.samples_seen - w).is_multiple_of(hop) {
            return None;
        }

        // Assemble, normalise, classify.
        let mut seg = Vec::with_capacity(w * NUM_CHANNELS);
        for r in &self.window {
            seg.extend_from_slice(r);
        }
        self.normalizer.apply_in_place(&mut seg);
        let prob = {
            let _infer_span = Span::enter(rec.as_ref(), "detector.infer_seconds");
            self.engine.predict_proba(&seg)
        };
        if rec.enabled() {
            rec.counter_add("detector.windows", 1);
        }
        if prob >= self.config.threshold {
            self.positives_in_a_row += 1;
        } else {
            self.positives_in_a_row = 0;
        }
        Some(prob)
    }

    /// Whether the trigger condition (N consecutive positive windows) is
    /// currently met.
    pub fn trigger_armed(&self) -> bool {
        self.positives_in_a_row >= self.config.consecutive
    }
}

/// Airbag state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AirbagState {
    /// Waiting for a trigger.
    Idle,
    /// Gas generator fired; counting down the 150 ms inflation.
    Inflating {
        /// Sample index at which the trigger fired.
        triggered_at: usize,
    },
    /// Fully inflated.
    Inflated {
        /// Sample index at which the trigger fired.
        triggered_at: usize,
        /// Sample index at which full extension was reached.
        full_at: usize,
    },
}

/// The wearable airbag model: fires once, takes 150 ms to inflate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AirbagController {
    state: AirbagState,
}

impl Default for AirbagController {
    fn default() -> Self {
        Self::new()
    }
}

impl AirbagController {
    /// A fresh, idle airbag.
    pub fn new() -> Self {
        Self {
            state: AirbagState::Idle,
        }
    }

    /// Current state.
    pub fn state(&self) -> AirbagState {
        self.state
    }

    /// Advances time to sample `now`, firing if `trigger` is set.
    /// Returns the new state.
    pub fn step(&mut self, now: usize, trigger: bool) -> AirbagState {
        self.state = match self.state {
            AirbagState::Idle if trigger => AirbagState::Inflating { triggered_at: now },
            AirbagState::Inflating { triggered_at }
                if now >= triggered_at + AIRBAG_INFLATION_SAMPLES =>
            {
                AirbagState::Inflated {
                    triggered_at,
                    full_at: triggered_at + AIRBAG_INFLATION_SAMPLES,
                }
            }
            s => s,
        };
        self.state
    }

    /// Whether the wearer is protected at the given impact sample (the
    /// bag reached full extension in time).
    pub fn protects_at(&self, impact: usize) -> bool {
        match self.state {
            AirbagState::Inflated { full_at, .. } => full_at <= impact,
            AirbagState::Inflating { triggered_at } => {
                triggered_at + AIRBAG_INFLATION_SAMPLES <= impact
            }
            AirbagState::Idle => false,
        }
    }
}

/// Outcome of streaming one trial through a detector + airbag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialOutcome {
    /// Sample index where the detector fired, if it did.
    pub triggered_at: Option<usize>,
    /// The trial's impact index, if it is a fall.
    pub impact: Option<usize>,
    /// Milliseconds between trigger and impact (negative = after
    /// impact), when both exist.
    pub lead_time_ms: Option<f64>,
    /// For falls: did the airbag reach full extension before impact?
    pub protected: Option<bool>,
    /// For ADLs: did the detector fire at all (false activation)?
    pub false_activation: bool,
    /// Highest window probability emitted during the trial — the
    /// event-level confidence score the calibration monitor bins.
    pub peak_prob: Option<f32>,
}

/// Streams a trial sample-by-sample through the detector and airbag.
pub fn run_on_trial(detector: &mut StreamingDetector, trial: &Trial) -> TrialOutcome {
    run_on_trial_recorded(detector, trial, &NoopRecorder)
}

/// [`run_on_trial`] with outcome telemetry: the lead time before impact
/// lands in the `detector.lead_time_ms` histogram (register
/// [`lead_time_bounds_ms`] for 25 ms bins), plus the `detector.trials`
/// / `detector.triggered` / `detector.protected` /
/// `detector.false_activations` counters and a `detector.trigger`
/// event per firing. Per-sample latency telemetry is separate — it goes
/// through the recorder installed with
/// [`StreamingDetector::set_recorder`].
pub fn run_on_trial_recorded(
    detector: &mut StreamingDetector,
    trial: &Trial,
    rec: &dyn Recorder,
) -> TrialOutcome {
    let outcome = stream_trial(detector, trial);
    if rec.enabled() {
        rec.counter_add("detector.trials", 1);
        if outcome.triggered_at.is_some() {
            rec.counter_add("detector.triggered", 1);
        }
        if outcome.protected == Some(true) {
            rec.counter_add("detector.protected", 1);
        }
        if outcome.false_activation {
            rec.counter_add("detector.false_activations", 1);
        }
        if let Some(lt) = outcome.lead_time_ms {
            rec.observe("detector.lead_time_ms", lt);
        }
        if let Some(t) = outcome.triggered_at {
            rec.event(
                "detector.trigger",
                &[
                    ("at_sample", Value::from(t)),
                    ("is_fall", Value::from(trial.is_fall())),
                    (
                        "lead_time_ms",
                        Value::from(outcome.lead_time_ms.unwrap_or(f64::NAN)),
                    ),
                ],
            );
        }
    }
    outcome
}

fn stream_trial(detector: &mut StreamingDetector, trial: &Trial) -> TrialOutcome {
    detector.reset();
    let mut airbag = AirbagController::new();
    let mut triggered_at = None;
    let mut peak_prob: Option<f32> = None;

    let ax = trial.channel(Channel::AccelX);
    let ay = trial.channel(Channel::AccelY);
    let az = trial.channel(Channel::AccelZ);
    let gx = trial.channel(Channel::GyroX);
    let gy = trial.channel(Channel::GyroY);
    let gz = trial.channel(Channel::GyroZ);

    for i in 0..trial.len() {
        if let Some(p) = detector.push_sample([ax[i], ay[i], az[i]], [gx[i], gy[i], gz[i]]) {
            peak_prob = Some(peak_prob.map_or(p, |q| q.max(p)));
        }
        let fire = detector.trigger_armed() && triggered_at.is_none();
        if fire {
            triggered_at = Some(i);
        }
        airbag.step(i, fire);
    }

    let impact = trial.impact();
    let lead_time_ms = match (triggered_at, impact) {
        (Some(t), Some(im)) => Some((im as f64 - t as f64) * SAMPLE_PERIOD_MS),
        _ => None,
    };
    let protected = impact.map(|im| airbag.protects_at(im));
    TrialOutcome {
        triggered_at,
        impact,
        lead_time_ms,
        protected,
        false_activation: !trial.is_fall() && triggered_at.is_some(),
        peak_prob,
    }
}

/// [`run_on_trial_recorded`] plus the online model-quality audit: the
/// trial lands in the [`QualityMonitor`]'s per-activity confusion
/// counters, calibration bins and lead-time tracking, and the derived
/// gauges are re-published so a live `/metrics` scrape stays fresh.
///
/// [`QualityMonitor`]: crate::monitor::QualityMonitor
pub fn run_on_trial_monitored(
    detector: &mut StreamingDetector,
    trial: &Trial,
    rec: &dyn Recorder,
    monitor: &mut crate::monitor::QualityMonitor,
) -> TrialOutcome {
    let outcome = run_on_trial_recorded(detector, trial, rec);
    monitor.record_trial(trial, &outcome, rec);
    monitor.publish(rec);
    outcome
}

/// Convenience: builds a streaming detector from a pipeline + training
/// artifacts produced by [`crate::cv::train_on_sets`].
pub fn detector_from_parts(
    pipeline: &Pipeline,
    net: Network,
    normalizer: Normalizer,
    threshold: f32,
) -> Result<StreamingDetector, CoreError> {
    StreamingDetector::new(
        net,
        normalizer,
        DetectorConfig {
            pipeline: *pipeline.config(),
            threshold,
            consecutive: 1,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelKind;
    use prefall_dsp::segment::Overlap;

    fn dummy_detector(window_ms: f64) -> StreamingDetector {
        let cfg = DetectorConfig {
            pipeline: PipelineConfig::paper(window_ms, Overlap::Half),
            threshold: 0.5,
            consecutive: 1,
        };
        let w = cfg.pipeline.segmentation.window();
        let net = ModelKind::ProposedCnn.build(w, 9, 1).unwrap();
        StreamingDetector::new(net, Normalizer::identity(9), cfg).unwrap()
    }

    #[test]
    fn emits_probability_every_hop() {
        let mut d = dummy_detector(200.0); // window 20, hop 10
        let mut emissions = Vec::new();
        for i in 0..60 {
            let p = d.push_sample([0.0, 0.0, 1.0], [0.0, 0.0, 0.0]);
            if p.is_some() {
                emissions.push(i);
            }
        }
        // First at sample index 19 (window filled), then every 10.
        assert_eq!(emissions, vec![19, 29, 39, 49, 59]);
    }

    #[test]
    fn rejects_mismatched_network() {
        let cfg = DetectorConfig::paper_400ms(); // window 40
        let net = ModelKind::ProposedCnn.build(20, 9, 1).unwrap();
        assert!(StreamingDetector::new(net, Normalizer::identity(9), cfg).is_err());
    }

    #[test]
    fn reset_restores_cadence() {
        let mut d = dummy_detector(200.0);
        for _ in 0..25 {
            let _ = d.push_sample([0.0, 0.0, 1.0], [0.0, 0.0, 0.0]);
        }
        d.reset();
        let mut first = None;
        for i in 0..30 {
            if d.push_sample([0.0, 0.0, 1.0], [0.0, 0.0, 0.0]).is_some() {
                first = Some(i);
                break;
            }
        }
        assert_eq!(first, Some(19));
    }

    #[test]
    fn quantized_engine_streams_like_float() {
        use prefall_nn::quant::QuantizedNetwork;
        let cfg = DetectorConfig {
            pipeline: PipelineConfig::paper(200.0, Overlap::Half),
            threshold: 0.5,
            consecutive: 1,
        };
        let w = cfg.pipeline.segmentation.window();
        let mut net = ModelKind::ProposedCnn.build(w, 9, 7).unwrap();
        // Calibrate on plausible filtered/normalised ranges.
        let calib: Vec<Vec<f32>> = (0..32)
            .map(|k| {
                (0..w * 9)
                    .map(|i| (((i + 7 * k) as f32) * 0.13).sin() * 2.0)
                    .collect()
            })
            .collect();
        let qnet = QuantizedNetwork::from_network(&mut net, &calib).unwrap();

        let mut float_d = StreamingDetector::new(net, Normalizer::identity(9), cfg).unwrap();
        let mut quant_d = StreamingDetector::new(qnet, Normalizer::identity(9), cfg).unwrap();

        let mut max_dev = 0.0f32;
        for i in 0..120 {
            let t = i as f32 / 100.0;
            let a = [
                0.1 * (6.0 * t).sin(),
                0.1 * (5.0 * t).cos(),
                1.0 + 0.2 * (7.0 * t).sin(),
            ];
            let g = [0.3 * (4.0 * t).sin(), 0.2 * (3.0 * t).cos(), 0.0];
            let pf = float_d.push_sample(a, g);
            let pq = quant_d.push_sample(a, g);
            assert_eq!(pf.is_some(), pq.is_some(), "emission cadence matches");
            if let (Some(f), Some(q)) = (pf, pq) {
                max_dev = max_dev.max((f - q).abs());
            }
        }
        assert!(max_dev < 0.12, "float/int8 streaming deviation {max_dev}");
    }

    #[test]
    fn consecutive_requirement_delays_arming() {
        let cfg = DetectorConfig {
            pipeline: PipelineConfig::paper(200.0, Overlap::Half),
            threshold: 0.0, // every window counts as positive
            consecutive: 3,
        };
        let w = cfg.pipeline.segmentation.window();
        let net = ModelKind::ProposedCnn.build(w, 9, 1).unwrap();
        let mut d = StreamingDetector::new(net, Normalizer::identity(9), cfg).unwrap();
        let mut armed_at = None;
        for i in 0..60 {
            let _ = d.push_sample([0.0, 0.0, 1.0], [0.0, 0.0, 0.0]);
            if d.trigger_armed() && armed_at.is_none() {
                armed_at = Some(i);
            }
        }
        // Windows complete at 19, 29, 39 → third positive arms at 39.
        assert_eq!(armed_at, Some(39));
    }

    #[test]
    fn airbag_inflates_after_150ms() {
        let mut bag = AirbagController::new();
        assert_eq!(bag.state(), AirbagState::Idle);
        bag.step(100, true);
        assert!(matches!(
            bag.state(),
            AirbagState::Inflating { triggered_at: 100 }
        ));
        bag.step(110, false);
        assert!(matches!(bag.state(), AirbagState::Inflating { .. }));
        bag.step(115, false);
        assert!(matches!(
            bag.state(),
            AirbagState::Inflated {
                triggered_at: 100,
                full_at: 115
            }
        ));
    }

    #[test]
    fn protection_requires_full_inflation_before_impact() {
        let mut bag = AirbagController::new();
        bag.step(100, true);
        bag.step(120, false);
        assert!(bag.protects_at(115), "exactly at full extension");
        assert!(bag.protects_at(130));
        assert!(!bag.protects_at(110), "impact during inflation");
        assert!(
            !AirbagController::new().protects_at(1000),
            "never triggered"
        );
    }

    #[test]
    fn airbag_fires_only_once() {
        let mut bag = AirbagController::new();
        bag.step(50, true);
        bag.step(60, true); // second trigger ignored
        bag.step(70, false);
        assert!(matches!(
            bag.state(),
            AirbagState::Inflated {
                triggered_at: 50,
                ..
            }
        ));
    }
}
