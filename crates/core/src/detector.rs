//! The real-time streaming detector and the airbag trigger controller.
//!
//! This is the deployment-side counterpart of the training pipeline: raw
//! accelerometer/gyroscope samples stream in at 100 Hz; the detector
//! runs the on-edge preprocessing (complementary-filter fusion, causal
//! Butterworth low-pass) sample by sample, and every hop it classifies
//! the trailing window. A positive classification triggers the airbag,
//! which needs 150 ms to reach full extension.
//!
//! # Hardened ingest and degraded modes
//!
//! Real IMUs misbehave: samples drop, axes freeze, values saturate or
//! go NaN after a bus glitch. When [`GuardConfig::enabled`] is set (the
//! default), every sample first passes through a [`SampleGuard`] stage
//! that
//!
//! * rejects non-finite values and clamps out-of-range ones to the
//!   configured physical limits, substituting the last good sample;
//! * fills short gaps (via [`StreamingDetector::push_missing`]) by
//!   holding the last good sample, and flushes the window after gaps
//!   too long to bridge;
//! * runs a stuck/stale watchdog that flags a frozen axis or a
//!   flat-lined sensor;
//! * switches the detector into explicit degraded modes
//!   ([`DetectorMode`]): a degraded sensor's channels are masked to the
//!   normalised zero point before inference (e.g. accel-only operation
//!   when the gyro is out) instead of feeding the network garbage.
//!
//! Every intervention is counted in [`GuardStatus`] and mirrored to the
//! telemetry [`Recorder`] under `guard.*` counters.
//!
//! # Degraded-trigger policy
//!
//! A window classified while any degraded mode is active may only fire
//! the airbag when the accelerometer branch independently confirms the
//! event: the accel channel must itself be healthy, the detector must
//! not be stale from an unbridged gap, and the accel magnitude must
//! have left the 1 g rest band within the last
//! [`GuardConfig::accel_confirm_window`] samples. Inflating the airbag
//! is irreversible and disruptive, so a probability computed from
//! masked or interpolated data is never trusted on its own —
//! [`StreamingDetector::trigger_decision`] encodes this policy and
//! [`AirbagController::step_with_detector`] applies it.
//!
//! # Fleet split
//!
//! [`StreamingDetector`] is the one-wearer face of a two-part core:
//! an immutable [`ModelBundle`](crate::session::ModelBundle) (weights,
//! normaliser, configuration) driving a poolable
//! [`Session`](crate::session::Session) (guard, filters, window,
//! scratch). A fleet server shares one bundle across thousands of
//! sessions — see [`crate::session`].

use crate::pipeline::{Pipeline, PipelineConfig};
use crate::session::{EngineCtx, EngineRef, ModelBundle, Session, SessionCheckpoint, TickOutcome};
use crate::tap::DetectorTap;
use crate::CoreError;
use prefall_dsp::stats::Normalizer;
use prefall_imu::channel::Channel;
use prefall_imu::trial::Trial;
use prefall_imu::{AIRBAG_INFLATION_SAMPLES, SAMPLE_PERIOD_MS};
use prefall_nn::kernels::reference_kernels;
use prefall_nn::network::{BranchStat, Network};
use prefall_nn::quant::QuantizedNetwork;
use prefall_nn::workspace::Workspace;
use prefall_telemetry::{NoopRecorder, Recorder, Value};
use std::sync::Arc;

/// Upper bounds (ms) for the `detector.lead_time_ms` histogram: 25 ms
/// bins from 0 to 1 s, bracketing the 150 ms airbag-inflation budget.
pub fn lead_time_bounds_ms() -> Vec<f64> {
    (1..=40).map(|i| f64::from(i) * 25.0).collect()
}

/// Streaming detector configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Preprocessing configuration (window, overlap, filter).
    pub pipeline: PipelineConfig,
    /// Decision threshold on the sigmoid output.
    pub threshold: f32,
    /// Number of consecutive positive windows required to trigger
    /// (1 = trigger on the first positive window).
    pub consecutive: usize,
    /// Ingest hardening configuration (see the module docs).
    pub guard: GuardConfig,
}

impl DetectorConfig {
    /// The paper's deployed configuration: 400 ms windows, 50 % overlap,
    /// trigger on the first positive window, hardened ingest on.
    pub fn paper_400ms() -> Self {
        Self {
            pipeline: PipelineConfig::paper_400ms(),
            threshold: 0.5,
            consecutive: 1,
            guard: GuardConfig::default(),
        }
    }
}

/// Configuration of the [`SampleGuard`] ingest-hardening stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardConfig {
    /// Master switch. Disabled reproduces the naive ingest exactly:
    /// non-finite values reach the filters and NaN propagates to the
    /// output probability.
    pub enabled: bool,
    /// Physical accelerometer range in g; readings clamp to ±limit.
    /// Default 16 g (the wide range of typical wearable IMUs).
    pub accel_limit_g: f32,
    /// Physical gyroscope range in rad/s; readings clamp to ±limit.
    /// Default ≈ 34.9 rad/s (2000 °/s).
    pub gyro_limit_rads: f32,
    /// Longest gap (in samples) bridged by holding the last good
    /// sample. Longer gaps flush the window and mark the detector
    /// stale until real data resumes. Default 10 (100 ms).
    pub max_gap_fill: usize,
    /// Identical consecutive readings on an axis before the watchdog
    /// calls it stuck. Default 25 (250 ms — real sensors jitter every
    /// sample).
    pub stuck_window: usize,
    /// Debounce for value-level faults: a sensor enters its degraded
    /// mode once its recent fault pressure reaches this level, and
    /// leaves it again after roughly twice as many clean samples.
    /// Default 5.
    pub fault_debounce: u32,
    /// How recently (in samples) the accel magnitude must have left the
    /// rest band for [`StreamingDetector::accel_confirms`] to hold.
    /// Default 40 (400 ms, one paper window).
    pub accel_confirm_window: usize,
    /// Half-width of the accel rest band around 1 g. Default 0.35 g.
    pub accel_confirm_dev_g: f32,
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            accel_limit_g: 16.0,
            gyro_limit_rads: 34.9,
            max_gap_fill: 10,
            stuck_window: 25,
            fault_debounce: 5,
            accel_confirm_window: 40,
            accel_confirm_dev_g: 0.35,
        }
    }
}

impl GuardConfig {
    /// The guard switched off: the legacy, unhardened ingest path.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

/// Which degraded modes are currently active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DetectorMode {
    /// Accelerometer channels are masked (stuck or persistently
    /// faulty accel).
    pub accel_degraded: bool,
    /// Gyroscope channels are masked and fusion runs accel-only.
    pub gyro_degraded: bool,
    /// An unbridged sample gap invalidated the window; cleared when
    /// real data resumes.
    pub stale: bool,
}

impl DetectorMode {
    /// `true` when any degraded mode is active.
    pub fn is_degraded(&self) -> bool {
        self.accel_degraded || self.gyro_degraded || self.stale
    }
}

/// Cumulative [`SampleGuard`] intervention counters.
///
/// Counters survive [`StreamingDetector::reset`] (they describe the
/// deployment, not one trial); [`StreamingDetector::set_guard`] starts
/// them over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GuardStatus {
    /// Grid ticks seen (delivered + missing).
    pub samples: u64,
    /// Non-finite axis readings replaced by the last good value.
    pub nonfinite: u64,
    /// Out-of-range axis readings clamped to the physical limit.
    pub clamped: u64,
    /// Missing ticks bridged by holding the last good sample.
    pub gaps_filled: u64,
    /// Missing ticks beyond [`GuardConfig::max_gap_fill`] (window lost).
    pub gap_lost: u64,
    /// Stuck-axis watchdog activations (transitions into stuck).
    pub stuck_events: u64,
    /// Samples ingested while any degraded mode was active.
    pub degraded_samples: u64,
    /// Windows classified while any degraded mode was active.
    pub degraded_windows: u64,
    /// Window flushes forced by unbridgeable gaps.
    pub window_flushes: u64,
    /// Armed triggers vetoed by the degraded-trigger policy.
    pub suppressed_triggers: u64,
    /// Segments the engine refused (non-finite in or out), scored 0.
    pub engine_rejects: u64,
    /// Windows classified through the guarded path.
    pub windows: u64,
    /// Ticks delivered behind the grid (duplicate or reordered
    /// batches) and dropped by [`Session::push_at`]. Counted, not a
    /// fault: re-delivery is normal transport behaviour, and dropping
    /// the stale tick is the correct (idempotent) response — so this
    /// deliberately does not feed [`GuardStatus::faults`] or the
    /// `/healthz` fault-rate budget.
    ///
    /// [`Session::push_at`]: crate::session::Session::push_at
    pub ts_regression: u64,
}

impl GuardStatus {
    /// Total faulty inputs handled: non-finite + clamped + filled +
    /// lost + stuck events.
    pub fn faults(&self) -> u64 {
        self.nonfinite + self.clamped + self.gaps_filled + self.gap_lost + self.stuck_events
    }

    /// Faults per ingested grid tick (0 when nothing was ingested).
    pub fn fault_rate(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.faults() as f64 / self.samples as f64
        }
    }
}

/// Neutral rest reading used before any good sample has arrived.
const REST_SAMPLE: ([f32; 3], [f32; 3]) = ([0.0, 0.0, 1.0], [0.0, 0.0, 0.0]);

/// The ingest-hardening stage: validates, clamps and gap-fills raw
/// samples, runs the stuck watchdog, and tracks the degraded modes.
///
/// Owned by [`StreamingDetector`]; its streaming state resets with the
/// detector while its [`GuardStatus`] counters accumulate across
/// trials. Uses only fixed-size state — no allocation on the sample
/// path.
#[derive(Debug, Clone)]
pub struct SampleGuard {
    pub(crate) cfg: GuardConfig,
    pub(crate) last_good: Option<([f32; 3], [f32; 3])>,
    pub(crate) gap_run: usize,
    pub(crate) pending_flush: bool,
    pub(crate) axis_last: [f32; 6],
    pub(crate) axis_run: [u32; 6],
    pub(crate) bad_run: [u32; 2],
    pub(crate) stuck: [bool; 2],
    pub(crate) anomaly_age: u32,
    pub(crate) mode: DetectorMode,
    pub(crate) status: GuardStatus,
    /// The next expected 100 Hz grid tick for explicitly-sequenced
    /// ingest ([`crate::session::Session::push_at`]); the implicit
    /// push paths keep it in step so a stream can switch to sequenced
    /// delivery at any point.
    pub(crate) next_tick: u64,
}

impl SampleGuard {
    pub(crate) fn new(cfg: GuardConfig) -> Self {
        Self {
            cfg,
            last_good: None,
            gap_run: 0,
            pending_flush: false,
            axis_last: [f32::NAN; 6],
            axis_run: [0; 6],
            bad_run: [0; 2],
            stuck: [false; 2],
            anomaly_age: u32::MAX,
            mode: DetectorMode::default(),
            status: GuardStatus::default(),
            next_tick: 0,
        }
    }

    /// Clears per-stream state; cumulative counters survive.
    pub(crate) fn reset_stream(&mut self) {
        self.last_good = None;
        self.gap_run = 0;
        self.pending_flush = false;
        self.axis_last = [f32::NAN; 6];
        self.axis_run = [0; 6];
        self.bad_run = [0; 2];
        self.stuck = [false; 2];
        self.anomaly_age = u32::MAX;
        self.mode = DetectorMode::default();
        self.next_tick = 0;
    }

    /// The sample used to bridge a gap.
    pub(crate) fn fill_value(&self) -> ([f32; 3], [f32; 3]) {
        self.last_good.unwrap_or(REST_SAMPLE)
    }

    /// Validates one delivered sample, returning the cleaned values.
    pub(crate) fn sanitize(&mut self, accel: [f32; 3], gyro: [f32; 3]) -> ([f32; 3], [f32; 3]) {
        self.status.samples += 1;
        self.gap_run = 0;
        let (fill_a, fill_g) = self.fill_value();
        let mut clean = [accel[0], accel[1], accel[2], gyro[0], gyro[1], gyro[2]];
        let fill = [
            fill_a[0], fill_a[1], fill_a[2], fill_g[0], fill_g[1], fill_g[2],
        ];
        let mut bad = [false; 2];
        for (k, v) in clean.iter_mut().enumerate() {
            let s = k / 3;
            let limit = if s == 0 {
                self.cfg.accel_limit_g
            } else {
                self.cfg.gyro_limit_rads
            };
            if !v.is_finite() {
                self.status.nonfinite += 1;
                bad[s] = true;
                *v = fill[k];
            } else if v.abs() > limit {
                self.status.clamped += 1;
                bad[s] = true;
                *v = v.clamp(-limit, limit);
            }
        }

        // Stuck watchdog on the cleaned values: an axis repeating the
        // exact same reading is electrically suspicious (real sensors
        // jitter in the low bits every sample).
        for (k, &v) in clean.iter().enumerate() {
            if v == self.axis_last[k] {
                self.axis_run[k] = self.axis_run[k].saturating_add(1);
            } else {
                self.axis_run[k] = 0;
                self.axis_last[k] = v;
            }
        }
        let w = self.cfg.stuck_window as u32;
        for s in 0..2 {
            let runs = &self.axis_run[s * 3..s * 3 + 3];
            let min = *runs.iter().min().expect("3 axes");
            let max = *runs.iter().max().expect("3 axes");
            // Dead: the whole sensor flat-lines. Frozen: one axis stops
            // while its siblings keep moving.
            let stuck_now = min >= w || (max >= w && min < w / 2);
            if stuck_now && !self.stuck[s] {
                self.status.stuck_events += 1;
            }
            self.stuck[s] = stuck_now;
        }

        // Debounced value-fault pressure per sensor.
        for (s, &was_bad) in bad.iter().enumerate() {
            if was_bad {
                self.bad_run[s] = (self.bad_run[s] + 2).min(2 * self.cfg.fault_debounce);
            } else {
                self.bad_run[s] = self.bad_run[s].saturating_sub(1);
            }
        }

        self.mode.accel_degraded = self.stuck[0] || self.bad_run[0] >= self.cfg.fault_debounce;
        self.mode.gyro_degraded = self.stuck[1] || self.bad_run[1] >= self.cfg.fault_debounce;

        // Accel-confirmation age: has the magnitude left the 1 g rest
        // band recently?
        let a = [clean[0], clean[1], clean[2]];
        let norm = (a[0] * a[0] + a[1] * a[1] + a[2] * a[2]).sqrt();
        if (norm - 1.0).abs() > self.cfg.accel_confirm_dev_g {
            self.anomaly_age = 0;
        } else {
            self.anomaly_age = self.anomaly_age.saturating_add(1);
        }

        let out = (a, [clean[3], clean[4], clean[5]]);
        self.last_good = Some(out);
        if self.mode.is_degraded() {
            self.status.degraded_samples += 1;
        }
        out
    }
}

/// Emits the change in each `guard.*` counter between two
/// [`GuardStatus`] snapshots. Static names, no allocation.
pub(crate) fn emit_guard_deltas(rec: &dyn Recorder, before: &GuardStatus, after: &GuardStatus) {
    let pairs: [(&'static str, u64, u64); 13] = [
        ("guard.samples", before.samples, after.samples),
        ("guard.nonfinite", before.nonfinite, after.nonfinite),
        ("guard.clamped", before.clamped, after.clamped),
        ("guard.gaps_filled", before.gaps_filled, after.gaps_filled),
        ("guard.gap_lost", before.gap_lost, after.gap_lost),
        (
            "guard.stuck_events",
            before.stuck_events,
            after.stuck_events,
        ),
        (
            "guard.degraded_samples",
            before.degraded_samples,
            after.degraded_samples,
        ),
        (
            "guard.degraded_windows",
            before.degraded_windows,
            after.degraded_windows,
        ),
        (
            "guard.window_flushes",
            before.window_flushes,
            after.window_flushes,
        ),
        (
            "guard.suppressed_triggers",
            before.suppressed_triggers,
            after.suppressed_triggers,
        ),
        (
            "guard.engine_rejects",
            before.engine_rejects,
            after.engine_rejects,
        ),
        (
            "guard.ts_regression",
            before.ts_regression,
            after.ts_regression,
        ),
        ("guard.faults", before.faults(), after.faults()),
    ];
    for (name, b, a) in pairs {
        if a > b {
            rec.counter_add(name, a - b);
        }
    }
}

/// The inference engine a detector runs: the float training network or
/// the int8 model actually deployed on the microcontroller.
#[derive(Debug)]
pub enum Engine {
    /// Float inference (development/evaluation).
    Float(Network),
    /// int8 inference — what the STM32 firmware executes.
    Quantized(QuantizedNetwork),
}

impl Engine {
    /// Flattened input length expected by the engine.
    pub fn input_len(&self) -> usize {
        match self {
            Engine::Float(n) => n.input_len(),
            Engine::Quantized(q) => q.input_len(),
        }
    }

    /// Sigmoid probability for one preprocessed segment.
    ///
    /// No input validation — and worse than NaN-in/NaN-out: the ReLU
    /// and max-pool layers use `f32::max`, which maps NaN to the other
    /// operand, so a corrupted segment is silently *laundered* into a
    /// finite but meaningless score. The output alone cannot reveal
    /// the corruption; validate at the input boundary with
    /// [`Engine::try_predict_proba`] when the segment may be
    /// corrupted.
    pub fn predict_proba(&mut self, segment: &[f32]) -> f32 {
        match self {
            Engine::Float(n) => prefall_nn::loss::sigmoid(n.forward(segment)[0]),
            Engine::Quantized(q) => q.predict_proba(segment),
        }
    }

    /// Validated inference: returns `None` instead of a garbage score
    /// when the segment contains a non-finite value, or when the
    /// engine itself produces one. This is the only reliable check —
    /// see [`Engine::predict_proba`] for why the output side cannot
    /// detect a poisoned segment. The hardened detector maps `None`
    /// to probability 0 and counts the reject.
    pub fn try_predict_proba(&mut self, segment: &[f32]) -> Option<f32> {
        if segment.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let p = self.predict_proba(segment);
        p.is_finite().then_some(p)
    }

    /// [`Engine::predict_proba`] additionally tracing per-branch
    /// activations of the modality split into `trace` (cleared first;
    /// left empty for quantized engines and split-less models). The
    /// returned probability is **bit-identical** to the untraced path
    /// — incident replay relies on this.
    pub fn predict_proba_traced(&mut self, segment: &[f32], trace: &mut Vec<BranchStat>) -> f32 {
        match self {
            Engine::Float(n) => {
                let out = n.forward_traced_into(segment, trace);
                prefall_nn::loss::sigmoid(out[0])
            }
            Engine::Quantized(q) => {
                trace.clear();
                q.predict_proba(segment)
            }
        }
    }

    /// [`Engine::try_predict_proba`] with branch tracing (see
    /// [`Engine::predict_proba_traced`]). `trace` is cleared even when
    /// the segment is rejected.
    pub fn try_predict_proba_traced(
        &mut self,
        segment: &[f32],
        trace: &mut Vec<BranchStat>,
    ) -> Option<f32> {
        trace.clear();
        if segment.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let p = self.predict_proba_traced(segment, trace);
        p.is_finite().then_some(p)
    }

    /// [`Engine::predict_proba`] through a caller-owned [`Workspace`]:
    /// float engines with interpreter-supported architectures run the
    /// fused, allocation-free kernel path; quantized engines,
    /// unsupported layer stacks, and runs with the reference kernels
    /// forced on fall back to the allocating path. The returned score
    /// is **bit-identical** either way.
    pub fn predict_proba_in(&mut self, segment: &[f32], ws: &mut Workspace) -> f32 {
        if !reference_kernels() {
            if let Engine::Float(n) = self {
                if let Some(logit) = n.infer_scalar(segment, ws) {
                    return prefall_nn::loss::sigmoid(logit);
                }
            }
        }
        self.predict_proba(segment)
    }

    /// [`Engine::try_predict_proba`] through a caller-owned
    /// [`Workspace`] (see [`Engine::predict_proba_in`]).
    pub fn try_predict_proba_in(&mut self, segment: &[f32], ws: &mut Workspace) -> Option<f32> {
        if segment.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let p = self.predict_proba_in(segment, ws);
        p.is_finite().then_some(p)
    }

    /// [`Engine::predict_proba_traced`] through a caller-owned
    /// [`Workspace`]: probability *and* branch statistics are
    /// bit-identical to the allocating traced path.
    pub fn predict_proba_traced_in(
        &mut self,
        segment: &[f32],
        trace: &mut Vec<BranchStat>,
        ws: &mut Workspace,
    ) -> f32 {
        if !reference_kernels() {
            if let Engine::Float(n) = self {
                trace.clear();
                if let Some(logit) = n.infer_scalar_traced(segment, ws, trace) {
                    return prefall_nn::loss::sigmoid(logit);
                }
            }
        }
        self.predict_proba_traced(segment, trace)
    }

    /// [`Engine::try_predict_proba_traced`] through a caller-owned
    /// [`Workspace`] (see [`Engine::predict_proba_traced_in`]).
    pub fn try_predict_proba_traced_in(
        &mut self,
        segment: &[f32],
        trace: &mut Vec<BranchStat>,
        ws: &mut Workspace,
    ) -> Option<f32> {
        trace.clear();
        if segment.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let p = self.predict_proba_traced_in(segment, trace, ws);
        p.is_finite().then_some(p)
    }

    /// [`Engine::predict_proba_in`] through `&self`, for fleet serving
    /// where one engine is shared immutably across sessions: float
    /// engines run the allocation-free scalar interpreter only
    /// (bit-identical scores to the default exclusive path), quantized
    /// engines score directly. Returns `None` for architectures the
    /// interpreter cannot run (the LSTM/ConvLSTM baselines) — check
    /// [`ModelBundle::supports_shared_inference`] once at construction
    /// instead of discovering it per window.
    ///
    /// [`ModelBundle::supports_shared_inference`]:
    ///     crate::session::ModelBundle::supports_shared_inference
    pub fn predict_proba_shared(&self, segment: &[f32], ws: &mut Workspace) -> Option<f32> {
        match self {
            Engine::Float(n) => n.infer_scalar(segment, ws).map(prefall_nn::loss::sigmoid),
            Engine::Quantized(q) => Some(q.predict_proba(segment)),
        }
    }

    /// [`Engine::try_predict_proba_in`] through `&self` (see
    /// [`Engine::predict_proba_shared`]). `None` means either a
    /// non-finite segment or an unsupported architecture.
    pub fn try_predict_proba_shared(&self, segment: &[f32], ws: &mut Workspace) -> Option<f32> {
        if segment.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let p = self.predict_proba_shared(segment, ws)?;
        p.is_finite().then_some(p)
    }

    /// [`Engine::predict_proba_traced_in`] through `&self` (see
    /// [`Engine::predict_proba_shared`]). `trace` is cleared first and
    /// left empty for quantized engines.
    pub fn predict_proba_traced_shared(
        &self,
        segment: &[f32],
        trace: &mut Vec<BranchStat>,
        ws: &mut Workspace,
    ) -> Option<f32> {
        trace.clear();
        match self {
            Engine::Float(n) => n
                .infer_scalar_traced(segment, ws, trace)
                .map(prefall_nn::loss::sigmoid),
            Engine::Quantized(q) => Some(q.predict_proba(segment)),
        }
    }

    /// [`Engine::try_predict_proba_traced_in`] through `&self` (see
    /// [`Engine::predict_proba_shared`]). `trace` is cleared even when
    /// the segment is rejected.
    pub fn try_predict_proba_traced_shared(
        &self,
        segment: &[f32],
        trace: &mut Vec<BranchStat>,
        ws: &mut Workspace,
    ) -> Option<f32> {
        trace.clear();
        if segment.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let p = self.predict_proba_traced_shared(segment, trace, ws)?;
        p.is_finite().then_some(p)
    }
}

impl From<Network> for Engine {
    fn from(mut n: Network) -> Self {
        // Weights are settled once a network becomes a detector engine:
        // build the interleaved conv/dense packs now so the streaming
        // workspace path classifies with zero per-window allocations.
        n.prepare_inference();
        Engine::Float(n)
    }
}

impl From<QuantizedNetwork> for Engine {
    fn from(q: QuantizedNetwork) -> Self {
        Engine::Quantized(q)
    }
}

/// A streaming pre-impact fall detector wrapping a trained network.
///
/// Internally this is a [`ModelBundle`] (the immutable model half)
/// driving a single [`Session`] (the per-stream half) through the
/// exclusive `&mut` engine path — the one-wearer special case of the
/// fleet split in [`crate::session`], with behaviour bit-identical to
/// the pre-split detector. [`StreamingDetector::into_parts`] releases
/// the halves for fleet use.
///
/// [`ModelBundle`]: crate::session::ModelBundle
/// [`Session`]: crate::session::Session
#[derive(Debug)]
pub struct StreamingDetector {
    bundle: ModelBundle,
    session: Session,
}

impl StreamingDetector {
    /// Creates a detector from a trained network (or a quantized model
    /// via [`Engine`]'s `From` impls) and its fitted normaliser.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the engine input does
    /// not match the configured window, or the filter design fails.
    pub fn new(
        engine: impl Into<Engine>,
        normalizer: Normalizer,
        config: DetectorConfig,
    ) -> Result<Self, CoreError> {
        let bundle = ModelBundle::new(engine, normalizer, config)?;
        let session = bundle.new_session();
        Ok(Self { bundle, session })
    }

    /// Reassembles a detector from a bundle and one of its sessions
    /// (the inverse of [`StreamingDetector::into_parts`]).
    pub fn from_parts(bundle: ModelBundle, session: Session) -> Self {
        Self { bundle, session }
    }

    /// Releases the model/session halves for fleet use: share the
    /// [`ModelBundle`](crate::session::ModelBundle) behind an `Arc`
    /// and pool [`Session`](crate::session::Session)s against it.
    pub fn into_parts(self) -> (ModelBundle, Session) {
        (self.bundle, self.session)
    }

    /// The shared model half.
    pub fn bundle(&self) -> &ModelBundle {
        &self.bundle
    }

    /// The per-stream session half.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Splits the borrow: the exclusive engine context plus the
    /// session it drives.
    fn ctx_and_session(&mut self) -> (EngineCtx<'_>, &mut Session) {
        let Self { bundle, session } = self;
        (
            EngineCtx {
                engine: EngineRef::Exclusive(&mut bundle.engine),
                normalizer: &bundle.normalizer,
            },
            session,
        )
    }

    /// The configuration.
    pub fn config(&self) -> &DetectorConfig {
        self.bundle.config()
    }

    /// Installs a telemetry recorder. Every [`StreamingDetector::push_sample`]
    /// lands in the `detector.push_sample_seconds` histogram, each
    /// classified window in `detector.infer_seconds` plus the
    /// `detector.windows` counter. The default is the shared no-op
    /// recorder, which never reads the clock.
    pub fn set_recorder(&mut self, rec: Arc<dyn Recorder>) {
        self.session.set_recorder(rec);
    }

    /// Installs a [`DetectorTap`]: a per-sample observer that sees
    /// every ingest event (raw values, guard state, classified windows
    /// with per-branch attribution). While a tap is installed,
    /// inference runs through the traced engine path — bit-identical
    /// scores, plus branch statistics. Replaces any previous tap.
    pub fn set_tap(&mut self, tap: Box<dyn DetectorTap>) {
        self.session.set_tap(tap);
    }

    /// Removes and returns the installed tap, if any.
    pub fn take_tap(&mut self) -> Option<Box<dyn DetectorTap>> {
        self.session.take_tap()
    }

    /// Whether a [`DetectorTap`] is currently installed.
    pub fn has_tap(&self) -> bool {
        self.session.has_tap()
    }

    /// Resets all streaming state (filters, fusion, window, guard
    /// stream state). Cumulative [`GuardStatus`] counters survive —
    /// they describe the deployment, not one trial.
    pub fn reset(&mut self) {
        self.session.reset();
    }

    /// Replaces the guard configuration, resetting all guard state
    /// *including* the cumulative [`GuardStatus`] counters. Lets one
    /// detector be compared with the guard on and off without
    /// rebuilding the engine or re-running training.
    pub fn set_guard(&mut self, cfg: GuardConfig) {
        self.bundle.config.guard = cfg;
        self.session.set_guard(cfg);
    }

    /// The currently active degraded modes.
    pub fn mode(&self) -> DetectorMode {
        self.session.mode()
    }

    /// Cumulative guard intervention counters.
    pub fn guard_status(&self) -> GuardStatus {
        self.session.guard_status()
    }

    /// Whether the accelerometer branch currently confirms a fall-like
    /// event: accel magnitude left the 1 g rest band within the last
    /// [`GuardConfig::accel_confirm_window`] samples.
    pub fn accel_confirms(&self) -> bool {
        self.session.accel_confirms()
    }

    /// Captures the complete per-stream state (see
    /// [`Session::checkpoint`](crate::session::Session::checkpoint)).
    pub fn checkpoint(&self) -> SessionCheckpoint {
        self.session.checkpoint()
    }

    /// Restores state captured by [`StreamingDetector::checkpoint`]
    /// (see [`Session::restore`](crate::session::Session::restore)).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the checkpoint's
    /// shape does not fit this detector's configuration.
    pub fn restore(&mut self, ck: &SessionCheckpoint) -> Result<(), CoreError> {
        self.session.restore(ck)
    }

    /// Feeds one raw 100 Hz sample (accelerometer in g, gyroscope in
    /// rad/s). Returns the window probability when a full hop completed,
    /// `None` otherwise.
    ///
    /// With [`GuardConfig::enabled`] (the default) the sample passes
    /// through the [`SampleGuard`] first and the returned probability
    /// is always finite and computed from validated data. With the
    /// guard disabled this is the naive ingest: a single NaN axis
    /// reading permanently poisons the Butterworth and fusion state,
    /// after which every window is NaN and the network's `max`-based
    /// layers launder it into a constant garbage score — the detector
    /// goes silently blind.
    pub fn push_sample(&mut self, accel: [f32; 3], gyro: [f32; 3]) -> Option<f32> {
        let (mut ctx, session) = self.ctx_and_session();
        session.push_sample_with(&mut ctx, accel, gyro)
    }

    /// Ingests a sample at an explicit 100 Hz grid tick, tolerating
    /// duplicate, reordered and gap delivery (see
    /// [`Session::push_at`](crate::session::Session::push_at)). Window
    /// probabilities are appended to `out` in emission order.
    pub fn push_at(
        &mut self,
        tick: u64,
        accel: [f32; 3],
        gyro: [f32; 3],
        out: &mut Vec<f32>,
    ) -> TickOutcome {
        let (mut ctx, session) = self.ctx_and_session();
        session.push_at_with(&mut ctx, tick, accel, gyro, Some(out), true)
    }

    /// Reports a missing grid tick (the sensor bus delivered nothing at
    /// this 100 Hz slot). Returns a probability if bridging the gap
    /// completed a hop.
    ///
    /// Gaps up to [`GuardConfig::max_gap_fill`] ticks are bridged by
    /// re-ingesting the last good sample (counted as `gaps_filled`);
    /// longer gaps mark the detector stale, flush the window when real
    /// data resumes, and are counted as `gap_lost`.
    ///
    /// With the guard disabled this is a no-op returning `None`: the
    /// naive detector simply never learns a tick passed, so its window
    /// silently loses grid alignment — the failure mode the guard
    /// exists to prevent.
    pub fn push_missing(&mut self) -> Option<f32> {
        let (mut ctx, session) = self.ctx_and_session();
        session.push_missing_with(&mut ctx)
    }

    /// Whether the trigger condition (N consecutive positive windows) is
    /// currently met. This is the raw arming state; it deliberately
    /// ignores degraded modes — see
    /// [`StreamingDetector::trigger_decision`] for the policy-aware
    /// check.
    pub fn trigger_armed(&self) -> bool {
        self.session.trigger_armed()
    }

    /// The policy-aware trigger: armed *and* permitted by the
    /// degraded-trigger policy (module docs). While degraded, a trigger
    /// requires a healthy, non-stale accelerometer whose magnitude
    /// recently confirmed a dynamic event; a probability computed from
    /// masked or gap-filled data never fires the airbag on its own.
    pub fn trigger_decision(&self) -> bool {
        self.session.trigger_decision()
    }

    /// Notifies an installed [`DetectorTap`] that a trial finished
    /// streaming. [`run_on_trial`] and the faulted-trial runner call
    /// this automatically; call it yourself when driving the detector
    /// sample-by-sample and the tap needs trial boundaries (e.g. the
    /// flight recorder classifying a missed fall).
    pub fn notify_trial_end(&mut self, trial: &Trial, outcome: &TrialOutcome) {
        self.session.notify_trial_end(trial, outcome);
    }
}

/// Airbag state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AirbagState {
    /// Waiting for a trigger.
    Idle,
    /// Gas generator fired; counting down the 150 ms inflation.
    Inflating {
        /// Sample index at which the trigger fired.
        triggered_at: usize,
    },
    /// Fully inflated.
    Inflated {
        /// Sample index at which the trigger fired.
        triggered_at: usize,
        /// Sample index at which full extension was reached.
        full_at: usize,
    },
}

/// The wearable airbag model: fires once, takes 150 ms to inflate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AirbagController {
    state: AirbagState,
}

impl Default for AirbagController {
    fn default() -> Self {
        Self::new()
    }
}

impl AirbagController {
    /// A fresh, idle airbag.
    pub fn new() -> Self {
        Self {
            state: AirbagState::Idle,
        }
    }

    /// Current state.
    pub fn state(&self) -> AirbagState {
        self.state
    }

    /// Advances time to sample `now`, firing from the detector's
    /// policy-aware [`StreamingDetector::trigger_decision`].
    ///
    /// This is the deployment-correct coupling: under a degraded
    /// detector the airbag never fires from a degraded-mode probability
    /// unless the accelerometer branch confirms (see the
    /// degraded-trigger policy in the module docs). Calling
    /// [`AirbagController::step`] with a raw
    /// [`StreamingDetector::trigger_armed`] bypasses that policy and is
    /// only appropriate when the ingest is known clean.
    pub fn step_with_detector(&mut self, now: usize, detector: &StreamingDetector) -> AirbagState {
        self.step(now, detector.trigger_decision())
    }

    /// Advances time to sample `now`, firing if `trigger` is set.
    /// Returns the new state.
    ///
    /// `trigger` is trusted blindly — pair it with
    /// [`StreamingDetector::trigger_decision`] (or use
    /// [`AirbagController::step_with_detector`]) so degraded-mode
    /// probabilities cannot fire the irreversible gas generator.
    pub fn step(&mut self, now: usize, trigger: bool) -> AirbagState {
        self.state = match self.state {
            AirbagState::Idle if trigger => AirbagState::Inflating { triggered_at: now },
            AirbagState::Inflating { triggered_at }
                if now >= triggered_at + AIRBAG_INFLATION_SAMPLES =>
            {
                AirbagState::Inflated {
                    triggered_at,
                    full_at: triggered_at + AIRBAG_INFLATION_SAMPLES,
                }
            }
            s => s,
        };
        self.state
    }

    /// Whether the wearer is protected at the given impact sample (the
    /// bag reached full extension in time).
    pub fn protects_at(&self, impact: usize) -> bool {
        match self.state {
            AirbagState::Inflated { full_at, .. } => full_at <= impact,
            AirbagState::Inflating { triggered_at } => {
                triggered_at + AIRBAG_INFLATION_SAMPLES <= impact
            }
            AirbagState::Idle => false,
        }
    }
}

/// Outcome of streaming one trial through a detector + airbag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialOutcome {
    /// Sample index where the detector fired, if it did.
    pub triggered_at: Option<usize>,
    /// The trial's impact index, if it is a fall.
    pub impact: Option<usize>,
    /// Milliseconds between trigger and impact (negative = after
    /// impact), when both exist.
    pub lead_time_ms: Option<f64>,
    /// For falls: did the airbag reach full extension before impact?
    pub protected: Option<bool>,
    /// For ADLs: did the detector fire at all (false activation)?
    pub false_activation: bool,
    /// Highest window probability emitted during the trial — the
    /// event-level confidence score the calibration monitor bins.
    pub peak_prob: Option<f32>,
}

/// Streams a trial sample-by-sample through the detector and airbag.
pub fn run_on_trial(detector: &mut StreamingDetector, trial: &Trial) -> TrialOutcome {
    run_on_trial_recorded(detector, trial, &NoopRecorder)
}

/// [`run_on_trial`] with outcome telemetry: the lead time before impact
/// lands in the `detector.lead_time_ms` histogram (register
/// [`lead_time_bounds_ms`] for 25 ms bins), plus the `detector.trials`
/// / `detector.triggered` / `detector.protected` /
/// `detector.false_activations` counters and a `detector.trigger`
/// event per firing. Per-sample latency telemetry is separate — it goes
/// through the recorder installed with
/// [`StreamingDetector::set_recorder`].
pub fn run_on_trial_recorded(
    detector: &mut StreamingDetector,
    trial: &Trial,
    rec: &dyn Recorder,
) -> TrialOutcome {
    let outcome = stream_trial(detector, trial);
    if rec.enabled() {
        rec.counter_add("detector.trials", 1);
        if outcome.triggered_at.is_some() {
            rec.counter_add("detector.triggered", 1);
        }
        if outcome.protected == Some(true) {
            rec.counter_add("detector.protected", 1);
        }
        if outcome.false_activation {
            rec.counter_add("detector.false_activations", 1);
        }
        if let Some(lt) = outcome.lead_time_ms {
            rec.observe("detector.lead_time_ms", lt);
        }
        if let Some(t) = outcome.triggered_at {
            rec.event(
                "detector.trigger",
                &[
                    ("at_sample", Value::from(t)),
                    ("is_fall", Value::from(trial.is_fall())),
                    (
                        "lead_time_ms",
                        Value::from(outcome.lead_time_ms.unwrap_or(f64::NAN)),
                    ),
                ],
            );
        }
    }
    outcome
}

fn stream_trial(detector: &mut StreamingDetector, trial: &Trial) -> TrialOutcome {
    detector.reset();
    let mut airbag = AirbagController::new();
    let mut triggered_at = None;
    let mut peak_prob: Option<f32> = None;

    let ax = trial.channel(Channel::AccelX);
    let ay = trial.channel(Channel::AccelY);
    let az = trial.channel(Channel::AccelZ);
    let gx = trial.channel(Channel::GyroX);
    let gy = trial.channel(Channel::GyroY);
    let gz = trial.channel(Channel::GyroZ);

    for i in 0..trial.len() {
        if let Some(p) = detector.push_sample([ax[i], ay[i], az[i]], [gx[i], gy[i], gz[i]]) {
            peak_prob = Some(peak_prob.map_or(p, |q| q.max(p)));
        }
        let fire = detector.trigger_decision() && triggered_at.is_none();
        if fire {
            triggered_at = Some(i);
        }
        airbag.step(i, fire);
    }

    let impact = trial.impact();
    let lead_time_ms = match (triggered_at, impact) {
        (Some(t), Some(im)) => Some((im as f64 - t as f64) * SAMPLE_PERIOD_MS),
        _ => None,
    };
    let protected = impact.map(|im| airbag.protects_at(im));
    let outcome = TrialOutcome {
        triggered_at,
        impact,
        lead_time_ms,
        protected,
        false_activation: !trial.is_fall() && triggered_at.is_some(),
        peak_prob,
    };
    detector.notify_trial_end(trial, &outcome);
    outcome
}

/// [`run_on_trial_recorded`] plus the online model-quality audit: the
/// trial lands in the [`QualityMonitor`]'s per-activity confusion
/// counters, calibration bins and lead-time tracking, and the derived
/// gauges are re-published so a live `/metrics` scrape stays fresh.
///
/// [`QualityMonitor`]: crate::monitor::QualityMonitor
pub fn run_on_trial_monitored(
    detector: &mut StreamingDetector,
    trial: &Trial,
    rec: &dyn Recorder,
    monitor: &mut crate::monitor::QualityMonitor,
) -> TrialOutcome {
    let outcome = run_on_trial_recorded(detector, trial, rec);
    monitor.record_trial(trial, &outcome, rec);
    monitor.record_guard(detector.guard_status());
    monitor.publish(rec);
    outcome
}

/// Convenience: builds a streaming detector from a pipeline + training
/// artifacts produced by [`crate::cv::train_on_sets`].
pub fn detector_from_parts(
    pipeline: &Pipeline,
    net: Network,
    normalizer: Normalizer,
    threshold: f32,
) -> Result<StreamingDetector, CoreError> {
    StreamingDetector::new(
        net,
        normalizer,
        DetectorConfig {
            pipeline: *pipeline.config(),
            threshold,
            consecutive: 1,
            guard: GuardConfig::default(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelKind;
    use prefall_dsp::segment::Overlap;

    fn dummy_detector(window_ms: f64) -> StreamingDetector {
        let cfg = DetectorConfig {
            pipeline: PipelineConfig::paper(window_ms, Overlap::Half),
            threshold: 0.5,
            consecutive: 1,
            guard: GuardConfig::default(),
        };
        let w = cfg.pipeline.segmentation.window();
        let net = ModelKind::ProposedCnn.build(w, 9, 1).unwrap();
        StreamingDetector::new(net, Normalizer::identity(9), cfg).unwrap()
    }

    #[test]
    fn emits_probability_every_hop() {
        let mut d = dummy_detector(200.0); // window 20, hop 10
        let mut emissions = Vec::new();
        for i in 0..60 {
            let p = d.push_sample([0.0, 0.0, 1.0], [0.0, 0.0, 0.0]);
            if p.is_some() {
                emissions.push(i);
            }
        }
        // First at sample index 19 (window filled), then every 10.
        assert_eq!(emissions, vec![19, 29, 39, 49, 59]);
    }

    #[test]
    fn rejects_mismatched_network() {
        let cfg = DetectorConfig::paper_400ms(); // window 40
        let net = ModelKind::ProposedCnn.build(20, 9, 1).unwrap();
        assert!(StreamingDetector::new(net, Normalizer::identity(9), cfg).is_err());
    }

    #[test]
    fn reset_restores_cadence() {
        let mut d = dummy_detector(200.0);
        for _ in 0..25 {
            let _ = d.push_sample([0.0, 0.0, 1.0], [0.0, 0.0, 0.0]);
        }
        d.reset();
        let mut first = None;
        for i in 0..30 {
            if d.push_sample([0.0, 0.0, 1.0], [0.0, 0.0, 0.0]).is_some() {
                first = Some(i);
                break;
            }
        }
        assert_eq!(first, Some(19));
    }

    #[test]
    fn quantized_engine_streams_like_float() {
        use prefall_nn::quant::QuantizedNetwork;
        let cfg = DetectorConfig {
            pipeline: PipelineConfig::paper(200.0, Overlap::Half),
            threshold: 0.5,
            consecutive: 1,
            guard: GuardConfig::default(),
        };
        let w = cfg.pipeline.segmentation.window();
        let mut net = ModelKind::ProposedCnn.build(w, 9, 7).unwrap();
        // Calibrate on plausible filtered/normalised ranges.
        let calib: Vec<Vec<f32>> = (0..32)
            .map(|k| {
                (0..w * 9)
                    .map(|i| (((i + 7 * k) as f32) * 0.13).sin() * 2.0)
                    .collect()
            })
            .collect();
        let qnet = QuantizedNetwork::from_network(&mut net, &calib).unwrap();

        let mut float_d = StreamingDetector::new(net, Normalizer::identity(9), cfg).unwrap();
        let mut quant_d = StreamingDetector::new(qnet, Normalizer::identity(9), cfg).unwrap();

        let mut max_dev = 0.0f32;
        for i in 0..120 {
            let t = i as f32 / 100.0;
            let a = [
                0.1 * (6.0 * t).sin(),
                0.1 * (5.0 * t).cos(),
                1.0 + 0.2 * (7.0 * t).sin(),
            ];
            let g = [0.3 * (4.0 * t).sin(), 0.2 * (3.0 * t).cos(), 0.0];
            let pf = float_d.push_sample(a, g);
            let pq = quant_d.push_sample(a, g);
            assert_eq!(pf.is_some(), pq.is_some(), "emission cadence matches");
            if let (Some(f), Some(q)) = (pf, pq) {
                max_dev = max_dev.max((f - q).abs());
            }
        }
        assert!(max_dev < 0.12, "float/int8 streaming deviation {max_dev}");
    }

    #[test]
    fn consecutive_requirement_delays_arming() {
        let cfg = DetectorConfig {
            pipeline: PipelineConfig::paper(200.0, Overlap::Half),
            threshold: 0.0, // every window counts as positive
            consecutive: 3,
            guard: GuardConfig::default(),
        };
        let w = cfg.pipeline.segmentation.window();
        let net = ModelKind::ProposedCnn.build(w, 9, 1).unwrap();
        let mut d = StreamingDetector::new(net, Normalizer::identity(9), cfg).unwrap();
        let mut armed_at = None;
        for i in 0..60 {
            let _ = d.push_sample([0.0, 0.0, 1.0], [0.0, 0.0, 0.0]);
            if d.trigger_armed() && armed_at.is_none() {
                armed_at = Some(i);
            }
        }
        // Windows complete at 19, 29, 39 → third positive arms at 39.
        assert_eq!(armed_at, Some(39));
    }

    #[test]
    fn airbag_inflates_after_150ms() {
        let mut bag = AirbagController::new();
        assert_eq!(bag.state(), AirbagState::Idle);
        bag.step(100, true);
        assert!(matches!(
            bag.state(),
            AirbagState::Inflating { triggered_at: 100 }
        ));
        bag.step(110, false);
        assert!(matches!(bag.state(), AirbagState::Inflating { .. }));
        bag.step(115, false);
        assert!(matches!(
            bag.state(),
            AirbagState::Inflated {
                triggered_at: 100,
                full_at: 115
            }
        ));
    }

    #[test]
    fn protection_requires_full_inflation_before_impact() {
        let mut bag = AirbagController::new();
        bag.step(100, true);
        bag.step(120, false);
        assert!(bag.protects_at(115), "exactly at full extension");
        assert!(bag.protects_at(130));
        assert!(!bag.protects_at(110), "impact during inflation");
        assert!(
            !AirbagController::new().protects_at(1000),
            "never triggered"
        );
    }

    #[test]
    fn airbag_fires_only_once() {
        let mut bag = AirbagController::new();
        bag.step(50, true);
        bag.step(60, true); // second trigger ignored
        bag.step(70, false);
        assert!(matches!(
            bag.state(),
            AirbagState::Inflated {
                triggered_at: 50,
                ..
            }
        ));
    }

    /// A lightly varying, physically plausible sample: ~1 g accel with
    /// jitter so the stuck watchdog stays quiet.
    fn wiggle(i: usize) -> ([f32; 3], [f32; 3]) {
        let t = i as f32 * 0.07;
        (
            [
                0.05 * t.sin(),
                0.04 * (1.3 * t).cos(),
                1.0 + 0.06 * (0.9 * t).sin(),
            ],
            [
                0.2 * (1.1 * t).sin(),
                0.15 * (0.7 * t).cos(),
                0.1 * (1.7 * t).sin(),
            ],
        )
    }

    #[test]
    fn guard_keeps_probabilities_finite_under_nan_burst() {
        let mut d = dummy_detector(200.0);
        for i in 0..120 {
            let (a, g) = wiggle(i);
            let (a, g) = if (40..48).contains(&i) {
                ([f32::NAN; 3], [f32::INFINITY, f32::NAN, f32::NEG_INFINITY])
            } else {
                (a, g)
            };
            if let Some(p) = d.push_sample(a, g) {
                assert!(p.is_finite(), "non-finite prob at sample {i}");
            }
        }
        let s = d.guard_status();
        assert!(
            s.nonfinite >= 8 * 6,
            "counted {} nonfinite axes",
            s.nonfinite
        );
        assert!(s.faults() > 0);
        assert!(s.fault_rate() > 0.0);
    }

    #[test]
    fn unguarded_path_goes_silently_blind_after_nan_burst() {
        // The naive ingest's failure is worse than emitting NaN: the
        // burst poisons the IIR filter state for good, every later
        // window is all-NaN, and the network's `max`-based layers
        // launder that into one constant, input-independent score.
        let run = |guarded: bool| -> Vec<f32> {
            let mut d = dummy_detector(200.0);
            if !guarded {
                d.set_guard(GuardConfig::disabled());
            }
            let mut probs = Vec::new();
            for i in 0..240 {
                let (a, g) = if (40..48).contains(&i) {
                    ([f32::NAN; 3], [f32::NAN; 3])
                } else if i >= 120 {
                    // Violent, varied motion the detector must see.
                    let t = i as f32 * 0.31;
                    (
                        [4.0 * t.sin(), 3.0 * t.cos(), 5.0 * (0.7 * t).sin()],
                        [8.0 * t.cos(), 6.0 * t.sin(), 7.0 * (1.3 * t).cos()],
                    )
                } else {
                    wiggle(i)
                };
                if let Some(p) = d.push_sample(a, g) {
                    if i >= 120 {
                        probs.push(p);
                    }
                }
            }
            probs
        };
        let blind = run(false);
        let hardened = run(true);
        assert!(
            blind.windows(2).all(|w| w[0] == w[1]),
            "unguarded detector should be frozen at one garbage score: {blind:?}"
        );
        assert!(
            hardened.windows(2).any(|w| w[0] != w[1]),
            "guarded detector should still respond to motion: {hardened:?}"
        );
        assert!(hardened.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn guard_clamps_out_of_range_values() {
        let mut d = dummy_detector(200.0);
        for i in 0..60 {
            let (mut a, g) = wiggle(i);
            if i == 30 {
                a[0] = 500.0; // far beyond 16 g
            }
            let _ = d.push_sample(a, g);
        }
        assert_eq!(d.guard_status().clamped, 1);
    }

    #[test]
    fn short_gaps_are_bridged_and_keep_cadence() {
        let mut d = dummy_detector(200.0); // window 20, hop 10
        let mut emissions = Vec::new();
        for i in 0..60 {
            let p = if (25..30).contains(&i) {
                d.push_missing()
            } else {
                let (a, g) = wiggle(i);
                d.push_sample(a, g)
            };
            if p.is_some() {
                emissions.push(i);
            }
        }
        assert_eq!(emissions, vec![19, 29, 39, 49, 59], "cadence preserved");
        let s = d.guard_status();
        assert_eq!(s.gaps_filled, 5);
        assert_eq!(s.gap_lost, 0);
        assert_eq!(s.window_flushes, 0);
    }

    #[test]
    fn long_gaps_flush_the_window_and_go_stale() {
        let mut d = dummy_detector(200.0);
        for i in 0..30 {
            let (a, g) = wiggle(i);
            let _ = d.push_sample(a, g);
        }
        for _ in 0..15 {
            // 15 > max_gap_fill (10): bridging gives up part-way.
            assert!(d.push_missing().is_none() || d.guard_status().gap_lost == 0);
        }
        assert!(d.mode().stale, "detector stale after unbridgeable gap");
        let s = d.guard_status();
        assert_eq!(s.gaps_filled, 10);
        assert_eq!(s.gap_lost, 5);
        // Real data resumes: the mixed window flushes, mode recovers.
        let (a, g) = wiggle(45);
        let _ = d.push_sample(a, g);
        assert!(!d.mode().stale);
        assert_eq!(d.guard_status().window_flushes, 1);
    }

    #[test]
    fn gyro_outage_enters_degraded_mode_and_recovers() {
        let mut d = dummy_detector(200.0);
        for i in 0..200 {
            let (a, mut g) = wiggle(i);
            if (50..120).contains(&i) {
                g = [0.25; 3]; // gyro flat-lines at a frozen value
            }
            let _ = d.push_sample(a, g);
            if i == 119 {
                assert!(d.mode().gyro_degraded, "frozen gyro not flagged");
                assert!(!d.mode().accel_degraded);
            }
        }
        assert!(!d.mode().gyro_degraded, "mode should clear on recovery");
        assert!(d.guard_status().stuck_events >= 1);
        assert!(d.guard_status().degraded_windows >= 1);
    }

    #[test]
    fn degraded_trigger_needs_accel_confirmation() {
        // threshold 0 ⇒ every window arms the detector.
        let cfg = DetectorConfig {
            pipeline: PipelineConfig::paper(200.0, Overlap::Half),
            threshold: 0.0,
            consecutive: 1,
            guard: GuardConfig::default(),
        };
        let w = cfg.pipeline.segmentation.window();
        let net = ModelKind::ProposedCnn.build(w, 9, 1).unwrap();
        let mut d = StreamingDetector::new(net, Normalizer::identity(9), cfg).unwrap();

        // Quiet wearer, dead gyro: armed but vetoed.
        for i in 0..120 {
            let (a, _) = wiggle(i);
            let _ = d.push_sample(a, [0.5; 3]);
        }
        assert!(d.mode().gyro_degraded);
        assert!(d.trigger_armed());
        assert!(!d.accel_confirms(), "wearer at rest");
        assert!(!d.trigger_decision(), "degraded + unconfirmed must veto");
        assert!(d.guard_status().suppressed_triggers > 0);
        let mut bag = AirbagController::new();
        bag.step_with_detector(120, &d);
        assert_eq!(bag.state(), AirbagState::Idle);

        // A real dynamic event on the accel branch lifts the veto.
        for i in 120..140 {
            let t = i as f32 * 0.3;
            let _ = d.push_sample([2.5 * t.sin(), 1.5 * t.cos(), 3.0], [0.5; 3]);
        }
        assert!(d.mode().gyro_degraded, "gyro still dead");
        assert!(d.accel_confirms());
        assert!(d.trigger_decision(), "accel-confirmed trigger allowed");
        bag.step_with_detector(140, &d);
        assert!(matches!(bag.state(), AirbagState::Inflating { .. }));
    }

    #[test]
    fn reset_keeps_cumulative_guard_counters_but_clears_mode() {
        let mut d = dummy_detector(200.0);
        for _ in 0..40 {
            let _ = d.push_sample([f32::NAN; 3], [0.0, 0.1, 0.2]);
        }
        assert!(d.mode().accel_degraded);
        let faults = d.guard_status().faults();
        assert!(faults > 0);
        d.reset();
        assert!(!d.mode().is_degraded(), "mode clears with the stream");
        assert_eq!(d.guard_status().faults(), faults, "counters survive");
        d.set_guard(GuardConfig::default());
        assert_eq!(d.guard_status().faults(), 0, "set_guard starts over");
    }

    #[test]
    fn try_predict_proba_rejects_nonfinite_segments() {
        let w = 20;
        let net = ModelKind::ProposedCnn.build(w, 9, 1).unwrap();
        let mut engine = Engine::from(net);
        let good = vec![0.1f32; w * 9];
        let mut bad = good.clone();
        bad[57] = f32::NAN;
        assert!(engine.try_predict_proba(&good).is_some());
        assert!(engine.try_predict_proba(&bad).is_none());
        // The raw path launders the NaN through `max`-based layers into
        // a finite garbage score — which is exactly why the validated
        // path must check the input, not the output.
        assert!(engine.predict_proba(&bad).is_finite(), "silent laundering");
    }
}
