use std::error::Error;
use std::fmt;

/// Errors produced by the fall-detection pipeline and harnesses.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// A configuration value was rejected.
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
    /// The dataset cannot support the requested evaluation (e.g. too few
    /// subjects for the fold count).
    InsufficientData {
        /// What was missing.
        reason: String,
    },
    /// An error bubbled up from the signal-processing substrate.
    Dsp(prefall_dsp::DspError),
    /// An error bubbled up from the dataset substrate.
    Imu(prefall_imu::ImuError),
    /// An error bubbled up from the network substrate.
    Nn(prefall_nn::NnError),
    /// An error bubbled up from the deployment model.
    Mcu(prefall_mcu::McuError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            CoreError::InsufficientData { reason } => write!(f, "insufficient data: {reason}"),
            CoreError::Dsp(e) => write!(f, "signal processing error: {e}"),
            CoreError::Imu(e) => write!(f, "dataset error: {e}"),
            CoreError::Nn(e) => write!(f, "network error: {e}"),
            CoreError::Mcu(e) => write!(f, "deployment error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Dsp(e) => Some(e),
            CoreError::Imu(e) => Some(e),
            CoreError::Nn(e) => Some(e),
            CoreError::Mcu(e) => Some(e),
            _ => None,
        }
    }
}

impl From<prefall_dsp::DspError> for CoreError {
    fn from(e: prefall_dsp::DspError) -> Self {
        CoreError::Dsp(e)
    }
}

impl From<prefall_imu::ImuError> for CoreError {
    fn from(e: prefall_imu::ImuError) -> Self {
        CoreError::Imu(e)
    }
}

impl From<prefall_nn::NnError> for CoreError {
    fn from(e: prefall_nn::NnError) -> Self {
        CoreError::Nn(e)
    }
}

impl From<prefall_mcu::McuError> for CoreError {
    fn from(e: prefall_mcu::McuError) -> Self {
        CoreError::Mcu(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_wraps_substrates_and_displays() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
        let e: CoreError = prefall_dsp::DspError::InvalidOrder { order: 0 }.into();
        assert!(e.to_string().contains("signal processing"));
        assert!(e.source().is_some());
        let c = CoreError::InvalidConfig {
            reason: "bad".to_string(),
        };
        assert!(c.source().is_none());
    }
}
