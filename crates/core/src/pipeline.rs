//! §III-A preprocessing: low-pass filtering, segmentation, labelling
//! (with the 150 ms airbag budget), and normalisation.

use crate::CoreError;
use prefall_dsp::butterworth::Butterworth;
use prefall_dsp::segment::{Overlap, Segmentation};
use prefall_dsp::stats::Normalizer;
use prefall_imu::activity::TaskId;
use prefall_imu::channel::NUM_CHANNELS;
use prefall_imu::subject::SubjectId;
use prefall_imu::trial::Trial;
use prefall_imu::SAMPLE_RATE_HZ;
use prefall_telemetry::{NoopRecorder, Recorder, Span};
use serde::{Deserialize, Serialize};

/// Label of one segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentLabel {
    /// Activity of daily living (negative class).
    Adl,
    /// Falling, early enough to trigger the airbag (positive class).
    Falling,
    /// Unusable for training: the window touches the last 150 ms before
    /// impact, the impact itself, or only grazes the falling phase.
    Discard,
}

/// Identity and label of one segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentMeta {
    /// Subject the segment came from.
    pub subject: SubjectId,
    /// Task of the source trial.
    pub task: TaskId,
    /// Repetition index of the source trial.
    pub trial_index: u16,
    /// First sample index of the window within the trial.
    pub start: usize,
    /// The label.
    pub label: SegmentLabel,
}

/// A labelled, preprocessed set of segments (`Discard` windows removed).
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentSet {
    /// Window length in samples.
    pub window: usize,
    /// Channels per snapshot (9).
    pub channels: usize,
    /// Row-major `[window × channels]` segment matrices.
    pub x: Vec<Vec<f32>>,
    /// Labels: 1.0 falling, 0.0 ADL.
    pub y: Vec<f32>,
    /// Per-segment identity.
    pub meta: Vec<SegmentMeta>,
}

impl SegmentSet {
    /// Number of segments.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Number of positive (falling) segments.
    pub fn positives(&self) -> usize {
        self.y.iter().filter(|&&y| y > 0.5).count()
    }

    /// Positive-class prior `p` (Eq. 2 of the paper).
    pub fn positive_prior(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.positives() as f64 / self.len() as f64
        }
    }

    /// Keeps only segments from the given subjects (subject-independent
    /// splits).
    pub fn filter_subjects(&self, subjects: &[SubjectId]) -> SegmentSet {
        let keep: Vec<usize> = self
            .meta
            .iter()
            .enumerate()
            .filter(|(_, m)| subjects.contains(&m.subject))
            .map(|(i, _)| i)
            .collect();
        SegmentSet {
            window: self.window,
            channels: self.channels,
            x: keep.iter().map(|&i| self.x[i].clone()).collect(),
            y: keep.iter().map(|&i| self.y[i]).collect(),
            meta: keep.iter().map(|&i| self.meta[i]).collect(),
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Low-pass cutoff in Hz (paper: 5 Hz).
    pub filter_cutoff_hz: f64,
    /// Filter order (paper: 4).
    pub filter_order: usize,
    /// Window length and overlap.
    pub segmentation: Segmentation,
    /// Minimum fraction of the window that must lie inside the usable
    /// falling range for a `Falling` label (windows with smaller but
    /// non-zero overlap are discarded as ambiguous).
    pub positive_overlap: f64,
    /// Post-impact margin (seconds) whose windows are discarded (impact
    /// spike + ring-down are neither "falling" nor normal activity).
    pub discard_margin_s: f64,
    /// The airbag inflation budget in samples: the trailing part of the
    /// falling phase removed from the positive class (paper: 15 samples
    /// = 150 ms). Setting 0 reproduces the *conventional* labelling of
    /// the Table I literature — the paper's key ablation.
    pub airbag_budget_samples: usize,
}

impl PipelineConfig {
    /// The paper's best configuration: 400 ms windows, 50 % overlap.
    pub fn paper_400ms() -> Self {
        Self::paper(400.0, Overlap::Half)
    }

    /// A paper-style configuration with the given window and overlap.
    pub fn paper(window_ms: f64, overlap: Overlap) -> Self {
        Self {
            filter_cutoff_hz: 5.0,
            filter_order: 4,
            segmentation: Segmentation::from_millis(window_ms, SAMPLE_RATE_HZ, overlap)
                .expect("paper window sizes are valid"),
            positive_overlap: 0.5,
            discard_margin_s: 0.5,
            airbag_budget_samples: prefall_imu::AIRBAG_INFLATION_SAMPLES,
        }
    }
}

/// The preprocessing pipeline.
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: PipelineConfig,
    filter_design: Butterworth,
}

impl Pipeline {
    /// Builds a pipeline, validating the filter design.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Dsp`] for an invalid filter configuration
    /// and [`CoreError::InvalidConfig`] for a bad overlap threshold.
    pub fn new(config: PipelineConfig) -> Result<Self, CoreError> {
        if !(0.0..=1.0).contains(&config.positive_overlap) {
            return Err(CoreError::InvalidConfig {
                reason: format!("positive_overlap {} not in [0, 1]", config.positive_overlap),
            });
        }
        let filter_design =
            Butterworth::lowpass(config.filter_order, config.filter_cutoff_hz, SAMPLE_RATE_HZ)?;
        Ok(Self {
            config,
            filter_design,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Window length in samples.
    pub fn window(&self) -> usize {
        self.config.segmentation.window()
    }

    /// Hop between windows in samples.
    pub fn hop(&self) -> usize {
        self.config.segmentation.hop()
    }

    /// Causally low-pass-filters all nine channels of a trial (what the
    /// firmware does sample by sample).
    pub fn filter_trial(&self, trial: &Trial) -> Vec<Vec<f32>> {
        self.filter_trial_recorded(trial, &NoopRecorder)
    }

    /// [`Pipeline::filter_trial`] with the stage timed into the
    /// `pipeline.filter_seconds` histogram.
    ///
    /// Guards the offline boundary the way the streaming
    /// [`SampleGuard`](crate::detector::SampleGuard) guards the live
    /// one: a non-finite input value would poison the IIR filter state
    /// for the rest of the channel, so each is replaced by the previous
    /// finite value (hold-last; 0.0 at the channel head) and counted in
    /// `pipeline.nonfinite_inputs`.
    pub fn filter_trial_recorded(&self, trial: &Trial, rec: &dyn Recorder) -> Vec<Vec<f32>> {
        let _span = Span::enter(rec, "pipeline.filter_seconds");
        let mut nonfinite: u64 = 0;
        let filtered = trial
            .channels()
            .iter()
            .map(|ch| {
                let mut f = self.filter_design.to_filter();
                if ch.iter().all(|v| v.is_finite()) {
                    f.process_slice(ch)
                } else {
                    let mut held = 0.0f32;
                    ch.iter()
                        .map(|&v| {
                            if v.is_finite() {
                                held = v;
                            } else {
                                nonfinite += 1;
                            }
                            f.process(held)
                        })
                        .collect()
                }
            })
            .collect();
        if nonfinite > 0 && rec.enabled() {
            rec.counter_add("pipeline.nonfinite_inputs", nonfinite);
        }
        filtered
    }

    /// Labels one window of a trial.
    pub fn label_window(&self, trial: &Trial, start: usize) -> SegmentLabel {
        let w = self.window();
        let end = start + w;
        let (Some(fs), Some(im)) = (trial.fall_start(), trial.impact()) else {
            return SegmentLabel::Adl;
        };
        let usable_end = im.saturating_sub(self.config.airbag_budget_samples);

        // A real-time window classified at its last sample must complete
        // before `impact − 150 ms` to leave the airbag its budget; any
        // window reaching past that point contains data the deployed
        // detector could never act on — excluded from both classes, as
        // are impact/ring-down windows. Post-fall lying far after the
        // impact is ordinary (negative) data again.
        if end > usable_end {
            let margin = (self.config.discard_margin_s * SAMPLE_RATE_HZ) as usize;
            if start >= (im + margin).min(trial.len()) {
                return SegmentLabel::Adl;
            }
            return SegmentLabel::Discard;
        }

        // Window ends inside the usable region: label by falling overlap.
        let overlap = end.min(usable_end).saturating_sub(start.max(fs));
        if overlap as f64 >= self.config.positive_overlap * w as f64 {
            SegmentLabel::Falling
        } else if overlap > 0 {
            SegmentLabel::Discard
        } else {
            SegmentLabel::Adl
        }
    }

    /// Extracts labelled segments from one trial (after filtering).
    /// `Discard` windows are *included* here (callers that train filter
    /// them out via [`Pipeline::segment_set`]).
    pub fn segments_for_trial(&self, trial: &Trial) -> (Vec<Vec<f32>>, Vec<SegmentMeta>) {
        self.segments_for_trial_recorded(trial, &NoopRecorder)
    }

    /// [`Pipeline::segments_for_trial`] with per-stage timings: the
    /// filter lands in `pipeline.filter_seconds`, windowing + labelling
    /// in `pipeline.segment_seconds`.
    pub fn segments_for_trial_recorded(
        &self,
        trial: &Trial,
        rec: &dyn Recorder,
    ) -> (Vec<Vec<f32>>, Vec<SegmentMeta>) {
        let filtered = self.filter_trial_recorded(trial, rec);
        let _span = Span::enter(rec, "pipeline.segment_seconds");
        let seg = &self.config.segmentation;
        let xs = seg.extract(&filtered);
        let metas: Vec<SegmentMeta> = seg
            .windows(trial.len())
            .map(|r| SegmentMeta {
                subject: trial.subject,
                task: trial.task,
                trial_index: trial.trial_index,
                start: r.start,
                label: self.label_window(trial, r.start),
            })
            .collect();
        debug_assert_eq!(xs.len(), metas.len());
        (xs, metas)
    }

    /// Builds the training-ready segment set over many trials,
    /// dropping `Discard` windows.
    pub fn segment_set(&self, trials: &[Trial]) -> SegmentSet {
        self.segment_set_recorded(trials, &NoopRecorder)
    }

    /// [`Pipeline::segment_set`] with telemetry: stage timings via
    /// [`Pipeline::segments_for_trial_recorded`] plus the
    /// `pipeline.segments_adl` / `pipeline.segments_falling` /
    /// `pipeline.segments_discarded` counters.
    pub fn segment_set_recorded(&self, trials: &[Trial], rec: &dyn Recorder) -> SegmentSet {
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut meta = Vec::new();
        let (mut n_adl, mut n_fall, mut n_discard) = (0u64, 0u64, 0u64);
        for trial in trials {
            let (xs, metas) = self.segments_for_trial_recorded(trial, rec);
            for (xi, mi) in xs.into_iter().zip(metas) {
                match mi.label {
                    SegmentLabel::Adl => {
                        n_adl += 1;
                        x.push(xi);
                        y.push(0.0);
                        meta.push(mi);
                    }
                    SegmentLabel::Falling => {
                        n_fall += 1;
                        x.push(xi);
                        y.push(1.0);
                        meta.push(mi);
                    }
                    SegmentLabel::Discard => n_discard += 1,
                }
            }
        }
        if rec.enabled() {
            rec.counter_add("pipeline.segments_adl", n_adl);
            rec.counter_add("pipeline.segments_falling", n_fall);
            rec.counter_add("pipeline.segments_discarded", n_discard);
        }
        SegmentSet {
            window: self.window(),
            channels: NUM_CHANNELS,
            x,
            y,
            meta,
        }
    }

    /// Fits a per-channel normaliser on a (training) segment set.
    pub fn fit_normalizer(&self, set: &SegmentSet) -> Normalizer {
        if set.is_empty() {
            Normalizer::identity(NUM_CHANNELS)
        } else {
            Normalizer::fit(&set.x, NUM_CHANNELS)
        }
    }

    /// Applies a fitted normaliser to a segment set in place.
    pub fn normalize(&self, set: &mut SegmentSet, norm: &Normalizer) {
        self.normalize_recorded(set, norm, &NoopRecorder);
    }

    /// [`Pipeline::normalize`] with the stage timed into the
    /// `pipeline.normalize_seconds` histogram.
    pub fn normalize_recorded(&self, set: &mut SegmentSet, norm: &Normalizer, rec: &dyn Recorder) {
        let _span = Span::enter(rec, "pipeline.normalize_seconds");
        for x in &mut set.x {
            norm.apply_in_place(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefall_imu::dataset::Dataset;

    fn dataset() -> Dataset {
        Dataset::combined_scaled(1, 1, 42).unwrap()
    }

    #[test]
    fn paper_configs_build() {
        for ms in [100.0, 200.0, 300.0, 400.0] {
            for ov in Overlap::ALL {
                let p = Pipeline::new(PipelineConfig::paper(ms, ov)).unwrap();
                assert_eq!(p.window(), (ms / 10.0) as usize);
            }
        }
    }

    #[test]
    fn rejects_bad_overlap_threshold() {
        let mut cfg = PipelineConfig::paper_400ms();
        cfg.positive_overlap = 1.5;
        assert!(Pipeline::new(cfg).is_err());
    }

    #[test]
    fn filtering_preserves_length_and_smooths() {
        let ds = dataset();
        let trial = &ds.trials()[0];
        let p = Pipeline::new(PipelineConfig::paper_400ms()).unwrap();
        let filtered = p.filter_trial(trial);
        assert_eq!(filtered.len(), 9);
        assert_eq!(filtered[0].len(), trial.len());
        // High-frequency energy reduced: compare sample-to-sample diffs.
        let raw = trial.channels();
        let rough = |v: &[f32]| -> f32 { v.windows(2).map(|w| (w[1] - w[0]).abs()).sum() };
        let raw_r: f32 = raw.iter().map(|c| rough(c)).sum();
        let fil_r: f32 = filtered.iter().map(|c| rough(c)).sum();
        assert!(fil_r < raw_r, "filtered {fil_r} vs raw {raw_r}");
    }

    #[test]
    fn fall_trials_have_positive_segments_with_150ms_guard() {
        let ds = dataset();
        let p = Pipeline::new(PipelineConfig::paper_400ms()).unwrap();
        let mut saw_fall = false;
        for trial in ds.trials().iter().filter(|t| t.is_fall()) {
            let (_, metas) = p.segments_for_trial(trial);
            let usable_end = trial.impact().unwrap() - prefall_imu::AIRBAG_INFLATION_SAMPLES;
            for m in &metas {
                if m.label == SegmentLabel::Falling {
                    saw_fall = true;
                    // At least half the window sits inside the usable
                    // falling range, which ends 150 ms before impact.
                    let end = m.start + p.window();
                    let ov = end
                        .min(usable_end)
                        .saturating_sub(m.start.max(trial.fall_start().unwrap()));
                    assert!(ov * 2 >= p.window(), "weak overlap at {}", m.start);
                }
            }
        }
        assert!(saw_fall, "no falling segments in any fall trial");
    }

    #[test]
    fn windows_touching_inflation_budget_are_discarded() {
        let ds = dataset();
        let p = Pipeline::new(PipelineConfig::paper_400ms()).unwrap();
        let trial = ds.trials().iter().find(|t| t.is_fall()).unwrap();
        let im = trial.impact().unwrap();
        let usable_end = im - prefall_imu::AIRBAG_INFLATION_SAMPLES;
        let (_, metas) = p.segments_for_trial(trial);
        for m in &metas {
            let end = m.start + p.window();
            // Any window containing the last-150ms zone must not be Falling.
            if end > usable_end && m.start < im {
                assert_ne!(m.label, SegmentLabel::Falling, "window at {}", m.start);
            }
        }
    }

    #[test]
    fn adl_trials_are_all_negative() {
        let ds = dataset();
        let p = Pipeline::new(PipelineConfig::paper_400ms()).unwrap();
        for trial in ds.trials().iter().filter(|t| !t.is_fall()) {
            let (_, metas) = p.segments_for_trial(trial);
            assert!(metas.iter().all(|m| m.label == SegmentLabel::Adl));
        }
    }

    #[test]
    fn segment_set_is_imbalanced_like_the_paper() {
        let ds = Dataset::combined_scaled(2, 2, 9).unwrap();
        let p = Pipeline::new(PipelineConfig::paper_400ms()).unwrap();
        let set = p.segment_set(ds.trials());
        let prior = set.positive_prior();
        assert!(
            (0.005..0.15).contains(&prior),
            "positive prior {prior} out of the expected imbalance band"
        );
        assert_eq!(set.x.len(), set.y.len());
        assert_eq!(set.x.len(), set.meta.len());
        assert!(set.x.iter().all(|x| x.len() == set.window * set.channels));
    }

    #[test]
    fn filter_subjects_partitions() {
        let ds = dataset();
        let p = Pipeline::new(PipelineConfig::paper_400ms()).unwrap();
        let set = p.segment_set(ds.trials());
        let ids = ds.subject_ids();
        let a = set.filter_subjects(&ids[..1]);
        let b = set.filter_subjects(&ids[1..]);
        assert_eq!(a.len() + b.len(), set.len());
        assert!(a.meta.iter().all(|m| m.subject == ids[0]));
    }

    #[test]
    fn normalization_zero_means_training_channels() {
        let ds = dataset();
        let p = Pipeline::new(PipelineConfig::paper_400ms()).unwrap();
        let mut set = p.segment_set(ds.trials());
        let norm = p.fit_normalizer(&set);
        p.normalize(&mut set, &norm);
        // Channel 0 mean over all rows ≈ 0.
        let mut sum = 0.0f64;
        let mut n = 0usize;
        for x in &set.x {
            for row in x.chunks(set.channels) {
                sum += f64::from(row[0]);
                n += 1;
            }
        }
        assert!((sum / n as f64).abs() < 1e-3);
    }

    #[test]
    fn nonfinite_inputs_are_held_at_the_filter_boundary() {
        let ds = dataset();
        let mut trial = ds.trials()[0].clone();
        let clean_len = trial.len();
        // Poison a stretch of one accel channel.
        let mut channels: Vec<Vec<f32>> = trial.channels().to_vec();
        for v in &mut channels[0][50..60] {
            *v = f32::NAN;
        }
        channels[3][70] = f32::INFINITY;
        trial = Trial::from_channels(
            trial.subject,
            trial.task,
            trial.trial_index,
            trial.source,
            channels,
            trial.fall_start(),
            trial.impact(),
        )
        .unwrap();
        let p = Pipeline::new(PipelineConfig::paper_400ms()).unwrap();
        let filtered = p.filter_trial(&trial);
        assert_eq!(filtered[0].len(), clean_len);
        for ch in &filtered {
            assert!(
                ch.iter().all(|v| v.is_finite()),
                "hold-last guard must keep the filter state finite"
            );
        }
    }

    #[test]
    fn shorter_windows_make_more_segments() {
        let ds = dataset();
        let p200 = Pipeline::new(PipelineConfig::paper(200.0, Overlap::Half)).unwrap();
        let p400 = Pipeline::new(PipelineConfig::paper_400ms()).unwrap();
        let s200 = p200.segment_set(ds.trials());
        let s400 = p400.segment_set(ds.trials());
        assert!(s200.len() > s400.len());
    }
}
