//! Persistence of trained detector bundles.
//!
//! A deployable detector is more than weights: it needs the exact
//! preprocessing configuration and the normaliser fitted on its training
//! data. [`DetectorBundle`] packages all three into one binary blob so a
//! detector trained today can be reloaded bit-identically tomorrow (or
//! shipped next to the firmware image).
//!
//! Format (little-endian):
//!
//! ```text
//! magic "PFDB" | u32 version
//! | u8 model kind | u32 window | u32 channels | u64 init seed
//! | pipeline: f64 cutoff, u32 order, u32 window, u8 overlap,
//!   f64 pos_overlap, f64 discard_margin, u32 airbag_budget
//! | normalizer: u32 n, f32 means × n, f32 stds × n
//! | u32 weight-blob len | weight blob (prefall-nn serialize format)
//! ```

use crate::models::ModelKind;
use crate::pipeline::PipelineConfig;
use crate::CoreError;
use bytes::{Buf, BufMut, BytesMut};
use prefall_dsp::segment::{Overlap, Segmentation};
use prefall_dsp::stats::Normalizer;
use prefall_nn::network::Network;
use prefall_nn::serialize::{load_weights, save_weights};

const MAGIC: &[u8; 4] = b"PFDB";
const VERSION: u32 = 1;

/// A self-contained, serialisable trained detector.
#[derive(Debug)]
pub struct DetectorBundle {
    /// Which architecture the weights belong to.
    pub model: ModelKind,
    /// Window length in samples.
    pub window: usize,
    /// Channels per snapshot.
    pub channels: usize,
    /// Weight-init seed used to rebuild the architecture.
    pub init_seed: u64,
    /// Preprocessing configuration.
    pub pipeline: PipelineConfig,
    /// The training-set normaliser.
    pub normalizer: Normalizer,
    /// The trained network.
    pub network: Network,
}

fn model_tag(m: ModelKind) -> u8 {
    match m {
        ModelKind::Mlp => 0,
        ModelKind::Lstm => 1,
        ModelKind::ConvLstm2d => 2,
        ModelKind::ProposedCnn => 3,
        ModelKind::MonolithicCnn => 4,
    }
}

fn model_from_tag(t: u8) -> Option<ModelKind> {
    Some(match t {
        0 => ModelKind::Mlp,
        1 => ModelKind::Lstm,
        2 => ModelKind::ConvLstm2d,
        3 => ModelKind::ProposedCnn,
        4 => ModelKind::MonolithicCnn,
        _ => return None,
    })
}

fn overlap_tag(o: Overlap) -> u8 {
    match o {
        Overlap::None => 0,
        Overlap::Quarter => 1,
        Overlap::Half => 2,
        Overlap::ThreeQuarters => 3,
        // `Overlap` is non-exhaustive; new grid values need a new tag.
        _ => unreachable!("unknown overlap variant"),
    }
}

fn overlap_from_tag(t: u8) -> Option<Overlap> {
    Some(match t {
        0 => Overlap::None,
        1 => Overlap::Quarter,
        2 => Overlap::Half,
        3 => Overlap::ThreeQuarters,
        _ => return None,
    })
}

impl DetectorBundle {
    /// Serialises the bundle.
    pub fn to_bytes(&mut self) -> Vec<u8> {
        let weights = save_weights(&mut self.network);
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u8(model_tag(self.model));
        buf.put_u32_le(self.window as u32);
        buf.put_u32_le(self.channels as u32);
        buf.put_u64_le(self.init_seed);

        let p = &self.pipeline;
        buf.put_f64_le(p.filter_cutoff_hz);
        buf.put_u32_le(p.filter_order as u32);
        buf.put_u32_le(p.segmentation.window() as u32);
        buf.put_u8(overlap_tag(p.segmentation.overlap()));
        buf.put_f64_le(p.positive_overlap);
        buf.put_f64_le(p.discard_margin_s);
        buf.put_u32_le(p.airbag_budget_samples as u32);

        buf.put_u32_le(self.normalizer.channels() as u32);
        for &m in self.normalizer.means() {
            buf.put_f32_le(m);
        }
        for &s in self.normalizer.stds() {
            buf.put_f32_le(s);
        }

        buf.put_u32_le(weights.len() as u32);
        buf.put_slice(&weights);
        buf.to_vec()
    }

    /// Deserialises a bundle, rebuilding the architecture and loading
    /// the weights.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for malformed blobs and
    /// propagates model/weight errors.
    pub fn from_bytes(blob: &[u8]) -> Result<Self, CoreError> {
        let mut buf = blob;
        let bad = |reason: &str| CoreError::InvalidConfig {
            reason: format!("detector bundle: {reason}"),
        };
        if buf.remaining() < 8 || &buf[..4] != MAGIC {
            return Err(bad("bad magic"));
        }
        buf.advance(4);
        if buf.get_u32_le() != VERSION {
            return Err(bad("unsupported version"));
        }
        if buf.remaining() < 1 + 4 + 4 + 8 {
            return Err(bad("truncated header"));
        }
        let model = model_from_tag(buf.get_u8()).ok_or_else(|| bad("unknown model tag"))?;
        let window = buf.get_u32_le() as usize;
        let channels = buf.get_u32_le() as usize;
        let init_seed = buf.get_u64_le();

        if buf.remaining() < 8 + 4 + 4 + 1 + 8 + 8 + 4 {
            return Err(bad("truncated pipeline config"));
        }
        let filter_cutoff_hz = buf.get_f64_le();
        let filter_order = buf.get_u32_le() as usize;
        let seg_window = buf.get_u32_le() as usize;
        let overlap = overlap_from_tag(buf.get_u8()).ok_or_else(|| bad("unknown overlap tag"))?;
        let positive_overlap = buf.get_f64_le();
        let discard_margin_s = buf.get_f64_le();
        let airbag_budget_samples = buf.get_u32_le() as usize;
        let segmentation = Segmentation::new(seg_window, overlap)?;
        let pipeline = PipelineConfig {
            filter_cutoff_hz,
            filter_order,
            segmentation,
            positive_overlap,
            discard_margin_s,
            airbag_budget_samples,
        };

        if buf.remaining() < 4 {
            return Err(bad("truncated normalizer"));
        }
        let n = buf.get_u32_le() as usize;
        if buf.remaining() < n * 8 + 4 {
            return Err(bad("truncated normalizer data"));
        }
        let means: Vec<f32> = (0..n).map(|_| buf.get_f32_le()).collect();
        let stds: Vec<f32> = (0..n).map(|_| buf.get_f32_le()).collect();
        let normalizer = Normalizer::from_parts(means, stds)
            .map_err(|reason| bad(&format!("normalizer: {reason}")))?;

        let wlen = buf.get_u32_le() as usize;
        if buf.remaining() < wlen {
            return Err(bad("truncated weights"));
        }
        let mut network = model.build(window, channels, init_seed)?;
        load_weights(&mut network, &buf[..wlen])?;

        Ok(Self {
            model,
            window,
            channels,
            init_seed,
            pipeline,
            normalizer,
            network,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefall_imu::SAMPLE_RATE_HZ;

    fn bundle() -> DetectorBundle {
        let window = 20;
        let net = ModelKind::ProposedCnn.build(window, 9, 5).unwrap();
        DetectorBundle {
            model: ModelKind::ProposedCnn,
            window,
            channels: 9,
            init_seed: 5,
            pipeline: PipelineConfig::paper(200.0, Overlap::Half),
            normalizer: Normalizer::identity(9),
            network: net,
        }
    }

    #[test]
    fn roundtrip_preserves_behaviour_and_config() {
        let mut b = bundle();
        let x: Vec<f32> = (0..180).map(|i| (i as f32 * 0.1).sin()).collect();
        let before = b.network.forward(&x);
        let blob = b.to_bytes();
        let mut back = DetectorBundle::from_bytes(&blob).unwrap();
        assert_eq!(back.model, ModelKind::ProposedCnn);
        assert_eq!(back.window, 20);
        assert_eq!(back.pipeline, b.pipeline);
        assert_eq!(back.normalizer, b.normalizer);
        assert_eq!(back.network.forward(&x), before);
    }

    #[test]
    fn rejects_corruption() {
        let mut b = bundle();
        let blob = b.to_bytes();
        assert!(DetectorBundle::from_bytes(b"short").is_err());
        let mut bad_magic = blob.clone();
        bad_magic[0] = b'X';
        assert!(DetectorBundle::from_bytes(&bad_magic).is_err());
        let mut truncated = blob.clone();
        truncated.truncate(blob.len() / 2);
        assert!(DetectorBundle::from_bytes(&truncated).is_err());
        let mut bad_model = blob;
        bad_model[8] = 99;
        assert!(DetectorBundle::from_bytes(&bad_model).is_err());
    }

    #[test]
    fn sample_rate_is_implied_not_stored() {
        // The bundle assumes the global 100 Hz rate; document-by-test.
        assert_eq!(SAMPLE_RATE_HZ, 100.0);
    }
}
