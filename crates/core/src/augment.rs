//! §III-C data augmentation: time warping and window warping of falling
//! segments.
//!
//! Both act on a `[T × C]` segment channel-wise:
//!
//! * **time warping** distorts the whole time axis along a smooth random
//!   warp curve (Um et al., 2017) — simulating faster/slower sampling of
//!   the same fall;
//! * **window warping** picks a random sub-window and plays it back at
//!   0.5× or 2× speed (Rashid & Louis, 2019) — simulating a fall whose
//!   middle unfolds quicker or slower — then resamples to the original
//!   length.

use crate::pipeline::SegmentSet;
use prefall_dsp::interp::{resample_linear, warp};
use prefall_imu::rng::GenRng;

/// Extracts channel `c` of a row-major `[T × C]` segment.
fn channel_of(seg: &[f32], channels: usize, c: usize) -> Vec<f32> {
    seg.iter().skip(c).step_by(channels).copied().collect()
}

/// Rebuilds a row-major segment from per-channel series.
fn interleave(chans: &[Vec<f32>]) -> Vec<f32> {
    let t = chans[0].len();
    let c_n = chans.len();
    let mut out = Vec::with_capacity(t * c_n);
    for ti in 0..t {
        for ch in chans {
            out.push(ch[ti]);
        }
    }
    out
}

/// Builds a smooth, monotone warp path of `len` fractional positions
/// into `[0, len-1]`, with random log-normal speed knots.
fn warp_path(len: usize, strength: f64, rng: &mut GenRng) -> Vec<f64> {
    let knots = 4;
    // Random per-knot speeds, interpolated linearly, then integrated.
    let speeds: Vec<f64> = (0..knots)
        .map(|_| (rng.normal(0.0, strength)).exp())
        .collect();
    let mut pos = Vec::with_capacity(len);
    let mut acc = 0.0;
    for i in 0..len {
        let u = i as f64 / (len - 1).max(1) as f64 * (knots - 1) as f64;
        let k = (u.floor() as usize).min(knots - 2);
        let frac = u - k as f64;
        let speed = speeds[k] * (1.0 - frac) + speeds[k + 1] * frac;
        pos.push(acc);
        acc += speed;
    }
    // Normalise so the path spans exactly [0, len-1].
    let last = *pos.last().expect("non-empty") + 1e-12;
    pos.iter().map(|&p| p / last * (len - 1) as f64).collect()
}

/// Time warping: resamples every channel along one shared smooth warp
/// path. `strength` ~ 0.2 gives gentle distortion.
///
/// # Panics
///
/// Panics if the segment length is not a multiple of `channels`.
pub fn time_warp_segment(
    seg: &[f32],
    channels: usize,
    strength: f64,
    rng: &mut GenRng,
) -> Vec<f32> {
    assert!(seg.len().is_multiple_of(channels), "segment shape mismatch");
    let t = seg.len() / channels;
    let path = warp_path(t, strength, rng);
    let warped: Vec<Vec<f32>> = (0..channels)
        .map(|c| warp(&channel_of(seg, channels, c), &path))
        .collect();
    interleave(&warped)
}

/// Window warping: a random sub-window (25–50 % of the segment) is
/// played at 0.5× or 2× speed, and the result is resampled back to the
/// original length.
///
/// # Panics
///
/// Panics if the segment length is not a multiple of `channels`.
pub fn window_warp_segment(seg: &[f32], channels: usize, rng: &mut GenRng) -> Vec<f32> {
    assert!(seg.len().is_multiple_of(channels), "segment shape mismatch");
    let t = seg.len() / channels;
    if t < 8 {
        return seg.to_vec();
    }
    let w_len = rng.uniform_usize(t / 4, t / 2);
    let w_start = rng.uniform_usize(0, t - w_len);
    let speed_up = rng.chance(0.5);

    let out: Vec<Vec<f32>> = (0..channels)
        .map(|c| {
            let ch = channel_of(seg, channels, c);
            let head = &ch[..w_start];
            let mid = &ch[w_start..w_start + w_len];
            let tail = &ch[w_start + w_len..];
            let mid_len = if speed_up {
                (w_len / 2).max(2)
            } else {
                w_len * 2
            };
            let mid_warped = resample_linear(mid, mid_len);
            let mut full = Vec::with_capacity(head.len() + mid_warped.len() + tail.len());
            full.extend_from_slice(head);
            full.extend_from_slice(&mid_warped);
            full.extend_from_slice(tail);
            resample_linear(&full, t)
        })
        .collect();
    interleave(&out)
}

/// Augments the positive (falling) segments of a training set in place:
/// each positive segment gains `factor` warped variants, alternating
/// time warping and window warping, as the paper applies both.
///
/// Augmented copies inherit the source segment's metadata.
pub fn augment_positives(set: &mut SegmentSet, factor: usize, seed: u64) {
    if factor == 0 {
        return;
    }
    let mut rng = GenRng::seed_from_u64(seed);
    let positive_idx: Vec<usize> = (0..set.len()).filter(|&i| set.y[i] > 0.5).collect();
    for &i in &positive_idx {
        for k in 0..factor {
            let aug = if k % 2 == 0 {
                time_warp_segment(&set.x[i], set.channels, 0.25, &mut rng)
            } else {
                window_warp_segment(&set.x[i], set.channels, &mut rng)
            };
            set.x.push(aug);
            set.y.push(1.0);
            set.meta.push(set.meta[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{SegmentLabel, SegmentMeta};
    use prefall_imu::activity::TaskId;
    use prefall_imu::subject::SubjectId;

    fn demo_segment(t: usize, channels: usize) -> Vec<f32> {
        let mut seg = Vec::with_capacity(t * channels);
        for i in 0..t {
            for c in 0..channels {
                seg.push((i as f32 * 0.3 + c as f32).sin());
            }
        }
        seg
    }

    #[test]
    fn time_warp_preserves_shape_and_endpoints_roughly() {
        let seg = demo_segment(40, 9);
        let mut rng = GenRng::seed_from_u64(3);
        let warped = time_warp_segment(&seg, 9, 0.25, &mut rng);
        assert_eq!(warped.len(), seg.len());
        // Endpoints anchored (warp path spans [0, T-1]).
        for c in 0..9 {
            assert!((warped[c] - seg[c]).abs() < 0.05, "channel {c} start");
        }
        // But the interior actually moved.
        let diff: f32 = warped.iter().zip(&seg).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 0.1, "warp was a no-op");
    }

    #[test]
    fn window_warp_preserves_shape() {
        let seg = demo_segment(40, 9);
        let mut rng = GenRng::seed_from_u64(5);
        let warped = window_warp_segment(&seg, 9, &mut rng);
        assert_eq!(warped.len(), seg.len());
        let diff: f32 = warped.iter().zip(&seg).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 0.1);
    }

    #[test]
    fn window_warp_short_segment_is_identity() {
        let seg = demo_segment(4, 2);
        let mut rng = GenRng::seed_from_u64(7);
        assert_eq!(window_warp_segment(&seg, 2, &mut rng), seg);
    }

    #[test]
    fn warp_keeps_values_in_plausible_range() {
        // Warping interpolates — no wild extrapolation beyond data range.
        let seg = demo_segment(40, 3);
        let (lo, hi) = seg
            .iter()
            .fold((f32::MAX, f32::MIN), |(l, h), &v| (l.min(v), h.max(v)));
        let mut rng = GenRng::seed_from_u64(11);
        for _ in 0..10 {
            let w = time_warp_segment(&seg, 3, 0.3, &mut rng);
            for &v in &w {
                assert!(v >= lo - 0.3 && v <= hi + 0.3, "{v} outside [{lo}, {hi}]");
            }
        }
    }

    fn tiny_set() -> SegmentSet {
        let meta = |label| SegmentMeta {
            subject: SubjectId(0),
            task: TaskId::new(30).unwrap(),
            trial_index: 0,
            start: 0,
            label,
        };
        SegmentSet {
            window: 20,
            channels: 9,
            x: vec![
                demo_segment(20, 9),
                demo_segment(20, 9),
                demo_segment(20, 9),
            ],
            y: vec![0.0, 1.0, 1.0],
            meta: vec![
                meta(SegmentLabel::Adl),
                meta(SegmentLabel::Falling),
                meta(SegmentLabel::Falling),
            ],
        }
    }

    #[test]
    fn augment_positives_multiplies_minority_class() {
        let mut set = tiny_set();
        augment_positives(&mut set, 2, 9);
        assert_eq!(set.len(), 3 + 2 * 2);
        assert_eq!(set.positives(), 2 + 4);
        // Negative count unchanged.
        assert_eq!(set.y.iter().filter(|&&y| y < 0.5).count(), 1);
        assert_eq!(set.x.len(), set.meta.len());
    }

    #[test]
    fn augment_factor_zero_is_noop() {
        let mut set = tiny_set();
        let before = set.clone();
        augment_positives(&mut set, 0, 9);
        assert_eq!(set, before);
    }

    #[test]
    fn augmentation_is_deterministic() {
        let mut a = tiny_set();
        let mut b = tiny_set();
        augment_positives(&mut a, 3, 21);
        augment_positives(&mut b, 3, 21);
        assert_eq!(a, b);
    }
}
