//! Per-worker telemetry fan-in for fork-join parallelism.
//!
//! Shared mutable telemetry sinks would make parallel runs
//! order-dependent, so each fork-join task records into a private
//! [`Registry`] instead. Events still pass straight through to the
//! outer recorder (progress stays live); counters, gauges and histogram
//! observations accumulate locally and are merged back — in task-index
//! order, via [`Recorder::merge_snapshot`] — after the join. Snapshot
//! merging is associative, so the final snapshot is identical for any
//! thread count.

use prefall_par::Pool;
use prefall_telemetry::{NoopRecorder, Recorder, Registry, Snapshot, Value};

/// A task-local recorder: metrics land in a private registry, events
/// forward to the outer recorder.
#[derive(Debug)]
pub(crate) struct WorkerRecorder<'a> {
    local: Registry,
    outer: &'a dyn Recorder,
}

impl<'a> WorkerRecorder<'a> {
    pub(crate) fn new(outer: &'a dyn Recorder) -> Self {
        Self {
            local: Registry::new(),
            outer,
        }
    }

    /// Freezes the locally accumulated metrics for the post-join merge.
    pub(crate) fn into_snapshot(self) -> Snapshot {
        self.local.snapshot()
    }
}

impl Recorder for WorkerRecorder<'_> {
    fn enabled(&self) -> bool {
        self.outer.enabled()
    }

    fn counter_add(&self, name: &str, delta: u64) {
        self.local.counter_add(name, delta);
    }

    fn gauge_set(&self, name: &str, value: f64) {
        self.local.gauge_set(name, value);
    }

    fn observe(&self, name: &str, value: f64) {
        self.local.observe(name, value);
    }

    fn event(&self, name: &str, fields: &[(&str, Value<'_>)]) {
        self.outer.event(name, fields);
    }

    fn merge_snapshot(&self, snap: &Snapshot) {
        self.local.merge_snapshot(snap);
    }
}

/// Fork-join map with per-task telemetry isolation: runs `f` over
/// `items` on `pool`, handing each task its own recorder, then merges
/// the per-task snapshots into `rec` in task-index order.
pub(crate) fn map_recorded<T, R, F>(pool: &Pool, items: &[T], rec: &dyn Recorder, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T, &dyn Recorder) -> R + Sync,
{
    if !rec.enabled() {
        return pool.map(items, |i, item| f(i, item, &NoopRecorder));
    }
    let results = pool.map(items, |i, item| {
        let wrec = WorkerRecorder::new(rec);
        let r = f(i, item, &wrec);
        (r, wrec.into_snapshot())
    });
    let _merge_span = prefall_trace::trace_span!(crate::tracenames::trace_names().merge);
    let mut out = Vec::with_capacity(results.len());
    for (r, snap) in results {
        rec.merge_snapshot(&snap);
        out.push(r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_metrics_merge_identically_for_any_thread_count() {
        let items: Vec<u64> = (0..8).collect();
        let snap_for = |threads: usize| {
            let reg = Registry::new();
            let pool = Pool::new(threads);
            let out = map_recorded(&pool, &items, &reg, |i, &v, rec| {
                rec.counter_add("work.items", 1);
                rec.observe("work.cost", (v + 1) as f64);
                rec.event("work.done", &[("i", Value::from(i))]);
                v * 2
            });
            assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);
            reg.snapshot()
        };
        let s1 = snap_for(1);
        let s4 = snap_for(4);
        assert_eq!(s1, s4);
        assert_eq!(s1.counters["work.items"], 8);
        assert_eq!(s1.histograms["work.cost"].count, 8);
    }

    #[test]
    fn events_reach_the_outer_recorder_live() {
        let reg = Registry::new();
        let wrec = WorkerRecorder::new(&reg);
        wrec.event("hello", &[("k", Value::from(1u64))]);
        wrec.counter_add("local.only", 1);
        let events = reg.take_events();
        assert_eq!(events.len(), 1, "event must pass through immediately");
        // The counter stayed local until the merge.
        assert!(reg.snapshot().counters.is_empty());
        reg.merge_snapshot(&wrec.into_snapshot());
        assert_eq!(reg.snapshot().counters["local.only"], 1);
    }
}
