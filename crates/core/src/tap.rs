//! Observation taps: a per-sample hook on the streaming detector.
//!
//! A [`DetectorTap`] installed with
//! [`StreamingDetector::set_tap`](crate::detector::StreamingDetector::set_tap)
//! sees every ingest event *after* it was processed — the raw
//! pre-guard sensor values, the resulting [`DetectorMode`], a copy of
//! the cumulative [`GuardStatus`] counters, and, on hop boundaries,
//! the classified window (score, arming state, policy-aware trigger
//! decision, and per-branch score attribution from
//! [`Network::forward_traced`](prefall_nn::network::Network::forward_traced)).
//!
//! The hook exists for flight recording and forensics
//! (`crates/blackbox`): because the tap observes the *raw* inputs in
//! arrival order — delivered samples and missing grid ticks alike — a
//! recorded stream can later be replayed through a fresh detector and
//! must reproduce the exact same score trajectory bit for bit.
//!
//! Tap discipline: callbacks run on the hot ingest path, so an
//! implementation must not allocate per call (after its own warm-up)
//! and must not panic. The detector holds the tap by `Box` and invokes
//! it via take/put-back, so a tap never observes the detector itself.

use crate::detector::{DetectorMode, GuardStatus, TrialOutcome};
use prefall_imu::trial::Trial;
use prefall_nn::network::BranchStat;

/// One classified window, handed to [`DetectorTap::on_sample`] when
/// the triggering ingest event completed a hop.
#[derive(Debug, Clone, Copy)]
pub struct WindowTap<'a> {
    /// Sigmoid window score (always finite on the guarded path).
    pub score: f32,
    /// Raw arming state after this window
    /// ([`StreamingDetector::trigger_armed`](crate::detector::StreamingDetector::trigger_armed)).
    pub armed: bool,
    /// Policy-aware trigger decision after this window
    /// ([`StreamingDetector::trigger_decision`](crate::detector::StreamingDetector::trigger_decision)).
    pub decision: bool,
    /// Per-branch activation statistics from the modality split, in
    /// branch order (accel, gyro, Euler for the paper's CNN). Empty
    /// for quantized engines and models without a split layer.
    pub attribution: &'a [BranchStat],
}

/// Context for one ingest event (one 100 Hz grid tick), handed to
/// [`DetectorTap::on_sample`] after the detector processed it.
#[derive(Debug, Clone, Copy)]
pub struct SampleTapCtx<'a> {
    /// Raw accelerometer reading in g, exactly as passed to
    /// [`push_sample`](crate::detector::StreamingDetector::push_sample)
    /// (pre-guard, possibly non-finite). The gap-fill hold value when
    /// `missing` is set.
    pub accel: [f32; 3],
    /// Raw gyroscope reading in rad/s (see `accel`).
    pub gyro: [f32; 3],
    /// `true` when this tick was reported via
    /// [`push_missing`](crate::detector::StreamingDetector::push_missing).
    pub missing: bool,
    /// Degraded modes active after this event.
    pub mode: DetectorMode,
    /// Cumulative guard counters after this event.
    pub guard: GuardStatus,
    /// The classified window, when this event completed a hop.
    pub window: Option<WindowTap<'a>>,
}

/// A per-sample observer on the streaming detector's ingest path.
///
/// See the [module docs](self) for the contract. All methods have
/// empty defaults except [`DetectorTap::on_sample`].
pub trait DetectorTap: std::fmt::Debug + Send {
    /// Called once per ingest event, after processing.
    fn on_sample(&mut self, ctx: &SampleTapCtx<'_>);

    /// Called from
    /// [`StreamingDetector::reset`](crate::detector::StreamingDetector::reset):
    /// streaming state was cleared, a new stream begins.
    fn on_stream_reset(&mut self) {}

    /// Called when a trial finished streaming (from
    /// [`stream_trial`](crate::detector::run_on_trial) and the faulted
    /// runner), with the final outcome.
    fn on_trial_end(&mut self, _trial: &Trial, _outcome: &TrialOutcome) {}
}

/// Fans one tap slot out to several observers, in installation order.
///
/// The detector holds exactly one tap, but deployments often want
/// more — a flight recorder *and* a drift monitor, say. A fanout is
/// itself a tap: its callbacks forward to every child, allocate
/// nothing per call, and inherit the children's discipline (each child
/// must honour the per-sample no-allocation contract on its own).
#[derive(Debug, Default)]
pub struct TapFanout {
    taps: Vec<Box<dyn DetectorTap>>,
}

impl TapFanout {
    /// A fanout over the given taps.
    pub fn new(taps: Vec<Box<dyn DetectorTap>>) -> Self {
        Self { taps }
    }

    /// Adds another observer (builder style).
    pub fn with(mut self, tap: Box<dyn DetectorTap>) -> Self {
        self.taps.push(tap);
        self
    }

    /// How many observers the fanout forwards to.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// Whether the fanout has no observers.
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }
}

impl DetectorTap for TapFanout {
    fn on_sample(&mut self, ctx: &SampleTapCtx<'_>) {
        for tap in self.taps.iter_mut() {
            tap.on_sample(ctx);
        }
    }

    fn on_stream_reset(&mut self) {
        for tap in self.taps.iter_mut() {
            tap.on_stream_reset();
        }
    }

    fn on_trial_end(&mut self, trial: &Trial, outcome: &TrialOutcome) {
        for tap in self.taps.iter_mut() {
            tap.on_trial_end(trial, outcome);
        }
    }
}
