//! §III-B model zoo: the proposed three-branch lightweight CNN and the
//! paper's baselines (MLP, LSTM, ConvLSTM2D).

use crate::CoreError;
use prefall_imu::channel::Modality;
use prefall_nn::network::{Network, NetworkBuilder};
use serde::{Deserialize, Serialize};

/// Which model architecture to build (the four rows of Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Multi-layer perceptron baseline.
    Mlp,
    /// LSTM baseline.
    Lstm,
    /// ConvLSTM2D baseline.
    ConvLstm2d,
    /// The proposed three-branch lightweight CNN.
    ProposedCnn,
    /// Ablation: the same conv budget without the modality split (not a
    /// Table III row; used by the ablation bench).
    MonolithicCnn,
}

impl ModelKind {
    /// The four models in Table III row order.
    pub const ALL: [ModelKind; 4] = [
        ModelKind::Mlp,
        ModelKind::Lstm,
        ModelKind::ConvLstm2d,
        ModelKind::ProposedCnn,
    ];

    /// Display name matching the paper's table.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Mlp => "MLP",
            ModelKind::Lstm => "LSTM",
            ModelKind::ConvLstm2d => "ConvLSTM2D",
            ModelKind::ProposedCnn => "CNN (Proposed)",
            ModelKind::MonolithicCnn => "CNN (single-branch)",
        }
    }

    /// Builds the model for `[window × channels]` segments.
    ///
    /// The proposed CNN splits the nine channels by modality into three
    /// `window × 3` branches (Conv1D(18, k=5) + ReLU + MaxPool(2)),
    /// concatenates, then Dense(64) → Dense(32) → Dense(1 logit).
    /// Hidden sizes of the baselines are chosen to be competitive at
    /// comparable budgets (the paper does not publish theirs).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Nn`] when the window is too small for the
    /// architecture (e.g. fewer than 10 samples for the CNN).
    pub fn build(self, window: usize, channels: usize, seed: u64) -> Result<Network, CoreError> {
        let net = match self {
            ModelKind::MonolithicCnn => return monolithic_cnn(window, channels, seed),
            ModelKind::Mlp => Network::builder(vec![window, channels])
                .dense(64)?
                .relu()
                .dense(32)?
                .relu()
                .dense(1)?
                .build(seed),
            ModelKind::Lstm => Network::builder(vec![window, channels])
                .lstm(32)?
                .dense(32)?
                .relu()
                .dense(1)?
                .build(seed),
            ModelKind::ConvLstm2d => Network::builder(vec![window, channels])
                .conv_lstm(8, 3)?
                .dense(32)?
                .relu()
                .dense(1)?
                .build(seed),
            ModelKind::ProposedCnn => {
                if channels != 9 {
                    return Err(CoreError::InvalidConfig {
                        reason: format!(
                            "the proposed CNN expects 9 channels (3 modalities), got {channels}"
                        ),
                    });
                }
                let branch = |idx: &[usize; 3]| -> Result<NetworkBuilder, CoreError> {
                    let _ = idx;
                    Ok(Network::builder(vec![window, 3])
                        .conv1d(18, 5)?
                        .relu()
                        .maxpool(2)?)
                };
                let sels: Vec<(Vec<usize>, NetworkBuilder)> = Modality::ALL
                    .iter()
                    .map(|m| {
                        let sel = m.channel_indices().to_vec();
                        branch(&m.channel_indices()).map(|b| (sel, b))
                    })
                    .collect::<Result<_, _>>()?;
                Network::builder(vec![window, 9])
                    .split(sels)?
                    .dense(64)?
                    .relu()
                    .dense(32)?
                    .relu()
                    .dense(1)?
                    .build(seed)
            }
        };
        Ok(net)
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A single-branch CNN over all 9 channels at once — the ablation
/// partner of the proposed modality split (same conv budget, no split).
pub fn monolithic_cnn(window: usize, channels: usize, seed: u64) -> Result<Network, CoreError> {
    Ok(Network::builder(vec![window, channels])
        .conv1d(18, 5)?
        .relu()
        .maxpool(2)?
        .dense(64)?
        .relu()
        .dense(32)?
        .relu()
        .dense(1)?
        .build(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_build_for_paper_windows() {
        for kind in ModelKind::ALL {
            for window in [20, 30, 40] {
                let net = kind.build(window, 9, 1).unwrap();
                assert_eq!(net.input_len(), window * 9, "{kind} w={window}");
                assert_eq!(net.output_len(), 1, "{kind}");
                assert!(net.param_count() > 0);
            }
        }
    }

    #[test]
    fn proposed_cnn_size_matches_paper_envelope() {
        // The 400 ms model quantizes to ≈67 KiB (§IV-C); its f32
        // parameter count must therefore sit near 64k.
        let net = ModelKind::ProposedCnn.build(40, 9, 1).unwrap();
        let params = net.param_count();
        assert!(
            (58_000..72_000).contains(&params),
            "param count {params} outside the paper's size envelope"
        );
    }

    #[test]
    fn proposed_cnn_rejects_non_nine_channels() {
        assert!(ModelKind::ProposedCnn.build(40, 6, 1).is_err());
    }

    #[test]
    fn proposed_cnn_is_cheaper_than_lstm_per_inference() {
        let cnn = ModelKind::ProposedCnn.build(40, 9, 1).unwrap();
        let lstm = ModelKind::Lstm.build(40, 9, 1).unwrap();
        // The entire point of the paper: deployable compute budget.
        assert!(cnn.macs() < 2 * lstm.macs());
    }

    #[test]
    fn forward_works_for_all_models() {
        let x: Vec<f32> = (0..20 * 9).map(|i| (i as f32 * 0.1).sin()).collect();
        for kind in ModelKind::ALL {
            let mut net = kind.build(20, 9, 3).unwrap();
            let y = net.forward(&x);
            assert!(y[0].is_finite(), "{kind}");
        }
    }

    #[test]
    fn monolithic_ablation_builds() {
        let net = monolithic_cnn(40, 9, 1).unwrap();
        assert_eq!(net.output_len(), 1);
        // Different structure from the proposed CNN.
        let proposed = ModelKind::ProposedCnn.build(40, 9, 1).unwrap();
        assert_ne!(net.param_count(), proposed.param_count());
    }

    #[test]
    fn names_match_table_iii() {
        assert_eq!(ModelKind::ProposedCnn.to_string(), "CNN (Proposed)");
        assert_eq!(ModelKind::ConvLstm2d.name(), "ConvLSTM2D");
    }
}
