//! §III-C subject-independent k-fold cross-validation.
//!
//! Subjects (not segments!) are partitioned into `k` folds; each fold
//! serves once as the test set while a further `val_subjects` subjects
//! are held out of the remaining training pool for early stopping —
//! "this cross-validation methodology guarantees no overlap between the
//! training/validation and testing data, as they involve different
//! subjects".

use crate::augment::augment_positives;
use crate::metrics::{Confusion, TableMetrics};
use crate::models::ModelKind;
use crate::pipeline::{Pipeline, SegmentMeta, SegmentSet};
use crate::CoreError;
use prefall_imu::dataset::Dataset;
use prefall_imu::rng::GenRng;
use prefall_imu::subject::SubjectId;
use prefall_nn::loss::{initial_output_bias, WeightedBce};
use prefall_nn::network::Network;
use prefall_nn::optim::OptimizerKind;
use prefall_nn::train::{predict_proba, train_recorded, DataRef, TrainConfig};
use prefall_par::Pool;
use prefall_telemetry::{NoopRecorder, Recorder, Span, Value};
use serde::{Deserialize, Serialize};

/// Cross-validation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CvConfig {
    /// Number of folds (paper: 5).
    pub folds: usize,
    /// Subjects held out of each fold's training pool for validation
    /// (paper: 4).
    pub val_subjects: usize,
    /// Maximum training epochs (paper: 200; CPU defaults are smaller).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Early-stopping patience (paper: 20).
    pub patience: Option<usize>,
    /// Warped copies added per falling segment (0 disables §III-C
    /// augmentation).
    pub augment_factor: usize,
    /// Apply balanced class weights.
    pub class_weights: bool,
    /// Apply the output-bias initialisation (Eq. 1).
    pub bias_init: bool,
    /// Decision threshold on the sigmoid output.
    pub threshold: f32,
    /// Master seed.
    pub seed: u64,
}

impl CvConfig {
    /// The paper's protocol with a CPU-sized epoch budget.
    pub fn paper_scaled(epochs: usize) -> Self {
        Self {
            folds: 5,
            val_subjects: 4,
            epochs,
            batch_size: 32,
            learning_rate: 1e-3,
            patience: Some(20),
            augment_factor: 2,
            class_weights: true,
            bias_init: true,
            threshold: 0.5,
            seed: 0xFA11,
        }
    }

    /// A fast configuration for tests and examples.
    pub fn fast() -> Self {
        Self {
            folds: 2,
            val_subjects: 1,
            epochs: 4,
            batch_size: 32,
            learning_rate: 2e-3,
            patience: None,
            augment_factor: 1,
            class_weights: true,
            bias_init: true,
            threshold: 0.5,
            seed: 0xFA57,
        }
    }
}

/// The subject split of one fold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FoldSplit {
    /// Test subjects.
    pub test: Vec<SubjectId>,
    /// Validation subjects (early stopping).
    pub val: Vec<SubjectId>,
    /// Training subjects.
    pub train: Vec<SubjectId>,
}

/// Partitions subjects into `k` folds and derives each fold's
/// train/val/test split, deterministically from `seed`.
///
/// # Errors
///
/// Returns [`CoreError::InsufficientData`] when there are not enough
/// subjects for `k` folds plus `val_subjects`.
pub fn subject_folds(
    ids: &[SubjectId],
    k: usize,
    val_subjects: usize,
    seed: u64,
) -> Result<Vec<FoldSplit>, CoreError> {
    if k < 2 || ids.len() < k * 2 || ids.len() < k + val_subjects + 1 {
        return Err(CoreError::InsufficientData {
            reason: format!(
                "{} subjects cannot support {k}-fold CV with {val_subjects} validation subjects",
                ids.len()
            ),
        });
    }
    let mut shuffled = ids.to_vec();
    let mut rng = GenRng::seed_from_u64(seed);
    rng.shuffle(&mut shuffled);

    // Contiguous chunks of near-equal size.
    let mut folds: Vec<Vec<SubjectId>> = vec![Vec::new(); k];
    for (i, id) in shuffled.iter().enumerate() {
        folds[i % k].push(*id);
    }

    let mut splits = Vec::with_capacity(k);
    for (i, test) in folds.iter().enumerate() {
        let mut rest: Vec<SubjectId> = shuffled
            .iter()
            .filter(|id| !test.contains(id))
            .copied()
            .collect();
        let mut fold_rng = GenRng::seed_from_u64(seed ^ (i as u64 + 1).wrapping_mul(0x9E37));
        fold_rng.shuffle(&mut rest);
        let n_val = val_subjects.min(rest.len().saturating_sub(1));
        let val: Vec<SubjectId> = rest[..n_val].to_vec();
        let train: Vec<SubjectId> = rest[n_val..].to_vec();
        splits.push(FoldSplit {
            test: test.clone(),
            val,
            train,
        });
    }
    Ok(splits)
}

/// Per-fold outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldOutcome {
    /// Fold index.
    pub fold: usize,
    /// Segment-level confusion on the test subjects.
    pub confusion: Confusion,
    /// Table III columns for this fold.
    pub metrics: TableMetrics,
    /// Per-test-segment sigmoid probabilities with identity (feeds the
    /// Table IV event analysis).
    pub predictions: Vec<(SegmentMeta, f32)>,
    /// Epochs actually run.
    pub epochs_run: usize,
}

/// Aggregated cross-validation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CvOutcome {
    /// Every fold.
    pub folds: Vec<FoldOutcome>,
    /// Mean Table III columns over folds.
    pub mean: TableMetrics,
    /// Pooled confusion over all folds.
    pub pooled: Confusion,
}

impl CvOutcome {
    /// All test predictions across folds (every subject appears exactly
    /// once as a test subject).
    pub fn all_predictions(&self) -> Vec<(SegmentMeta, f32)> {
        self.folds
            .iter()
            .flat_map(|f| f.predictions.iter().copied())
            .collect()
    }
}

/// The trained network, per-test-segment predictions, and the number of
/// epochs run, as returned by [`train_on_sets`].
pub type TrainedParts = (Network, Vec<(SegmentMeta, f32)>, usize);

/// Trains one model on pre-split segment sets and returns the trained
/// network plus test predictions. This is the inner step of
/// [`run_cv`], exposed for ablations and deployment flows.
///
/// The splits must already be subject-disjoint. Normalisation is fitted
/// on the (augmented) training set only.
///
/// # Errors
///
/// Propagates training errors; returns [`CoreError::InsufficientData`]
/// when the training set lacks one of the classes.
#[allow(clippy::too_many_arguments)]
pub fn train_on_sets(
    pipeline: &Pipeline,
    train_set: SegmentSet,
    val_set: SegmentSet,
    test_set: SegmentSet,
    model: ModelKind,
    cfg: &CvConfig,
    seed: u64,
) -> Result<TrainedParts, CoreError> {
    train_on_sets_recorded(
        pipeline,
        train_set,
        val_set,
        test_set,
        model,
        cfg,
        seed,
        &NoopRecorder,
    )
}

/// [`train_on_sets`] with telemetry: normalisation timings via
/// [`Pipeline::normalize_recorded`] and per-epoch training events via
/// [`train_recorded`].
///
/// # Errors
///
/// Same as [`train_on_sets`].
#[allow(clippy::too_many_arguments)]
pub fn train_on_sets_recorded(
    pipeline: &Pipeline,
    mut train_set: SegmentSet,
    mut val_set: SegmentSet,
    mut test_set: SegmentSet,
    model: ModelKind,
    cfg: &CvConfig,
    seed: u64,
    rec: &dyn Recorder,
) -> Result<TrainedParts, CoreError> {
    augment_positives(&mut train_set, cfg.augment_factor, seed ^ 0xAA99);
    let n_pos = train_set.positives();
    let n_neg = train_set.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return Err(CoreError::InsufficientData {
            reason: format!("training set has {n_pos} positives and {n_neg} negatives"),
        });
    }

    let norm = pipeline.fit_normalizer(&train_set);
    pipeline.normalize_recorded(&mut train_set, &norm, rec);
    pipeline.normalize_recorded(&mut val_set, &norm, rec);
    pipeline.normalize_recorded(&mut test_set, &norm, rec);

    let mut net = model.build(train_set.window, train_set.channels, seed)?;
    if cfg.bias_init {
        let prior = train_set.positive_prior().clamp(1e-4, 1.0 - 1e-4);
        net.set_output_bias(&[initial_output_bias(prior)])?;
    }
    let loss = if cfg.class_weights {
        WeightedBce::balanced(n_pos, n_neg)
    } else {
        WeightedBce::unweighted()
    };
    let tc = TrainConfig {
        epochs: cfg.epochs,
        batch_size: cfg.batch_size,
        learning_rate: cfg.learning_rate,
        optimizer: OptimizerKind::Adam,
        patience: cfg.patience,
        seed,
    };
    let val = (!val_set.is_empty()).then(|| DataRef::new(&val_set.x, &val_set.y));
    let report = train_recorded(
        &mut net,
        DataRef::new(&train_set.x, &train_set.y),
        val,
        loss,
        &tc,
        rec,
    )?;

    let probs = predict_proba(&mut net, &test_set.x);
    let predictions: Vec<(SegmentMeta, f32)> = test_set.meta.iter().copied().zip(probs).collect();
    Ok((net, predictions, report.epochs_run))
}

/// Runs the full subject-independent k-fold protocol for one model.
///
/// # Errors
///
/// Returns [`CoreError::InsufficientData`] when the dataset cannot
/// support the fold configuration, and propagates training errors.
pub fn run_cv(
    dataset: &Dataset,
    pipeline: &Pipeline,
    model: ModelKind,
    cfg: &CvConfig,
) -> Result<CvOutcome, CoreError> {
    run_cv_recorded(dataset, pipeline, model, cfg, &NoopRecorder)
}

/// [`run_cv`] with telemetry: segmentation counters and stage timings,
/// per-epoch training events, a `cv.fold_seconds` timing plus a
/// `cv.fold` event (macro F1, epochs run) per fold, and a `cv.folds`
/// counter.
///
/// # Errors
///
/// Same as [`run_cv`].
pub fn run_cv_recorded(
    dataset: &Dataset,
    pipeline: &Pipeline,
    model: ModelKind,
    cfg: &CvConfig,
    rec: &dyn Recorder,
) -> Result<CvOutcome, CoreError> {
    let full = pipeline.segment_set_recorded(dataset.trials(), rec);
    run_cv_with_segments(dataset, pipeline, &full, model, cfg, rec)
}

/// [`run_cv_recorded`] over an already-segmented dataset. The
/// preprocessing cache ([`crate::cache::SegmentCache`]) hands sweep
/// cells a shared segment set; this entry point runs the folds without
/// re-filtering and re-windowing the trials. `full` must be the
/// **pre-normalisation** segment set of `dataset.trials()` under
/// `pipeline`'s configuration (normalisation is fitted per fold on the
/// training subjects only).
///
/// Folds are independent given the shared segment set, so they run on a
/// [`Pool`] sized by `PREFALL_THREADS`. Every fold's seed derives only
/// from its index and results are collected in fold order, so the
/// outcome is bit-identical for any thread count.
///
/// # Errors
///
/// Same as [`run_cv`].
pub fn run_cv_with_segments(
    dataset: &Dataset,
    pipeline: &Pipeline,
    full: &SegmentSet,
    model: ModelKind,
    cfg: &CvConfig,
    rec: &dyn Recorder,
) -> Result<CvOutcome, CoreError> {
    let ids = dataset.subject_ids();
    let splits = subject_folds(&ids, cfg.folds, cfg.val_subjects, cfg.seed)?;

    let pool = Pool::from_env();
    let results = crate::worker::map_recorded(&pool, &splits, rec, |i, split, rec| {
        let _fold_trace = prefall_trace::trace_span!(crate::tracenames::trace_names().fold);
        let fold_span = Span::enter(rec, "cv.fold_seconds");
        let train_set = full.filter_subjects(&split.train);
        let val_set = full.filter_subjects(&split.val);
        let test_set = full.filter_subjects(&split.test);
        let test_labels: Vec<f32> = test_set.y.clone();

        let (_, predictions, epochs_run) = train_on_sets_recorded(
            pipeline,
            train_set,
            val_set,
            test_set,
            model,
            cfg,
            cfg.seed ^ ((i as u64 + 1) << 32),
            rec,
        )?;

        let probs: Vec<f32> = predictions.iter().map(|(_, p)| *p).collect();
        let confusion = Confusion::from_probs(&probs, &test_labels, cfg.threshold);
        let metrics = TableMetrics::from_confusion(&confusion);
        fold_span.finish();
        if rec.enabled() {
            rec.counter_add("cv.folds", 1);
            rec.event(
                "cv.fold",
                &[
                    ("fold", Value::from(i)),
                    ("f1", Value::from(metrics.f1)),
                    ("epochs_run", Value::from(epochs_run)),
                    ("test_segments", Value::from(test_labels.len())),
                ],
            );
        }
        Ok(FoldOutcome {
            fold: i,
            metrics,
            confusion,
            predictions,
            epochs_run,
        })
    });
    pool.publish(rec);
    let folds = results
        .into_iter()
        .collect::<Result<Vec<FoldOutcome>, CoreError>>()?;

    let mean = TableMetrics::mean(&folds.iter().map(|f| f.metrics).collect::<Vec<_>>());
    let mut pooled = Confusion::new();
    for f in &folds {
        pooled.merge(&f.confusion);
    }
    Ok(CvOutcome {
        folds,
        mean,
        pooled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use prefall_dsp::segment::Overlap;

    fn ids(n: usize) -> Vec<SubjectId> {
        (0..n as u16).map(SubjectId).collect()
    }

    #[test]
    fn folds_partition_subjects_disjointly() {
        let ids = ids(13);
        let splits = subject_folds(&ids, 5, 2, 7).unwrap();
        assert_eq!(splits.len(), 5);
        // Every subject appears in exactly one test fold.
        let mut seen: Vec<SubjectId> = splits.iter().flat_map(|s| s.test.clone()).collect();
        seen.sort();
        let mut expect = ids.clone();
        expect.sort();
        assert_eq!(seen, expect);
        for s in &splits {
            assert_eq!(s.val.len(), 2);
            for id in &s.test {
                assert!(!s.val.contains(id));
                assert!(!s.train.contains(id));
            }
            for id in &s.val {
                assert!(!s.train.contains(id));
            }
            assert_eq!(s.test.len() + s.val.len() + s.train.len(), 13);
        }
    }

    #[test]
    fn folds_are_deterministic_and_seed_sensitive() {
        let ids = ids(12);
        let a = subject_folds(&ids, 4, 2, 1).unwrap();
        let b = subject_folds(&ids, 4, 2, 1).unwrap();
        let c = subject_folds(&ids, 4, 2, 2).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rejects_too_few_subjects() {
        assert!(subject_folds(&ids(5), 5, 4, 1).is_err());
        assert!(subject_folds(&ids(3), 2, 0, 1).is_err());
    }

    #[test]
    fn paper_61_subjects_give_12ish_per_fold() {
        let splits = subject_folds(&ids(61), 5, 4, 3).unwrap();
        for s in &splits {
            assert!(s.test.len() == 12 || s.test.len() == 13);
            assert_eq!(s.val.len(), 4);
            assert!(s.train.len() >= 44);
        }
    }

    /// End-to-end: a tiny CV run learns something non-trivial.
    #[test]
    fn tiny_cv_run_beats_chance() {
        let dataset = prefall_imu::dataset::Dataset::combined_scaled(2, 2, 11).unwrap();
        let pipeline = Pipeline::new(PipelineConfig::paper(200.0, Overlap::Half)).unwrap();
        let mut cfg = CvConfig::fast();
        cfg.epochs = 6;
        let out = run_cv(&dataset, &pipeline, ModelKind::ProposedCnn, &cfg).unwrap();
        assert_eq!(out.folds.len(), 2);
        // Every test segment got a probability.
        assert!(!out.all_predictions().is_empty());
        // Macro recall must beat the degenerate 50% baseline.
        assert!(
            out.mean.recall > 55.0,
            "macro recall {:.1} not better than chance",
            out.mean.recall
        );
        assert!(out.mean.accuracy > 80.0);
    }
}
