//! Online model-quality monitoring: the Table IV event-level audit,
//! sigmoid-output calibration, and lead-time deciles — maintained *as
//! the detector runs* and published through a [`Recorder`] so the
//! `prefall-obsd` exporter can serve them live.
//!
//! *Watch Your Step* (Aderinola et al.) argues that streaming fall
//! detectors must be judged continuously on cost-sensitive event-level
//! signals, not one-shot segment metrics. This module is that judge:
//!
//! * **per-activity confusion counters** — every streamed trial bumps
//!   `quality.fall_events{task=NN}` / `quality.fall_detected{task=NN}` /
//!   `quality.fall_missed{task=NN}` (falls) or
//!   `quality.adl_events{task=NN}` /
//!   `quality.adl_false_activations{task=NN}` (ADLs, plus the red/green
//!   risk split of Table IVb), reproducing the Table IV audit online;
//! * **calibration/reliability bins** — predicted sigmoid outputs
//!   bucketed into equal-width confidence bins with empirical positive
//!   rates and an expected-calibration-error gauge;
//! * **lead-time decile gauges** — `quality.lead_time_decile_ms{q=10}`
//!   … `{q=90}` plus `quality.lead_budget_fraction`, the share of
//!   triggered falls whose lead time meets the 150 ms inflation budget.
//!
//! The inline-label convention (`base{key=value}`) is understood by the
//! Prometheus renderer in `prefall-obsd`; in the plain registry JSON the
//! labelled names are ordinary opaque keys.

use crate::detector::{lead_time_bounds_ms, GuardStatus, TrialOutcome};
use crate::events::EventReport;
use prefall_imu::activity::RiskGroup;
use prefall_imu::trial::Trial;
use prefall_imu::AIRBAG_INFLATION_MS;
use prefall_telemetry::{Histogram, Recorder};

/// Number of equal-width calibration bins over `[0, 1]`.
pub const CALIBRATION_BINS: usize = 10;

#[derive(Debug, Clone, Copy, Default)]
struct CalibrationBin {
    count: u64,
    positives: u64,
    confidence_sum: f64,
}

/// Aggregated event counts for one side of the Table IV audit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct EventTally {
    events: u64,
    flagged: u64,
}

impl EventTally {
    fn rate(&self) -> f64 {
        if self.events == 0 {
            f64::NAN
        } else {
            self.flagged as f64 / self.events as f64
        }
    }
}

/// The online model-quality monitor.
///
/// Counters are emitted eagerly through the [`Recorder`] passed to the
/// `record_*` methods (so a live scrape sees them grow); derived gauges
/// (percentages, deciles, calibration) are written by
/// [`QualityMonitor::publish`], which is idempotent and cheap enough to
/// call after every trial.
#[derive(Debug)]
pub struct QualityMonitor {
    budget_ms: f64,
    bins: [CalibrationBin; CALIBRATION_BINS],
    lead: Histogram,
    lead_within_budget: u64,
    falls: EventTally,
    adls: EventTally,
    red: EventTally,
    green: EventTally,
    guard: GuardStatus,
}

impl Default for QualityMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl QualityMonitor {
    /// A monitor judging lead times against the paper's 150 ms budget.
    pub fn new() -> Self {
        Self::with_budget(AIRBAG_INFLATION_MS)
    }

    /// A monitor with a custom lead-time budget in ms.
    pub fn with_budget(budget_ms: f64) -> Self {
        Self {
            budget_ms,
            bins: [CalibrationBin::default(); CALIBRATION_BINS],
            lead: Histogram::with_bounds(lead_time_bounds_ms()),
            lead_within_budget: 0,
            falls: EventTally::default(),
            adls: EventTally::default(),
            red: EventTally::default(),
            green: EventTally::default(),
            guard: GuardStatus::default(),
        }
    }

    /// Tracks the detector's cumulative [`GuardStatus`] so the ingest
    /// fault rate and degraded-window rate publish next to the model
    /// quality. Pass the latest
    /// [`StreamingDetector::guard_status`](crate::detector::StreamingDetector::guard_status)
    /// snapshot — counters there are cumulative, so the newest snapshot
    /// simply replaces the stored one.
    pub fn record_guard(&mut self, status: GuardStatus) {
        self.guard = status;
    }

    /// Faults per ingested sample over everything audited so far.
    pub fn fault_rate(&self) -> f64 {
        self.guard.fault_rate()
    }

    /// Fraction of classified windows that ran in a degraded mode.
    pub fn degraded_window_rate(&self) -> f64 {
        if self.guard.windows == 0 {
            0.0
        } else {
            self.guard.degraded_windows as f64 / self.guard.windows as f64
        }
    }

    /// The lead-time budget in ms.
    pub fn budget_ms(&self) -> f64 {
        self.budget_ms
    }

    /// Audits one streamed trial: per-activity confusion counters, the
    /// red/green risk split, lead-time tracking, and (when the trial
    /// produced a peak window probability) one calibration observation
    /// at event level.
    pub fn record_trial(&mut self, trial: &Trial, outcome: &TrialOutcome, rec: &dyn Recorder) {
        let task = trial.task.get();
        let activity = trial.activity();
        let triggered = outcome.triggered_at.is_some();

        if trial.is_fall() {
            self.falls.events += 1;
            // Unlabelled aggregates ride along so downstream consumers
            // (the watch layer's SLO ratios) never parse label syntax.
            rec.counter_add("quality.fall_events", 1);
            rec.counter_add(&format!("quality.fall_events{{task={task}}}"), 1);
            if triggered {
                self.falls.flagged += 1;
                rec.counter_add("quality.fall_detected", 1);
                rec.counter_add(&format!("quality.fall_detected{{task={task}}}"), 1);
            } else {
                rec.counter_add("quality.fall_missed", 1);
                rec.counter_add(&format!("quality.fall_missed{{task={task}}}"), 1);
            }
            if let Some(lead) = outcome.lead_time_ms {
                self.lead.observe(lead);
                if lead >= self.budget_ms {
                    self.lead_within_budget += 1;
                    rec.counter_add("quality.lead_within_budget", 1);
                } else {
                    rec.counter_add("quality.lead_below_budget", 1);
                }
            }
        } else {
            self.adls.events += 1;
            rec.counter_add("quality.adl_events", 1);
            rec.counter_add(&format!("quality.adl_events{{task={task}}}"), 1);
            let group = match activity.risk_group {
                Some(RiskGroup::Red) => {
                    self.red.events += 1;
                    "red"
                }
                Some(RiskGroup::Green) => {
                    self.green.events += 1;
                    "green"
                }
                None => "none",
            };
            if outcome.false_activation {
                self.adls.flagged += 1;
                rec.counter_add("quality.adl_false_activations", 1);
                rec.counter_add(&format!("quality.adl_false_activations{{task={task}}}"), 1);
                rec.counter_add(&format!("quality.adl_false_activations{{risk={group}}}"), 1);
                match activity.risk_group {
                    Some(RiskGroup::Red) => self.red.flagged += 1,
                    Some(RiskGroup::Green) => self.green.flagged += 1,
                    None => {}
                }
            }
        }

        if let Some(peak) = outcome.peak_prob {
            self.record_probability(peak, trial.is_fall());
        }
    }

    /// Folds a finished [`EventReport`] (the offline Table IV audit the
    /// experiment path produces per cell) into the same counters, task
    /// by task.
    pub fn record_event_report(&mut self, report: &EventReport, rec: &dyn Recorder) {
        for (task, stats) in &report.fall_tasks {
            self.falls.events += stats.events as u64;
            self.falls.flagged += stats.flagged as u64;
            rec.counter_add("quality.fall_events", stats.events as u64);
            rec.counter_add(
                &format!("quality.fall_events{{task={task}}}"),
                stats.events as u64,
            );
            rec.counter_add("quality.fall_detected", stats.flagged as u64);
            rec.counter_add(
                &format!("quality.fall_detected{{task={task}}}"),
                stats.flagged as u64,
            );
            rec.counter_add("quality.fall_missed", (stats.events - stats.flagged) as u64);
            rec.counter_add(
                &format!("quality.fall_missed{{task={task}}}"),
                (stats.events - stats.flagged) as u64,
            );
        }
        for (task, stats) in &report.adl_tasks {
            self.adls.events += stats.events as u64;
            self.adls.flagged += stats.flagged as u64;
            rec.counter_add("quality.adl_events", stats.events as u64);
            rec.counter_add(
                &format!("quality.adl_events{{task={task}}}"),
                stats.events as u64,
            );
            rec.counter_add("quality.adl_false_activations", stats.flagged as u64);
            rec.counter_add(
                &format!("quality.adl_false_activations{{task={task}}}"),
                stats.flagged as u64,
            );
            let tally = match prefall_imu::activity::Activity::from_task(*task)
                .ok()
                .and_then(|a| a.risk_group)
            {
                Some(RiskGroup::Red) => &mut self.red,
                Some(RiskGroup::Green) => &mut self.green,
                None => continue,
            };
            tally.events += stats.events as u64;
            tally.flagged += stats.flagged as u64;
        }
    }

    /// One calibration observation: a predicted sigmoid output and the
    /// ground truth it should have predicted.
    pub fn record_probability(&mut self, prob: f32, positive: bool) {
        let p = f64::from(prob).clamp(0.0, 1.0);
        let bin = ((p * CALIBRATION_BINS as f64) as usize).min(CALIBRATION_BINS - 1);
        self.bins[bin].count += 1;
        self.bins[bin].confidence_sum += p;
        if positive {
            self.bins[bin].positives += 1;
        }
    }

    /// Expected calibration error over the filled bins (NaN with no
    /// observations): `Σ (n_b / N) · |accuracy_b − confidence_b|`.
    pub fn expected_calibration_error(&self) -> f64 {
        let total: u64 = self.bins.iter().map(|b| b.count).sum();
        if total == 0 {
            return f64::NAN;
        }
        self.bins
            .iter()
            .filter(|b| b.count > 0)
            .map(|b| {
                let acc = b.positives as f64 / b.count as f64;
                let conf = b.confidence_sum / b.count as f64;
                (b.count as f64 / total as f64) * (acc - conf).abs()
            })
            .sum()
    }

    /// Fraction of recorded lead times that met the budget (NaN before
    /// the first triggered fall).
    pub fn lead_budget_fraction(&self) -> f64 {
        let n = self.lead.count();
        if n == 0 {
            f64::NAN
        } else {
            self.lead_within_budget as f64 / n as f64
        }
    }

    /// Event-level miss percentage over all audited fall events.
    pub fn fall_miss_pct(&self) -> f64 {
        (1.0 - self.falls.rate()) * 100.0
    }

    /// Event-level false-activation percentage over all audited ADLs.
    pub fn adl_fp_pct(&self) -> f64 {
        self.adls.rate() * 100.0
    }

    /// Writes every derived gauge. Idempotent: gauges are last-write-
    /// wins, so calling this after each trial keeps a live scrape fresh.
    pub fn publish(&self, rec: &dyn Recorder) {
        if !rec.enabled() {
            return;
        }
        for (i, b) in self.bins.iter().enumerate() {
            rec.gauge_set(
                &format!("quality.calibration_count{{bin={i}}}"),
                b.count as f64,
            );
            if b.count > 0 {
                rec.gauge_set(
                    &format!("quality.calibration_confidence{{bin={i}}}"),
                    b.confidence_sum / b.count as f64,
                );
                rec.gauge_set(
                    &format!("quality.calibration_positive_rate{{bin={i}}}"),
                    b.positives as f64 / b.count as f64,
                );
            }
        }
        rec.gauge_set(
            "quality.expected_calibration_error",
            self.expected_calibration_error(),
        );

        let lead = self.lead.snapshot();
        if lead.count > 0 {
            for q in (10..=90).step_by(10) {
                rec.gauge_set(
                    &format!("quality.lead_time_decile_ms{{q={q}}}"),
                    lead.quantile_from_buckets(q as f64 / 100.0),
                );
            }
        }
        rec.gauge_set("quality.lead_budget_fraction", self.lead_budget_fraction());
        rec.gauge_set("quality.lead_budget_ms", self.budget_ms);

        if self.falls.events > 0 {
            rec.gauge_set("quality.fall_miss_pct", self.fall_miss_pct());
        }
        if self.adls.events > 0 {
            rec.gauge_set("quality.adl_fp_pct", self.adl_fp_pct());
        }
        if self.red.events > 0 {
            rec.gauge_set("quality.adl_fp_pct{risk=red}", self.red.rate() * 100.0);
        }
        if self.green.events > 0 {
            rec.gauge_set("quality.adl_fp_pct{risk=green}", self.green.rate() * 100.0);
        }

        if self.guard.samples > 0 {
            rec.gauge_set("quality.fault_rate", self.fault_rate());
        }
        if self.guard.windows > 0 {
            rec.gauge_set("quality.degraded_window_rate", self.degraded_window_rate());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefall_telemetry::Registry;

    fn outcome(triggered: Option<usize>, lead: Option<f64>, false_act: bool) -> TrialOutcome {
        TrialOutcome {
            triggered_at: triggered,
            impact: None,
            lead_time_ms: lead,
            protected: None,
            false_activation: false_act,
            peak_prob: Some(if triggered.is_some() { 0.9 } else { 0.1 }),
        }
    }

    fn make_trial(task: u8) -> Trial {
        use prefall_imu::generator::render_script;
        use prefall_imu::rng::GenRng;
        use prefall_imu::script::script_for_task;
        use prefall_imu::subject::{DatasetSource, Subject, SubjectId};

        let mut rng = GenRng::seed_from_u64(11);
        let subject = Subject::sample(SubjectId(1), DatasetSource::SelfCollected, &mut rng);
        let a = prefall_imu::activity::Activity::from_task(task).unwrap();
        let script = script_for_task(a, subject.tempo_scale, &mut rng);
        let signals = render_script(&script, &subject, &mut rng);
        Trial::from_rendered(
            SubjectId(1),
            a.id,
            0,
            DatasetSource::SelfCollected,
            &signals,
        )
        .unwrap()
    }

    #[test]
    fn fall_audit_counts_per_task_and_aggregates() {
        let reg = Registry::new();
        let mut mon = QualityMonitor::new();
        let fall = make_trial(39); // task 39 is a fall
        assert!(fall.is_fall());
        mon.record_trial(&fall, &outcome(Some(100), Some(400.0), false), &reg);
        mon.record_trial(&fall, &outcome(None, None, false), &reg);
        mon.publish(&reg);

        let snap = reg.snapshot();
        assert_eq!(snap.counters["quality.fall_events{task=39}"], 2);
        assert_eq!(snap.counters["quality.fall_detected{task=39}"], 1);
        assert_eq!(snap.counters["quality.fall_missed{task=39}"], 1);
        assert_eq!(snap.counters["quality.lead_within_budget"], 1);
        assert!((snap.gauges["quality.fall_miss_pct"] - 50.0).abs() < 1e-9);
        assert!((snap.gauges["quality.lead_budget_fraction"] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn adl_audit_tracks_risk_groups() {
        let reg = Registry::new();
        let mut mon = QualityMonitor::new();
        let adl = make_trial(15); // jumping: red ADL
        assert!(!adl.is_fall());
        mon.record_trial(&adl, &outcome(Some(50), None, true), &reg);
        mon.record_trial(&adl, &outcome(None, None, false), &reg);
        mon.publish(&reg);

        let snap = reg.snapshot();
        assert_eq!(snap.counters["quality.adl_events{task=15}"], 2);
        assert_eq!(snap.counters["quality.adl_false_activations{task=15}"], 1);
        assert_eq!(snap.counters["quality.adl_false_activations{risk=red}"], 1);
        assert!((snap.gauges["quality.adl_fp_pct"] - 50.0).abs() < 1e-9);
        assert!((snap.gauges["quality.adl_fp_pct{risk=red}"] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_bins_and_ece() {
        let mut mon = QualityMonitor::new();
        // Perfectly calibrated at 0.95 and 0.05.
        for _ in 0..19 {
            mon.record_probability(0.95, true);
            mon.record_probability(0.05, false);
        }
        mon.record_probability(0.95, false);
        mon.record_probability(0.05, true);
        let ece = mon.expected_calibration_error();
        assert!(ece < 0.02, "well calibrated: {ece}");

        // Systematically overconfident predictions inflate the ECE.
        let mut bad = QualityMonitor::new();
        for _ in 0..10 {
            bad.record_probability(0.95, false);
        }
        assert!(bad.expected_calibration_error() > 0.8);
    }

    #[test]
    fn lead_deciles_are_monotone() {
        let reg = Registry::new();
        let mut mon = QualityMonitor::new();
        let fall = make_trial(20);
        for i in 0..20 {
            mon.record_trial(
                &fall,
                &outcome(Some(10), Some(100.0 + f64::from(i) * 40.0), false),
                &reg,
            );
        }
        mon.publish(&reg);
        let snap = reg.snapshot();
        let mut last = f64::NEG_INFINITY;
        for q in (10..=90).step_by(10) {
            let v = snap.gauges[&format!("quality.lead_time_decile_ms{{q={q}}}")];
            assert!(v >= last, "decile q={q} not monotone: {v} < {last}");
            last = v;
        }
        let frac = snap.gauges["quality.lead_budget_fraction"];
        assert!((0.0..=1.0).contains(&frac));
    }

    #[test]
    fn guard_status_publishes_fault_and_degradation_rates() {
        let reg = Registry::new();
        let mut mon = QualityMonitor::new();
        mon.publish(&reg);
        assert!(
            !reg.snapshot().gauges.contains_key("quality.fault_rate"),
            "no gauge before any ingest"
        );
        let status = GuardStatus {
            samples: 1000,
            nonfinite: 30,
            gaps_filled: 20,
            windows: 100,
            degraded_windows: 25,
            ..GuardStatus::default()
        };
        mon.record_guard(status);
        mon.publish(&reg);
        let snap = reg.snapshot();
        assert!((snap.gauges["quality.fault_rate"] - 0.05).abs() < 1e-12);
        assert!((snap.gauges["quality.degraded_window_rate"] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn publish_is_idempotent() {
        let reg = Registry::new();
        let mut mon = QualityMonitor::new();
        mon.record_probability(0.75, true);
        mon.publish(&reg);
        mon.publish(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.gauges["quality.calibration_count{bin=7}"], 1.0);
    }
}
