//! Operating-point analysis: ROC/PR curves, AUC, and the paper's
//! FP-minimising threshold selection.
//!
//! §IV-B: "we configured our model to minimize false positives, even at
//! the cost of missing the detection of some actual falls". This module
//! makes that choice explicit: sweep the decision threshold over the
//! validation predictions and pick the highest-precision point subject
//! to a miss-rate budget, at the *event* level where it matters.

use crate::events::EventReport;
use crate::pipeline::SegmentMeta;
use serde::{Deserialize, Serialize};

/// One point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// Decision threshold producing this point.
    pub threshold: f32,
    /// True-positive rate (recall).
    pub tpr: f64,
    /// False-positive rate.
    pub fpr: f64,
}

/// Computes the segment-level ROC curve over (probability, label) pairs,
/// sorted by descending threshold, with endpoints at (0,0) and (1,1).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn roc_curve(probs: &[f32], labels: &[f32]) -> Vec<RocPoint> {
    assert_eq!(probs.len(), labels.len(), "length mismatch");
    let n_pos = labels.iter().filter(|&&y| y > 0.5).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return vec![
            RocPoint {
                threshold: 1.0,
                tpr: 0.0,
                fpr: 0.0,
            },
            RocPoint {
                threshold: 0.0,
                tpr: 1.0,
                fpr: 1.0,
            },
        ];
    }

    let mut pairs: Vec<(f32, bool)> = probs
        .iter()
        .zip(labels)
        .map(|(&p, &y)| (p, y > 0.5))
        .collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite probabilities"));

    let mut points = vec![RocPoint {
        threshold: f32::INFINITY,
        tpr: 0.0,
        fpr: 0.0,
    }];
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut i = 0;
    while i < pairs.len() {
        let t = pairs[i].0;
        // Consume all pairs tied at this threshold.
        while i < pairs.len() && pairs[i].0 == t {
            if pairs[i].1 {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push(RocPoint {
            threshold: t,
            tpr: tp as f64 / n_pos as f64,
            fpr: fp as f64 / n_neg as f64,
        });
    }
    points
}

/// Area under the ROC curve (trapezoidal).
pub fn auc(points: &[RocPoint]) -> f64 {
    points
        .windows(2)
        .map(|w| (w[1].fpr - w[0].fpr) * (w[1].tpr + w[0].tpr) / 2.0)
        .sum()
}

/// Result of the event-level operating-point search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// The chosen decision threshold.
    pub threshold: f32,
    /// Fall-event miss percentage at this threshold.
    pub fall_miss_pct: f64,
    /// ADL-event false-activation percentage at this threshold.
    pub adl_fp_pct: f64,
}

/// Sweeps thresholds over per-segment test/validation predictions and
/// returns the point with the **fewest ADL false activations** whose
/// fall-event miss rate stays within `max_miss_pct` — the paper's
/// "minimize false positives" policy. Falls back to the
/// lowest-miss-rate point when no threshold satisfies the budget.
pub fn pick_fp_minimising_threshold(
    preds: &[(SegmentMeta, f32)],
    max_miss_pct: f64,
) -> OperatingPoint {
    let candidates: Vec<f32> = (1..100).map(|k| k as f32 / 100.0).collect();
    let mut best: Option<OperatingPoint> = None;
    let mut fallback: Option<OperatingPoint> = None;
    for t in candidates {
        let report = EventReport::from_predictions(preds, t);
        let op = OperatingPoint {
            threshold: t,
            fall_miss_pct: report.overall_fall_miss_pct(),
            adl_fp_pct: report.overall_adl_fp_pct(),
        };
        if op.fall_miss_pct <= max_miss_pct {
            let better = match best {
                None => true,
                Some(b) => {
                    op.adl_fp_pct < b.adl_fp_pct
                        || (op.adl_fp_pct == b.adl_fp_pct && op.fall_miss_pct < b.fall_miss_pct)
                }
            };
            if better {
                best = Some(op);
            }
        }
        let lower_miss = match fallback {
            None => true,
            Some(f) => {
                op.fall_miss_pct < f.fall_miss_pct
                    || (op.fall_miss_pct == f.fall_miss_pct && op.adl_fp_pct < f.adl_fp_pct)
            }
        };
        if lower_miss {
            fallback = Some(op);
        }
    }
    best.or(fallback).expect("candidate grid is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::SegmentLabel;
    use prefall_imu::activity::TaskId;
    use prefall_imu::subject::SubjectId;

    #[test]
    fn perfect_separation_has_auc_one() {
        let probs = vec![0.9, 0.8, 0.2, 0.1];
        let labels = vec![1.0, 1.0, 0.0, 0.0];
        let roc = roc_curve(&probs, &labels);
        assert!((auc(&roc) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn random_scores_have_auc_half() {
        // Alternating identical scores: ties processed together.
        let probs = vec![0.5; 100];
        let labels: Vec<f32> = (0..100).map(|i| (i % 2) as f32).collect();
        let roc = roc_curve(&probs, &labels);
        assert!((auc(&roc) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn inverted_scores_have_auc_zero() {
        let probs = vec![0.1, 0.2, 0.8, 0.9];
        let labels = vec![1.0, 1.0, 0.0, 0.0];
        let roc = roc_curve(&probs, &labels);
        assert!(auc(&roc) < 1e-9);
    }

    #[test]
    fn roc_is_monotone_and_ends_at_one_one() {
        let probs: Vec<f32> = (0..50).map(|i| (i as f32 * 0.37).sin().abs()).collect();
        let labels: Vec<f32> = (0..50).map(|i| ((i * 7) % 3 == 0) as u8 as f32).collect();
        let roc = roc_curve(&probs, &labels);
        for w in roc.windows(2) {
            assert!(w[1].tpr >= w[0].tpr - 1e-12);
            assert!(w[1].fpr >= w[0].fpr - 1e-12);
        }
        let last = roc.last().unwrap();
        assert!((last.tpr - 1.0).abs() < 1e-12);
        assert!((last.fpr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_single_class_is_safe() {
        let roc = roc_curve(&[0.4, 0.6], &[1.0, 1.0]);
        assert_eq!(roc.len(), 2);
        assert!(auc(&roc).is_finite());
    }

    fn meta(task: u8, trial: u16, label: SegmentLabel) -> SegmentMeta {
        SegmentMeta {
            subject: SubjectId(0),
            task: TaskId::new(task).unwrap(),
            trial_index: trial,
            start: 0,
            label,
        }
    }

    #[test]
    fn threshold_search_minimises_fp_within_miss_budget() {
        // Two fall events with scores 0.9 / 0.6 and three ADL events
        // with max scores 0.7 / 0.3 / 0.1.
        let preds = vec![
            (meta(30, 0, SegmentLabel::Falling), 0.9),
            (meta(30, 1, SegmentLabel::Falling), 0.6),
            (meta(6, 0, SegmentLabel::Adl), 0.7),
            (meta(6, 1, SegmentLabel::Adl), 0.3),
            (meta(6, 2, SegmentLabel::Adl), 0.1),
        ];
        // Budget 0 % misses → threshold must stay ≤ 0.6 → FP unavoidable.
        let strict = pick_fp_minimising_threshold(&preds, 0.0);
        assert!(strict.threshold <= 0.6);
        assert_eq!(strict.fall_miss_pct, 0.0);
        // Budget 50 % misses → can push past the 0.7 ADL event.
        let relaxed = pick_fp_minimising_threshold(&preds, 50.0);
        assert!(relaxed.threshold > 0.7, "threshold {}", relaxed.threshold);
        assert_eq!(relaxed.adl_fp_pct, 0.0);
        assert!(relaxed.fall_miss_pct <= 50.0);
    }

    #[test]
    fn impossible_budget_falls_back_to_lowest_miss() {
        let preds = vec![
            (meta(30, 0, SegmentLabel::Falling), 0.005), // undetectable
            (meta(6, 0, SegmentLabel::Adl), 0.9),
        ];
        let op = pick_fp_minimising_threshold(&preds, 0.0);
        // No threshold catches the fall; fallback picks the lowest-miss
        // (here: all candidates miss it, so any is fine) without panic.
        assert!(op.threshold > 0.0);
        assert_eq!(op.fall_miss_pct, 100.0);
    }
}
