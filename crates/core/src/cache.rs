//! Content-hashed preprocessing cache.
//!
//! Sweep and experiment grids evaluate several models against the same
//! filtered + segmented data: every (model × window) cell with the same
//! window re-runs the identical Butterworth filter and windowing over
//! the identical trials. [`SegmentCache`] keys the **pre-normalisation**
//! [`SegmentSet`] (normalisation is per-fold and stays out of the
//! cache) by an FNV-1a content hash over the full pipeline
//! configuration and the trial data, so cells that share a
//! filter + window config reuse the work and cells that differ in any
//! input cannot collide silently.
//!
//! Entries hold an [`OnceLock`], so two workers racing on the same key
//! compute the set once and share it. The cache is bounded (LRU by
//! access tick) and can be disabled with `PREFALL_PREPROC_CACHE=0` —
//! the perf bench's baseline leg uses that to time the uncached path.
//!
//! Activity is published as `cache.hits` / `cache.misses` /
//! `cache.evictions` counters through the recorder passed to
//! [`SegmentCache::get_or_build`].

use crate::pipeline::{Pipeline, PipelineConfig, SegmentSet};
use prefall_imu::subject::DatasetSource;
use prefall_imu::trial::Trial;
use prefall_telemetry::Recorder;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Environment variable: set to `0` to bypass the cache entirely.
pub const CACHE_ENV: &str = "PREFALL_PREPROC_CACHE";

/// Default number of cached segment sets (one per distinct window
/// config in flight; the Table III grid needs three).
pub const DEFAULT_CAPACITY: usize = 8;

fn cache_disabled() -> bool {
    std::env::var(CACHE_ENV).is_ok_and(|v| v.trim() == "0")
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

/// Content hash of everything that determines a segment set: the full
/// pipeline configuration plus every trial's identity, fall markers and
/// raw channel data (`f32::to_bits`, so any single-sample change moves
/// the key).
fn content_key(config: &PipelineConfig, trials: &[Trial]) -> u64 {
    let mut h = Fnv::new();
    h.f64(config.filter_cutoff_hz);
    h.u64(config.filter_order as u64);
    h.u64(config.segmentation.window() as u64);
    h.u64(config.segmentation.hop() as u64);
    h.f64(config.positive_overlap);
    h.f64(config.discard_margin_s);
    h.u64(config.airbag_budget_samples as u64);
    h.u64(trials.len() as u64);
    for trial in trials {
        h.u64(u64::from(trial.subject.0));
        h.u64(u64::from(trial.task.get()));
        h.u64(u64::from(trial.trial_index));
        h.u64(match trial.source {
            DatasetSource::KFall => 0,
            DatasetSource::SelfCollected => 1,
        });
        h.u64(trial.fall_start().map_or(u64::MAX, |s| s as u64));
        h.u64(trial.impact().map_or(u64::MAX, |s| s as u64));
        h.u64(trial.len() as u64);
        for ch in trial.channels() {
            for &v in ch {
                h.u64(u64::from(v.to_bits()));
            }
        }
    }
    h.0
}

struct Entry {
    cell: Arc<OnceLock<Arc<SegmentSet>>>,
    last_used: u64,
}

struct Inner {
    map: HashMap<u64, Entry>,
    tick: u64,
}

/// A bounded, content-addressed cache of preprocessed segment sets.
#[derive(Debug)]
pub struct SegmentCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("entries", &self.map.len())
            .field("tick", &self.tick)
            .finish()
    }
}

impl Default for SegmentCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl SegmentCache {
    /// A cache holding at most `capacity` segment sets (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Number of resident entries (including in-flight computations).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache poisoned").map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the pre-normalisation segment set for `trials` under the
    /// pipeline's configuration, computing it at most once per distinct
    /// content. Emits `cache.hits` / `cache.misses` /
    /// `cache.evictions` counters; with `PREFALL_PREPROC_CACHE=0` the
    /// cache is bypassed and every call recomputes.
    ///
    /// On a hit the pipeline's per-stage spans and segment counters are
    /// **not** re-emitted — the work they would time never runs.
    pub fn get_or_build(
        &self,
        pipeline: &Pipeline,
        trials: &[Trial],
        rec: &dyn Recorder,
    ) -> Arc<SegmentSet> {
        if cache_disabled() {
            return Arc::new(pipeline.segment_set_recorded(trials, rec));
        }
        let key = content_key(pipeline.config(), trials);
        let (cell, hit) = {
            let mut inner = self.inner.lock().expect("cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.map.get_mut(&key) {
                entry.last_used = tick;
                (Arc::clone(&entry.cell), true)
            } else {
                if inner.map.len() >= self.capacity {
                    if let Some((&victim, _)) =
                        inner.map.iter().min_by_key(|(_, entry)| entry.last_used)
                    {
                        inner.map.remove(&victim);
                        if rec.enabled() {
                            rec.counter_add("cache.evictions", 1);
                        }
                    }
                }
                let cell = Arc::new(OnceLock::new());
                inner.map.insert(
                    key,
                    Entry {
                        cell: Arc::clone(&cell),
                        last_used: tick,
                    },
                );
                (cell, false)
            }
        };
        if rec.enabled() {
            rec.counter_add(if hit { "cache.hits" } else { "cache.misses" }, 1);
        }
        if hit && prefall_trace::armed() {
            prefall_trace::instant(crate::tracenames::trace_names().cache_hit);
        }
        // Compute outside the map lock; racing callers on the same key
        // block here and share the first result. The fill span only
        // covers an actual computation — a hit that merely clones the
        // cached Arc stays span-free.
        Arc::clone(cell.get_or_init(|| {
            let _fill_span =
                prefall_trace::trace_span!(crate::tracenames::trace_names().cache_fill);
            Arc::new(pipeline.segment_set_recorded(trials, rec))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use prefall_dsp::segment::Overlap;
    use prefall_imu::dataset::Dataset;
    use prefall_telemetry::Registry;

    fn dataset() -> Dataset {
        Dataset::combined_scaled(1, 1, 42).unwrap()
    }

    #[test]
    fn hit_returns_the_same_set_without_recompute() {
        let ds = dataset();
        let p = Pipeline::new(PipelineConfig::paper(200.0, Overlap::Half)).unwrap();
        let cache = SegmentCache::default();
        let reg = Registry::new();
        let a = cache.get_or_build(&p, ds.trials(), &reg);
        let b = cache.get_or_build(&p, ds.trials(), &reg);
        assert!(Arc::ptr_eq(&a, &b), "hit must share the cached set");
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("cache.misses"), Some(&1));
        assert_eq!(snap.counters.get("cache.hits"), Some(&1));
        // Contents match an uncached run exactly.
        let fresh = p.segment_set(ds.trials());
        assert_eq!(*a, fresh);
    }

    #[test]
    fn different_configs_get_different_entries() {
        let ds = dataset();
        let p200 = Pipeline::new(PipelineConfig::paper(200.0, Overlap::Half)).unwrap();
        let p400 = Pipeline::new(PipelineConfig::paper_400ms()).unwrap();
        let cache = SegmentCache::default();
        let reg = Registry::new();
        let a = cache.get_or_build(&p200, ds.trials(), &reg);
        let b = cache.get_or_build(&p400, ds.trials(), &reg);
        assert_ne!(a.window, b.window);
        assert_eq!(cache.len(), 2);
        assert_eq!(reg.snapshot().counters.get("cache.misses"), Some(&2));
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let ds = dataset();
        let cache = SegmentCache::with_capacity(2);
        let reg = Registry::new();
        let mk = |ms: f64| Pipeline::new(PipelineConfig::paper(ms, Overlap::Half)).unwrap();
        cache.get_or_build(&mk(100.0), ds.trials(), &reg);
        cache.get_or_build(&mk(200.0), ds.trials(), &reg);
        // Touch 100 ms so 200 ms becomes the LRU victim.
        cache.get_or_build(&mk(100.0), ds.trials(), &reg);
        cache.get_or_build(&mk(300.0), ds.trials(), &reg);
        assert_eq!(cache.len(), 2);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("cache.evictions"), Some(&1));
        // 200 ms was evicted: asking again misses.
        cache.get_or_build(&mk(200.0), ds.trials(), &reg);
        assert_eq!(reg.snapshot().counters.get("cache.misses"), Some(&4));
    }

    #[test]
    fn env_kill_switch_bypasses_the_cache() {
        let ds = dataset();
        let p = Pipeline::new(PipelineConfig::paper(200.0, Overlap::Half)).unwrap();
        let cache = SegmentCache::default();
        let reg = Registry::new();
        std::env::set_var(CACHE_ENV, "0");
        let a = cache.get_or_build(&p, ds.trials(), &reg);
        let b = cache.get_or_build(&p, ds.trials(), &reg);
        std::env::remove_var(CACHE_ENV);
        assert!(!Arc::ptr_eq(&a, &b), "bypass must recompute");
        assert!(cache.is_empty());
        assert_eq!(*a, *b);
    }

    #[test]
    fn trial_content_participates_in_the_key() {
        let ds_a = Dataset::combined_scaled(1, 1, 42).unwrap();
        let ds_b = Dataset::combined_scaled(1, 1, 43).unwrap();
        let p = Pipeline::new(PipelineConfig::paper(200.0, Overlap::Half)).unwrap();
        assert_ne!(
            content_key(p.config(), ds_a.trials()),
            content_key(p.config(), ds_b.trials())
        );
    }
}
