//! Interned trace span names for the experiment layer. Initialised on
//! the first *armed* event so the disarmed path never touches the
//! interner.

use std::sync::OnceLock;

pub(crate) struct TraceNames {
    pub cell: prefall_trace::NameId,
    pub fold: prefall_trace::NameId,
    pub merge: prefall_trace::NameId,
    pub cache_fill: prefall_trace::NameId,
    pub cache_hit: prefall_trace::NameId,
}

pub(crate) fn trace_names() -> &'static TraceNames {
    static NAMES: OnceLock<TraceNames> = OnceLock::new();
    NAMES.get_or_init(|| TraceNames {
        cell: prefall_trace::intern("experiment.cell"),
        fold: prefall_trace::intern("cv.fold"),
        merge: prefall_trace::intern("experiment.merge"),
        cache_fill: prefall_trace::intern("cache.fill"),
        cache_hit: prefall_trace::intern("cache.hit"),
    })
}
