//! §IV-B event-level evaluation (Table IV).
//!
//! "A falling/non-falling event is composed of several segments. …it is
//! enough to correctly classify one segment to effectively predict the
//! fall. Similarly, a single misclassification of a segment belonging to
//! a non-falling event may cause the useless activation of the safety
//! system." Performance must therefore be analysed **per event**:
//!
//! * Table IVa — % of fall events with *no* positively classified
//!   usable falling segment (missed falls);
//! * Table IVb — % of ADL events with *any* positively classified
//!   segment (false activations), split into red (unconventional for
//!   at-risk wearers) and green (everyday) tasks.

use crate::pipeline::{SegmentLabel, SegmentMeta};
use prefall_imu::activity::{Activity, ActivityClass, RiskGroup};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Event identity: one (subject, task, repetition) trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct EventKey {
    subject: u16,
    task: u8,
    trial_index: u16,
}

/// Flagging statistics for one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TaskEventStats {
    /// Number of events (trials) of the task seen in the test folds.
    pub events: usize,
    /// Events where the detector fired (detections for falls, false
    /// activations for ADLs).
    pub flagged: usize,
}

impl TaskEventStats {
    /// Fraction of events flagged.
    pub fn rate(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.flagged as f64 / self.events as f64
        }
    }
}

/// The Table IV analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventReport {
    /// Per fall-task detection statistics (IVa reports `1 − rate`).
    pub fall_tasks: BTreeMap<u8, TaskEventStats>,
    /// Per ADL-task false-activation statistics (IVb).
    pub adl_tasks: BTreeMap<u8, TaskEventStats>,
    /// Decision threshold used.
    pub threshold: f32,
}

impl EventReport {
    /// Builds the event analysis from per-segment test predictions.
    ///
    /// A fall event counts as detected when any of its `Falling`
    /// segments scores ≥ threshold; an ADL event counts as a false
    /// activation when any of its segments does.
    pub fn from_predictions(preds: &[(SegmentMeta, f32)], threshold: f32) -> Self {
        let mut events: BTreeMap<EventKey, (bool, bool)> = BTreeMap::new(); // (is_fall_task, flagged)
        for (meta, prob) in preds {
            let key = EventKey {
                subject: meta.subject.0,
                task: meta.task.get(),
                trial_index: meta.trial_index,
            };
            let activity = Activity::from_task(meta.task.get()).expect("valid task");
            let is_fall_task = activity.class == ActivityClass::Fall;
            let entry = events.entry(key).or_insert((is_fall_task, false));
            let fires = *prob >= threshold;
            let counts = if is_fall_task {
                // Only pre-impact (usable) falling segments save the wearer.
                meta.label == SegmentLabel::Falling && fires
            } else {
                fires
            };
            entry.1 |= counts;
        }

        let mut fall_tasks: BTreeMap<u8, TaskEventStats> = BTreeMap::new();
        let mut adl_tasks: BTreeMap<u8, TaskEventStats> = BTreeMap::new();
        for (key, (is_fall, flagged)) in events {
            let map = if is_fall {
                &mut fall_tasks
            } else {
                &mut adl_tasks
            };
            let stats = map.entry(key.task).or_default();
            stats.events += 1;
            if flagged {
                stats.flagged += 1;
            }
        }
        Self {
            fall_tasks,
            adl_tasks,
            threshold,
        }
    }

    /// Table IVa: miss percentage for one fall task.
    pub fn fall_miss_pct(&self, task: u8) -> Option<f64> {
        self.fall_tasks.get(&task).map(|s| (1.0 - s.rate()) * 100.0)
    }

    /// Table IVb: false-activation percentage for one ADL task.
    pub fn adl_fp_pct(&self, task: u8) -> Option<f64> {
        self.adl_tasks.get(&task).map(|s| s.rate() * 100.0)
    }

    /// Pooled miss percentage over all fall events ("All actions" row of
    /// IVa; paper: 4.17 %).
    pub fn overall_fall_miss_pct(&self) -> f64 {
        let events: usize = self.fall_tasks.values().map(|s| s.events).sum();
        let detected: usize = self.fall_tasks.values().map(|s| s.flagged).sum();
        if events == 0 {
            0.0
        } else {
            (events - detected) as f64 / events as f64 * 100.0
        }
    }

    /// Pooled false-activation percentage over all ADL events ("All
    /// actions" row of IVb; paper: 2.04 %).
    pub fn overall_adl_fp_pct(&self) -> f64 {
        let events: usize = self.adl_tasks.values().map(|s| s.events).sum();
        let flagged: usize = self.adl_tasks.values().map(|s| s.flagged).sum();
        if events == 0 {
            0.0
        } else {
            flagged as f64 / events as f64 * 100.0
        }
    }

    /// Pooled ADL false-activation percentage for one risk group
    /// (paper: red 3.34 %, green 0.46 %).
    pub fn risk_group_fp_pct(&self, group: RiskGroup) -> f64 {
        let mut events = 0usize;
        let mut flagged = 0usize;
        for (task, stats) in &self.adl_tasks {
            let a = Activity::from_task(*task).expect("valid task");
            if a.risk_group == Some(group) {
                events += stats.events;
                flagged += stats.flagged;
            }
        }
        if events == 0 {
            0.0
        } else {
            flagged as f64 / events as f64 * 100.0
        }
    }

    /// Fall tasks ordered by miss rate, descending (Table IVa order).
    pub fn fall_tasks_by_miss(&self) -> Vec<(u8, f64)> {
        let mut v: Vec<(u8, f64)> = self
            .fall_tasks
            .keys()
            .map(|&t| (t, self.fall_miss_pct(t).expect("present")))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        v
    }

    /// ADL tasks ordered by false-activation rate, descending
    /// (Table IVb order).
    pub fn adl_tasks_by_fp(&self) -> Vec<(u8, f64)> {
        let mut v: Vec<(u8, f64)> = self
            .adl_tasks
            .keys()
            .map(|&t| (t, self.adl_fp_pct(t).expect("present")))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefall_imu::activity::TaskId;
    use prefall_imu::subject::SubjectId;

    fn meta(subject: u16, task: u8, trial: u16, label: SegmentLabel) -> SegmentMeta {
        SegmentMeta {
            subject: SubjectId(subject),
            task: TaskId::new(task).unwrap(),
            trial_index: trial,
            start: 0,
            label,
        }
    }

    #[test]
    fn one_positive_segment_detects_the_fall() {
        // Fall trial (task 30) with three segments: two misses, one hit.
        let preds = vec![
            (meta(0, 30, 0, SegmentLabel::Falling), 0.1),
            (meta(0, 30, 0, SegmentLabel::Falling), 0.9),
            (meta(0, 30, 0, SegmentLabel::Adl), 0.2),
        ];
        let r = EventReport::from_predictions(&preds, 0.5);
        assert_eq!(r.fall_miss_pct(30), Some(0.0));
        assert_eq!(r.overall_fall_miss_pct(), 0.0);
    }

    #[test]
    fn fall_with_no_positive_segments_is_missed() {
        let preds = vec![
            (meta(0, 30, 0, SegmentLabel::Falling), 0.4),
            (meta(0, 30, 0, SegmentLabel::Falling), 0.2),
        ];
        let r = EventReport::from_predictions(&preds, 0.5);
        assert_eq!(r.fall_miss_pct(30), Some(100.0));
    }

    #[test]
    fn pre_fall_positive_does_not_count_as_detection() {
        // Only a pre-fall (Adl-labelled) segment fires: too early to be
        // a usable pre-impact trigger for this event.
        let preds = vec![
            (meta(0, 30, 0, SegmentLabel::Adl), 0.99),
            (meta(0, 30, 0, SegmentLabel::Falling), 0.1),
        ];
        let r = EventReport::from_predictions(&preds, 0.5);
        assert_eq!(r.fall_miss_pct(30), Some(100.0));
    }

    #[test]
    fn single_segment_fp_flags_the_adl_event() {
        let preds = vec![
            (meta(0, 6, 0, SegmentLabel::Adl), 0.2),
            (meta(0, 6, 0, SegmentLabel::Adl), 0.7),
            (meta(1, 6, 0, SegmentLabel::Adl), 0.1),
        ];
        let r = EventReport::from_predictions(&preds, 0.5);
        // Subject 0's walk is a false activation; subject 1's is clean.
        assert_eq!(r.adl_fp_pct(6), Some(50.0));
        assert_eq!(r.overall_adl_fp_pct(), 50.0);
    }

    #[test]
    fn distinct_trials_are_distinct_events() {
        let preds = vec![
            (meta(0, 6, 0, SegmentLabel::Adl), 0.9),
            (meta(0, 6, 1, SegmentLabel::Adl), 0.1),
        ];
        let r = EventReport::from_predictions(&preds, 0.5);
        assert_eq!(r.adl_tasks[&6].events, 2);
        assert_eq!(r.adl_tasks[&6].flagged, 1);
    }

    #[test]
    fn risk_groups_pool_correctly() {
        // Task 44 is red, task 6 is green.
        let preds = vec![
            (meta(0, 44, 0, SegmentLabel::Adl), 0.9), // red, flagged
            (meta(1, 44, 0, SegmentLabel::Adl), 0.1), // red, clean
            (meta(0, 6, 0, SegmentLabel::Adl), 0.1),  // green, clean
        ];
        let r = EventReport::from_predictions(&preds, 0.5);
        assert_eq!(r.risk_group_fp_pct(RiskGroup::Red), 50.0);
        assert_eq!(r.risk_group_fp_pct(RiskGroup::Green), 0.0);
    }

    #[test]
    fn orderings_are_descending() {
        let preds = vec![
            (meta(0, 30, 0, SegmentLabel::Falling), 0.9), // detected
            (meta(0, 31, 0, SegmentLabel::Falling), 0.1), // missed
            (meta(0, 6, 0, SegmentLabel::Adl), 0.9),      // fp
            (meta(0, 7, 0, SegmentLabel::Adl), 0.1),      // clean
        ];
        let r = EventReport::from_predictions(&preds, 0.5);
        let falls = r.fall_tasks_by_miss();
        assert_eq!(falls[0], (31, 100.0));
        let adls = r.adl_tasks_by_fp();
        assert_eq!(adls[0], (6, 100.0));
    }

    #[test]
    fn empty_predictions_are_safe() {
        let r = EventReport::from_predictions(&[], 0.5);
        assert_eq!(r.overall_fall_miss_pct(), 0.0);
        assert_eq!(r.overall_adl_fp_pct(), 0.0);
        assert!(r.fall_tasks_by_miss().is_empty());
        assert_eq!(r.risk_group_fp_pct(RiskGroup::Red), 0.0);
    }

    #[test]
    fn threshold_changes_flagging() {
        let preds = vec![(meta(0, 6, 0, SegmentLabel::Adl), 0.6)];
        let strict = EventReport::from_predictions(&preds, 0.9);
        let loose = EventReport::from_predictions(&preds, 0.5);
        assert_eq!(strict.overall_adl_fp_pct(), 0.0);
        assert_eq!(loose.overall_adl_fp_pct(), 100.0);
    }
}
