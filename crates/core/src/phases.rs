//! Fig. 1 — fall-stage annotation of a trial.
//!
//! The figure shows the accelerometer-magnitude trace of one fall with
//! the pre-fall phase (green), the falling phase (red), the last 150 ms
//! before impact (yellow), the impact (violet cross) and the post-fall
//! phase (orange). This module produces that series for any trial.

use prefall_dsp::stats::magnitude_series;
use prefall_imu::channel::Channel;
use prefall_imu::csv::PhaseLabel;
use prefall_imu::trial::Trial;
use prefall_imu::SAMPLE_PERIOD_MS;

/// One point of the Fig. 1 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhasePoint {
    /// Time since trial start, in milliseconds.
    pub t_ms: f64,
    /// Accelerometer magnitude in g.
    pub accel_mag: f32,
    /// The fall stage at this sample.
    pub phase: PhaseLabel,
}

/// Produces the annotated accelerometer-magnitude series of a trial.
pub fn phase_series(trial: &Trial) -> Vec<PhasePoint> {
    let mag = magnitude_series(
        trial.channel(Channel::AccelX),
        trial.channel(Channel::AccelY),
        trial.channel(Channel::AccelZ),
    );
    mag.into_iter()
        .enumerate()
        .map(|(i, m)| PhasePoint {
            t_ms: i as f64 * SAMPLE_PERIOD_MS,
            accel_mag: m,
            phase: PhaseLabel::of(trial, i),
        })
        .collect()
}

/// Summary of the phase durations of a fall trial (milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseDurations {
    /// Pre-fall activity length.
    pub pre_ms: f64,
    /// Usable falling length (fall start → impact − 150 ms).
    pub falling_ms: f64,
    /// The inflation budget actually present (≤ 150 ms).
    pub inflation_ms: f64,
    /// Post-impact length.
    pub post_ms: f64,
}

/// Measures the phase durations of a trial.
pub fn phase_durations(trial: &Trial) -> PhaseDurations {
    let mut d = PhaseDurations::default();
    for i in 0..trial.len() {
        let bucket = match PhaseLabel::of(trial, i) {
            PhaseLabel::Pre => &mut d.pre_ms,
            PhaseLabel::Falling => &mut d.falling_ms,
            PhaseLabel::Inflation => &mut d.inflation_ms,
            PhaseLabel::Impact | PhaseLabel::Post => &mut d.post_ms,
        };
        *bucket += SAMPLE_PERIOD_MS;
    }
    d
}

/// Renders the series as a compact ASCII plot (for the `figure1`
/// binary): one row per `stride` samples, bar length ∝ magnitude.
pub fn ascii_plot(series: &[PhasePoint], stride: usize, max_g: f32) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{:>8}  {:>6}  phase      magnitude", "t (ms)", "g");
    for p in series.iter().step_by(stride.max(1)) {
        let bar_len = ((p.accel_mag / max_g).clamp(0.0, 1.0) * 50.0) as usize;
        let marker = match p.phase {
            PhaseLabel::Pre => '.',
            PhaseLabel::Falling => '#',
            PhaseLabel::Inflation => '!',
            PhaseLabel::Impact => 'X',
            PhaseLabel::Post => 'o',
        };
        let _ = writeln!(
            out,
            "{:>8.0}  {:>6.2}  {:<9}  |{}",
            p.t_ms,
            p.accel_mag,
            p.phase.as_str(),
            marker.to_string().repeat(bar_len.max(1))
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefall_imu::dataset::Dataset;

    fn fall_trial() -> Trial {
        let ds = Dataset::combined_scaled(0, 1, 19).unwrap();
        ds.trials()
            .iter()
            .find(|t| t.is_fall() && t.usable_fall_range().is_some())
            .unwrap()
            .clone()
    }

    #[test]
    fn series_covers_whole_trial_in_order() {
        let t = fall_trial();
        let s = phase_series(&t);
        assert_eq!(s.len(), t.len());
        assert_eq!(s[0].t_ms, 0.0);
        assert!((s[1].t_ms - 10.0).abs() < 1e-9, "100 Hz spacing");
        // All five stages appear for a long-enough fall.
        for want in [
            PhaseLabel::Pre,
            PhaseLabel::Falling,
            PhaseLabel::Inflation,
            PhaseLabel::Impact,
            PhaseLabel::Post,
        ] {
            assert!(s.iter().any(|p| p.phase == want), "missing {want:?}");
        }
    }

    #[test]
    fn inflation_budget_measures_150ms() {
        let t = fall_trial();
        let d = phase_durations(&t);
        assert!((d.inflation_ms - 150.0).abs() < 1e-6, "{:?}", d);
        assert!(d.pre_ms > 0.0);
        assert!(d.falling_ms > 0.0);
        assert!(d.post_ms > 0.0);
        // The paper: falls generally take 150–1100 ms onset→impact.
        let total_fall = d.falling_ms + d.inflation_ms;
        assert!(
            (150.0..=1200.0).contains(&total_fall),
            "fall {total_fall} ms"
        );
    }

    #[test]
    fn ascii_plot_renders_phases() {
        let t = fall_trial();
        let s = phase_series(&t);
        let plot = ascii_plot(&s, 5, 4.0);
        assert!(plot.contains("falling"));
        assert!(plot.contains("inflation"));
        assert!(plot.lines().count() > 10);
    }

    #[test]
    fn adl_trial_is_all_pre() {
        let ds = Dataset::combined_scaled(0, 1, 19).unwrap();
        let t = ds.trials().iter().find(|t| !t.is_fall()).unwrap();
        let d = phase_durations(t);
        assert_eq!(d.falling_ms, 0.0);
        assert_eq!(d.inflation_ms, 0.0);
        assert_eq!(d.post_ms, 0.0);
        assert!(d.pre_ms > 0.0);
    }
}
