//! Reproducible experiment orchestration.
//!
//! The benchmark binaries (Table III, Table IV, sweeps, ablations) all
//! run through [`Experiment`]: one generated dataset, a grid of
//! (model × window) cells, subject-independent CV per cell.
//!
//! Scale knobs honour environment variables so the same binaries serve
//! quick runs and paper-scale runs:
//!
//! | variable | effect |
//! |---|---|
//! | `PREFALL_KFALL` / `PREFALL_SELF` | subjects per source |
//! | `PREFALL_EPOCHS` | max training epochs |
//! | `PREFALL_FOLDS` | CV folds |
//! | `PREFALL_TRIALS` | trials per task |
//! | `PREFALL_SEED` | master seed |
//! | `PREFALL_QUIET` | suppress progress events on stderr |
//! | `PREFALL_TELEMETRY_JSONL` | stream progress events to a JSONL file |

use crate::cache::SegmentCache;
use crate::cv::{run_cv_with_segments, CvConfig, CvOutcome};
use crate::events::EventReport;
use crate::metrics::TableMetrics;
use crate::models::ModelKind;
use crate::monitor::QualityMonitor;
use crate::pipeline::SegmentLabel;
use crate::pipeline::{Pipeline, PipelineConfig};
use crate::CoreError;
use prefall_dsp::segment::Overlap;
use prefall_imu::dataset::{Dataset, DatasetConfig, DatasetStats};
use prefall_par::Pool;
use prefall_telemetry::{Recorder, TelemetryEnv, Value};
use std::sync::Arc;

/// Full experiment configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Dataset generation parameters.
    pub dataset: DatasetConfig,
    /// Window lengths to evaluate, in ms.
    pub windows_ms: Vec<f64>,
    /// Overlap (the paper's grid fixes 50 % for Table III).
    pub overlap: Overlap,
    /// Models to evaluate.
    pub models: Vec<ModelKind>,
    /// Cross-validation protocol.
    pub cv: CvConfig,
    /// Worker-thread override for the experiment grid. `None` defers to
    /// `PREFALL_THREADS` (and ultimately the machine's parallelism).
    /// Results are bit-identical for any value.
    pub threads: Option<usize>,
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.parse().ok()
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

impl ExperimentConfig {
    /// A minutes-scale Table III default: a reduced subject pool and
    /// epoch budget, full model × window grid, 5-fold protocol.
    pub fn table3_default() -> Self {
        Self {
            dataset: DatasetConfig {
                kfall_subjects: 6,
                self_collected_subjects: 6,
                trials_per_task: 1,
                duration_scale: 0.5,
                seed: 2025,
            },
            windows_ms: vec![200.0, 300.0, 400.0],
            overlap: Overlap::Half,
            models: ModelKind::ALL.to_vec(),
            cv: CvConfig {
                folds: 5,
                val_subjects: 2,
                epochs: 8,
                ..CvConfig::paper_scaled(8)
            },
            threads: None,
        }
    }

    /// A seconds-scale configuration for tests and the quickstart
    /// example: one window, the proposed CNN only.
    pub fn fast() -> Self {
        Self {
            dataset: DatasetConfig {
                kfall_subjects: 2,
                self_collected_subjects: 2,
                trials_per_task: 1,
                duration_scale: 0.4,
                seed: 7,
            },
            windows_ms: vec![200.0],
            overlap: Overlap::Half,
            models: vec![ModelKind::ProposedCnn],
            cv: CvConfig::fast(),
            threads: None,
        }
    }

    /// Applies the `PREFALL_*` environment overrides.
    pub fn with_env_overrides(mut self) -> Self {
        if let Some(n) = env_usize("PREFALL_KFALL") {
            self.dataset.kfall_subjects = n;
        }
        if let Some(n) = env_usize("PREFALL_SELF") {
            self.dataset.self_collected_subjects = n;
        }
        if let Some(n) = env_usize("PREFALL_TRIALS") {
            self.dataset.trials_per_task = n.max(1);
        }
        if let Some(n) = env_usize("PREFALL_EPOCHS") {
            self.cv.epochs = n.max(1);
        }
        if let Some(n) = env_usize("PREFALL_FOLDS") {
            self.cv.folds = n.max(2);
        }
        if let Some(s) = env_u64("PREFALL_SEED") {
            self.dataset.seed = s;
            self.cv.seed = s ^ 0xFA11;
        }
        self
    }
}

/// One grid cell's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The model evaluated.
    pub model: ModelKind,
    /// Window length in ms.
    pub window_ms: f64,
    /// Mean Table III columns over folds.
    pub metrics: TableMetrics,
    /// The full CV outcome (fold details, test predictions).
    pub cv: CvOutcome,
}

/// A completed experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// Every (model × window) cell, in model-major order.
    pub cells: Vec<CellResult>,
    /// Statistics of the generated dataset.
    pub dataset_stats: DatasetStats,
    /// Overlap used.
    pub overlap: Overlap,
}

impl ExperimentReport {
    /// Finds a cell.
    pub fn cell(&self, model: ModelKind, window_ms: f64) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|c| c.model == model && (c.window_ms - window_ms).abs() < 1e-9)
    }
}

impl std::fmt::Display for ExperimentReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let windows: Vec<f64> = {
            let mut w: Vec<f64> = self.cells.iter().map(|c| c.window_ms).collect();
            w.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            w.dedup();
            w
        };
        writeln!(
            f,
            "segment-level results ({} overlap); columns: Accuracy Precision Recall F1 (%, macro)",
            self.overlap
        )?;
        write!(f, "{:<16}", "Model")?;
        for w in &windows {
            write!(f, " | {:>6.0} ms segment size       ", w)?;
        }
        writeln!(f)?;
        let mut models: Vec<ModelKind> = Vec::new();
        for c in &self.cells {
            if !models.contains(&c.model) {
                models.push(c.model);
            }
        }
        for m in models {
            write!(f, "{:<16}", m.name())?;
            for w in &windows {
                match self.cell(m, *w) {
                    Some(c) => write!(f, " | {}", c.metrics)?,
                    None => write!(f, " | {:>27}", "-")?,
                }
            }
            writeln!(f)?;
        }
        write!(
            f,
            "dataset: {} trials ({} falls), {} segments-equivalent samples, {:.2}% falling",
            self.dataset_stats.trials,
            self.dataset_stats.fall_trials,
            self.dataset_stats.samples,
            self.dataset_stats.falling_fraction * 100.0
        )
    }
}

/// An experiment runner.
///
/// Holds a content-hashed [`SegmentCache`]: grid cells that share a
/// filter + window configuration reuse the filtered, segmented trials
/// instead of recomputing them (the Table III grid runs four models per
/// window, so each window's preprocessing happens once, not four
/// times). The cache is shared by clones of the runner.
#[derive(Debug, Clone)]
pub struct Experiment {
    config: ExperimentConfig,
    cache: Arc<SegmentCache>,
}

impl Experiment {
    /// Creates a runner.
    pub fn new(config: ExperimentConfig) -> Self {
        Self {
            config,
            cache: Arc::new(SegmentCache::default()),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Generates the dataset once (shared across all grid cells).
    ///
    /// # Errors
    ///
    /// Propagates dataset-generation errors.
    pub fn dataset(&self) -> Result<Dataset, CoreError> {
        Ok(Dataset::generate(&self.config.dataset)?)
    }

    /// Runs one grid cell on a pre-generated dataset.
    ///
    /// # Errors
    ///
    /// Propagates pipeline and CV errors.
    pub fn run_cell(
        &self,
        dataset: &Dataset,
        model: ModelKind,
        window_ms: f64,
    ) -> Result<CellResult, CoreError> {
        self.run_cell_recorded(dataset, model, window_ms, &prefall_telemetry::NoopRecorder)
    }

    /// [`Experiment::run_cell`] with full telemetry threaded through the
    /// pipeline, CV protocol and training loop.
    ///
    /// # Errors
    ///
    /// Same as [`Experiment::run_cell`].
    pub fn run_cell_recorded(
        &self,
        dataset: &Dataset,
        model: ModelKind,
        window_ms: f64,
        rec: &dyn Recorder,
    ) -> Result<CellResult, CoreError> {
        let pipeline = Pipeline::new(PipelineConfig {
            segmentation: prefall_dsp::segment::Segmentation::from_millis(
                window_ms,
                prefall_imu::SAMPLE_RATE_HZ,
                self.config.overlap,
            )?,
            ..PipelineConfig::paper_400ms()
        })?;
        let full = self.cache.get_or_build(&pipeline, dataset.trials(), rec);
        let cv = run_cv_with_segments(dataset, &pipeline, &full, model, &self.config.cv, rec)?;
        if rec.enabled() {
            // Fold the cell's held-out predictions into the online
            // model-quality audit: calibration bins from raw sigmoid
            // outputs, Table IV event counters from the event report.
            let preds = cv.all_predictions();
            let mut monitor = QualityMonitor::new();
            for (meta, prob) in &preds {
                monitor.record_probability(*prob, meta.label == SegmentLabel::Falling);
            }
            let report = EventReport::from_predictions(&preds, 0.5);
            monitor.record_event_report(&report, rec);
            monitor.publish(rec);
        }
        Ok(CellResult {
            model,
            window_ms,
            metrics: cv.mean,
            cv,
        })
    }

    /// Runs the full grid. Progress is reported through the recorder
    /// selected by the environment ([`TelemetryEnv::from_env`]): stderr
    /// events by default, silence under `PREFALL_QUIET=1`, and a JSONL
    /// stream when `PREFALL_TELEMETRY_JSONL` names a file.
    ///
    /// # Errors
    ///
    /// Propagates any cell failure.
    pub fn run(&self) -> Result<ExperimentReport, CoreError> {
        self.run_recorded(TelemetryEnv::from_env().progress_recorder().as_ref())
    }

    /// [`Experiment::run`] against an explicit recorder: per-cell
    /// `experiment.cell_start` / `experiment.cell_done` events plus
    /// everything the lower layers emit (fold events, epoch events,
    /// stage timings).
    ///
    /// # Errors
    ///
    /// Propagates any cell failure.
    pub fn run_recorded(&self, rec: &dyn Recorder) -> Result<ExperimentReport, CoreError> {
        let dataset = self.dataset()?;
        // The grid in model-major order; cells are independent seeded
        // computations collected by index, so the report is
        // bit-identical for any thread count.
        let grid: Vec<(ModelKind, f64)> = self
            .config
            .models
            .iter()
            .flat_map(|&m| self.config.windows_ms.iter().map(move |&w| (m, w)))
            .collect();
        let total = grid.len();
        let pool = Pool::with_override(self.config.threads);
        let results =
            crate::worker::map_recorded(&pool, &grid, rec, |i, &(model, window_ms), rec| {
                let _cell_span = prefall_trace::trace_span!(crate::tracenames::trace_names().cell);
                let started = std::time::Instant::now();
                rec.event(
                    "experiment.cell_start",
                    &[
                        ("cell", Value::from(i + 1)),
                        ("total", Value::from(total)),
                        ("model", Value::from(model.name())),
                        ("window_ms", Value::from(window_ms)),
                    ],
                );
                let cell = self.run_cell_recorded(&dataset, model, window_ms, rec)?;
                rec.event(
                    "experiment.cell_done",
                    &[
                        ("cell", Value::from(i + 1)),
                        ("total", Value::from(total)),
                        ("model", Value::from(model.name())),
                        ("window_ms", Value::from(window_ms)),
                        ("f1", Value::from(cell.metrics.f1)),
                        ("seconds", Value::from(started.elapsed().as_secs_f64())),
                    ],
                );
                Ok(cell)
            });
        pool.publish(rec);
        let cells = results
            .into_iter()
            .collect::<Result<Vec<CellResult>, CoreError>>()?;
        Ok(ExperimentReport {
            cells,
            dataset_stats: dataset.stats(),
            overlap: self.config.overlap,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_experiment_runs_end_to_end() {
        let report = Experiment::new(ExperimentConfig::fast()).run().unwrap();
        assert_eq!(report.cells.len(), 1);
        let cell = report.cell(ModelKind::ProposedCnn, 200.0).unwrap();
        assert!(cell.metrics.accuracy > 70.0);
        let text = report.to_string();
        assert!(text.contains("CNN (Proposed)"));
        assert!(text.contains("200 ms"));
    }

    #[test]
    fn env_overrides_apply() {
        // Serialised access: env vars are process-global.
        std::env::set_var("PREFALL_EPOCHS", "3");
        std::env::set_var("PREFALL_FOLDS", "4");
        let cfg = ExperimentConfig::table3_default().with_env_overrides();
        assert_eq!(cfg.cv.epochs, 3);
        assert_eq!(cfg.cv.folds, 4);
        std::env::remove_var("PREFALL_EPOCHS");
        std::env::remove_var("PREFALL_FOLDS");
    }

    #[test]
    fn table3_default_covers_the_grid() {
        let cfg = ExperimentConfig::table3_default();
        assert_eq!(cfg.models.len(), 4);
        assert_eq!(cfg.windows_ms, vec![200.0, 300.0, 400.0]);
        assert_eq!(cfg.cv.folds, 5);
    }
}
