//! Segment-level classification metrics.
//!
//! Table III reports Accuracy, Precision, Recall and F1 — the
//! precision/recall/F1 columns are **macro-averaged** over the two
//! classes (visible from the MLP row, where a near-degenerate classifier
//! scores recall ≈ 50). Both macro and positive-class variants are
//! provided.

use serde::{Deserialize, Serialize};

/// A binary confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Confusion {
    /// True positives (falling predicted falling).
    pub tp: usize,
    /// False positives (ADL predicted falling).
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives (falling predicted ADL).
    pub fn_: usize,
}

impl Confusion {
    /// An empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one prediction.
    pub fn push(&mut self, predicted_positive: bool, actually_positive: bool) {
        match (predicted_positive, actually_positive) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Builds from probabilities and labels at a threshold.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn from_probs(probs: &[f32], labels: &[f32], threshold: f32) -> Self {
        assert_eq!(probs.len(), labels.len(), "length mismatch");
        let mut c = Self::new();
        for (&p, &y) in probs.iter().zip(labels) {
            c.push(p >= threshold, y > 0.5);
        }
        c
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Merges another matrix into this one.
    pub fn merge(&mut self, other: &Confusion) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }

    /// Accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// Positive-class precision.
    pub fn precision_pos(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Positive-class recall (sensitivity).
    pub fn recall_pos(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Positive-class F1.
    pub fn f1_pos(&self) -> f64 {
        f1(self.precision_pos(), self.recall_pos())
    }

    /// Negative-class precision.
    pub fn precision_neg(&self) -> f64 {
        ratio(self.tn, self.tn + self.fn_)
    }

    /// Negative-class recall (specificity).
    pub fn recall_neg(&self) -> f64 {
        ratio(self.tn, self.tn + self.fp)
    }

    /// Negative-class F1.
    pub fn f1_neg(&self) -> f64 {
        f1(self.precision_neg(), self.recall_neg())
    }

    /// Macro-averaged precision (what Table III reports).
    pub fn macro_precision(&self) -> f64 {
        0.5 * (self.precision_pos() + self.precision_neg())
    }

    /// Macro-averaged recall.
    pub fn macro_recall(&self) -> f64 {
        0.5 * (self.recall_pos() + self.recall_neg())
    }

    /// Macro-averaged F1.
    pub fn macro_f1(&self) -> f64 {
        0.5 * (self.f1_pos() + self.f1_neg())
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn f1(p: f64, r: f64) -> f64 {
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

/// The four Table III columns, as percentages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TableMetrics {
    /// Accuracy %.
    pub accuracy: f64,
    /// Macro precision %.
    pub precision: f64,
    /// Macro recall %.
    pub recall: f64,
    /// Macro F1 %.
    pub f1: f64,
}

impl TableMetrics {
    /// Extracts the Table III columns from a confusion matrix.
    pub fn from_confusion(c: &Confusion) -> Self {
        Self {
            accuracy: c.accuracy() * 100.0,
            precision: c.macro_precision() * 100.0,
            recall: c.macro_recall() * 100.0,
            f1: c.macro_f1() * 100.0,
        }
    }

    /// Mean over several folds.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn mean(items: &[TableMetrics]) -> Self {
        assert!(!items.is_empty(), "cannot average zero folds");
        let n = items.len() as f64;
        Self {
            accuracy: items.iter().map(|m| m.accuracy).sum::<f64>() / n,
            precision: items.iter().map(|m| m.precision).sum::<f64>() / n,
            recall: items.iter().map(|m| m.recall).sum::<f64>() / n,
            f1: items.iter().map(|m| m.f1).sum::<f64>() / n,
        }
    }
}

impl std::fmt::Display for TableMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:6.2} {:6.2} {:6.2} {:6.2}",
            self.accuracy, self.precision, self.recall, self.f1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let mut c = Confusion::new();
        for _ in 0..10 {
            c.push(true, true);
        }
        for _ in 0..90 {
            c.push(false, false);
        }
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!(c.macro_precision(), 1.0);
        assert_eq!(c.macro_recall(), 1.0);
        assert_eq!(c.macro_f1(), 1.0);
    }

    #[test]
    fn degenerate_all_negative_matches_mlp_row_shape() {
        // Predicting everything negative on a 3.5% positive set: high
        // accuracy, macro recall exactly 50% — the paper's MLP row.
        let mut c = Confusion::new();
        for _ in 0..35 {
            c.push(false, true);
        }
        for _ in 0..965 {
            c.push(false, false);
        }
        assert!((c.accuracy() - 0.965).abs() < 1e-9);
        assert!((c.macro_recall() - 0.5).abs() < 1e-9);
        assert!(c.macro_precision() < 0.5);
        assert!(c.macro_f1() < 0.52);
    }

    #[test]
    fn known_confusion_values() {
        let c = Confusion {
            tp: 8,
            fp: 2,
            tn: 85,
            fn_: 5,
        };
        assert!((c.precision_pos() - 0.8).abs() < 1e-9);
        assert!((c.recall_pos() - 8.0 / 13.0).abs() < 1e-9);
        assert!((c.recall_neg() - 85.0 / 87.0).abs() < 1e-9);
        let f1 = c.f1_pos();
        let expect = 2.0 * 0.8 * (8.0 / 13.0) / (0.8 + 8.0 / 13.0);
        assert!((f1 - expect).abs() < 1e-9);
    }

    #[test]
    fn from_probs_thresholding() {
        let c = Confusion::from_probs(&[0.9, 0.4, 0.6, 0.1], &[1.0, 1.0, 0.0, 0.0], 0.5);
        assert_eq!(c.tp, 1);
        assert_eq!(c.fn_, 1);
        assert_eq!(c.fp, 1);
        assert_eq!(c.tn, 1);
    }

    #[test]
    fn empty_matrix_is_all_zero_not_nan() {
        let c = Confusion::new();
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.macro_f1(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Confusion {
            tp: 1,
            fp: 2,
            tn: 3,
            fn_: 4,
        };
        a.merge(&a.clone());
        assert_eq!(a.total(), 20);
        assert_eq!(a.fn_, 8);
    }

    #[test]
    fn table_metrics_mean_and_display() {
        let a = TableMetrics {
            accuracy: 90.0,
            precision: 80.0,
            recall: 70.0,
            f1: 74.0,
        };
        let b = TableMetrics {
            accuracy: 92.0,
            precision: 84.0,
            recall: 74.0,
            f1: 78.0,
        };
        let m = TableMetrics::mean(&[a, b]);
        assert!((m.accuracy - 91.0).abs() < 1e-9);
        assert!((m.f1 - 76.0).abs() < 1e-9);
        assert!(m.to_string().contains("91.00"));
    }
}
