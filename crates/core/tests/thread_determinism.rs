//! Workspace parallelism must never change results: the experiment
//! grid, the CV folds and the mini-batch trainer all fan out over
//! `PREFALL_THREADS` workers, and every one of them is constructed so
//! the outcome is **bit-identical** for any thread count (independent
//! seeded tasks, index-ordered collection, per-sample gradient slots).

use prefall_core::experiment::{Experiment, ExperimentConfig};
use prefall_telemetry::NoopRecorder;

#[test]
fn experiment_report_is_bit_identical_for_any_thread_count() {
    let mut config = ExperimentConfig::fast();
    config.cv.epochs = 2;
    // Two windows so the grid itself has parallel cells.
    config.windows_ms = vec![200.0, 300.0];

    // Env access is serialised within this test; the runner executes
    // integration tests in their own process.
    let run_with = |threads: &str| {
        std::env::set_var("PREFALL_THREADS", threads);
        let report = Experiment::new(config.clone())
            .run_recorded(&NoopRecorder)
            .unwrap();
        std::env::remove_var("PREFALL_THREADS");
        report
    };

    let serial = run_with("1");
    let two = run_with("2");
    let eight = run_with("8");

    assert_eq!(serial.cells.len(), 2);
    // `ExperimentReport: PartialEq` compares every fold's metrics,
    // confusion counts and per-segment f32 probabilities exactly.
    assert_eq!(serial, two, "2 threads changed the report");
    assert_eq!(serial, eight, "8 threads changed the report");
}

#[test]
fn explicit_thread_override_does_not_change_results() {
    let mut config = ExperimentConfig::fast();
    config.cv.epochs = 2;
    config.threads = Some(4);

    std::env::set_var("PREFALL_THREADS", "1");
    let overridden = Experiment::new(config.clone())
        .run_recorded(&NoopRecorder)
        .unwrap();
    std::env::remove_var("PREFALL_THREADS");

    config.threads = None;
    let default = Experiment::new(config).run_recorded(&NoopRecorder).unwrap();
    assert_eq!(overridden, default);
}
