//! Workspace parallelism must never change results: the experiment
//! grid, the CV folds and the mini-batch trainer all fan out over
//! `PREFALL_THREADS` workers — nested, through the shared
//! work-stealing scheduler — and every one of them is constructed so
//! the outcome is **bit-identical** for any thread count (independent
//! seeded tasks, index-ordered collection, per-sample gradient slots).

use prefall_core::experiment::{Experiment, ExperimentConfig};
use prefall_telemetry::NoopRecorder;

#[test]
fn experiment_report_is_bit_identical_for_any_thread_count() {
    let mut config = ExperimentConfig::fast();
    config.cv.epochs = 2;
    // Two windows so the grid itself has parallel cells.
    config.windows_ms = vec![200.0, 300.0];

    // Env access is serialised within this test; the runner executes
    // integration tests in their own process.
    let run_with = |threads: &str| {
        std::env::set_var("PREFALL_THREADS", threads);
        let report = Experiment::new(config.clone())
            .run_recorded(&NoopRecorder)
            .unwrap();
        std::env::remove_var("PREFALL_THREADS");
        report
    };

    let serial = run_with("1");
    let two = run_with("2");
    let eight = run_with("8");

    assert_eq!(serial.cells.len(), 2);
    // `ExperimentReport: PartialEq` compares every fold's metrics,
    // confusion counts and per-segment f32 probabilities exactly.
    assert_eq!(serial, two, "2 threads changed the report");
    assert_eq!(serial, eight, "8 threads changed the report");
}

#[test]
fn nested_maps_are_bit_identical_for_any_thread_count() {
    // The work-stealing scheduler shares one set of deques across
    // nested sessions: an outer map's chunks and an inner map's chunks
    // interleave, and a parked worker may steal either. f32 sums must
    // not care — each inner map folds its partials in item order into
    // a pre-sized slot, so the bits depend only on the data, never on
    // which worker ran which chunk.
    let run_with = |threads: usize| -> Vec<u32> {
        let outer_pool = prefall_par::Pool::new(threads);
        let cells: Vec<usize> = (0..24).collect();
        outer_pool.map(&cells, |_, &cell| {
            // `from_env` inherits the enclosing map's thread budget, so
            // the inner fan-out follows the same setting under test.
            let inner_pool = prefall_par::Pool::from_env();
            let items: Vec<usize> = (0..257).collect();
            let parts = inner_pool.map(&items, |_, &i| {
                let x = ((cell * 1009 + i * 31) % 97) as f32 / 97.0;
                (x * 1.618_034 + 0.5).sin() * (i as f32 + 1.0).sqrt()
            });
            parts.iter().fold(0.0f32, |acc, p| acc + p).to_bits()
        })
    };

    let serial = run_with(1);
    let two = run_with(2);
    let eight = run_with(8);
    assert_eq!(serial, two, "2 threads changed nested-map bits");
    assert_eq!(serial, eight, "8 threads changed nested-map bits");
}

#[test]
fn explicit_thread_override_does_not_change_results() {
    let mut config = ExperimentConfig::fast();
    config.cv.epochs = 2;
    config.threads = Some(4);

    std::env::set_var("PREFALL_THREADS", "1");
    let overridden = Experiment::new(config.clone())
        .run_recorded(&NoopRecorder)
        .unwrap();
    std::env::remove_var("PREFALL_THREADS");

    config.threads = None;
    let default = Experiment::new(config).run_recorded(&NoopRecorder).unwrap();
    assert_eq!(overridden, default);
}
